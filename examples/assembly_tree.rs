//! Figure 1 of the paper: a 6x6 matrix and its assembly tree.
//!
//! Builds the exact matrix of the figure, runs the symbolic analysis and
//! prints the pattern and the resulting tree — three supernodes {1,2},
//! {3,4}, {5,6} with the last as root.
//!
//! Run with: `cargo run --example assembly_tree`

use multifrontal::prelude::*;

fn figure1_matrix() -> CscMatrix {
    let mut coo = CooMatrix::new_symmetric(6);
    for i in 0..6 {
        coo.push(i, i, 4.0).unwrap();
    }
    for &(i, j) in
        &[(1, 0), (4, 0), (5, 0), (4, 1), (5, 1), (3, 2), (4, 2), (5, 2), (4, 3), (5, 3), (5, 4)]
    {
        coo.push(i, j, -1.0).unwrap();
    }
    coo.to_csc()
}

fn print_pattern(a: &CscMatrix) {
    println!("pattern (X = stored entry, rows/cols 1-6 as in the paper):");
    for i in 0..a.nrows() {
        print!("  ");
        for j in 0..a.ncols() {
            print!("{} ", if a.get(i, j) != 0.0 { 'X' } else { '.' });
        }
        println!();
    }
}

fn print_tree(tree: &AssemblyTree, id: usize, depth: usize) {
    let nd = &tree.nodes[id];
    let pivots: Vec<usize> = (nd.first_col..nd.first_col + nd.npiv).map(|c| c + 1).collect();
    println!(
        "{:indent$}node {id}: pivots {pivots:?}, front order {}, cb order {}",
        "",
        nd.nfront,
        tree.cb_order(id),
        indent = 2 * depth
    );
    for &c in &nd.children {
        print_tree(tree, c, depth + 1);
    }
}

fn main() {
    let a = figure1_matrix();
    print_pattern(&a);

    let s = analyze(&a, &Permutation::identity(6), &AmalgamationOptions::none());
    println!("\nassembly tree ({} fronts):", s.tree.len());
    for r in s.tree.roots() {
        print_tree(&s.tree, r, 0);
    }

    // The same numbers the paper's Figure 1 shows: {1,2} and {3,4} are
    // the leaves, {5,6} the root.
    assert_eq!(s.tree.len(), 3);
    let piv: Vec<(usize, usize)> = s.tree.nodes.iter().map(|n| (n.first_col, n.npiv)).collect();
    assert_eq!(piv, vec![(0, 2), (2, 2), (4, 2)]);

    // And it factors: the numeric engine agrees with a dense solve.
    let f =
        Factorization::new(&a, &Permutation::identity(6), &AmalgamationOptions::none()).unwrap();
    let b = vec![1.0; 6];
    let x = f.solve(&b);
    println!("\nsolution of A x = 1: {x:.3?}");
    println!("residual: {:.2e}", Factorization::residual_inf(&a, &x, &b));
}
