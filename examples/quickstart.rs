//! Quickstart: order, factorize and solve a sparse system with the
//! numeric multifrontal engine, then inspect the memory statistics the
//! whole paper is about.
//!
//! Run with: `cargo run --release --example quickstart`

use multifrontal::prelude::*;

fn main() {
    // A 3-D finite-element-like SPD problem (7-point box stencil).
    let a =
        multifrontal::sparse::gen::grid::grid3d(12, 12, 12, Stencil::Box, Symmetry::Symmetric, 42);
    println!("matrix: {} x {}, {} nonzeros", a.nrows(), a.ncols(), a.nnz());

    // Fill-reducing ordering (try OrderingKind::Metis / Pord / Amf too).
    let perm = OrderingKind::Amd.compute(&a);

    // Symbolic analysis + numeric factorization.
    let f = Factorization::new(&a, &perm, &AmalgamationOptions::default())
        .expect("SPD matrix factors without pivoting trouble");
    println!("factors: {} entries over {} fronts", f.stats.factor_entries, f.stats.fronts);
    println!(
        "sequential stack peak: {} entries (active memory {})",
        f.stats.stack_peak, f.stats.active_peak
    );

    // Solve A x = b and check the residual.
    let b: Vec<f64> = (0..a.nrows()).map(|i| (i % 7) as f64 - 3.0).collect();
    let x = f.solve(&b);
    let r = Factorization::residual_inf(&a, &x, &b);
    println!("relative residual: {r:.2e}");
    assert!(r < 1e-10, "solve must be accurate");

    // The same factorization, tree-parallel across threads (the paper's
    // type-1 parallelism, shared-memory flavour).
    let s = analyze(&a, &perm, &AmalgamationOptions::default());
    let fp = multifrontal::frontal::parallel::factorize_parallel(&a, &s).unwrap();
    let xp = fp.solve(&b);
    let rp = Factorization::residual_inf(&a, &xp, &b);
    println!("rayon tree-parallel residual: {rp:.2e}");
}
