//! The paper's headline experiment on one case: compare the workload
//! baseline against the memory-based strategies (Algorithm 1 + Section
//! 5.1 + Algorithm 2) on a TWOTONE-like harmonic-balance matrix, and plot
//! the per-processor active-memory evolution as ASCII sparklines.
//!
//! Run with: `cargo run --release --example memory_scheduling`

use multifrontal::core::driver::percent_decrease;
use multifrontal::core::mapping::compute_mapping;
use multifrontal::prelude::*;
use multifrontal::symbolic::seqstack::{apply_liu_order, AssemblyDiscipline};

fn sparkline(samples: &[(u64, u64)], max: u64) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    samples.iter().map(|&(_, v)| LEVELS[((v * 7) / max.max(1)) as usize]).collect()
}

fn main() {
    let a = PaperMatrix::TwoTone.instantiate_scaled(0.5);
    println!("TWOTONE analogue: n = {}, nnz = {}", a.nrows(), a.nnz());
    let perm = OrderingKind::Amd.compute(&a);
    let mut s = analyze(&a, &perm, &AmalgamationOptions::default());
    apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);

    let nprocs = 16;
    let base_cfg = SolverConfig {
        record_traces: true,
        type2_front_min: 150,
        type3_front_min: 500,
        ..SolverConfig::mumps_baseline(nprocs)
    };
    let mem_cfg = SolverConfig {
        slave_selection: SlaveSelection::Memory,
        task_selection: TaskSelection::MemoryAware,
        use_subtree_info: true,
        use_prediction: true,
        ..base_cfg.clone()
    };
    let map = compute_mapping(&s.tree, &base_cfg);
    let base = multifrontal::core::parsim::run(&s.tree, &map, &base_cfg).unwrap();
    let mem = multifrontal::core::parsim::run(&s.tree, &map, &mem_cfg).unwrap();

    println!(
        "\nmax stack peak: baseline {} -> memory-based {} ({:+.1}%)",
        base.max_peak,
        mem.max_peak,
        percent_decrease(base.max_peak, mem.max_peak)
    );
    println!("avg stack peak: baseline {:.0} -> memory-based {:.0}", base.avg_peak, mem.avg_peak);
    println!("makespan:       baseline {} -> memory-based {}", base.makespan, mem.makespan);

    let global_max = base.max_peak.max(mem.max_peak);
    for (name, r) in [("baseline", &base), ("memory-based", &mem)] {
        println!("\nactive-memory evolution per processor ({name}):");
        let traces = r.traces.as_ref().unwrap();
        for (p, t) in traces.iter().enumerate() {
            let line = sparkline(&t.resample(r.makespan, 60), global_max);
            println!("  P{p:<2} {line} peak {:>8}", t.max());
        }
    }
}
