//! The out-of-core argument of the paper's conclusion: "since factors are
//! not reaccessed before the solve phase once computed, they can be stored
//! on disk, and it is crucial to minimize the remaining part of the memory
//! (that is, the stack)."
//!
//! This example quantifies that argument with the simulator: for an
//! in-core execution the per-processor provision is `total_peak` (stack +
//! fronts + factors); for an out-of-core execution it collapses to the
//! active-memory peak — the exact quantity the paper's strategies
//! minimize.
//!
//! Run with: `cargo run --release --example out_of_core`

use multifrontal::core::driver::percent_decrease;
use multifrontal::core::mapping::compute_mapping;
use multifrontal::prelude::*;
use multifrontal::symbolic::seqstack::{apply_liu_order, AssemblyDiscipline};

fn main() {
    let a = PaperMatrix::TwoTone.instantiate();
    println!("TWOTONE analogue: n = {}, nnz = {}", a.nrows(), a.nnz());
    let perm = OrderingKind::Amd.compute(&a);
    let mut s = analyze(&a, &perm, &AmalgamationOptions::default());
    apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);

    let nprocs = 32;
    let mk = |memory: bool| {
        let mut c = SolverConfig {
            nprocs,
            type2_front_min: 150,
            type3_front_min: 500,
            ..SolverConfig::mumps_baseline(nprocs)
        };
        if memory {
            c.slave_selection = SlaveSelection::Memory;
            c.task_selection = TaskSelection::MemoryAware;
            c.use_subtree_info = true;
            c.use_prediction = true;
        }
        c
    };
    let map = compute_mapping(&s.tree, &mk(false));
    let base = multifrontal::core::parsim::run(&s.tree, &map, &mk(false)).unwrap();
    let mem = multifrontal::core::parsim::run(&s.tree, &map, &mk(true)).unwrap();

    for (name, r) in [("workload baseline", &base), ("memory-based", &mem)] {
        let max_total = r.total_peaks.iter().copied().max().unwrap();
        let max_factors = r.factor_entries.iter().copied().max().unwrap();
        println!("\n{name}:");
        println!("  in-core provision  (stack+fronts+factors): {max_total:>9} entries/proc");
        println!("  out-of-core        (stack+fronts only)   : {:>9} entries/proc", r.max_peak);
        println!("  factors streamed to disk                  : {max_factors:>9} entries/proc");
        println!(
            "  -> out-of-core shrinks the provision by {:.0}%",
            percent_decrease(max_total, r.max_peak)
        );
    }
    println!(
        "\nmemory-based scheduling further trims the out-of-core provision by {:+.1}%",
        percent_decrease(base.max_peak, mem.max_peak)
    );

    // And the time side of the tradeoff: stream factors to disk at
    // ~100 MB/s per processor (reference [6]'s adaptive paging regime).
    let ooc_cfg = SolverConfig { out_of_core: Some(100), ..mk(true) };
    let ooc = multifrontal::core::parsim::run(&s.tree, &map, &ooc_cfg).unwrap();
    println!(
        "\nout-of-core run at 100 B/µs/proc disk: makespan {} -> {} ({:+.1}%), factors in core: {}",
        mem.makespan,
        ooc.makespan,
        100.0 * (ooc.makespan as f64 - mem.makespan as f64) / mem.makespan as f64,
        ooc.factor_entries.iter().sum::<u64>(),
    );
}
