//! Drop-in real matrices: write a generated problem as a Matrix Market
//! file, read it back, and run the full pipeline on it. Point the
//! `MATRIX` environment variable at any `.mtx` file (e.g. a real
//! Rutherford-Boeing / SuiteSparse instance) to reproduce the paper's
//! experiments on the original data.
//!
//! Run with: `cargo run --release --example matrix_market`
//! or:       `MATRIX=/path/to/twotone.mtx cargo run --release --example matrix_market`

use multifrontal::prelude::*;
use multifrontal::sparse::hb::read_harwell_boeing_file;
use multifrontal::sparse::io::{read_matrix_market_file, write_matrix_market};

fn main() {
    let a = match std::env::var("MATRIX") {
        Ok(path) => {
            println!("reading {path} ...");
            let p = std::path::Path::new(&path);
            let ext = p.extension().and_then(|e| e.to_str()).unwrap_or("").to_ascii_lowercase();
            if matches!(ext.as_str(), "rb" | "hb" | "rua" | "rsa" | "pua" | "psa") {
                // The Rutherford-Boeing distribution format of the paper's
                // original matrices.
                read_harwell_boeing_file(p).expect("readable Harwell-Boeing file")
            } else {
                read_matrix_market_file(p).expect("readable Matrix Market file")
            }
        }
        Err(_) => {
            // No file supplied: round-trip a generated instance through the
            // Matrix Market format to demonstrate the I/O path.
            let a = PaperMatrix::Xenon2.instantiate_scaled(0.3);
            let path = std::env::temp_dir().join("mf_xenon2_demo.mtx");
            let mut f = std::fs::File::create(&path).unwrap();
            write_matrix_market(&mut f, &a).unwrap();
            println!(
                "wrote demo instance to {} ({} bytes)",
                path.display(),
                std::fs::metadata(&path).unwrap().len()
            );
            read_matrix_market_file(&path).unwrap()
        }
    };
    println!("matrix: {} x {}, {} nonzeros, {}", a.nrows(), a.ncols(), a.nnz(), a.symmetry().tag());

    for kind in ALL_ORDERINGS {
        let input = ExperimentInput { matrix: &a, ordering: kind };
        let base = run_experiment(
            &input,
            &SolverConfig {
                type2_front_min: 150,
                type3_front_min: 500,
                ..SolverConfig::mumps_baseline(8)
            },
        )
        .unwrap();
        let mem = run_experiment(
            &input,
            &SolverConfig {
                type2_front_min: 150,
                type3_front_min: 500,
                ..SolverConfig::memory_based(8)
            },
        )
        .unwrap();
        println!(
            "  {:5}: max stack peak {:>9} -> {:>9} ({:+.1}%)",
            kind.name(),
            base.max_peak,
            mem.max_peak,
            multifrontal::core::driver::percent_decrease(base.max_peak, mem.max_peak)
        );
    }
}
