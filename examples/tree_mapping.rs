//! Figures 2 and 7 of the paper: how an assembly tree is distributed over
//! processors (leaf subtrees, type 1/2/3 nodes) and what the per-processor
//! pools of ready tasks look like initially.
//!
//! Run with: `cargo run --release --example tree_mapping`

use multifrontal::core::mapping::{compute_mapping, NodeKind};
use multifrontal::prelude::*;
use multifrontal::symbolic::seqstack::{apply_liu_order, AssemblyDiscipline};

fn main() {
    // A small shell-structure problem over 4 processors, like Figure 2.
    let a = multifrontal::sparse::gen::grid::shell3d(24, 18, 2);
    let perm = OrderingKind::Metis.compute(&a);
    let mut s = analyze(&a, &perm, &AmalgamationOptions::default());
    apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);

    let cfg = SolverConfig {
        type2_front_min: 60,
        type3_front_min: 150,
        ..SolverConfig::mumps_baseline(4)
    };
    let map = compute_mapping(&s.tree, &cfg);

    // ---- Figure 2: distribution of node types. ----
    let mut counts = [0usize; 4]; // subtree, type1, type2, type3
    for v in 0..s.tree.len() {
        match map.kind[v] {
            NodeKind::Subtree(_) => counts[0] += 1,
            NodeKind::Type1 => counts[1] += 1,
            NodeKind::Type2 => counts[2] += 1,
            NodeKind::Type3 => counts[3] += 1,
        }
    }
    println!("tree: {} fronts over {} processors", s.tree.len(), cfg.nprocs);
    println!(
        "  subtree nodes: {}   upper type-1: {}   type-2: {}   type-3 root: {}",
        counts[0], counts[1], counts[2], counts[3]
    );
    println!("  {} leaf subtrees:", map.subtree_roots.len());
    for (i, &r) in map.subtree_roots.iter().enumerate() {
        println!(
            "   subtree {i:>2} -> P{} (root front {:>4}, peak {:>7} entries)",
            map.subtree_proc[i], s.tree.nodes[r].nfront, map.subtree_peak[i]
        );
    }
    let flops_by_kind = |want: fn(&NodeKind) -> bool| -> u64 {
        (0..s.tree.len()).filter(|&v| want(&map.kind[v])).map(|v| s.tree.flops(v)).sum()
    };
    let total = s.tree.total_flops();
    println!(
        "  flops share: subtrees {:.0}%, type-2 {:.0}%, type-3 {:.0}%",
        100.0 * flops_by_kind(|k| matches!(k, NodeKind::Subtree(_))) as f64 / total as f64,
        100.0 * flops_by_kind(|k| matches!(k, NodeKind::Type2)) as f64 / total as f64,
        100.0 * flops_by_kind(|k| matches!(k, NodeKind::Type3)) as f64 / total as f64,
    );

    // ---- Figure 7: the initial pools of ready tasks. ----
    println!("\ninitial pools (L = leaf task; popped from the right):");
    for p in 0..cfg.nprocs {
        let pool = &map.initial_pool[p];
        let label: Vec<String> = pool
            .iter()
            .map(|&v| format!("L{}", map.subtree_of[v].map(|s| s.to_string()).unwrap_or_default()))
            .collect();
        println!("  P{p}: [{}] ({} tasks)", label.join(" "), pool.len());
    }

    // ---- And run it: the simulated parallel factorization. ----
    let r = multifrontal::core::parsim::run(&s.tree, &map, &cfg).unwrap();
    println!("\nsimulated factorization: makespan {} ticks, {} messages", r.makespan, r.messages);
    for (p, &peak) in r.peaks.iter().enumerate() {
        println!("  P{p}: stack peak {:>8} entries", peak);
    }
}
