//! Property-based validation of the symbolic layer: tree invariants,
//! column counts against a naive oracle, stack analysis monotonicity,
//! permutation algebra.

use multifrontal::prelude::*;
use multifrontal::symbolic::seqstack::{apply_liu_order, sequential_peak, AssemblyDiscipline};
use proptest::prelude::*;

/// Random connected-ish symmetric pattern.
fn pattern(n: usize, edges: &[(usize, usize)]) -> CscMatrix {
    let mut coo = CooMatrix::new_symmetric(n);
    for i in 0..n {
        coo.push(i, i, 4.0).unwrap();
        if i > 0 {
            coo.push(i, i - 1, -1.0).unwrap(); // keep it connected
        }
    }
    let mut seen = std::collections::HashSet::new();
    for &(a, b) in edges {
        let (i, j) = (a % n, b % n);
        if i != j && seen.insert((i.min(j), i.max(j))) && (i as i64 - j as i64).abs() > 1 {
            coo.push(i.max(j), i.min(j), -0.5).unwrap();
        }
    }
    coo.to_csc()
}

fn naive_col_counts(a: &CscMatrix) -> Vec<usize> {
    let n = a.ncols();
    let mut adj: Vec<std::collections::BTreeSet<usize>> =
        (0..n).map(|j| a.rows_in_col(j).iter().copied().filter(|&i| i > j).collect()).collect();
    for j in 0..n {
        let nbrs: Vec<usize> = adj[j].iter().copied().collect();
        for (x, &p) in nbrs.iter().enumerate() {
            for &q in &nbrs[x + 1..] {
                adj[p].insert(q);
            }
        }
    }
    (0..n).map(|j| adj[j].len() + 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn analysis_invariants_hold(
        n in 3usize..80,
        edges in prop::collection::vec((0usize..80, 0usize..80), 0..200),
        always_merge in 0usize..10,
        ratio in 0.0f64..0.5,
    ) {
        let a = pattern(n, &edges);
        let opts = AmalgamationOptions { always_merge_npiv: always_merge, max_fill_ratio: ratio, ..AmalgamationOptions::default() };
        let s = analyze(&a, &Permutation::identity(n), &opts);
        prop_assert!(s.tree.validate().is_ok(), "{:?}", s.tree.validate());
        prop_assert_eq!(s.tree.n, n);
        prop_assert_eq!(s.tree.nodes.iter().map(|nd| nd.npiv).sum::<usize>(), n);
        // Factor entries are at least the lower-triangle nonzeros of A.
        let tri_nnz = (a.nnz() + n) / 2;
        prop_assert!(s.tree.total_factor_entries() >= tri_nnz as u64);
    }

    #[test]
    fn col_counts_match_naive_oracle(
        n in 3usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..80),
    ) {
        let a = pattern(n, &edges);
        // Counts are computed on the postordered pattern inside analyze();
        // reproduce that pipeline explicitly.
        let parent = multifrontal::symbolic::etree::etree(&a);
        let post = multifrontal::symbolic::etree::postorder(&parent);
        let p2 = Permutation::from_elimination_order(post).unwrap();
        let ap = a.permute_symmetric(&p2);
        let parent2 = multifrontal::symbolic::etree::etree(&ap);
        let counts = multifrontal::symbolic::colcount::col_counts(&ap, &parent2);
        prop_assert_eq!(counts, naive_col_counts(&ap));
    }

    #[test]
    fn liu_order_never_hurts(
        n in 3usize..80,
        edges in prop::collection::vec((0usize..80, 0usize..80), 0..200),
    ) {
        let a = pattern(n, &edges);
        let mut s = analyze(&a, &Permutation::identity(n), &AmalgamationOptions::default());
        let before = sequential_peak(&s.tree, AssemblyDiscipline::FrontThenFree);
        let after = apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
        prop_assert!(after <= before, "Liu order increased the peak: {after} > {before}");
        prop_assert!(s.tree.validate().is_ok());
    }

    #[test]
    fn splitting_invariants_hold(
        n in 3usize..80,
        edges in prop::collection::vec((0usize..80, 0usize..80), 0..200),
        threshold in 1u64..2_000,
    ) {
        let a = pattern(n, &edges);
        let mut s = analyze(&a, &Permutation::identity(n), &AmalgamationOptions::default());
        let factors_before = s.tree.total_factor_entries();
        multifrontal::symbolic::split::split_large_masters(&mut s.tree, threshold);
        prop_assert!(s.tree.validate().is_ok(), "{:?}", s.tree.validate());
        // Factor entries are invariant under chain splitting.
        prop_assert_eq!(s.tree.total_factor_entries(), factors_before);
        // Every master respects the threshold (single-pivot nodes are the
        // unavoidable exception).
        for v in 0..s.tree.len() {
            prop_assert!(
                s.tree.master_entries(v) <= threshold || s.tree.nodes[v].npiv == 1,
                "node {v}: master {} > {threshold}",
                s.tree.master_entries(v)
            );
        }
    }

    #[test]
    fn permutation_algebra(
        order in prop::collection::vec(0usize..1000, 1..50).prop_map(|v| {
            // Build a permutation from arbitrary numbers by arg-sorting.
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by_key(|&i| (v[i], i));
            idx
        })
    ) {
        let p = Permutation::from_elimination_order(order).unwrap();
        let inv = p.inverse();
        prop_assert_eq!(p.then(&inv), Permutation::identity(p.len()));
        prop_assert_eq!(inv.then(&p), Permutation::identity(p.len()));
        for i in 0..p.len() {
            prop_assert_eq!(p.new_of(p.old_of(i)), i);
        }
    }

    #[test]
    fn front_structures_are_consistent(
        n in 3usize..50,
        edges in prop::collection::vec((0usize..50, 0usize..50), 0..100),
    ) {
        let a = pattern(n, &edges);
        let s = analyze(&a, &Permutation::identity(n), &AmalgamationOptions::default());
        let fs = multifrontal::symbolic::frontstruct::front_structures(&s);
        for v in 0..s.tree.len() {
            let nd = &s.tree.nodes[v];
            prop_assert_eq!(fs.rows[v].len(), nd.nfront);
            // Sorted, pivots first.
            prop_assert!(fs.rows[v].windows(2).all(|w| w[0] < w[1]));
            for (k, &r) in fs.rows[v][..nd.npiv].iter().enumerate() {
                prop_assert_eq!(r, nd.first_col + k);
            }
        }
    }
}
