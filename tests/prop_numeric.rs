//! Property-based validation of the numeric pipeline: random sparse,
//! diagonally dominant systems must factorize and solve accurately for
//! every combination of symmetry, ordering and amalgamation setting.

use multifrontal::prelude::*;
use proptest::prelude::*;

/// Random diagonally dominant matrix: a random sparse pattern whose
/// diagonal exceeds the absolute row/column sums, so the
/// restricted-pivoting kernels are numerically safe by construction.
fn dd_matrix(n: usize, extra_edges: &[(usize, usize)], sym: bool, seed: u64) -> CscMatrix {
    let val = |i: usize, j: usize| -> f64 {
        // Deterministic pseudo-random value in [-1, 1).
        let h = (i as u64)
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add((j as u64).wrapping_mul(0xc2b2ae3d27d4eb4f))
            .wrapping_add(seed);
        ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    let mut coo = if sym { CooMatrix::new_symmetric(n) } else { CooMatrix::new(n, n) };
    let mut offsum = vec![0.0f64; n];
    let mut seen = std::collections::HashSet::new();
    for &(a, b) in extra_edges {
        let (i, j) = (a % n, b % n);
        if i == j || !seen.insert((i.min(j), i.max(j))) {
            continue;
        }
        let v = val(i, j);
        if sym {
            coo.push(i.max(j), i.min(j), v).unwrap();
            offsum[i] += v.abs();
            offsum[j] += v.abs();
        } else {
            coo.push(i, j, v).unwrap();
            let w = val(j, i);
            coo.push(j, i, w).unwrap();
            offsum[i] += v.abs() + w.abs();
            offsum[j] += v.abs() + w.abs();
        }
    }
    for (i, &off) in offsum.iter().enumerate() {
        coo.push(i, i, off + 1.0).unwrap();
    }
    coo.to_csc()
}

fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 48271) % 541) as f64 / 27.0 - 10.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn random_symmetric_systems_solve(
        n in 5usize..60,
        edges in prop::collection::vec((0usize..60, 0usize..60), 1..150),
        seed in any::<u64>(),
        merge in 0usize..8,
    ) {
        let a = dd_matrix(n, &edges, true, seed);
        let opts = AmalgamationOptions { always_merge_npiv: merge, max_fill_ratio: 0.1, ..AmalgamationOptions::default() };
        for kind in [OrderingKind::Amd, OrderingKind::Metis] {
            let perm = kind.compute(&a);
            let f = Factorization::new(&a, &perm, &opts).unwrap();
            let b = rhs(n);
            let x = f.solve(&b);
            let r = Factorization::residual_inf(&a, &x, &b);
            prop_assert!(r < 1e-9, "{}: residual {r:e}", kind.name());
        }
    }

    #[test]
    fn random_unsymmetric_systems_solve(
        n in 5usize..60,
        edges in prop::collection::vec((0usize..60, 0usize..60), 1..150),
        seed in any::<u64>(),
    ) {
        let a = dd_matrix(n, &edges, false, seed);
        let perm = OrderingKind::Amf.compute(&a);
        let f = Factorization::new(&a, &perm, &AmalgamationOptions::default()).unwrap();
        let b = rhs(n);
        let x = f.solve(&b);
        let r = Factorization::residual_inf(&a, &x, &b);
        prop_assert!(r < 1e-9, "residual {r:e}");
    }

    #[test]
    fn split_threshold_never_changes_the_solution(
        n in 10usize..50,
        edges in prop::collection::vec((0usize..50, 0usize..50), 20..120),
        seed in any::<u64>(),
        threshold in 4u64..400,
    ) {
        let a = dd_matrix(n, &edges, true, seed);
        let perm = OrderingKind::Amd.compute(&a);
        let b = rhs(n);
        let plain = Factorization::new(&a, &perm, &AmalgamationOptions::default()).unwrap();
        let x0 = plain.solve(&b);
        let mut s = analyze(&a, &perm, &AmalgamationOptions::default());
        multifrontal::symbolic::split::split_large_masters(&mut s.tree, threshold);
        prop_assert!(s.tree.validate().is_ok());
        let f = Factorization::from_symbolic(&a, &s).unwrap();
        let x1 = f.solve(&b);
        let d = x0.iter().zip(&x1).map(|(p, q)| (p - q).abs()).fold(0.0f64, f64::max);
        prop_assert!(d < 1e-9, "splitting changed the answer by {d:e}");
    }

    #[test]
    fn factor_entry_accounting_is_exact(
        n in 5usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 1..80),
        seed in any::<u64>(),
    ) {
        let a = dd_matrix(n, &edges, true, seed);
        let s = analyze(&a, &Permutation::identity(n), &AmalgamationOptions::default());
        let f = Factorization::from_symbolic(&a, &s).unwrap();
        prop_assert_eq!(f.stats.factor_entries, s.tree.total_factor_entries());
        // And the numeric stack peak equals the symbolic model.
        let model = multifrontal::symbolic::seqstack::sequential_peak(
            &s.tree,
            multifrontal::symbolic::seqstack::AssemblyDiscipline::FrontThenFree,
        );
        prop_assert_eq!(f.stats.active_peak, model);
    }
}
