//! Golden-value regression anchors.
//!
//! The simulator is deterministic, so a handful of end-to-end numbers can
//! be pinned exactly: any change to the ordering engines, the symbolic
//! analysis, the mapping or the scheduling protocols that alters
//! behaviour will trip these. Update the constants deliberately when a
//! change is intentional (and record why in the commit).

use multifrontal::core::driver::{prepare_tree, run_on_tree};
use multifrontal::prelude::*;

fn cfg(memory: bool) -> SolverConfig {
    let mut c = SolverConfig {
        nprocs: 8,
        type2_front_min: 100,
        type3_front_min: 300,
        min_rows_per_slave: 8,
        ..SolverConfig::mumps_baseline(8)
    };
    if memory {
        c.slave_selection = SlaveSelection::Memory;
        c.task_selection = TaskSelection::MemoryAware;
        c.use_subtree_info = true;
        c.use_prediction = true;
    }
    c
}

/// One pinned cell: a small TWOTONE analogue under AMD on 8 processors.
#[test]
fn pinned_twotone_amd_cell() {
    let a = PaperMatrix::TwoTone.instantiate_scaled(0.25);
    // The generator itself is pinned first: any change to it shows up
    // here rather than as a mysterious scheduling diff.
    assert_eq!((a.nrows(), a.nnz()), (2000, 19838));

    let input = ExperimentInput { matrix: &a, ordering: OrderingKind::Amd };
    let tree = prepare_tree(&input, &cfg(false));
    let stats = tree.stats();
    let base = run_on_tree(&tree, &cfg(false)).unwrap();
    let mem = run_on_tree(&tree, &cfg(true)).unwrap();

    // Re-derive the constants with:
    //   cargo test --test regression_snapshots -- --nocapture
    // after an intentional change.
    eprintln!(
        "pinned cell: nodes={} flops={} base_peak={} mem_peak={} base_makespan={}",
        stats.nodes, stats.flops, base.max_peak, mem.max_peak, base.makespan
    );
    assert_eq!(base.nodes_done, base.total_nodes);
    assert_eq!(mem.nodes_done, mem.total_nodes);
    // Bit-exact pins (deterministic simulator).
    assert_eq!(base.max_peak, run_on_tree(&tree, &cfg(false)).unwrap().max_peak);
    assert_eq!(mem.max_peak, run_on_tree(&tree, &cfg(true)).unwrap().max_peak);
    // Loose structural pins that survive refactors but catch regressions:
    assert!(stats.nodes > 100 && stats.nodes < 2000, "nodes={}", stats.nodes);
    assert!(base.max_peak > 10_000, "base peak collapsed: {}", base.max_peak);
    assert!(
        (mem.max_peak as f64) < 1.5 * base.max_peak as f64,
        "memory strategy should not blow up the peak: {} vs {}",
        mem.max_peak,
        base.max_peak
    );
}

/// The Figure 1 matrix is fully pinned end to end.
#[test]
fn pinned_figure1_analysis() {
    let mut coo = CooMatrix::new_symmetric(6);
    for i in 0..6 {
        coo.push(i, i, 4.0).unwrap();
    }
    for &(i, j) in
        &[(1, 0), (4, 0), (5, 0), (4, 1), (5, 1), (3, 2), (4, 2), (5, 2), (4, 3), (5, 3), (5, 4)]
    {
        coo.push(i, j, -1.0).unwrap();
    }
    let a = coo.to_csc();
    let s = analyze(&a, &Permutation::identity(6), &AmalgamationOptions::none());
    assert_eq!(s.tree.len(), 3);
    assert_eq!(s.tree.total_factor_entries(), 17); // tri(4)-tri(2) twice + tri(2)
                                                   // flops check: two leaves npiv=2,nfront=4 (k=0: r=3 -> 3+9=12; k=1:
                                                   // r=2 -> 2+4=6; sum 18 each) + root npiv=2,nfront=2 (k=0: r=1 -> 2;
                                                   // k=1: 0) = 18+18+2 = 38.
    assert_eq!(s.tree.total_flops(), 38);
}

/// Disconnected matrices (forest of assembly trees) run end to end.
#[test]
fn disconnected_matrix_pipeline() {
    // Two independent grids in one matrix.
    let g = multifrontal::sparse::gen::grid::grid2d(9, 9, Stencil::Star);
    let n = g.nrows();
    let mut coo = CooMatrix::new_symmetric(2 * n);
    for j in 0..n {
        for (&i, &v) in g.rows_in_col(j).iter().zip(g.vals_in_col(j)) {
            if i >= j {
                coo.push(i, j, v).unwrap();
                coo.push(n + i, n + j, v).unwrap();
            }
        }
    }
    let a = coo.to_csc();
    // Numeric: solves.
    let f = Factorization::new(&a, &OrderingKind::Amd.compute(&a), &AmalgamationOptions::default())
        .unwrap();
    let b: Vec<f64> = (0..2 * n).map(|i| (i % 5) as f64).collect();
    let x = f.solve(&b);
    assert!(Factorization::residual_inf(&a, &x, &b) < 1e-10);
    // Scheduling: both trees of the forest complete.
    let input = ExperimentInput { matrix: &a, ordering: OrderingKind::Metis };
    let r = run_experiment(&input, &cfg(true)).unwrap();
    assert_eq!(r.nodes_done, r.total_nodes);
}
