//! Cross-crate validation of the scheduling pipeline: the simulated
//! parallel factorization against its analytical anchors.

use multifrontal::core::driver::{prepare_tree, run_on_tree};
use multifrontal::core::mapping::compute_mapping;
use multifrontal::core::parsim;
use multifrontal::prelude::*;
use multifrontal::symbolic::seqstack::{sequential_peak, AssemblyDiscipline};

fn small_input(m: PaperMatrix, k: OrderingKind) -> CscMatrix {
    let _ = k;
    m.instantiate_scaled(0.08)
}

fn cfg(nprocs: usize) -> SolverConfig {
    SolverConfig {
        nprocs,
        type2_front_min: 100,
        type3_front_min: 300,
        ..SolverConfig::mumps_baseline(nprocs)
    }
}

#[test]
fn one_processor_equals_the_sequential_model() {
    // On one processor (no slaves, LIFO) the simulation IS the sequential
    // postorder factorization: peaks must match the closed-form analysis.
    for m in [PaperMatrix::BmwCra1, PaperMatrix::TwoTone] {
        for k in [OrderingKind::Metis, OrderingKind::Amf] {
            let a = small_input(m, k);
            let input = ExperimentInput { matrix: &a, ordering: k };
            let tree = prepare_tree(&input, &cfg(1));
            let r = run_on_tree(&tree, &cfg(1)).unwrap();
            let model = sequential_peak(&tree, AssemblyDiscipline::FrontThenFree);
            assert_eq!(r.max_peak, model, "{} / {}", m.name(), k.name());
        }
    }
}

#[test]
fn every_processor_count_completes() {
    let a = small_input(PaperMatrix::Pre2, OrderingKind::Metis);
    let input = ExperimentInput { matrix: &a, ordering: OrderingKind::Metis };
    for nprocs in [1, 2, 3, 5, 8, 16, 32] {
        let r = run_experiment(&input, &cfg(nprocs)).unwrap();
        assert_eq!(r.nodes_done, r.total_nodes, "nprocs = {nprocs}");
        assert!(r.max_peak > 0 && r.makespan > 0);
    }
}

#[test]
fn both_strategies_are_deterministic() {
    let a = small_input(PaperMatrix::Xenon2, OrderingKind::Amd);
    let input = ExperimentInput { matrix: &a, ordering: OrderingKind::Amd };
    for base in [true, false] {
        let c = if base {
            cfg(8)
        } else {
            SolverConfig {
                slave_selection: SlaveSelection::Memory,
                task_selection: TaskSelection::MemoryAware,
                use_subtree_info: true,
                use_prediction: true,
                ..cfg(8)
            }
        };
        let r1 = run_experiment(&input, &c).unwrap();
        let r2 = run_experiment(&input, &c).unwrap();
        assert_eq!(r1.peaks, r2.peaks);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.messages, r2.messages);
    }
}

#[test]
fn more_processors_never_lose_fronts_and_spread_memory() {
    let a = small_input(PaperMatrix::Ultrasound3, OrderingKind::Metis);
    let input = ExperimentInput { matrix: &a, ordering: OrderingKind::Metis };
    let r1 = run_experiment(&input, &cfg(1)).unwrap();
    let r8 = run_experiment(&input, &cfg(8)).unwrap();
    // Parallel peak per processor is below the sequential peak (memory is
    // the reason to parallelize at all), though the SUM across processors
    // exceeds it (the paper's memory-scalability problem).
    assert!(r8.max_peak < r1.max_peak);
    assert!(r8.peaks.iter().sum::<u64>() > r1.max_peak);
}

#[test]
fn splitting_caps_every_master_and_keeps_pivots() {
    let a = small_input(PaperMatrix::Pre2, OrderingKind::Amf);
    let input = ExperimentInput { matrix: &a, ordering: OrderingKind::Amf };
    let plain = prepare_tree(&input, &cfg(4));
    let threshold = 20_000;
    let split_cfg = SolverConfig { split_threshold: Some(threshold), ..cfg(4) };
    let split = prepare_tree(&input, &split_cfg);
    assert!(split.validate().is_ok());
    assert_eq!(
        plain.nodes.iter().map(|n| n.npiv).sum::<usize>(),
        split.nodes.iter().map(|n| n.npiv).sum::<usize>()
    );
    for v in 0..split.len() {
        assert!(split.master_entries(v) <= threshold, "node {v}");
    }
    // And the split tree still runs.
    let r = run_on_tree(&split, &split_cfg).unwrap();
    assert_eq!(r.nodes_done, r.total_nodes);
}

#[test]
fn memory_strategy_beats_baseline_on_its_home_ground() {
    // TWOTONE-like + AMD is one of the paper's clear wins (Table 2:
    // +10.9%); the reproduction must show a gain on this cell too.
    let a = PaperMatrix::TwoTone.instantiate();
    let tree = {
        let input = ExperimentInput { matrix: &a, ordering: OrderingKind::Amd };
        prepare_tree(&input, &paper_cfg(false))
    };
    let map = compute_mapping(&tree, &paper_cfg(false));
    let base = parsim::run(&tree, &map, &paper_cfg(false)).unwrap();
    let mem = parsim::run(&tree, &map, &paper_cfg(true)).unwrap();
    assert!(
        mem.max_peak < base.max_peak,
        "memory strategy must win on TWOTONE/AMD: {} !< {}",
        mem.max_peak,
        base.max_peak
    );
}

fn paper_cfg(memory: bool) -> SolverConfig {
    let mut c = SolverConfig {
        nprocs: 32,
        type2_front_min: 150,
        type3_front_min: 500,
        min_rows_per_slave: 12,
        ..SolverConfig::mumps_baseline(32)
    };
    if memory {
        c.slave_selection = SlaveSelection::Memory;
        c.task_selection = TaskSelection::MemoryAware;
        c.use_subtree_info = true;
        c.use_prediction = true;
    }
    c
}

#[test]
fn traces_reconstruct_the_peaks() {
    let a = small_input(PaperMatrix::MsDoor, OrderingKind::Pord);
    let input = ExperimentInput { matrix: &a, ordering: OrderingKind::Pord };
    let c = SolverConfig { record_traces: true, ..cfg(4) };
    let r = run_experiment(&input, &c).unwrap();
    let traces = r.traces.expect("traces requested");
    assert_eq!(traces.len(), 4);
    for (p, t) in traces.iter().enumerate() {
        assert!(t.max() <= r.peaks[p], "trace max cannot exceed the recorded peak (P{p})");
        assert!(!t.samples().is_empty(), "P{p} must have touched memory");
    }
}

#[test]
fn workload_views_stay_consistent() {
    // The makespan with 8 processors must be well below the sequential
    // one (the workload scheduler actually balances), and messages flow.
    let a = small_input(PaperMatrix::BmwCra1, OrderingKind::Metis);
    let input = ExperimentInput { matrix: &a, ordering: OrderingKind::Metis };
    let r1 = run_experiment(&input, &cfg(1)).unwrap();
    let r8 = run_experiment(&input, &cfg(8)).unwrap();
    assert!(
        (r8.makespan as f64) < 0.8 * r1.makespan as f64,
        "8 procs should be much faster: {} vs {}",
        r8.makespan,
        r1.makespan
    );
    assert!(r8.messages > 0);
}
