//! Full-scale stress pass, excluded from the default run (`--ignored`).
//!
//! Runs the complete pipeline — generation, all four orderings, symbolic
//! analysis, numeric factorize+solve, and the 32-processor scheduling
//! simulation under both strategies — on every paper matrix at the full
//! reproduction scale. This is the "everything at once" soak that the
//! fast suite samples; run it with
//!
//! ```bash
//! cargo test --release --test stress_full_scale -- --ignored --nocapture
//! ```

use multifrontal::prelude::*;

#[test]
#[ignore = "full-scale soak (~minutes); run explicitly with --ignored"]
fn full_scale_everything() {
    for m in ALL_PAPER_MATRICES {
        let a = m.instantiate();
        // Numeric correctness at a size where fronts reach the blocked
        // kernel path.
        let perm = OrderingKind::Metis.compute(&a);
        let f = Factorization::new(&a, &perm, &AmalgamationOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", m.name()));
        let b: Vec<f64> = (0..a.nrows()).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let x = f.solve(&b);
        let r = Factorization::residual_inf(&a, &x, &b);
        assert!(r < 1e-8, "{}: residual {r:e}", m.name());
        eprintln!(
            "{:12} n={:6} residual={:.1e} seq stack peak={:>9}",
            m.name(),
            a.nrows(),
            r,
            f.stats.active_peak
        );

        // Scheduling at paper scale, all orderings, both strategies.
        for k in ALL_ORDERINGS {
            let input = ExperimentInput { matrix: &a, ordering: k };
            for memory in [false, true] {
                let mut cfg = SolverConfig {
                    type2_front_min: 150,
                    type3_front_min: 500,
                    min_rows_per_slave: 12,
                    ..SolverConfig::mumps_baseline(32)
                };
                if memory {
                    cfg.slave_selection = SlaveSelection::Memory;
                    cfg.task_selection = TaskSelection::MemoryAware;
                    cfg.use_subtree_info = true;
                    cfg.use_prediction = true;
                }
                let res = run_experiment(&input, &cfg).unwrap();
                assert_eq!(
                    res.nodes_done,
                    res.total_nodes,
                    "{} / {} (memory={memory})",
                    m.name(),
                    k.name()
                );
            }
        }
    }
}
