//! Property-based validation of the scheduling layer: blocking
//! partitions, Algorithm 1 selections, pool behaviour, and the simulated
//! factorization under arbitrary strategy combinations.

use multifrontal::core::blocking::{
    blocks_from_entry_budgets, equal_entry_blocks, slave_block_entries, slave_surface,
};
use multifrontal::core::driver::{prepare_tree, run_on_tree};
use multifrontal::core::pool::TaskPool;
use multifrontal::core::slavesel::{select_memory, select_workload, SelectionInput};
use multifrontal::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn blocking_partitions_exactly(
        nfront in 2usize..300,
        npiv_frac in 0.05f64..0.95,
        k in 1usize..12,
        symmetric in any::<bool>(),
    ) {
        let npiv = ((nfront as f64 * npiv_frac) as usize).clamp(1, nfront - 1);
        let rows = nfront - npiv;
        let k = k.min(rows);
        let sym = if symmetric { Symmetry::Symmetric } else { Symmetry::General };
        let blocks = equal_entry_blocks(sym, nfront, npiv, k);
        prop_assert_eq!(blocks.len(), k);
        let mut off = 0usize;
        let mut total = 0u64;
        for &(o, r) in &blocks {
            prop_assert_eq!(o, off, "blocks must be contiguous");
            prop_assert!(r >= 1);
            total += slave_block_entries(sym, nfront, npiv, o, r);
            off += r;
        }
        prop_assert_eq!(off, rows);
        prop_assert_eq!(total, slave_surface(sym, nfront, npiv));
    }

    #[test]
    fn budget_blocking_partitions_exactly(
        nfront in 2usize..300,
        npiv_frac in 0.05f64..0.95,
        budgets in prop::collection::vec(0u64..100_000, 1..10),
        symmetric in any::<bool>(),
    ) {
        let npiv = ((nfront as f64 * npiv_frac) as usize).clamp(1, nfront - 1);
        let rows = nfront - npiv;
        let k = budgets.len().min(rows);
        let sym = if symmetric { Symmetry::Symmetric } else { Symmetry::General };
        let blocks = blocks_from_entry_budgets(sym, nfront, npiv, &budgets[..k]);
        let mut off = 0usize;
        for &(o, r) in &blocks {
            prop_assert_eq!(o, off);
            prop_assert!(r >= 1);
            off += r;
        }
        prop_assert_eq!(off, rows);
    }

    #[test]
    fn algorithm1_selection_is_sound(
        metrics in prop::collection::vec(0u64..1_000_000, 2..16),
        nfront in 20usize..400,
        npiv_frac in 0.1f64..0.9,
        min_rows in 1usize..32,
    ) {
        let npiv = ((nfront as f64 * npiv_frac) as usize).clamp(1, nfront - 1);
        let candidates: Vec<usize> = (1..metrics.len()).collect();
        let input = SelectionInput {
            candidates: &candidates,
            metric: &metrics,
            fill_metric: None,
            master_metric: metrics[0],
            nfront,
            npiv,
            sym: Symmetry::General,
            min_rows_per_slave: min_rows,
        };
        for sel in [select_memory(&input), select_workload(&input)] {
            // Selected processors are distinct candidates.
            let mut procs: Vec<usize> = sel.iter().map(|a| a.proc).collect();
            procs.sort_unstable();
            procs.dedup();
            prop_assert_eq!(procs.len(), sel.len());
            prop_assert!(sel.iter().all(|a| candidates.contains(&a.proc)));
            // Rows cover the slave part exactly; blocks contiguous.
            let mut off = 0;
            for a in &sel {
                prop_assert_eq!(a.offset, off);
                prop_assert!(a.nrows >= 1);
                off += a.nrows;
            }
            if !sel.is_empty() {
                prop_assert_eq!(off, nfront - npiv);
            }
        }
        // Algorithm 1 ranks by metric: the selection is memory-sorted.
        let sel = select_memory(&input);
        for w in sel.windows(2) {
            prop_assert!(metrics[w[0].proc] <= metrics[w[1].proc]);
        }
    }

    #[test]
    fn pool_algorithms_return_every_task_exactly_once(
        tasks in prop::collection::vec(0usize..1_000, 0..30),
        subtree_mask in any::<u32>(),
        current in 0u64..5_000,
        peak in 0u64..5_000,
    ) {
        let mut dedup = tasks.clone();
        dedup.sort_unstable();
        dedup.dedup();
        let mut pool = TaskPool::new(dedup.clone());
        let in_subtree = |t: usize| (subtree_mask >> (t % 32)) & 1 == 1;
        let cost = |t: usize| t as u64 * 10;
        let mut popped = Vec::new();
        while let Some(t) = pool.pick_memory_aware(in_subtree, cost, current, peak, |_| true) {
            popped.push(t);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, dedup);
    }
}

proptest! {
    // Heavier cases: fewer iterations.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn simulation_completes_under_any_strategy_mix(
        nprocs in 1usize..12,
        slave_sel in 0usize..3,
        task_sel in 0usize..3,
        subtree_info in any::<bool>(),
        prediction in any::<bool>(),
        split in any::<bool>(),
        subtree_peaks in any::<bool>(),
        subtree_order in 0usize..3,
        jitter in any::<bool>(),
        nx in 10usize..18,
    ) {
        use multifrontal::core::config::SubtreeOrder;
        let a = multifrontal::sparse::gen::grid::grid2d(nx, nx, Stencil::Star);
        let cfg = SolverConfig {
            nprocs,
            type2_front_min: 20,
            type3_front_min: 60,
            min_rows_per_slave: 4,
            slave_selection: [SlaveSelection::Workload, SlaveSelection::Memory, SlaveSelection::Hybrid][slave_sel],
            task_selection: [TaskSelection::Lifo, TaskSelection::MemoryAware, TaskSelection::MemoryAwareGlobal][task_sel],
            use_subtree_info: subtree_info,
            use_prediction: prediction,
            split_threshold: split.then_some(2_000),
            subtree_peak_factor: subtree_peaks.then_some(1.0),
            subtree_order: [SubtreeOrder::AsMapped, SubtreeOrder::PeakDescending, SubtreeOrder::PeakAscending][subtree_order],
            jitter: jitter.then_some((42, 0.1)),
            ..SolverConfig::mumps_baseline(nprocs)
        };
        let input = ExperimentInput { matrix: &a, ordering: OrderingKind::Metis };
        let tree = prepare_tree(&input, &cfg);
        let r = run_on_tree(&tree, &cfg).unwrap();
        prop_assert_eq!(r.nodes_done, r.total_nodes);
        prop_assert!(r.max_peak > 0);
        // Peak is bounded below by the largest single local allocation and
        // above by the whole tree's front weight.
        let upper: u64 = (0..tree.len()).map(|v| tree.front_entries(v)).sum();
        prop_assert!(r.max_peak <= upper);
    }
}
