//! End-to-end numeric validation: every paper-matrix family × every
//! ordering must factorize and solve accurately, sequentially and with
//! the rayon tree-parallel engine, with and without static splitting.

use multifrontal::frontal::parallel::factorize_parallel;
use multifrontal::prelude::*;

fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 2654435761) % 2000) as f64 / 100.0 - 10.0).collect()
}

fn check(a: &CscMatrix, kind: OrderingKind) -> f64 {
    let perm = kind.compute(a);
    let f = Factorization::new(a, &perm, &AmalgamationOptions::default())
        .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
    let b = rhs(a.nrows());
    let x = f.solve(&b);
    Factorization::residual_inf(a, &x, &b)
}

#[test]
fn all_matrices_all_orderings_solve() {
    for m in ALL_PAPER_MATRICES {
        let a = m.instantiate_scaled(0.06);
        for kind in ALL_ORDERINGS {
            let r = check(&a, kind);
            assert!(r < 1e-8, "{} / {}: residual {r:e}", m.name(), kind.name());
        }
    }
}

#[test]
fn parallel_engine_matches_sequential() {
    let a = PaperMatrix::Xenon2.instantiate_scaled(0.1);
    let perm = OrderingKind::Metis.compute(&a);
    let s = analyze(&a, &perm, &AmalgamationOptions::default());
    let fs = Factorization::from_symbolic(&a, &s).unwrap();
    let fp = factorize_parallel(&a, &s).unwrap();
    let b = rhs(a.nrows());
    let (xs, xp) = (fs.solve(&b), fp.solve(&b));
    let max_diff = xs.iter().zip(&xp).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    assert!(max_diff < 1e-9, "sequential vs parallel diverged by {max_diff:e}");
}

#[test]
fn split_trees_solve_correctly() {
    let a = PaperMatrix::Ultrasound3.instantiate_scaled(0.08);
    let perm = OrderingKind::Amd.compute(&a);
    let mut s = analyze(&a, &perm, &AmalgamationOptions::default());
    let before = s.tree.len();
    multifrontal::symbolic::split::split_large_masters(&mut s.tree, 10_000);
    assert!(s.tree.len() > before, "splitting must actually trigger");
    let f = Factorization::from_symbolic(&a, &s).unwrap();
    let b = rhs(a.nrows());
    let x = f.solve(&b);
    let r = Factorization::residual_inf(&a, &x, &b);
    assert!(r < 1e-8, "split-tree residual {r:e}");
}

#[test]
fn numeric_stack_peak_matches_symbolic_model_on_paper_matrices() {
    for m in [PaperMatrix::MsDoor, PaperMatrix::TwoTone] {
        let a = m.instantiate_scaled(0.05);
        let perm = OrderingKind::Amf.compute(&a);
        let s = analyze(&a, &perm, &AmalgamationOptions::default());
        let f = Factorization::from_symbolic(&a, &s).unwrap();
        let model = multifrontal::symbolic::seqstack::sequential_peak(
            &s.tree,
            multifrontal::symbolic::seqstack::AssemblyDiscipline::FrontThenFree,
        );
        assert_eq!(f.stats.active_peak, model, "{}", m.name());
    }
}

#[test]
fn amalgamation_options_do_not_change_the_answer() {
    let a = PaperMatrix::Ship003.instantiate_scaled(0.05);
    let perm = OrderingKind::Pord.compute(&a);
    let b = rhs(a.nrows());
    let mut answers = Vec::new();
    for opts in [
        AmalgamationOptions::none(),
        AmalgamationOptions::default(),
        AmalgamationOptions {
            always_merge_npiv: 32,
            max_fill_ratio: 0.5,
            ..AmalgamationOptions::default()
        },
    ] {
        let f = Factorization::new(&a, &perm, &opts).unwrap();
        answers.push(f.solve(&b));
    }
    for x in &answers[1..] {
        let d = answers[0].iter().zip(x).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(d < 1e-8, "amalgamation changed the solution by {d:e}");
    }
}

#[test]
fn identity_ordering_also_works() {
    let a = multifrontal::sparse::gen::grid::grid2d(15, 17, Stencil::Box);
    let f =
        Factorization::new(&a, &Permutation::identity(a.nrows()), &AmalgamationOptions::default())
            .unwrap();
    let b = rhs(a.nrows());
    let x = f.solve(&b);
    assert!(Factorization::residual_inf(&a, &x, &b) < 1e-9);
}
