//! Memory-based scheduling for a parallel multifrontal solver — a full
//! Rust reproduction of Guermouche & L'Excellent (LIP RR 2004-17 /
//! IPPS 2004), including every substrate the paper depends on.
//!
//! # What this workspace contains
//!
//! * [`sparse`] — sparse matrices, synthetic analogues of the paper's
//!   eight test problems, Matrix Market I/O;
//! * [`order`] — the four fill-reducing orderings of the experimental
//!   sweep (AMD, AMF, METIS-like nested dissection, PORD-like hybrid);
//! * [`symbolic`] — elimination tree, supernode amalgamation, assembly
//!   tree, static chain-splitting, sequential stack analysis;
//! * [`frontal`] — dense frontal kernels and a *real* numeric
//!   multifrontal factorize/solve (sequential and rayon tree-parallel);
//! * [`sim`] — a deterministic discrete-event distributed-memory machine;
//! * [`core`] — the paper's contribution: MUMPS-style static mapping plus
//!   the dynamic memory-based scheduling strategies (Algorithm 1 slave
//!   selection, Section 5.1 information mechanisms, Algorithm 2 task
//!   selection) evaluated against the workload baseline.
//!
//! # Quick start
//!
//! Solve a linear system with the numeric multifrontal engine:
//!
//! ```
//! use multifrontal::prelude::*;
//!
//! let a = multifrontal::sparse::gen::grid::grid2d(10, 10, Stencil::Star);
//! let perm = OrderingKind::Amd.compute(&a);
//! let f = Factorization::new(&a, &perm, &AmalgamationOptions::default()).unwrap();
//! let b = vec![1.0; a.nrows()];
//! let x = f.solve(&b);
//! assert!(Factorization::residual_inf(&a, &x, &b) < 1e-10);
//! ```
//!
//! Reproduce one cell of the paper's Table 2 (32 simulated processors):
//!
//! ```
//! use multifrontal::prelude::*;
//!
//! let a = PaperMatrix::TwoTone.instantiate_scaled(0.2);
//! let input = ExperimentInput { matrix: &a, ordering: OrderingKind::Amd };
//! let baseline = run_experiment(&input, &SolverConfig::mumps_baseline(8)).unwrap();
//! let memory = run_experiment(&input, &SolverConfig::memory_based(8)).unwrap();
//! println!(
//!     "max stack peak: {} -> {} ({:+.1}%)",
//!     baseline.max_peak,
//!     memory.max_peak,
//!     multifrontal::core::driver::percent_decrease(baseline.max_peak, memory.max_peak),
//! );
//! ```

#![warn(missing_docs)]
pub mod solver;

pub use mf_core as core;
pub use mf_frontal as frontal;
pub use mf_order as order;
pub use mf_sim as sim;
pub use mf_sparse as sparse;
pub use mf_symbolic as symbolic;
pub use solver::{Solver, SolverBuilder};

/// The commonly used types, one `use` away.
pub mod prelude {
    pub use mf_core::config::{SlaveSelection, SolverConfig, TaskSelection};
    pub use mf_core::driver::{run_experiment, ExperimentInput, RunResult};
    pub use mf_core::mapping::{compute_mapping, NodeKind, StaticMapping};
    pub use mf_frontal::numeric::Factorization;
    pub use mf_order::{OrderingKind, ALL_ORDERINGS};
    pub use mf_sparse::gen::grid::Stencil;
    pub use mf_sparse::gen::paper::{PaperMatrix, ALL_PAPER_MATRICES};
    pub use mf_sparse::{CooMatrix, CscMatrix, Permutation, Symmetry};
    pub use mf_symbolic::{analyze, AmalgamationOptions, AssemblyTree, SymbolicAnalysis};
}
