//! High-level one-stop solver API.
//!
//! The crates underneath expose every phase separately (ordering,
//! analysis, factorization, scheduling simulation); this module wires the
//! common path into a builder so downstream users get a direct solver in
//! three lines:
//!
//! ```
//! use multifrontal::solver::Solver;
//! use multifrontal::prelude::*;
//!
//! let a = multifrontal::sparse::gen::grid::grid2d(20, 20, Stencil::Star);
//! let solver = Solver::builder().ordering(OrderingKind::Amd).build(&a).unwrap();
//! let b = vec![1.0; a.nrows()];
//! let x = solver.solve(&b);
//! assert!(Solver::residual(&a, &x, &b) < 1e-10);
//! ```

use mf_frontal::numeric::{FactorError, Factorization, NumericOptions, NumericStats};
use mf_frontal::parallel::factorize_parallel_with;
use mf_order::OrderingKind;
use mf_sparse::{CscMatrix, Permutation};
use mf_symbolic::{AmalgamationOptions, SymbolicAnalysis};

/// Builder for [`Solver`].
#[derive(Debug, Clone)]
pub struct SolverBuilder {
    ordering: OrderingKind,
    amalgamation: AmalgamationOptions,
    parallel: bool,
    cores_per_front: usize,
    malleable_pool: Option<usize>,
    refine_steps: usize,
    refine_tol: f64,
}

impl Default for SolverBuilder {
    fn default() -> Self {
        SolverBuilder {
            ordering: OrderingKind::Amd,
            amalgamation: AmalgamationOptions::default(),
            parallel: false,
            cores_per_front: 1,
            malleable_pool: None,
            refine_steps: 0,
            refine_tol: 1e-12,
        }
    }
}

impl SolverBuilder {
    /// Fill-reducing ordering (default: AMD).
    pub fn ordering(mut self, kind: OrderingKind) -> Self {
        self.ordering = kind;
        self
    }

    /// Supernode amalgamation tuning.
    pub fn amalgamation(mut self, opts: AmalgamationOptions) -> Self {
        self.amalgamation = opts;
        self
    }

    /// Use the rayon tree-parallel numeric engine.
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// Thread budget for the trailing update inside each front (works
    /// with both engines; the factor bytes do not depend on it). `1`
    /// (the default) keeps every front sequential.
    pub fn cores_per_front(mut self, n: usize) -> Self {
        self.cores_per_front = n.max(1);
        self
    }

    /// Make the within-front thread budget malleable: each front
    /// entering its kernel is granted `pool / busy` threads (capped by
    /// [`cores_per_front`](Self::cores_per_front)), where `busy` counts
    /// fronts concurrently factorizing. With tree parallelism on, leaf
    /// storms run one thread per front while the root chain collects
    /// the whole pool. Factor bytes are independent of the grants.
    pub fn malleable(mut self, pool: usize) -> Self {
        self.malleable_pool = Some(pool.max(1));
        self
    }

    /// Apply up to `steps` iterative-refinement corrections per solve,
    /// stopping at relative residual `tol`.
    pub fn refinement(mut self, steps: usize, tol: f64) -> Self {
        self.refine_steps = steps;
        self.refine_tol = tol;
        self
    }

    /// Runs ordering, symbolic analysis and numeric factorization.
    pub fn build(self, a: &CscMatrix) -> Result<Solver, FactorError> {
        let perm = self.ordering.compute(a);
        let analysis = mf_symbolic::analyze(a, &perm, &self.amalgamation);
        let opts = NumericOptions {
            cores_per_front: self.cores_per_front,
            malleable_pool: self.malleable_pool,
        };
        let factorization = if self.parallel {
            factorize_parallel_with(a, &analysis, &opts)?
        } else {
            Factorization::from_symbolic_with(a, &analysis, &opts)?
        };
        Ok(Solver {
            matrix: a.clone(),
            analysis,
            factorization,
            ordering: self.ordering,
            refine_steps: self.refine_steps,
            refine_tol: self.refine_tol,
        })
    }
}

/// A factorized sparse system, ready to solve any number of right-hand
/// sides.
#[derive(Debug, Clone)]
pub struct Solver {
    matrix: CscMatrix,
    analysis: SymbolicAnalysis,
    factorization: Factorization,
    ordering: OrderingKind,
    refine_steps: usize,
    refine_tol: f64,
}

impl Solver {
    /// Starts a builder with defaults (AMD, sequential, no refinement).
    pub fn builder() -> SolverBuilder {
        SolverBuilder::default()
    }

    /// Solves `A x = b` (with refinement if configured at build time).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        if self.refine_steps == 0 {
            self.factorization.solve(b)
        } else {
            self.factorization.solve_refined(&self.matrix, b, self.refine_steps, self.refine_tol).0
        }
    }

    /// Solves for several right-hand sides.
    pub fn solve_many(&self, bs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        bs.iter().map(|b| self.solve(b)).collect()
    }

    /// Relative max-norm residual helper.
    pub fn residual(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
        Factorization::residual_inf(a, x, b)
    }

    /// Memory/operation statistics of the factorization.
    pub fn stats(&self) -> NumericStats {
        self.factorization.stats
    }

    /// The symbolic analysis (assembly tree, total permutation, pattern).
    pub fn analysis(&self) -> &SymbolicAnalysis {
        &self.analysis
    }

    /// The total fill-reducing permutation in effect.
    pub fn permutation(&self) -> &Permutation {
        &self.analysis.perm
    }

    /// The ordering the solver was built with.
    pub fn ordering(&self) -> OrderingKind {
        self.ordering
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::gen::grid::{grid2d, Stencil};

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i % 13) as f64 - 6.0).collect()
    }

    #[test]
    fn builder_defaults_solve() {
        let a = grid2d(11, 13, Stencil::Star);
        let s = Solver::builder().build(&a).unwrap();
        let b = rhs(a.nrows());
        let x = s.solve(&b);
        assert!(Solver::residual(&a, &x, &b) < 1e-10);
        assert_eq!(s.ordering(), OrderingKind::Amd);
    }

    #[test]
    fn parallel_and_refined_agree_with_plain() {
        let a = grid2d(14, 9, Stencil::Box);
        let b = rhs(a.nrows());
        let plain = Solver::builder().ordering(OrderingKind::Metis).build(&a).unwrap();
        let fancy = Solver::builder()
            .ordering(OrderingKind::Metis)
            .parallel(true)
            .refinement(2, 1e-14)
            .build(&a)
            .unwrap();
        let (x0, x1) = (plain.solve(&b), fancy.solve(&b));
        let d = x0.iter().zip(&x1).map(|(p, q)| (p - q).abs()).fold(0.0f64, f64::max);
        assert!(d < 1e-9, "diverged by {d:e}");
    }

    #[test]
    fn solve_many_round_trips() {
        let a = grid2d(8, 8, Stencil::Star);
        let s = Solver::builder().build(&a).unwrap();
        let bs: Vec<Vec<f64>> = (1..4).map(|k| (0..64).map(|i| (i * k) as f64).collect()).collect();
        for (b, x) in bs.iter().zip(s.solve_many(&bs)) {
            assert!(Solver::residual(&a, &x, b) < 1e-10);
        }
    }

    #[test]
    fn cores_per_front_is_bit_invariant() {
        // The malleable-tasks knob is a pure performance setting: the
        // factorization content must not depend on it.
        let a = grid2d(18, 17, Stencil::Box);
        let s1 = Solver::builder().cores_per_front(1).build(&a).unwrap();
        let s8 = Solver::builder().cores_per_front(8).build(&a).unwrap();
        assert_eq!(
            s1.factorization.content_digest(),
            s8.factorization.content_digest(),
            "cores_per_front changed the factor bytes"
        );
    }

    #[test]
    fn malleable_grants_are_bit_invariant() {
        // Malleable grants are racy by design (the busy count depends
        // on thread timing) — safe only because the kernels are
        // budget-invariant. Pin that end to end.
        let a = grid2d(18, 17, Stencil::Box);
        let fixed = Solver::builder().parallel(true).cores_per_front(4).build(&a).unwrap();
        for pool in [1usize, 2, 8] {
            let m = Solver::builder()
                .parallel(true)
                .cores_per_front(4)
                .malleable(pool)
                .build(&a)
                .unwrap();
            assert_eq!(
                fixed.factorization.content_digest(),
                m.factorization.content_digest(),
                "malleable pool {pool} changed the factor bytes"
            );
        }
    }

    #[test]
    fn stats_are_populated() {
        let a = grid2d(10, 10, Stencil::Star);
        let s = Solver::builder().build(&a).unwrap();
        assert!(s.stats().factor_entries > 0);
        assert!(s.stats().fronts > 0);
        assert_eq!(s.permutation().len(), 100);
        assert!(s.analysis().tree.validate().is_ok());
    }
}
