//! The assembly tree: fronts, sizes, and flop counts.

use mf_sparse::Symmetry;

/// One node of the assembly tree: a front with `npiv` fully-summed
/// variables (the pivot columns `first_col .. first_col + npiv`) and
/// `nfront - npiv` contribution-block variables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FrontNode {
    /// First pivot column (post-ordered new index).
    pub first_col: usize,
    /// Number of fully-summed (pivot) variables.
    pub npiv: usize,
    /// Order of the frontal matrix.
    pub nfront: usize,
    /// Parent node id, `None` for roots.
    pub parent: Option<usize>,
    /// Child node ids.
    pub children: Vec<usize>,
    /// `Some(head)` when this node is a *tail link* of a chain produced by
    /// static splitting (see [`crate::split`]). Tail links own pivots but
    /// assemble nothing from the original matrix: they continue the
    /// elimination of the Schur complement their single child passes up.
    pub chain_head: Option<usize>,
}

/// Assembly tree of a symbolic analysis.
///
/// Node ids of a freshly amalgamated tree are post-ordered (children have
/// smaller ids than parents); *after static splitting this no longer
/// holds* — consumers must use [`AssemblyTree::topo_order`] instead of
/// relying on id order.
#[derive(Debug, Clone)]
pub struct AssemblyTree {
    /// All nodes; ids index into this vector.
    pub nodes: Vec<FrontNode>,
    /// Symmetry of the factorization (selects LDLᵀ vs LU sizes/flops).
    pub sym: Symmetry,
    /// Matrix order (total number of pivot variables).
    pub n: usize,
}

fn tri(k: u64) -> u64 {
    k * (k + 1) / 2
}

impl AssemblyTree {
    /// Ids of the root nodes (forest roots; usually one per connected
    /// component of the pattern).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].parent.is_none()).collect()
    }

    /// Ids of the leaves.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].children.is_empty()).collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Post-order traversal (children before parents, subtrees contiguous,
    /// children visited in their `children` list order). Safe after
    /// splitting, which breaks id order.
    pub fn topo_order(&self) -> Vec<usize> {
        let mut post = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for r in self.roots() {
            stack.push((r, 0));
            while let Some(&mut (v, ref mut cur)) = stack.last_mut() {
                if *cur < self.nodes[v].children.len() {
                    let c = self.nodes[v].children[*cur];
                    *cur += 1;
                    stack.push((c, 0));
                } else {
                    post.push(v);
                    stack.pop();
                }
            }
        }
        post
    }

    /// Order of the contribution block of node `id`.
    pub fn cb_order(&self, id: usize) -> usize {
        let nd = &self.nodes[id];
        nd.nfront - nd.npiv
    }

    /// Entries of the contribution block (stack footprint of the CB).
    pub fn cb_entries(&self, id: usize) -> u64 {
        let c = self.cb_order(id) as u64;
        match self.sym {
            Symmetry::Symmetric => tri(c),
            Symmetry::General => c * c,
        }
    }

    /// Entries of the full frontal matrix (active-memory footprint while
    /// the front is being factorized).
    pub fn front_entries(&self, id: usize) -> u64 {
        let f = self.nodes[id].nfront as u64;
        match self.sym {
            Symmetry::Symmetric => tri(f),
            Symmetry::General => f * f,
        }
    }

    /// Entries written to the factors area when the front completes.
    pub fn factor_entries(&self, id: usize) -> u64 {
        self.front_entries(id) - self.cb_entries(id)
    }

    /// Entries of the *master part* of the front: the fully-summed rows.
    /// In the 1-D distribution of type-2 nodes the master holds exactly
    /// these rows and the slaves hold their full rows (including their
    /// share of L21), so `front_entries = master_entries + slave surface`.
    /// This is the quantity the paper thresholds at 2·10⁶ when splitting.
    pub fn master_entries(&self, id: usize) -> u64 {
        let nd = &self.nodes[id];
        let (p, f) = (nd.npiv as u64, nd.nfront as u64);
        match self.sym {
            // Lower-triangular pivot rows.
            Symmetry::Symmetric => tri(p),
            // Full pivot rows (p x f).
            Symmetry::General => p * f,
        }
    }

    /// Elimination flops of node `id` (the paper's workload metric counts
    /// only elimination operations, an order of magnitude above assembly).
    pub fn flops(&self, id: usize) -> u64 {
        let nd = &self.nodes[id];
        let (p, f) = (nd.npiv as u64, nd.nfront as u64);
        let mut fl = 0u64;
        for k in 0..p {
            let r = f - k - 1; // remaining rows/cols after pivot k
            fl += match self.sym {
                Symmetry::General => r + 2 * r * r,
                Symmetry::Symmetric => r + r * r,
            };
        }
        fl
    }

    /// Total elimination flops of the whole tree.
    pub fn total_flops(&self) -> u64 {
        (0..self.len()).map(|i| self.flops(i)).sum()
    }

    /// Total factor entries of the whole tree.
    pub fn total_factor_entries(&self) -> u64 {
        (0..self.len()).map(|i| self.factor_entries(i)).sum()
    }

    /// Per-node aggregate over each subtree (`f(node)` summed over all
    /// descendants including the node itself).
    pub fn subtree_sum(&self, f: impl Fn(usize) -> u64) -> Vec<u64> {
        let mut acc: Vec<u64> = (0..self.len()).map(&f).collect();
        for id in self.topo_order() {
            if let Some(p) = self.nodes[id].parent {
                acc[p] += acc[id];
            }
        }
        acc
    }

    /// Depth of each node (roots have depth 0).
    pub fn depths(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.len()];
        let order = self.topo_order();
        for &id in order.iter().rev() {
            if let Some(p) = self.nodes[id].parent {
                d[id] = d[p] + 1;
            }
        }
        d
    }

    /// True when `id` is a tail link of a split chain (assembles nothing
    /// from the original matrix).
    pub fn is_chain_tail(&self, id: usize) -> bool {
        self.nodes[id].chain_head.is_some()
    }

    /// Total pivot span covered by `id` and its split tail links; equals
    /// `npiv` for unsplit nodes. Only meaningful on chain heads / normal
    /// nodes (the node where the original front is assembled).
    pub fn chain_npiv(&self, id: usize) -> usize {
        debug_assert!(!self.is_chain_tail(id), "chain_npiv on a tail link");
        let mut total = self.nodes[id].npiv;
        let mut cur = id;
        while let Some(p) = self.nodes[cur].parent {
            if self.nodes[p].chain_head == Some(id) {
                total += self.nodes[p].npiv;
                cur = p;
            } else {
                break;
            }
        }
        total
    }

    /// Maps every pivot column to its node id.
    pub fn col_to_node(&self) -> Vec<usize> {
        let mut map = vec![usize::MAX; self.n];
        for (id, nd) in self.nodes.iter().enumerate() {
            for c in nd.first_col..nd.first_col + nd.npiv {
                map[c] = id;
            }
        }
        map
    }

    /// Structural sanity check: pivots partition `0..n`, parent/child
    /// links are mutual, fronts are at least as large as their pivot
    /// blocks, and each contribution block fits in the parent front.
    pub fn validate(&self) -> Result<(), String> {
        let mut covered = vec![false; self.n];
        for (id, nd) in self.nodes.iter().enumerate() {
            if nd.npiv == 0 || nd.nfront < nd.npiv {
                return Err(format!("node {id}: bad sizes npiv={} nfront={}", nd.npiv, nd.nfront));
            }
            for c in nd.first_col..nd.first_col + nd.npiv {
                if c >= self.n || covered[c] {
                    return Err(format!("node {id}: pivot {c} out of range or duplicated"));
                }
                covered[c] = true;
            }
            if let Some(p) = nd.parent {
                if !self.nodes[p].children.contains(&id) {
                    return Err(format!("node {id}: parent {p} does not list it"));
                }
                if self.cb_order(id) > self.nodes[p].nfront {
                    return Err(format!(
                        "node {id}: CB order {} exceeds parent front {}",
                        self.cb_order(id),
                        self.nodes[p].nfront
                    ));
                }
            } else if self.cb_order(id) != 0 {
                return Err(format!("root {id} has a non-empty contribution block"));
            }
            for &c in &nd.children {
                if self.nodes[c].parent != Some(id) {
                    return Err(format!("node {id}: child {c} disagrees on parent"));
                }
            }
            if nd.chain_head.is_some() {
                if nd.children.len() != 1 {
                    return Err(format!("chain tail {id} must have exactly one child"));
                }
                let c = nd.children[0];
                if self.nodes[c].first_col + self.nodes[c].npiv != nd.first_col
                    || self.cb_order(c) != nd.nfront
                {
                    return Err(format!("chain tail {id} inconsistent with its child {c}"));
                }
            }
        }
        if !covered.iter().all(|&b| b) {
            return Err("pivot columns do not cover 0..n".into());
        }
        Ok(())
    }

    /// Aggregate shape statistics (used in experiment reports).
    pub fn stats(&self) -> TreeStats {
        let depths = self.depths();
        TreeStats {
            nodes: self.len(),
            leaves: self.leaves().len(),
            depth: depths.iter().copied().max().unwrap_or(0),
            max_nfront: self.nodes.iter().map(|n| n.nfront).max().unwrap_or(0),
            max_npiv: self.nodes.iter().map(|n| n.npiv).max().unwrap_or(0),
            factor_entries: self.total_factor_entries(),
            flops: self.total_flops(),
        }
    }
}

/// Shape summary of an assembly tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of fronts.
    pub nodes: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Maximum root-to-leaf depth.
    pub depth: usize,
    /// Largest front order.
    pub max_nfront: usize,
    /// Largest pivot-block size.
    pub max_npiv: usize,
    /// Total factor entries.
    pub factor_entries: u64,
    /// Total elimination flops.
    pub flops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built 3-node tree: two leaves and a root, unsymmetric.
    pub(crate) fn toy_tree(sym: Symmetry) -> AssemblyTree {
        AssemblyTree {
            nodes: vec![
                FrontNode {
                    first_col: 0,
                    npiv: 2,
                    nfront: 4,
                    parent: Some(2),
                    children: vec![],
                    chain_head: None,
                },
                FrontNode {
                    first_col: 2,
                    npiv: 2,
                    nfront: 4,
                    parent: Some(2),
                    children: vec![],
                    chain_head: None,
                },
                FrontNode {
                    first_col: 4,
                    npiv: 2,
                    nfront: 2,
                    parent: None,
                    children: vec![0, 1],
                    chain_head: None,
                },
            ],
            sym,
            n: 6,
        }
    }

    #[test]
    fn toy_tree_validates() {
        assert!(toy_tree(Symmetry::General).validate().is_ok());
        assert!(toy_tree(Symmetry::Symmetric).validate().is_ok());
    }

    #[test]
    fn sizes_unsymmetric() {
        let t = toy_tree(Symmetry::General);
        assert_eq!(t.front_entries(0), 16);
        assert_eq!(t.cb_entries(0), 4);
        assert_eq!(t.factor_entries(0), 12);
        assert_eq!(t.master_entries(0), 2 * 4);
    }

    #[test]
    fn sizes_symmetric() {
        let t = toy_tree(Symmetry::Symmetric);
        assert_eq!(t.front_entries(0), 10); // tri(4)
        assert_eq!(t.cb_entries(0), 3); // tri(2)
        assert_eq!(t.factor_entries(0), 7);
        assert_eq!(t.master_entries(0), 3); // tri(2)
    }

    #[test]
    fn flops_match_manual_count() {
        let t = toy_tree(Symmetry::General);
        // npiv=2, nfront=4: k=0: r=3 -> 3+18=21; k=1: r=2 -> 2+8=10.
        assert_eq!(t.flops(0), 31);
        let ts = toy_tree(Symmetry::Symmetric);
        assert_eq!(ts.flops(0), (3 + 9) + (2 + 4));
    }

    #[test]
    fn topo_order_children_first() {
        let t = toy_tree(Symmetry::General);
        let order = t.topo_order();
        assert_eq!(order.len(), 3);
        let pos2 = order.iter().position(|&x| x == 2).unwrap();
        assert_eq!(pos2, 2, "root must come last");
    }

    #[test]
    fn subtree_sum_accumulates() {
        let t = toy_tree(Symmetry::General);
        let s = t.subtree_sum(|_| 1);
        assert_eq!(s, vec![1, 1, 3]);
    }

    #[test]
    fn col_to_node_partition() {
        let t = toy_tree(Symmetry::General);
        assert_eq!(t.col_to_node(), vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn validate_catches_broken_links() {
        let mut t = toy_tree(Symmetry::General);
        t.nodes[0].parent = None; // root with a CB
        assert!(t.validate().is_err());
    }

    #[test]
    fn depths_from_roots() {
        let t = toy_tree(Symmetry::General);
        assert_eq!(t.depths(), vec![1, 1, 0]);
    }
}
