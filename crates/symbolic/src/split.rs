//! Static chain-splitting of nodes with large master parts (Section 6).
//!
//! The paper observes that a huge type-2 *master* task is un-schedulable:
//! when it allocates, no dynamic decision can protect the peak. The fix is
//! static: any node whose master part exceeds a threshold is replaced by a
//! chain of nodes, each eliminating a slice of the pivots. The first chain
//! node keeps the original children and the full front; each subsequent
//! node's front is the previous node's contribution block.

use crate::tree::{AssemblyTree, FrontNode};

/// Outcome of a splitting pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitReport {
    /// Nodes of the original tree that were split.
    pub nodes_split: usize,
    /// Total chain nodes created (including the originals).
    pub chain_nodes: usize,
}

/// Splits every node whose [`AssemblyTree::master_entries`] exceeds
/// `max_master_entries` into a chain. Returns what happened; mutates the
/// tree in place. Node ids of the original tree are preserved (the first
/// chain link reuses the original id); new links are appended, so callers
/// must use [`AssemblyTree::topo_order`] afterwards rather than id order.
pub fn split_large_masters(tree: &mut AssemblyTree, max_master_entries: u64) -> SplitReport {
    let mut report = SplitReport { nodes_split: 0, chain_nodes: 0 };
    let original_len = tree.nodes.len();
    for id in 0..original_len {
        if tree.master_entries(id) <= max_master_entries {
            continue;
        }
        let nd = tree.nodes[id].clone();
        if nd.npiv < 2 {
            continue; // a single pivot cannot be split further
        }
        // Slice pivots so that every link's master part fits the threshold.
        // Link i starts with front f_i and takes p_i pivots; the next link's
        // front is f_i - p_i.
        let mut slices: Vec<(usize, usize)> = Vec::new(); // (npiv, nfront)
        let mut remaining = nd.npiv;
        let mut front = nd.nfront;
        while remaining > 0 {
            let p = max_pivots_for(tree, front, max_master_entries).min(remaining).max(1);
            slices.push((p, front));
            remaining -= p;
            front -= p;
        }
        if slices.len() == 1 {
            continue; // threshold not binding after all
        }
        report.nodes_split += 1;
        report.chain_nodes += slices.len();

        // First link reuses `id` (keeps original children).
        let mut col = nd.first_col;
        tree.nodes[id].npiv = slices[0].0;
        tree.nodes[id].nfront = slices[0].1;
        col += slices[0].0;
        let mut prev = id;
        for &(p, f) in &slices[1..] {
            let new_id = tree.nodes.len();
            tree.nodes.push(FrontNode {
                first_col: col,
                npiv: p,
                nfront: f,
                parent: None,
                children: vec![prev],
                chain_head: Some(id),
            });
            tree.nodes[prev].parent = Some(new_id);
            col += p;
            prev = new_id;
        }
        // Hook the last link to the original parent.
        tree.nodes[prev].parent = nd.parent;
        if let Some(par) = nd.parent {
            for c in tree.nodes[par].children.iter_mut() {
                if *c == id {
                    *c = prev;
                }
            }
        }
    }
    debug_assert!(tree.validate().is_ok(), "{:?}", tree.validate());
    report
}

/// Largest pivot count `p` such that a front of order `f` with `p` pivots
/// has a master part within `limit` (found by binary search on the exact
/// formula so both symmetries are handled).
fn max_pivots_for(tree: &AssemblyTree, f: usize, limit: u64) -> usize {
    let master = |p: u64| -> u64 {
        let fu = f as u64;
        match tree.sym {
            mf_sparse::Symmetry::Symmetric => p * (p + 1) / 2,
            mf_sparse::Symmetry::General => p * fu,
        }
    };
    let (mut lo, mut hi) = (1u64, f as u64);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if master(mid) <= limit {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::Symmetry;

    fn big_tree() -> AssemblyTree {
        AssemblyTree {
            nodes: vec![
                FrontNode {
                    first_col: 0,
                    npiv: 10,
                    nfront: 60,
                    parent: Some(1),
                    children: vec![],
                    chain_head: None,
                },
                FrontNode {
                    first_col: 10,
                    npiv: 90,
                    nfront: 90,
                    parent: None,
                    children: vec![0],
                    chain_head: None,
                },
            ],
            sym: Symmetry::General,
            n: 100,
        }
    }

    #[test]
    fn splitting_respects_threshold() {
        let mut t = big_tree();
        let limit = 4_000;
        assert!(t.master_entries(1) > limit);
        let rep = split_large_masters(&mut t, limit);
        assert_eq!(rep.nodes_split, 1);
        assert!(rep.chain_nodes >= 2);
        assert!(t.validate().is_ok());
        for id in 0..t.len() {
            assert!(
                t.master_entries(id) <= limit,
                "node {id} master {} > {limit}",
                t.master_entries(id)
            );
        }
    }

    #[test]
    fn splitting_preserves_pivots_and_flops_shape() {
        let mut t = big_tree();
        let piv_before: usize = t.nodes.iter().map(|n| n.npiv).sum();
        let factors_before = t.total_factor_entries();
        split_large_masters(&mut t, 4_000);
        assert_eq!(t.nodes.iter().map(|n| n.npiv).sum::<usize>(), piv_before);
        // Factor entries are invariant under chain splitting.
        assert_eq!(t.total_factor_entries(), factors_before);
    }

    #[test]
    fn chain_links_have_descending_fronts() {
        let mut t = big_tree();
        split_large_masters(&mut t, 4_000);
        // Follow the chain upward from node 1.
        let mut id = 1;
        let mut prev_front = t.nodes[id].nfront;
        while let Some(p) = t.nodes[id].parent {
            let f = t.nodes[p].nfront;
            assert_eq!(f, prev_front - t.nodes[id].npiv, "front must shrink by npiv");
            prev_front = f;
            id = p;
        }
    }

    #[test]
    fn no_split_below_threshold() {
        let mut t = big_tree();
        let rep = split_large_masters(&mut t, u64::MAX);
        assert_eq!(rep.nodes_split, 0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn symmetric_split_respects_threshold_too() {
        let mut t = AssemblyTree {
            nodes: vec![FrontNode {
                first_col: 0,
                npiv: 200,
                nfront: 200,
                parent: None,
                children: vec![],
                chain_head: None,
            }],
            sym: Symmetry::Symmetric,
            n: 200,
        };
        let limit = 2_000;
        split_large_masters(&mut t, limit);
        assert!(t.validate().is_ok());
        for id in 0..t.len() {
            assert!(t.master_entries(id) <= limit);
        }
    }
}
