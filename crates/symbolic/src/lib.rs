//! Symbolic analysis for the multifrontal method.
//!
//! From a (permuted) sparse pattern this crate derives everything the
//! factorization and the schedulers need *before* any number is touched:
//!
//! 1. the **elimination tree** ([`etree`]) and its postorder;
//! 2. exact **column counts** of the factor ([`colcount`]);
//! 3. fundamental supernodes, relaxed **amalgamation** ([`amalg`]), and the
//!    resulting **assembly tree** ([`tree::AssemblyTree`]) with per-front
//!    sizes, contribution-block sizes and flop counts;
//! 4. the **static chain-splitting** of nodes with large master parts
//!    ([`split`]), the paper's Section 6 tree modification;
//! 5. **sequential stack analysis** ([`seqstack`]): Liu-style optimal child
//!    ordering and the resulting stack peak, used both to order leaf
//!    subtrees in the pool (Section 5.2) and as a reference point;
//! 6. explicit per-front index lists ([`frontstruct`]) for the numeric
//!    factorization.
//!
//! All symbolic quantities are counted in *entries* (f64 words), matching
//! the unit of the paper's tables ("millions of entries").

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // stamped set algorithms index by design
pub mod amalg;
pub mod colcount;
pub mod etree;
pub mod frontstruct;
pub mod seqstack;
pub mod split;
#[cfg(test)]
pub(crate) mod testmat;
pub mod tree;

pub use amalg::AmalgamationOptions;
pub use tree::{AssemblyTree, FrontNode};

use mf_sparse::{CscMatrix, Permutation, Symmetry};

/// Result of [`analyze`]: the assembly tree together with the *total*
/// permutation it is expressed in.
#[derive(Debug, Clone)]
pub struct SymbolicAnalysis {
    /// The amalgamated assembly tree; its column indices are positions
    /// under [`SymbolicAnalysis::perm`].
    pub tree: AssemblyTree,
    /// Total permutation actually applied (fill-reducing ordering composed
    /// with the etree postorder relabeling).
    pub perm: Permutation,
    /// The permuted, structurally symmetric pattern the tree was built on
    /// (values of `P(A+Aᵀ)Pᵀ`; used by the numeric layer for assembly).
    pub pattern: CscMatrix,
}

/// One-call symbolic analysis.
///
/// Permutes `a` by the fill-reducing ordering `p`, symmetrizes the pattern
/// if `a` is unsymmetric (as MUMPS does), relabels by an elimination-tree
/// postorder so supernode pivots are contiguous, and amalgamates
/// fundamental supernodes into the assembly tree.
pub fn analyze(a: &CscMatrix, p: &Permutation, opts: &AmalgamationOptions) -> SymbolicAnalysis {
    let sym = a.symmetry();
    let pa = a.permute_symmetric(p);
    let pattern = if pa.is_structurally_symmetric() { pa } else { pa.symmetrized() };
    let parent = etree::etree(&pattern);
    let post = etree::postorder(&parent);
    let p2 = Permutation::from_elimination_order(post).expect("postorder is a bijection");
    let pattern = pattern.permute_symmetric(&p2);
    let parent = etree::etree(&pattern);
    debug_assert!(etree::is_postordered(&parent));
    let counts = colcount::col_counts(&pattern, &parent);
    let tree = amalg::build_assembly_tree(&parent, &counts, sym, opts);
    SymbolicAnalysis { tree, perm: p.then(&p2), pattern }
}

/// Convenience wrapper: symbolic analysis with the identity fill-reducing
/// ordering (pure postorder relabeling).
pub fn analyze_natural(a: &CscMatrix, opts: &AmalgamationOptions) -> SymbolicAnalysis {
    analyze(a, &Permutation::identity(a.ncols()), opts)
}

/// Re-exported for convenience: symmetry tag of the analyzed problem.
pub fn tree_symmetry(s: &SymbolicAnalysis) -> Symmetry {
    s.tree.sym
}
