//! Fundamental supernodes and relaxed amalgamation.

use crate::etree::{child_counts, NONE};
use crate::tree::{AssemblyTree, FrontNode};
use mf_sparse::Symmetry;

/// Amalgamation tuning.
///
/// Children are only merged with their *postorder-adjacent* parent (the
/// chain along last children), which keeps every node's pivot columns a
/// contiguous range — the representation the rest of the system relies on.
#[derive(Debug, Clone)]
pub struct AmalgamationOptions {
    /// A child with at most this many pivots is always merged into its
    /// parent (MUMPS-style absorption of tiny nodes).
    pub always_merge_npiv: usize,
    /// Otherwise merge only if the relative growth in stored entries,
    /// `(merged - child - parent) / (child + parent)`, stays below this.
    pub max_fill_ratio: f64,
    /// Never merge beyond this front order (caps the dense working set of
    /// a single front, like MUMPS' amalgamation controls); `usize::MAX`
    /// disables the cap.
    pub max_front: usize,
}

impl Default for AmalgamationOptions {
    fn default() -> Self {
        AmalgamationOptions { always_merge_npiv: 8, max_fill_ratio: 0.10, max_front: usize::MAX }
    }
}

impl AmalgamationOptions {
    /// No amalgamation at all: one node per fundamental supernode.
    /// (The negative fill ratio rejects even zero-fill merges.)
    pub fn none() -> Self {
        AmalgamationOptions { always_merge_npiv: 0, max_fill_ratio: -1.0, max_front: usize::MAX }
    }
}

fn entries(sym: Symmetry, nfront: u64) -> u64 {
    match sym {
        Symmetry::Symmetric => nfront * (nfront + 1) / 2,
        Symmetry::General => nfront * nfront,
    }
}

/// Builds the amalgamated assembly tree from a *postordered* elimination
/// tree and exact column counts.
pub fn build_assembly_tree(
    parent: &[usize],
    counts: &[usize],
    sym: Symmetry,
    opts: &AmalgamationOptions,
) -> AssemblyTree {
    let n = parent.len();
    let nchild = child_counts(parent);

    // ---- Fundamental supernodes. ----
    // Column j extends the supernode of j-1 iff parent[j-1] == j, j has a
    // single child, and the counts drop by exactly one.
    let mut sn_first: Vec<usize> = Vec::new();
    for j in 0..n {
        let extends =
            j > 0 && parent[j - 1] == j && nchild[j] == 1 && counts[j] + 1 == counts[j - 1];
        if !extends {
            sn_first.push(j);
        }
    }
    let nsn = sn_first.len();
    let mut col_sn = vec![0usize; n];
    for (s, &f) in sn_first.iter().enumerate() {
        let last = if s + 1 < nsn { sn_first[s + 1] } else { n };
        for c in f..last {
            col_sn[c] = s;
        }
    }

    // Supernode nodes (ids are postordered because columns are).
    let mut nodes: Vec<FrontNode> = (0..nsn)
        .map(|s| {
            let f = sn_first[s];
            let last = if s + 1 < nsn { sn_first[s + 1] } else { n };
            FrontNode {
                first_col: f,
                npiv: last - f,
                nfront: counts[f],
                parent: None,
                children: Vec::new(),
                chain_head: None,
            }
        })
        .collect();
    for s in 0..nsn {
        let last_col = nodes[s].first_col + nodes[s].npiv - 1;
        let p = parent[last_col];
        if p != NONE {
            let ps = col_sn[p];
            nodes[s].parent = Some(ps);
            nodes[ps].children.push(s);
        }
    }

    // ---- Relaxed amalgamation along postorder-adjacent (last-child) links. ----
    // alive[s] = false once s was merged into its parent. Merging child s
    // into parent p is only possible when s's pivots end exactly where p's
    // begin (s is the postorder-adjacent child).
    let mut alive = vec![true; nsn];
    for s in 0..nsn {
        if !alive[s] {
            continue;
        }
        let Some(p) = nodes[s].parent else { continue };
        let adjacent = nodes[s].first_col + nodes[s].npiv == nodes[p].first_col;
        if !adjacent {
            continue;
        }
        let (cp, cf) = (nodes[s].npiv as u64, nodes[s].nfront as u64);
        let (pp, pf) = (nodes[p].npiv as u64, nodes[p].nfront as u64);
        let merged_front = cp + pf;
        // CB(s) ⊆ front(p), so the merged front is pivots(s) ∪ front(p).
        let e_child = entries(sym, cf);
        let e_parent = entries(sym, pf);
        let e_merged = entries(sym, merged_front);
        let extra = e_merged.saturating_sub(e_child + e_parent) as f64;
        let merge = (merged_front as usize <= opts.max_front)
            && (nodes[s].npiv <= opts.always_merge_npiv
                || extra / (e_child + e_parent) as f64 <= opts.max_fill_ratio);
        let _ = pp;
        if !merge {
            continue;
        }
        // Merge s into p.
        alive[s] = false;
        let s_children = std::mem::take(&mut nodes[s].children);
        nodes[p].first_col = nodes[s].first_col;
        nodes[p].npiv += nodes[s].npiv;
        nodes[p].nfront = (cp + pf) as usize;
        nodes[p].children.retain(|&c| c != s);
        for &c in &s_children {
            nodes[c].parent = Some(p);
        }
        // Keep child order by first_col so traversals stay deterministic.
        let mut merged_children = s_children;
        merged_children.extend(nodes[p].children.iter().copied());
        merged_children.sort_unstable_by_key(|&c| nodes[c].first_col);
        nodes[p].children = merged_children;
    }

    // ---- Compact ids. ----
    let mut new_id = vec![usize::MAX; nsn];
    let mut compact: Vec<FrontNode> = Vec::with_capacity(nsn);
    for s in 0..nsn {
        if alive[s] {
            new_id[s] = compact.len();
            compact.push(nodes[s].clone());
        }
    }
    for nd in &mut compact {
        nd.parent = nd.parent.map(|p| new_id[p]);
        for c in nd.children.iter_mut() {
            *c = new_id[*c];
        }
        debug_assert!(nd.children.iter().all(|&c| c != usize::MAX));
    }

    let tree = AssemblyTree { nodes: compact, sym, n };
    debug_assert!(tree.validate().is_ok(), "{:?}", tree.validate());
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colcount::col_counts;
    use crate::etree::etree;
    use crate::testmat::{figure1_matrix, tridiag};

    fn analyze_raw(a: &mf_sparse::CscMatrix, opts: &AmalgamationOptions) -> AssemblyTree {
        let parent = etree(a);
        assert!(crate::etree::is_postordered(&parent), "fixture must be postordered");
        let counts = col_counts(a, &parent);
        build_assembly_tree(&parent, &counts, mf_sparse::Symmetry::Symmetric, opts)
    }

    #[test]
    fn figure1_gives_three_supernodes() {
        let a = figure1_matrix();
        let t = analyze_raw(&a, &AmalgamationOptions::none());
        assert_eq!(t.len(), 3);
        let piv: Vec<(usize, usize)> = t.nodes.iter().map(|n| (n.first_col, n.npiv)).collect();
        assert_eq!(piv, vec![(0, 2), (2, 2), (4, 2)]);
        assert_eq!(t.nodes[0].nfront, 4);
        assert_eq!(t.nodes[2].children, vec![0, 1]);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn tridiag_without_amalgamation_is_a_chain_of_singletons() {
        // The last two columns form a dense trailing block, hence one
        // fundamental supernode {4,5}; the rest are singletons.
        let a = tridiag(6);
        let t = analyze_raw(&a, &AmalgamationOptions::none());
        assert_eq!(t.len(), 5);
        assert!(t.nodes.iter().take(4).all(|n| n.npiv == 1 && n.nfront == 2));
        assert_eq!((t.nodes[4].npiv, t.nodes[4].nfront), (2, 2));
    }

    #[test]
    fn tridiag_with_amalgamation_collapses() {
        let a = tridiag(16);
        let t = analyze_raw(
            &a,
            &AmalgamationOptions {
                always_merge_npiv: 4,
                max_fill_ratio: 0.0,
                max_front: usize::MAX,
            },
        );
        assert!(t.len() < 16, "got {} nodes", t.len());
        assert!(t.validate().is_ok());
        assert_eq!(t.nodes.iter().map(|n| n.npiv).sum::<usize>(), 16);
    }

    #[test]
    fn max_front_cap_is_respected() {
        let a = crate::testmat::tridiag(64);
        let capped = analyze_raw(
            &a,
            &AmalgamationOptions { always_merge_npiv: 64, max_fill_ratio: 1.0, max_front: 6 },
        );
        assert!(capped.nodes.iter().all(|n| n.nfront <= 6), "cap violated");
        let uncapped = analyze_raw(
            &a,
            &AmalgamationOptions {
                always_merge_npiv: 64,
                max_fill_ratio: 1.0,
                max_front: usize::MAX,
            },
        );
        assert!(uncapped.len() < capped.len());
    }

    #[test]
    fn amalgamation_preserves_pivot_partition() {
        let a = mf_sparse::gen::grid::grid2d(9, 9, mf_sparse::gen::grid::Stencil::Star);
        let s = crate::analyze(
            &a,
            &mf_sparse::Permutation::identity(81),
            &AmalgamationOptions::default(),
        );
        assert!(s.tree.validate().is_ok());
        assert_eq!(s.tree.n, 81);
    }

    #[test]
    fn zero_fill_ratio_never_grows_front_entries() {
        // Amalgamation may store explicit zeros in the *factors* (that is
        // its nature), but a zero fill-ratio must never grow the total
        // front weight of the tree.
        let a = mf_sparse::gen::grid::grid2d(8, 8, mf_sparse::gen::grid::Stencil::Star);
        let none =
            crate::analyze(&a, &mf_sparse::Permutation::identity(64), &AmalgamationOptions::none());
        let tight = crate::analyze(
            &a,
            &mf_sparse::Permutation::identity(64),
            &AmalgamationOptions {
                always_merge_npiv: 0,
                max_fill_ratio: 0.0,
                max_front: usize::MAX,
            },
        );
        let weight = |t: &AssemblyTree| (0..t.len()).map(|i| t.front_entries(i)).sum::<u64>();
        assert!(weight(&tight.tree) <= weight(&none.tree));
        assert!(tight.tree.len() <= none.tree.len());
    }
}
