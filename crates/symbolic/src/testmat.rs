//! Shared test fixtures for the symbolic layer.

use mf_sparse::{CooMatrix, CscMatrix};

/// The 6x6 example of Figure 1 of the paper: assembly-tree supernodes
/// {1,2}, {3,4}, {5,6} (0-based: {0,1}, {2,3}, {4,5}).
pub(crate) fn figure1_matrix() -> CscMatrix {
    let mut coo = CooMatrix::new_symmetric(6);
    for i in 0..6 {
        coo.push(i, i, 4.0).unwrap();
    }
    for &(i, j) in
        &[(1, 0), (4, 0), (5, 0), (4, 1), (5, 1), (3, 2), (4, 2), (5, 2), (4, 3), (5, 3), (5, 4)]
    {
        coo.push(i, j, -1.0).unwrap();
    }
    coo.to_csc()
}

/// Symmetric tridiagonal matrix of order `n` (etree is a path).
pub(crate) fn tridiag(n: usize) -> CscMatrix {
    let mut coo = CooMatrix::new_symmetric(n);
    for i in 0..n {
        coo.push(i, i, 2.0).unwrap();
    }
    for i in 1..n {
        coo.push(i, i - 1, -1.0).unwrap();
    }
    coo.to_csc()
}
