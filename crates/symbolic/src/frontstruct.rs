//! Explicit per-front variable lists for the numeric factorization.

use crate::tree::AssemblyTree;
use crate::SymbolicAnalysis;

/// Row/column index lists of every front.
///
/// `rows[id]` is the sorted list of global (post-ordered) variable indices
/// of front `id`; its first `npiv` entries are the pivot columns and the
/// tail is the contribution-block variable set.
#[derive(Debug, Clone)]
pub struct FrontStructures {
    /// Variable lists, indexed by node id.
    pub rows: Vec<Vec<usize>>,
}

impl FrontStructures {
    /// The contribution-block part of front `id`.
    pub fn cb_rows(&self, tree: &AssemblyTree, id: usize) -> &[usize] {
        &self.rows[id][tree.nodes[id].npiv..]
    }
}

/// Computes the explicit variable list of every front, bottom-up:
/// `rows(v) = pivots(v) ∪ pattern(A) of the pivot columns ∪ CB(children)`.
///
/// For a consistent symbolic analysis the computed length equals the
/// tree's `nfront`; this is asserted in debug builds and relied on by the
/// dense kernels.
pub fn front_structures(s: &SymbolicAnalysis) -> FrontStructures {
    let tree = &s.tree;
    let a = &s.pattern;
    let n = tree.n;
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); tree.len()];
    let mut stamp = vec![usize::MAX; n];
    for v in tree.topo_order() {
        let nd = &tree.nodes[v];
        let mut list: Vec<usize> = Vec::with_capacity(nd.nfront);
        if tree.is_chain_tail(v) {
            // A tail link of a split chain inherits its single child's CB
            // verbatim: the elimination continues on the Schur complement,
            // nothing new is assembled.
            let ch = nd.children[0];
            let cb = &rows[ch][tree.nodes[ch].npiv..];
            debug_assert_eq!(cb.len(), nd.nfront);
            debug_assert_eq!(cb.first().copied(), Some(nd.first_col));
            rows[v] = cb.to_vec();
            continue;
        }
        // Pivots first (they are the smallest indices of the front). A
        // chain head assembles the *whole* original front, so its variable
        // list spans the pivots of every tail link above it as well.
        let span = tree.chain_npiv(v);
        for c in nd.first_col..nd.first_col + nd.npiv {
            stamp[c] = v;
            list.push(c);
        }
        for c in nd.first_col + nd.npiv..nd.first_col + span {
            stamp[c] = v;
            list.push(c);
        }
        // Original-matrix entries below the pivot block (of the full chain).
        for c in nd.first_col..nd.first_col + span {
            for &i in a.rows_in_col(c) {
                if i >= nd.first_col + span && stamp[i] != v {
                    stamp[i] = v;
                    list.push(i);
                }
            }
        }
        // Children contribution blocks.
        for &ch in &nd.children {
            for &i in &rows[ch][tree.nodes[ch].npiv..] {
                if stamp[i] != v {
                    debug_assert!(
                        i >= nd.first_col + nd.npiv || i >= nd.first_col,
                        "child CB index {i} below parent pivots"
                    );
                    if i >= nd.first_col + nd.npiv {
                        stamp[i] = v;
                        list.push(i);
                    }
                }
            }
        }
        list[tree.nodes[v].npiv..].sort_unstable();
        debug_assert_eq!(
            list.len(),
            tree.nodes[v].nfront,
            "front {v}: structure length {} != nfront {}",
            list.len(),
            tree.nodes[v].nfront
        );
        rows[v] = list;
    }
    FrontStructures { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AmalgamationOptions;
    use mf_sparse::Permutation;

    #[test]
    fn figure1_front_structures() {
        let a = crate::testmat::figure1_matrix();
        let s = crate::analyze(&a, &Permutation::identity(6), &AmalgamationOptions::none());
        let fs = front_structures(&s);
        assert_eq!(s.tree.len(), 3);
        // Node {0,1}: front {0,1,4,5}; node {2,3}: {2,3,4,5}; root {4,5}.
        assert_eq!(fs.rows[0], vec![0, 1, 4, 5]);
        assert_eq!(fs.rows[1], vec![2, 3, 4, 5]);
        assert_eq!(fs.rows[2], vec![4, 5]);
        assert_eq!(fs.cb_rows(&s.tree, 0), &[4, 5]);
    }

    #[test]
    fn lengths_match_nfront_on_grid() {
        let a = mf_sparse::gen::grid::grid2d(10, 10, mf_sparse::gen::grid::Stencil::Box);
        let p = mf_order_for_test(&a);
        let s = crate::analyze(&a, &p, &AmalgamationOptions::default());
        let fs = front_structures(&s);
        for v in 0..s.tree.len() {
            assert_eq!(fs.rows[v].len(), s.tree.nodes[v].nfront, "node {v}");
            // Pivot prefix.
            let nd = &s.tree.nodes[v];
            for (k, &r) in fs.rows[v][..nd.npiv].iter().enumerate() {
                assert_eq!(r, nd.first_col + k);
            }
            // Sorted CB tail.
            let cb = fs.cb_rows(&s.tree, v);
            assert!(cb.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// A deterministic non-trivial permutation without depending on
    /// mf-order from unit tests (dev-dependency cycle avoidance): reverse
    /// Cuthill-McKee-ish = plain reversal.
    fn mf_order_for_test(a: &mf_sparse::CscMatrix) -> Permutation {
        let n = a.ncols();
        Permutation::from_new_order((0..n).map(|i| n - 1 - i).collect()).unwrap()
    }

    #[test]
    fn cb_rows_subset_of_parent_front() {
        let a = mf_sparse::gen::grid::grid2d(8, 8, mf_sparse::gen::grid::Stencil::Star);
        let s = crate::analyze(&a, &Permutation::identity(64), &AmalgamationOptions::default());
        let fs = front_structures(&s);
        for v in 0..s.tree.len() {
            if let Some(p) = s.tree.nodes[v].parent {
                for &i in fs.cb_rows(&s.tree, v) {
                    assert!(fs.rows[p].contains(&i), "cb var {i} of {v} missing in parent {p}");
                }
            }
        }
    }
}
