//! Sequential stack analysis and Liu's optimal child ordering.
//!
//! In a sequential postorder factorization the stack holds the
//! contribution blocks of already-processed siblings. The peak within a
//! subtree depends on the order children are visited; Liu's classic result
//! (\[15\] in the paper) is that visiting children in decreasing
//! `peak(child) - cb(child)` minimizes the subtree peak. MUMPS uses a
//! variant of this to sort the leaf sequence of each subtree in the pool
//! (Section 5.2), and the paper's subtree-cost broadcasts send exactly the
//! per-subtree peak computed here.

use crate::tree::AssemblyTree;

/// Memory discipline used when a front finishes assembling its children.
///
/// MUMPS assembles children CBs into the freshly allocated front and then
/// frees them (`FrontThenFree`); the classical "in-place" analysis assumes
/// CBs are consumed before the front is complete. We model the
/// conservative MUMPS discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssemblyDiscipline {
    /// Front allocated while all children CBs are still stacked.
    FrontThenFree,
    /// Children CBs freed one by one while the front is assembled
    /// (last-child in-place optimization).
    InPlaceLastChild,
}

/// Per-subtree peaks for a given (current) child order.
///
/// `peaks[v]` is the stack peak reached while processing the subtree of
/// `v`, *including* `v`'s own front; the residual footprint after `v`
/// completes is `cb(v)`.
pub fn subtree_peaks(tree: &AssemblyTree, discipline: AssemblyDiscipline) -> Vec<u64> {
    let mut peaks = vec![0u64; tree.len()];
    for v in tree.topo_order() {
        let nd = &tree.nodes[v];
        let mut stacked = 0u64; // CBs of already-processed children
        let mut peak = 0u64;
        for &c in &nd.children {
            peak = peak.max(stacked + peaks[c]);
            stacked += tree.cb_entries(c);
        }
        let assembly = match discipline {
            AssemblyDiscipline::FrontThenFree => stacked + tree.front_entries(v),
            AssemblyDiscipline::InPlaceLastChild => {
                let last_cb = nd.children.last().map(|&c| tree.cb_entries(c)).unwrap_or(0);
                stacked - last_cb + tree.front_entries(v)
            }
        };
        peaks[v] = peak.max(assembly);
    }
    peaks
}

/// Stack peak of a full sequential factorization with the current child
/// orders (roots processed one after the other; only each root's CB is
/// empty so roots do not interact).
pub fn sequential_peak(tree: &AssemblyTree, discipline: AssemblyDiscipline) -> u64 {
    let peaks = subtree_peaks(tree, discipline);
    tree.roots().into_iter().map(|r| peaks[r]).max().unwrap_or(0)
}

/// Reorders every node's children by decreasing `peak - cb` (Liu's rule),
/// minimizing the sequential stack peak. Returns the resulting peak.
pub fn apply_liu_order(tree: &mut AssemblyTree, discipline: AssemblyDiscipline) -> u64 {
    // Fixed point: child order affects peaks which affect ordering above;
    // processing bottom-up in one pass is exact because a node's peak only
    // depends on its own subtree.
    let order = tree.topo_order();
    let mut peaks = vec![0u64; tree.len()];
    for v in order {
        let mut children = std::mem::take(&mut tree.nodes[v].children);
        children.sort_by_key(|&c| std::cmp::Reverse(peaks[c].saturating_sub(tree.cb_entries(c))));
        tree.nodes[v].children = children;
        let nd = &tree.nodes[v];
        let mut stacked = 0u64;
        let mut peak = 0u64;
        for &c in &nd.children {
            peak = peak.max(stacked + peaks[c]);
            stacked += tree.cb_entries(c);
        }
        let assembly = match discipline {
            AssemblyDiscipline::FrontThenFree => stacked + tree.front_entries(v),
            AssemblyDiscipline::InPlaceLastChild => {
                let last_cb = nd.children.last().map(|&c| tree.cb_entries(c)).unwrap_or(0);
                stacked - last_cb + tree.front_entries(v)
            }
        };
        peaks[v] = peak.max(assembly);
    }
    tree.roots().into_iter().map(|r| peaks[r]).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::FrontNode;
    use mf_sparse::Symmetry;

    /// Root with two uneven children: a fat one (big peak, small CB) and a
    /// thin one. Liu's rule must schedule the fat child first.
    fn uneven_tree() -> AssemblyTree {
        AssemblyTree {
            nodes: vec![
                // fat child: front 10 (100 entries), cb 2 (4 entries)
                FrontNode {
                    first_col: 0,
                    npiv: 8,
                    nfront: 10,
                    parent: Some(2),
                    children: vec![],
                    chain_head: None,
                },
                // thin child: front 4 (16), cb 2 (4)
                FrontNode {
                    first_col: 8,
                    npiv: 2,
                    nfront: 4,
                    parent: Some(2),
                    children: vec![],
                    chain_head: None,
                },
                FrontNode {
                    first_col: 10,
                    npiv: 2,
                    nfront: 2,
                    parent: None,
                    children: vec![1, 0],
                    chain_head: None,
                },
            ],
            sym: Symmetry::General,
            n: 12,
        }
    }

    #[test]
    fn peak_depends_on_child_order() {
        let t = uneven_tree();
        // Order (thin, fat): peak = max(16, 4 + 100, 8 + 4) = 104.
        assert_eq!(sequential_peak(&t, AssemblyDiscipline::FrontThenFree), 104);
        let mut t2 = t.clone();
        t2.nodes[2].children = vec![0, 1];
        // Order (fat, thin): peak = max(100, 4 + 16, 8 + 4) = 100.
        assert_eq!(sequential_peak(&t2, AssemblyDiscipline::FrontThenFree), 100);
    }

    #[test]
    fn liu_order_picks_the_better_order() {
        let mut t = uneven_tree();
        let peak = apply_liu_order(&mut t, AssemblyDiscipline::FrontThenFree);
        assert_eq!(peak, 100);
        assert_eq!(t.nodes[2].children, vec![0, 1]);
        assert_eq!(sequential_peak(&t, AssemblyDiscipline::FrontThenFree), 100);
    }

    #[test]
    fn liu_never_worse_on_real_trees() {
        let a = mf_sparse::gen::grid::grid2d(12, 12, mf_sparse::gen::grid::Stencil::Star);
        let p = mf_sparse::Permutation::identity(144);
        let mut s = crate::analyze(&a, &p, &crate::AmalgamationOptions::default());
        let before = sequential_peak(&s.tree, AssemblyDiscipline::FrontThenFree);
        let after = apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
        assert!(after <= before);
        assert!(s.tree.validate().is_ok());
    }

    #[test]
    fn in_place_discipline_is_never_larger() {
        let t = uneven_tree();
        assert!(
            sequential_peak(&t, AssemblyDiscipline::InPlaceLastChild)
                <= sequential_peak(&t, AssemblyDiscipline::FrontThenFree)
        );
    }

    #[test]
    fn leaf_peak_is_front_size() {
        let t = uneven_tree();
        let peaks = subtree_peaks(&t, AssemblyDiscipline::FrontThenFree);
        assert_eq!(peaks[0], 100);
        assert_eq!(peaks[1], 16);
    }
}
