//! Exact column counts of the Cholesky factor.

use crate::etree::NONE;
use mf_sparse::CscMatrix;

/// Exact nonzero count of every column of `L` (diagonal included), for a
/// structurally symmetric pattern with elimination tree `parent`.
///
/// Uses the row-subtree characterization: `L(i, j) != 0` iff `j` lies on
/// the etree path from some `k` with `A(i, k) != 0, k <= i`, up to `i`.
/// Walking each row's subtree with per-row marks visits every factor entry
/// exactly once, so the cost is `O(|L|)` with `O(n)` memory.
pub fn col_counts(a: &CscMatrix, parent: &[usize]) -> Vec<usize> {
    let n = a.ncols();
    let mut counts = vec![1usize; n]; // the diagonal
    let mut mark = vec![NONE; n]; // last row that visited each column
    for i in 0..n {
        mark[i] = i;
        // Upper-triangle entries of column i are the row-i pattern.
        for &k in a.rows_in_col(i) {
            if k >= i {
                continue;
            }
            let mut j = k;
            while mark[j] != i {
                mark[j] = i;
                counts[j] += 1;
                j = parent[j];
                debug_assert_ne!(j, NONE, "row subtree must stay below the diagonal");
            }
        }
    }
    counts
}

/// Total factor entries `Σ counts[j]` (one triangle).
pub fn factor_entries(counts: &[usize]) -> u64 {
    counts.iter().map(|&c| c as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::etree;
    use mf_sparse::CooMatrix;

    fn dense_l_counts(a: &CscMatrix) -> Vec<usize> {
        // Reference: naive symbolic elimination.
        let n = a.ncols();
        let mut adj: Vec<std::collections::BTreeSet<usize>> =
            (0..n).map(|j| a.rows_in_col(j).iter().copied().filter(|&i| i > j).collect()).collect();
        for j in 0..n {
            let nbrs: Vec<usize> = adj[j].iter().copied().collect();
            for (x, &p) in nbrs.iter().enumerate() {
                for &q in &nbrs[x + 1..] {
                    adj[p].insert(q);
                }
            }
        }
        (0..n).map(|j| adj[j].len() + 1).collect()
    }

    #[test]
    fn matches_naive_on_figure1() {
        let a = crate::testmat::figure1_matrix();
        let parent = etree(&a);
        let counts = col_counts(&a, &parent);
        assert_eq!(counts, dense_l_counts(&a));
        assert_eq!(counts, vec![4, 3, 4, 3, 2, 1]);
    }

    #[test]
    fn matches_naive_on_random_grid() {
        let a = mf_sparse::gen::grid::grid2d(7, 6, mf_sparse::gen::grid::Stencil::Box);
        let parent = etree(&a);
        assert_eq!(col_counts(&a, &parent), dense_l_counts(&a));
    }

    #[test]
    fn diagonal_matrix_counts_are_one() {
        let a = CscMatrix::identity(5, 1.0);
        let parent = etree(&a);
        assert_eq!(col_counts(&a, &parent), vec![1; 5]);
    }

    #[test]
    fn tridiagonal_counts_are_two_except_last() {
        let n = 6;
        let mut coo = CooMatrix::new_symmetric(n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
        }
        for i in 1..n {
            coo.push(i, i - 1, -1.0).unwrap();
        }
        let a = coo.to_csc();
        let parent = etree(&a);
        let c = col_counts(&a, &parent);
        assert_eq!(c, vec![2, 2, 2, 2, 2, 1]);
        assert_eq!(factor_entries(&c), 11);
    }
}
