//! Elimination tree of a structurally symmetric pattern (Liu's algorithm).

use mf_sparse::CscMatrix;

/// Parent pointer of a forest; `NONE` marks a root.
pub const NONE: usize = usize::MAX;

/// Computes the elimination tree of a square, structurally symmetric
/// pattern: `parent[j]` is the smallest `i > j` with `L(i, j) != 0`, or
/// [`NONE`] for a root. Runs Liu's algorithm with path compression
/// (virtual ancestors), `O(nnz · α(n))`.
pub fn etree(a: &CscMatrix) -> Vec<usize> {
    let n = a.ncols();
    assert_eq!(a.nrows(), n, "etree needs a square matrix");
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for j in 0..n {
        for &i in a.rows_in_col(j) {
            // Entries above the diagonal of column j = row j entries (by
            // structural symmetry); walk from each k < j towards the root.
            let mut k = i;
            if k >= j {
                continue;
            }
            while ancestor[k] != NONE && ancestor[k] != j {
                let next = ancestor[k];
                ancestor[k] = j; // path compression
                k = next;
            }
            if ancestor[k] == NONE {
                ancestor[k] = j;
                parent[k] = j;
            }
        }
    }
    parent
}

/// Postorder of a parent-pointer forest: children are visited before their
/// parent, and the subtree of every node is contiguous in the output.
/// Children are visited in increasing index order, making the result
/// deterministic.
pub fn postorder(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots = Vec::new();
    for j in 0..n {
        if parent[j] == NONE {
            roots.push(j);
        } else {
            children[parent[j]].push(j);
        }
    }
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with explicit child cursors (trees can be deep: AMF on
    // band matrices produces O(n)-depth chains).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for &r in &roots {
        stack.push((r, 0));
        while let Some(&mut (v, ref mut cur)) = stack.last_mut() {
            if *cur < children[v].len() {
                let c = children[v][*cur];
                *cur += 1;
                stack.push((c, 0));
            } else {
                post.push(v);
                stack.pop();
            }
        }
    }
    debug_assert_eq!(post.len(), n);
    post
}

/// True if `parent` is already postordered: every parent index is larger
/// than all indices in its subtree (equivalently `parent[j] > j` for all
/// non-roots, plus contiguity of subtrees).
pub fn is_postordered(parent: &[usize]) -> bool {
    // Postordered means: parents come after their children (parent[j] > j)
    // and every subtree is contiguous, i.e. the descendants of j are
    // exactly j - size(j) + 1 ..= j.
    let n = parent.len();
    let mut size = vec![1usize; n];
    let mut first: Vec<usize> = (0..n).collect();
    for j in 0..n {
        let p = parent[j];
        if p != NONE {
            if p <= j {
                return false;
            }
            size[p] += size[j];
            first[p] = first[p].min(first[j]);
        }
    }
    (0..n).all(|j| first[j] == j + 1 - size[j])
}

/// Number of children of every node.
pub fn child_counts(parent: &[usize]) -> Vec<usize> {
    let mut nc = vec![0usize; parent.len()];
    for &p in parent {
        if p != NONE {
            nc[p] += 1;
        }
    }
    nc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testmat::figure1_matrix;
    use mf_sparse::CooMatrix;

    #[test]
    fn figure1_etree() {
        let a = figure1_matrix();
        let parent = etree(&a);
        assert_eq!(parent, vec![1, 4, 3, 4, 5, NONE]);
    }

    #[test]
    fn tridiagonal_etree_is_a_path() {
        let mut coo = CooMatrix::new_symmetric(5);
        for i in 0..5 {
            coo.push(i, i, 2.0).unwrap();
        }
        for i in 1..5 {
            coo.push(i, i - 1, -1.0).unwrap();
        }
        let parent = etree(&coo.to_csc());
        assert_eq!(parent, vec![1, 2, 3, 4, NONE]);
    }

    #[test]
    fn diagonal_matrix_is_a_forest_of_singletons() {
        let a = mf_sparse::CscMatrix::identity(4, 1.0);
        let parent = etree(&a);
        assert_eq!(parent, vec![NONE; 4]);
        let post = postorder(&parent);
        assert_eq!(post.len(), 4);
    }

    #[test]
    fn postorder_parents_after_children() {
        let a = figure1_matrix();
        let parent = etree(&a);
        let post = postorder(&parent);
        let mut pos = [0usize; 6];
        for (k, &v) in post.iter().enumerate() {
            pos[v] = k;
        }
        for j in 0..6 {
            if parent[j] != NONE {
                assert!(pos[parent[j]] > pos[j]);
            }
        }
    }

    #[test]
    fn figure1_is_already_postordered() {
        let a = figure1_matrix();
        let parent = etree(&a);
        assert!(is_postordered(&parent));
    }

    #[test]
    fn deep_tree_does_not_overflow() {
        // Path of 200_000 nodes: recursive postorder would blow the stack.
        let n = 200_000;
        let parent: Vec<usize> = (0..n).map(|j| if j + 1 < n { j + 1 } else { NONE }).collect();
        let post = postorder(&parent);
        assert_eq!(post[0], 0);
        assert_eq!(post[n - 1], n - 1);
    }
}
