//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment cannot reach crates.io, so the workspace ships
//! this re-implementation of the surface its property tests use: the
//! `proptest!` macro, range / tuple / `any` / `collection::vec` /
//! `prop_map` strategies, and the `prop_assert*` macros. Generation is
//! seeded deterministically per (test name, case index), so failures are
//! reproducible run to run. There is no shrinking: a failing case panics
//! with the case number and the classic advice applies — re-run and
//! debug at that seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; rejection is not implemented.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0, max_global_rejects: 1024 }
    }
}

/// Deterministic per-case random source.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seeds from the test path and case index (FNV-1a over the name).
    pub fn for_case(test_path: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { inner: SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9e3779b97f4a7c15)) }
    }

    fn rng(&mut self) -> &mut SmallRng {
        &mut self.inner
    }
}

/// A value generator (subset of proptest's `Strategy`; no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.rng().gen::<f64>()
    }
}

macro_rules! signed_range_strategy {
    ($($ty:ty => $un:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end);
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.rng().gen_range(0u64..span);
                (self.start as i128 + off as i128) as $ty
            }
        }
    )*};
}

signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Marker strategy produced by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// The full-range strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any { _marker: core::marker::PhantomData }
}

macro_rules! any_strategy {
    ($($ty:ty => |$rng:ident| $gen:expr),+ $(,)?) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn generate(&self, $rng: &mut TestRng) -> $ty {
                $gen
            }
        }
    )+};
}

any_strategy!(
    bool => |rng| rng.rng().gen::<bool>(),
    u8 => |rng| rng.rng().gen::<u64>() as u8,
    u16 => |rng| rng.rng().gen::<u64>() as u16,
    u32 => |rng| rng.rng().gen::<u32>(),
    u64 => |rng| rng.rng().gen::<u64>(),
    usize => |rng| rng.rng().gen::<u64>() as usize,
    i32 => |rng| rng.rng().gen::<u32>() as i32,
    i64 => |rng| rng.rng().gen::<u64>() as i64,
    f64 => |rng| rng.rng().gen::<f64>(),
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Accepted length specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy generating vectors of `elem` values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.rng().gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` works.
pub mod prop {
    pub use crate::collection;
}

/// The proptest prelude (subset).
pub mod prelude {
    pub use crate::{any, prop, Any, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            panic!("prop_assert_eq failed: {:?} != {:?}", a, b);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            panic!($($fmt)*);
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            panic!("prop_assert_ne failed: both {:?}", a);
        }
    }};
}

/// The `proptest!` macro: declares `#[test]` functions whose arguments
/// are drawn from strategies, run for `cases` deterministic cases each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..cfg.cases as u64 {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let run = || $body;
                    run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in 0.25f64..0.75, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec((0usize..10, 0usize..10), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
        }

        #[test]
        fn prop_map_applies(s in (0usize..5).prop_map(|x| x * 2)) {
            prop_assert!(s % 2 == 0 && s < 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0usize..1000, 5..20);
        let mut r1 = TestRng::for_case("t", 3);
        let mut r2 = TestRng::for_case("t", 3);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
