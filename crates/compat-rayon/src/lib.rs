//! Offline drop-in subset of the `rayon` API.
//!
//! The build environment cannot reach crates.io, so the workspace carries
//! this minimal fork-join implementation over `std::thread::scope`:
//!
//! * order-preserving `par_iter()` / `into_par_iter()` + `map` + `collect`
//!   (results are collected in input order, so a parallel run is
//!   bit-identical to the sequential one);
//! * a global permit counter bounding the number of live worker threads
//!   across nested parallel calls (tree-recursive callers stay sane);
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] scoping an explicit
//!   parallelism degree, which the determinism tests use to compare
//!   single-threaded and multi-threaded sweeps.

use std::cell::Cell;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::OnceLock;

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Extra worker threads allowed to exist fleet-wide (the caller's thread
/// is always free). Bounds thread creation under nested parallelism.
fn permits() -> &'static AtomicIsize {
    static PERMITS: OnceLock<AtomicIsize> = OnceLock::new();
    PERMITS.get_or_init(|| AtomicIsize::new(default_threads() as isize - 1))
}

fn acquire_up_to(want: usize) -> usize {
    let p = permits();
    let mut cur = p.load(Ordering::Relaxed);
    loop {
        let take = (cur.max(0) as usize).min(want);
        if take == 0 {
            return 0;
        }
        match p.compare_exchange_weak(cur, cur - take as isize, Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => return take,
            Err(actual) => cur = actual,
        }
    }
}

fn release(n: usize) {
    if n > 0 {
        permits().fetch_add(n as isize, Ordering::AcqRel);
    }
}

thread_local! {
    /// Parallelism cap installed by [`ThreadPool::install`] on this thread.
    static INSTALLED: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads the current scope may use.
pub fn current_num_threads() -> usize {
    INSTALLED.with(|c| c.get()).unwrap_or_else(default_threads)
}

/// Runs `f` over `items`, returning results in input order. Work is
/// striped over up to `current_num_threads()` scoped threads (bounded by
/// the global permit pool); panics propagate to the caller.
fn execute<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let len = items.len();
    let limit = current_num_threads();
    if len <= 1 || limit <= 1 {
        return items.into_iter().map(f).collect();
    }
    let extra = acquire_up_to((limit - 1).min(len - 1));
    if extra == 0 {
        return items.into_iter().map(f).collect();
    }
    let nchunks = extra + 1;
    let mut buckets: Vec<Vec<(usize, I)>> = (0..nchunks).map(|_| Vec::new()).collect();
    for (i, it) in items.into_iter().enumerate() {
        buckets[i % nchunks].push((i, it));
    }
    let mut out: Vec<Option<T>> = (0..len).map(|_| None).collect();
    let fref = &f;
    let mut produced: Vec<Vec<(usize, T)>> = Vec::with_capacity(nchunks);
    std::thread::scope(|s| {
        let handles: Vec<_> = buckets
            .drain(1..)
            .map(|bucket| {
                s.spawn(move || bucket.into_iter().map(|(i, it)| (i, fref(it))).collect::<Vec<_>>())
            })
            .collect();
        let local: Vec<(usize, T)> =
            buckets.pop().unwrap().into_iter().map(|(i, it)| (i, fref(it))).collect();
        produced.push(local);
        for h in handles {
            match h.join() {
                Ok(v) => produced.push(v),
                Err(p) => {
                    release(extra);
                    std::panic::resume_unwind(p);
                }
            }
        }
    });
    release(extra);
    for chunk in produced {
        for (i, v) in chunk {
            out[i] = Some(v);
        }
    }
    out.into_iter().map(|v| v.expect("every index produced")).collect()
}

/// Parallel iterator machinery (subset).
pub mod iter {
    /// An order-preserving parallel iterator over owned items.
    pub struct ParIter<I> {
        items: Vec<I>,
    }

    /// A mapped parallel iterator.
    pub struct ParMap<I, F> {
        items: Vec<I>,
        f: F,
    }

    impl<I: Send> ParIter<I> {
        /// Maps each item through `f` (applied in parallel at collect time).
        pub fn map<T: Send, F: Fn(I) -> T + Sync>(self, f: F) -> ParMap<I, F> {
            ParMap { items: self.items, f }
        }

        /// Runs `f` on every item in parallel.
        pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
            super::execute(self.items, f);
        }

        /// Collects the items in input order.
        pub fn collect<C: FromIterator<I>>(self) -> C {
            self.items.into_iter().collect()
        }
    }

    impl<I: Send, T: Send, F: Fn(I) -> T + Sync> ParMap<I, F> {
        /// Applies the map in parallel and collects in input order.
        pub fn collect<C: FromIterator<T>>(self) -> C {
            super::execute(self.items, &self.f).into_iter().collect()
        }

        /// Applies the map in parallel, discarding results.
        pub fn for_each<G: Fn(T) + Sync>(self, g: G) {
            let f = &self.f;
            super::execute(self.items, move |i| g(f(i)));
        }
    }

    /// Conversion into a parallel iterator (by value).
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Converts into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self.into_iter().collect() }
        }
    }

    /// Conversion into a parallel iterator over references.
    pub trait IntoParallelRefIterator<'data> {
        /// Item type (a reference).
        type Item: Send;
        /// Borrows into a parallel iterator.
        fn par_iter(&'data self) -> ParIter<Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        fn par_iter(&'data self) -> ParIter<&'data T> {
            ParIter { items: self.iter().collect() }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        fn par_iter(&'data self) -> ParIter<&'data T> {
            ParIter { items: self.iter().collect() }
        }
    }
}

/// The rayon prelude (subset).
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped-parallelism pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with the default parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `n` threads (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { default_threads() } else { self.num_threads };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A parallelism scope: inside [`ThreadPool::install`], parallel
/// iterators on the calling thread use at most this pool's thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's parallelism cap installed.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = INSTALLED.with(|c| c.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_collects_results() {
        let v: Vec<u32> = (0..100).collect();
        let r: Result<Vec<u32>, ()> = v.into_par_iter().map(Ok).collect();
        assert_eq!(r.unwrap().len(), 100);
    }

    #[test]
    fn collect_into_result_short_circuits_on_err() {
        let v: Vec<u32> = (0..100).collect();
        let r: Result<Vec<u32>, u32> =
            v.into_par_iter().map(|x| if x == 50 { Err(x) } else { Ok(x) }).collect();
        assert_eq!(r, Err(50));
    }

    #[test]
    fn nested_parallelism_terminates() {
        let outer: Vec<usize> = (0..8).collect();
        let sums: Vec<usize> = outer
            .par_iter()
            .map(|&i| {
                let inner: Vec<usize> = (0..100).collect();
                inner.par_iter().map(|&j| i + j).collect::<Vec<_>>().iter().sum()
            })
            .collect();
        assert_eq!(sums[0], (0..100).sum::<usize>());
    }

    #[test]
    fn install_caps_parallelism() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 1);
        let seq: Vec<usize> =
            pool.install(|| (0..10).collect::<Vec<_>>().into_par_iter().collect());
        assert_eq!(seq, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            let v: Vec<usize> = (0..64).collect();
            let _: Vec<usize> =
                v.into_par_iter().map(|x| if x == 63 { panic!("boom") } else { x }).collect();
        });
        assert!(caught.is_err());
    }
}
