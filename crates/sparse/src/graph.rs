//! Undirected adjacency graph of a sparse pattern.

use crate::csc::CscMatrix;

/// Adjacency structure of the (symmetrized) pattern of a square matrix,
/// with the diagonal removed.
///
/// This is the input format of all orderings: node `i` is adjacent to the
/// nodes whose rows appear in column `i` of `A + Aᵀ`.
#[derive(Debug, Clone)]
pub struct Graph {
    ptr: Vec<usize>,
    adj: Vec<usize>,
}

impl Graph {
    /// Builds the graph of `A + Aᵀ` minus the diagonal.
    pub fn from_matrix(a: &CscMatrix) -> Self {
        let s = if a.is_structurally_symmetric() { a.clone() } else { a.symmetrized() };
        let n = s.ncols();
        let mut ptr = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(s.nnz());
        ptr.push(0);
        for j in 0..n {
            for &i in s.rows_in_col(j) {
                if i != j {
                    adj.push(i);
                }
            }
            ptr.push(adj.len());
        }
        Graph { ptr, adj }
    }

    /// Builds directly from adjacency arrays (neighbors of node `i` are
    /// `adj[ptr[i]..ptr[i+1]]`, must exclude `i` itself).
    pub fn from_raw_parts(ptr: Vec<usize>, adj: Vec<usize>) -> Self {
        debug_assert_eq!(*ptr.first().unwrap_or(&0), 0);
        debug_assert_eq!(*ptr.last().unwrap_or(&0), adj.len());
        Graph { ptr, adj }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.ptr.len().saturating_sub(1)
    }

    /// Number of directed edges stored (twice the undirected edge count).
    pub fn nedges(&self) -> usize {
        self.adj.len()
    }

    /// Neighbors of node `i`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adj[self.ptr[i]..self.ptr[i + 1]]
    }

    /// Degree of node `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        self.ptr[i + 1] - self.ptr[i]
    }

    /// Extracts the subgraph induced by `nodes`; returns the subgraph and
    /// the mapping from subgraph ids to original ids.
    pub fn subgraph(&self, nodes: &[usize]) -> (Graph, Vec<usize>) {
        let mut local = vec![usize::MAX; self.n()];
        for (k, &v) in nodes.iter().enumerate() {
            local[v] = k;
        }
        let mut ptr = Vec::with_capacity(nodes.len() + 1);
        let mut adj = Vec::new();
        ptr.push(0);
        for &v in nodes {
            for &w in self.neighbors(v) {
                if local[w] != usize::MAX {
                    adj.push(local[w]);
                }
            }
            ptr.push(adj.len());
        }
        (Graph { ptr, adj }, nodes.to_vec())
    }

    /// Connected components; returns the component id of each node and the
    /// number of components.
    pub fn components(&self) -> (Vec<usize>, usize) {
        let n = self.n();
        let mut comp = vec![usize::MAX; n];
        let mut ncomp = 0;
        let mut stack = Vec::new();
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            comp[s] = ncomp;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v) {
                    if comp[w] == usize::MAX {
                        comp[w] = ncomp;
                        stack.push(w);
                    }
                }
            }
            ncomp += 1;
        }
        (comp, ncomp)
    }

    /// BFS level structure rooted at `root` over the nodes with
    /// `mask[v] == true`; returns `(levels, last_level_nodes, depth)`.
    /// `levels[v] == usize::MAX` for unreached nodes.
    pub fn bfs_levels(&self, root: usize, mask: &[bool]) -> (Vec<usize>, Vec<usize>, usize) {
        let n = self.n();
        let mut level = vec![usize::MAX; n];
        let mut frontier = vec![root];
        level[root] = 0;
        let mut depth = 0;
        let mut last = frontier.clone();
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &w in self.neighbors(v) {
                    if mask[w] && level[w] == usize::MAX {
                        level[w] = level[v] + 1;
                        next.push(w);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            depth += 1;
            last = next.clone();
            frontier = next;
        }
        (level, last, depth)
    }

    /// Finds a pseudo-peripheral node of the masked subgraph containing
    /// `seed` (repeated BFS from an extremal node of the deepest level).
    pub fn pseudo_peripheral(&self, seed: usize, mask: &[bool]) -> usize {
        let mut root = seed;
        let (_, last, mut depth) = self.bfs_levels(root, mask);
        let mut best = *last.iter().min_by_key(|&&v| self.degree(v)).unwrap_or(&root);
        for _ in 0..8 {
            let (_, last2, d2) = self.bfs_levels(best, mask);
            if d2 > depth {
                depth = d2;
                root = best;
                best = *last2.iter().min_by_key(|&&v| self.degree(v)).unwrap_or(&root);
            } else {
                return best;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn path_graph(n: usize) -> Graph {
        let mut coo = CooMatrix::new_symmetric(n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
        }
        for i in 1..n {
            coo.push(i, i - 1, -1.0).unwrap();
        }
        Graph::from_matrix(&coo.to_csc())
    }

    #[test]
    fn path_graph_degrees() {
        let g = path_graph(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.neighbors(2), &[1, 3]);
    }

    #[test]
    fn diagonal_is_removed() {
        let g = path_graph(3);
        for i in 0..3 {
            assert!(!g.neighbors(i).contains(&i));
        }
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut coo = CooMatrix::new_symmetric(4);
        for i in 0..4 {
            coo.push(i, i, 1.0).unwrap();
        }
        coo.push(1, 0, 1.0).unwrap();
        coo.push(3, 2, 1.0).unwrap();
        let g = Graph::from_matrix(&coo.to_csc());
        let (comp, ncomp) = g.components();
        assert_eq!(ncomp, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn pseudo_peripheral_on_path_is_an_endpoint() {
        let g = path_graph(9);
        let mask = vec![true; 9];
        let p = g.pseudo_peripheral(4, &mask);
        assert!(p == 0 || p == 8, "got {p}");
    }

    #[test]
    fn bfs_levels_depth() {
        let g = path_graph(6);
        let mask = vec![true; 6];
        let (levels, last, depth) = g.bfs_levels(0, &mask);
        assert_eq!(depth, 5);
        assert_eq!(levels[5], 5);
        assert_eq!(last, vec![5]);
    }

    #[test]
    fn subgraph_relabels() {
        let g = path_graph(5);
        let (sg, map) = g.subgraph(&[1, 2, 3]);
        assert_eq!(sg.n(), 3);
        assert_eq!(map, vec![1, 2, 3]);
        assert_eq!(sg.neighbors(1), &[0, 2]); // node 2 adjacent to 1 and 3
    }
}
