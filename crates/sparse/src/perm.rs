//! Validated permutations.

use crate::error::SparseError;

/// A permutation of `0..n`, stored together with its inverse.
///
/// The convention follows the ordering literature: `new_of(old)` is the
/// position of original index `old` in the reordered matrix, and
/// `old_of(new)` is the original index placed at position `new` (the
/// "elimination order": `old_of(0)` is eliminated first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_of: Vec<usize>,
    old_of: Vec<usize>,
}

impl Permutation {
    /// Identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let v: Vec<usize> = (0..n).collect();
        Permutation { new_of: v.clone(), old_of: v }
    }

    /// Builds from `new_of` (position of each original index), validating
    /// that it is a bijection on `0..n`.
    pub fn from_new_order(new_of: Vec<usize>) -> Result<Self, SparseError> {
        let n = new_of.len();
        let mut old_of = vec![usize::MAX; n];
        for (old, &new) in new_of.iter().enumerate() {
            if new >= n || old_of[new] != usize::MAX {
                return Err(SparseError::InvalidPermutation { n, offending: new });
            }
            old_of[new] = old;
        }
        Ok(Permutation { new_of, old_of })
    }

    /// Builds from an elimination order: `order[k]` is the original index
    /// eliminated at step `k`.
    pub fn from_elimination_order(old_of: Vec<usize>) -> Result<Self, SparseError> {
        let n = old_of.len();
        let mut new_of = vec![usize::MAX; n];
        for (new, &old) in old_of.iter().enumerate() {
            if old >= n || new_of[old] != usize::MAX {
                return Err(SparseError::InvalidPermutation { n, offending: old });
            }
            new_of[old] = new;
        }
        Ok(Permutation { new_of, old_of })
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.new_of.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.new_of.is_empty()
    }

    /// New position of original index `old`.
    #[inline]
    pub fn new_of(&self, old: usize) -> usize {
        self.new_of[old]
    }

    /// Original index at new position `new`.
    #[inline]
    pub fn old_of(&self, new: usize) -> usize {
        self.old_of[new]
    }

    /// The full `new_of` vector.
    pub fn new_order(&self) -> &[usize] {
        &self.new_of
    }

    /// The full elimination-order vector.
    pub fn elimination_order(&self) -> &[usize] {
        &self.old_of
    }

    /// Inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation { new_of: self.old_of.clone(), old_of: self.new_of.clone() }
    }

    /// Composition: applies `self` first, then `other` (`other ∘ self`).
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len());
        let new_of: Vec<usize> = (0..self.len()).map(|i| other.new_of(self.new_of(i))).collect();
        Permutation::from_new_order(new_of).expect("composition of bijections is a bijection")
    }

    /// Applies the permutation to a dense vector indexed by original ids:
    /// `out[new_of(i)] = v[i]`.
    pub fn apply_vec<T: Copy + Default>(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.len());
        let mut out = vec![T::default(); v.len()];
        for (old, &x) in v.iter().enumerate() {
            out[self.new_of(old)] = x;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trips() {
        let p = Permutation::identity(5);
        for i in 0..5 {
            assert_eq!(p.new_of(i), i);
            assert_eq!(p.old_of(i), i);
        }
    }

    #[test]
    fn invalid_permutations_rejected() {
        assert!(Permutation::from_new_order(vec![0, 0, 1]).is_err());
        assert!(Permutation::from_new_order(vec![0, 3, 1]).is_err());
        assert!(Permutation::from_elimination_order(vec![1, 1, 0]).is_err());
    }

    #[test]
    fn inverse_and_composition() {
        let p = Permutation::from_new_order(vec![2, 0, 1]).unwrap();
        let q = p.inverse();
        let id = p.then(&q);
        assert_eq!(id, Permutation::identity(3));
    }

    #[test]
    fn elimination_order_convention() {
        // Eliminate 2 first, then 0, then 1.
        let p = Permutation::from_elimination_order(vec![2, 0, 1]).unwrap();
        assert_eq!(p.new_of(2), 0);
        assert_eq!(p.old_of(0), 2);
    }

    #[test]
    fn apply_vec_moves_entries() {
        let p = Permutation::from_new_order(vec![1, 2, 0]).unwrap();
        let out = p.apply_vec(&[10, 20, 30]);
        assert_eq!(out, vec![30, 10, 20]);
    }
}
