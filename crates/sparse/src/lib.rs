//! Sparse-matrix substrate for the multifrontal-solver reproduction.
//!
//! This crate provides the data structures every other layer builds on:
//!
//! * [`CooMatrix`] — a triplet builder used to assemble matrices entry by
//!   entry (duplicates are summed, like most finite-element assembly codes).
//! * [`CscMatrix`] — compressed sparse column storage, the canonical format
//!   consumed by the orderings and the symbolic analysis.
//! * [`Permutation`] — a validated permutation with its inverse, used to
//!   apply fill-reducing orderings symmetrically.
//! * [`gen`] — synthetic generators reproducing the *structure families* of
//!   the eight test problems of the paper (Table 1), at configurable scale.
//! * [`io`] — Matrix Market reading/writing so real instances from the
//!   Rutherford-Boeing / UF / PARASOL collections can be substituted in.
//!
//! Index type is `usize` throughout; the reproduction targets matrices with
//! up to a few hundred thousand rows, where the simplicity outweighs the
//! cache benefit of 32-bit indices.

#![warn(missing_docs)]
pub mod coo;
pub mod csc;
pub mod error;
pub mod gen;
pub mod graph;
pub mod hb;
pub mod io;
pub mod perm;
pub mod stats;

pub use coo::CooMatrix;
pub use csc::{CscMatrix, Symmetry};
pub use error::SparseError;
pub use graph::Graph;
pub use perm::Permutation;
