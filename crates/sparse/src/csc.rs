//! Compressed sparse column storage.

use crate::error::SparseError;
use crate::perm::Permutation;

/// Symmetry tag carried by a matrix.
///
/// `Symmetric` matrices store their *full* pattern (both triangles) but the
/// tag tells the solver layers to use an LDLᵀ-style factorization and the
/// paper's irregular symmetric type-2 blocking; `General` selects LU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Symmetry {
    /// Unsymmetric (LU) matrix.
    General,
    /// Structurally and numerically symmetric (LDLᵀ) matrix.
    Symmetric,
}

impl Symmetry {
    /// Short tag used in reports, mirroring Table 1 of the paper.
    pub fn tag(self) -> &'static str {
        match self {
            Symmetry::General => "UNS",
            Symmetry::Symmetric => "SYM",
        }
    }
}

/// A sparse matrix in compressed sparse column form.
///
/// Invariants (checked by [`CscMatrix::validate`], maintained by all
/// constructors in this crate):
/// * `col_ptr.len() == ncols + 1`, `col_ptr[0] == 0`, non-decreasing;
/// * `row_idx.len() == values.len() == col_ptr[ncols]`;
/// * within each column, row indices are strictly increasing and `< nrows`.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
    symmetry: Symmetry,
}

impl CscMatrix {
    /// Builds a matrix from raw CSC arrays.
    ///
    /// Debug builds assert the CSC invariants; use [`CscMatrix::validate`]
    /// when the arrays come from an untrusted source.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        values: Vec<f64>,
        symmetry: Symmetry,
    ) -> Self {
        let m = CscMatrix { nrows, ncols, col_ptr, row_idx, values, symmetry };
        debug_assert!(m.validate().is_ok(), "invalid CSC arrays: {:?}", m.validate());
        m
    }

    /// Checks all CSC invariants, returning a descriptive error on failure.
    pub fn validate(&self) -> Result<(), SparseError> {
        if self.col_ptr.len() != self.ncols + 1 || self.col_ptr[0] != 0 {
            return Err(SparseError::Parse { line: 0, msg: "bad col_ptr shape".into() });
        }
        if *self.col_ptr.last().unwrap() != self.row_idx.len()
            || self.row_idx.len() != self.values.len()
        {
            return Err(SparseError::Parse { line: 0, msg: "nnz mismatch".into() });
        }
        for j in 0..self.ncols {
            if self.col_ptr[j] > self.col_ptr[j + 1] {
                return Err(SparseError::Parse { line: 0, msg: "col_ptr not monotone".into() });
            }
            let col = &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]];
            for w in col.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::Parse {
                        line: 0,
                        msg: format!("rows in column {j} not strictly increasing"),
                    });
                }
            }
            if let Some(&last) = col.last() {
                if last >= self.nrows {
                    return Err(SparseError::IndexOutOfBounds {
                        row: last,
                        col: j,
                        nrows: self.nrows,
                        ncols: self.ncols,
                    });
                }
            }
        }
        Ok(())
    }

    /// Identity-pattern `n x n` matrix with the given diagonal value.
    pub fn identity(n: usize, diag: f64) -> Self {
        CscMatrix::from_raw_parts(
            n,
            n,
            (0..=n).collect(),
            (0..n).collect(),
            vec![diag; n],
            Symmetry::Symmetric,
        )
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (full pattern, both triangles for symmetric).
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Symmetry tag.
    pub fn symmetry(&self) -> Symmetry {
        self.symmetry
    }

    /// Column pointer array (`ncols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row indices, column-major.
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Stored values, column-major, aligned with [`CscMatrix::row_idx`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Range of positions of column `j` in `row_idx` / `values`.
    pub fn col_range(&self, j: usize) -> std::ops::Range<usize> {
        self.col_ptr[j]..self.col_ptr[j + 1]
    }

    /// Row indices of column `j`.
    pub fn rows_in_col(&self, j: usize) -> &[usize] {
        &self.row_idx[self.col_range(j)]
    }

    /// Values of column `j`.
    pub fn vals_in_col(&self, j: usize) -> &[f64] {
        let r = self.col_range(j);
        &self.values[r]
    }

    /// Value at `(i, j)`, or 0 if the position is not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let r = self.col_range(j);
        match self.row_idx[r.clone()].binary_search(&i) {
            Ok(k) => self.values[r.start + k],
            Err(_) => 0.0,
        }
    }

    /// Transposed copy (CSC of Aᵀ, equivalently CSR of A).
    pub fn transpose(&self) -> CscMatrix {
        let mut cnt = vec![0usize; self.nrows + 1];
        for &r in &self.row_idx {
            cnt[r + 1] += 1;
        }
        for i in 0..self.nrows {
            cnt[i + 1] += cnt[i];
        }
        let mut next = cnt.clone();
        let mut rows = vec![0usize; self.nnz()];
        let mut vals = vec![0f64; self.nnz()];
        for j in 0..self.ncols {
            for p in self.col_range(j) {
                let i = self.row_idx[p];
                let q = next[i];
                next[i] += 1;
                rows[q] = j;
                vals[q] = self.values[p];
            }
        }
        CscMatrix::from_raw_parts(self.ncols, self.nrows, cnt, rows, vals, self.symmetry)
    }

    /// Pattern of `A + Aᵀ` (values summed; diagonal kept as stored).
    ///
    /// Orderings for unsymmetric matrices run on this symmetrized pattern,
    /// as MUMPS does.
    pub fn symmetrized(&self) -> CscMatrix {
        assert_eq!(self.nrows, self.ncols, "symmetrized() needs a square matrix");
        let at = self.transpose();
        let n = self.ncols;
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut rows = Vec::with_capacity(2 * self.nnz());
        let mut vals = Vec::with_capacity(2 * self.nnz());
        col_ptr.push(0);
        for j in 0..n {
            let (a, av) = (self.rows_in_col(j), self.vals_in_col(j));
            let (b, bv) = (at.rows_in_col(j), at.vals_in_col(j));
            let (mut p, mut q) = (0, 0);
            while p < a.len() || q < b.len() {
                let ra = a.get(p).copied().unwrap_or(usize::MAX);
                let rb = b.get(q).copied().unwrap_or(usize::MAX);
                if ra < rb {
                    rows.push(ra);
                    vals.push(av[p]);
                    p += 1;
                } else if rb < ra {
                    rows.push(rb);
                    vals.push(bv[q]);
                    q += 1;
                } else {
                    rows.push(ra);
                    vals.push(if ra == j { av[p] } else { av[p] + bv[q] });
                    p += 1;
                    q += 1;
                }
            }
            col_ptr.push(rows.len());
        }
        CscMatrix::from_raw_parts(n, n, col_ptr, rows, vals, Symmetry::Symmetric)
    }

    /// Symmetric permutation `P A Pᵀ`: entry `(i, j)` moves to
    /// `(perm.new_of(i), perm.new_of(j))`.
    pub fn permute_symmetric(&self, perm: &Permutation) -> CscMatrix {
        assert_eq!(self.nrows, self.ncols);
        assert_eq!(perm.len(), self.ncols);
        let n = self.ncols;
        let mut cnt = vec![0usize; n + 1];
        for j in 0..n {
            cnt[perm.new_of(j) + 1] += self.col_range(j).len();
        }
        for j in 0..n {
            cnt[j + 1] += cnt[j];
        }
        let col_ptr = cnt.clone();
        let mut rows = vec![0usize; self.nnz()];
        let mut vals = vec![0f64; self.nnz()];
        let mut next = cnt;
        for j in 0..n {
            let nj = perm.new_of(j);
            for p in self.col_range(j) {
                let q = next[nj];
                next[nj] += 1;
                rows[q] = perm.new_of(self.row_idx[p]);
                vals[q] = self.values[p];
            }
        }
        // Sort rows within each permuted column.
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for j in 0..n {
            let r = col_ptr[j]..col_ptr[j + 1];
            scratch.clear();
            scratch.extend(rows[r.clone()].iter().copied().zip(vals[r.clone()].iter().copied()));
            scratch.sort_unstable_by_key(|&(i, _)| i);
            for (k, &(i, v)) in scratch.iter().enumerate() {
                rows[r.start + k] = i;
                vals[r.start + k] = v;
            }
        }
        CscMatrix::from_raw_parts(n, n, col_ptr, rows, vals, self.symmetry)
    }

    /// Dense matrix-vector product `y = A x` (for residual checks in tests).
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        let mut y = vec![0f64; self.nrows];
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            for p in self.col_range(j) {
                y[self.row_idx[p]] += self.values[p] * xj;
            }
        }
        y
    }

    /// True if every stored off-diagonal `(i, j)` has a stored `(j, i)`.
    pub fn is_structurally_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let at = self.transpose();
        (0..self.ncols).all(|j| self.rows_in_col(j) == at.rows_in_col(j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CscMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut coo = CooMatrix::new(3, 3);
        for &(i, j, v) in &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 2, 5.0)] {
            coo.push(i, j, v).unwrap();
        }
        coo.to_csc()
    }

    #[test]
    fn get_and_ranges() {
        let a = sample();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(2, 0), 4.0);
        assert_eq!(a.get(1, 0), 0.0);
        assert_eq!(a.nnz(), 5);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn transpose_round_trip() {
        let a = sample();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = sample();
        let y = a.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![1.0 + 6.0, 6.0, 4.0 + 15.0]);
    }

    #[test]
    fn symmetrized_pattern_is_symmetric() {
        let a = sample();
        let s = a.symmetrized();
        assert!(s.is_structurally_symmetric());
        // (0,2) and (2,0) both stored with summed value 2 + 4 = 6.
        assert_eq!(s.get(0, 2), 6.0);
        assert_eq!(s.get(2, 0), 6.0);
    }

    #[test]
    fn permute_symmetric_preserves_entries() {
        let a = sample();
        let p = Permutation::from_new_order(vec![2, 0, 1]).unwrap();
        let b = a.permute_symmetric(&p);
        assert!(b.validate().is_ok());
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(b.get(p.new_of(i), p.new_of(j)), a.get(i, j));
            }
        }
    }

    #[test]
    fn identity_is_valid() {
        let i = CscMatrix::identity(4, 2.0);
        assert_eq!(i.nnz(), 4);
        assert!(i.is_structurally_symmetric());
        assert_eq!(i.get(2, 2), 2.0);
    }
}
