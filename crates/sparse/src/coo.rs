//! Coordinate (triplet) format builder.

use crate::csc::{CscMatrix, Symmetry};
use crate::error::SparseError;

/// A sparse matrix under construction, stored as `(row, col, value)` triplets.
///
/// This is the assembly format: entries may be pushed in any order and
/// duplicates are *summed* during conversion to [`CscMatrix`], matching the
/// behaviour of finite-element assembly and of the Matrix Market convention.
#[derive(Debug, Clone)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
    symmetry: Symmetry,
}

impl CooMatrix {
    /// Creates an empty builder for an `nrows x ncols` general matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
            symmetry: Symmetry::General,
        }
    }

    /// Creates an empty builder for an `n x n` symmetric matrix.
    ///
    /// Only one triangle needs to be pushed; conversion mirrors entries so
    /// the resulting [`CscMatrix`] stores the full pattern while keeping the
    /// `Symmetric` tag (the solver layers use the tag to pick LDLᵀ vs LU).
    pub fn new_symmetric(n: usize) -> Self {
        CooMatrix { symmetry: Symmetry::Symmetric, ..CooMatrix::new(n, n) }
    }

    /// Pre-allocates room for `additional` more triplets.
    pub fn reserve(&mut self, additional: usize) {
        self.rows.reserve(additional);
        self.cols.reserve(additional);
        self.vals.reserve(additional);
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of triplets pushed so far (before duplicate summation).
    pub fn ntriplets(&self) -> usize {
        self.vals.len()
    }

    /// Symmetry tag this builder was created with.
    pub fn symmetry(&self) -> Symmetry {
        self.symmetry
    }

    /// Pushes one entry; returns an error if it is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, val: f64) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Converts to compressed sparse column format, summing duplicates.
    ///
    /// For symmetric builders, off-diagonal entries are mirrored so that the
    /// stored pattern is structurally symmetric.
    pub fn to_csc(&self) -> CscMatrix {
        let mirror = self.symmetry == Symmetry::Symmetric;
        let extra = if mirror {
            self.rows.iter().zip(&self.cols).filter(|(r, c)| r != c).count()
        } else {
            0
        };
        let nnz_in = self.vals.len() + extra;

        // Counting sort by column.
        let mut col_counts = vec![0usize; self.ncols + 1];
        for (&r, &c) in self.rows.iter().zip(&self.cols) {
            col_counts[c + 1] += 1;
            if mirror && r != c {
                col_counts[r + 1] += 1;
            }
        }
        for j in 0..self.ncols {
            col_counts[j + 1] += col_counts[j];
        }
        let col_ptr_unmerged = col_counts.clone();
        let mut next = col_counts;
        let mut row_idx = vec![0usize; nnz_in];
        let mut values = vec![0f64; nnz_in];
        for ((&r, &c), &v) in self.rows.iter().zip(&self.cols).zip(&self.vals) {
            let p = next[c];
            next[c] += 1;
            row_idx[p] = r;
            values[p] = v;
            if mirror && r != c {
                let p = next[r];
                next[r] += 1;
                row_idx[p] = c;
                values[p] = v;
            }
        }

        // Sort each column by row index and merge duplicates.
        let mut out_ptr = Vec::with_capacity(self.ncols + 1);
        let mut out_rows = Vec::with_capacity(nnz_in);
        let mut out_vals = Vec::with_capacity(nnz_in);
        out_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for j in 0..self.ncols {
            let (lo, hi) = (col_ptr_unmerged[j], col_ptr_unmerged[j + 1]);
            scratch.clear();
            scratch.extend(row_idx[lo..hi].iter().copied().zip(values[lo..hi].iter().copied()));
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut k = 0;
            while k < scratch.len() {
                let (r, mut v) = scratch[k];
                k += 1;
                while k < scratch.len() && scratch[k].0 == r {
                    v += scratch[k].1;
                    k += 1;
                }
                out_rows.push(r);
                out_vals.push(v);
            }
            out_ptr.push(out_rows.len());
        }

        CscMatrix::from_raw_parts(
            self.nrows,
            self.ncols,
            out_ptr,
            out_rows,
            out_vals,
            self.symmetry,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_out_of_bounds_is_rejected() {
        let mut coo = CooMatrix::new(2, 3);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 3, 1.0).is_err());
        assert!(coo.push(1, 2, 1.0).is_ok());
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.5).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        let csc = coo.to_csc();
        assert_eq!(csc.nnz(), 2);
        assert_eq!(csc.col_range(0).len(), 2);
        assert_eq!(csc.values()[0], 3.5);
    }

    #[test]
    fn symmetric_builder_mirrors_pattern() {
        let mut coo = CooMatrix::new_symmetric(3);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        coo.push(2, 2, 2.0).unwrap();
        coo.push(2, 0, 1.0).unwrap(); // lower triangle only
        let csc = coo.to_csc();
        assert_eq!(csc.nnz(), 5);
        // column 0 holds rows {0, 2}; column 2 holds rows {0, 2}
        assert_eq!(csc.rows_in_col(0), &[0, 2]);
        assert_eq!(csc.rows_in_col(2), &[0, 2]);
        assert_eq!(csc.symmetry(), Symmetry::Symmetric);
    }

    #[test]
    fn columns_are_sorted() {
        let mut coo = CooMatrix::new(4, 4);
        for &(r, c) in &[(3usize, 1usize), (0, 1), (2, 1), (1, 1)] {
            coo.push(r, c, 1.0).unwrap();
        }
        let csc = coo.to_csc();
        assert_eq!(csc.rows_in_col(1), &[0, 1, 2, 3]);
    }
}
