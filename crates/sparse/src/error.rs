//! Error type shared by the sparse-matrix layer.

use std::fmt;

/// Errors raised while building, converting or reading sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry referenced a row or column outside the matrix dimensions.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows of the matrix being built.
        nrows: usize,
        /// Number of columns of the matrix being built.
        ncols: usize,
    },
    /// A permutation vector was not a bijection on `0..n`.
    InvalidPermutation {
        /// Length of the permutation.
        n: usize,
        /// First index found duplicated or out of range.
        offending: usize,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        nrows: usize,
        /// Number of columns.
        ncols: usize,
    },
    /// A Matrix Market stream could not be parsed.
    Parse {
        /// 1-based line number of the failure.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// An I/O failure while reading or writing a matrix file.
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, nrows, ncols } => {
                write!(f, "entry ({row}, {col}) out of bounds for a {nrows}x{ncols} matrix")
            }
            SparseError::InvalidPermutation { n, offending } => write!(
                f,
                "invalid permutation of length {n}: index {offending} repeated or out of range"
            ),
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "operation requires a square matrix, got {nrows}x{ncols}")
            }
            SparseError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}
