//! Catalogue of the paper's eight test problems (Table 1) and their
//! synthetic analogues.

use crate::csc::{CscMatrix, Symmetry};
use crate::gen::{circuit, grid, lp};

/// One of the eight matrices of Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperMatrix {
    /// Automotive crankshaft model (PARASOL) — 3-D solid FEM, SYM.
    BmwCra1,
    /// Linear programming matrix `A·Aᵀ` (UF collection) — SYM.
    Gupta3,
    /// Medium-size door (PARASOL) — shell FEM, SYM.
    MsDoor,
    /// Ship structure (PARASOL) — shell FEM, SYM.
    Ship003,
    /// AT&T harmonic balance method (UF) — circuit, UNS.
    Pre2,
    /// AT&T harmonic balance method (UF) — circuit, UNS.
    TwoTone,
    /// 3-D ultrasound wave propagation (Simula) — UNS.
    Ultrasound3,
    /// Complex zeolite / sodalite crystal (UF) — UNS.
    Xenon2,
}

/// All eight matrices in the row order of Table 1.
pub const ALL_PAPER_MATRICES: [PaperMatrix; 8] = [
    PaperMatrix::BmwCra1,
    PaperMatrix::Gupta3,
    PaperMatrix::MsDoor,
    PaperMatrix::Ship003,
    PaperMatrix::Pre2,
    PaperMatrix::TwoTone,
    PaperMatrix::Ultrasound3,
    PaperMatrix::Xenon2,
];

impl PaperMatrix {
    /// Name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            PaperMatrix::BmwCra1 => "BMWCRA_1",
            PaperMatrix::Gupta3 => "GUPTA3",
            PaperMatrix::MsDoor => "MSDOOR",
            PaperMatrix::Ship003 => "SHIP_003",
            PaperMatrix::Pre2 => "PRE2",
            PaperMatrix::TwoTone => "TWOTONE",
            PaperMatrix::Ultrasound3 => "ULTRASOUND3",
            PaperMatrix::Xenon2 => "XENON2",
        }
    }

    /// Order of the original instance (Table 1).
    pub fn paper_order(self) -> usize {
        match self {
            PaperMatrix::BmwCra1 => 148_770,
            PaperMatrix::Gupta3 => 16_783,
            PaperMatrix::MsDoor => 415_863,
            PaperMatrix::Ship003 => 121_728,
            PaperMatrix::Pre2 => 659_033,
            PaperMatrix::TwoTone => 120_750,
            PaperMatrix::Ultrasound3 => 185_193,
            PaperMatrix::Xenon2 => 157_464,
        }
    }

    /// Entry count of the original instance (Table 1).
    pub fn paper_nnz(self) -> usize {
        match self {
            PaperMatrix::BmwCra1 => 5_396_386,
            PaperMatrix::Gupta3 => 4_670_105,
            PaperMatrix::MsDoor => 10_328_399,
            PaperMatrix::Ship003 => 4_103_881,
            PaperMatrix::Pre2 => 5_959_282,
            PaperMatrix::TwoTone => 1_224_224,
            PaperMatrix::Ultrasound3 => 11_390_625,
            PaperMatrix::Xenon2 => 3_866_688,
        }
    }

    /// Symmetry of the problem (Table 1's Type column).
    pub fn symmetry(self) -> Symmetry {
        match self {
            PaperMatrix::BmwCra1
            | PaperMatrix::Gupta3
            | PaperMatrix::MsDoor
            | PaperMatrix::Ship003 => Symmetry::Symmetric,
            _ => Symmetry::General,
        }
    }

    /// Table 1's description column.
    pub fn description(self) -> &'static str {
        match self {
            PaperMatrix::BmwCra1 => "Automotive crankshaft model",
            PaperMatrix::Gupta3 => "Linear programming matrix (A*A')",
            PaperMatrix::MsDoor => "Medium size door",
            PaperMatrix::Ship003 => "Ship structure",
            PaperMatrix::Pre2 => "AT&T, harmonic balance method",
            PaperMatrix::TwoTone => "AT&T, harmonic balance method",
            PaperMatrix::Ultrasound3 => "Propagation of 3D ultrasound waves",
            PaperMatrix::Xenon2 => "Complex zeolite, sodalite crystals",
        }
    }

    /// True for the four unsymmetric problems used in Tables 3, 5.
    pub fn is_unsymmetric(self) -> bool {
        self.symmetry() == Symmetry::General
    }

    /// Generates the synthetic analogue at the default reproduction scale
    /// (orders of a few thousand; ~10-50x smaller than the originals so the
    /// full 8x4 sweep runs in minutes on a laptop).
    pub fn instantiate(self) -> CscMatrix {
        self.instantiate_scaled(1.0)
    }

    /// Generates the analogue with linear dimensions scaled by
    /// `scale.cbrt()` for 3-D families (`scale.sqrt()` for 2.5-D, linear
    /// for the rest), so that `scale` approximately multiplies the order.
    pub fn instantiate_scaled(self, scale: f64) -> CscMatrix {
        let s3 = scale.cbrt();
        let s2 = scale.sqrt();
        let d3 = |base: usize| ((base as f64 * s3).round() as usize).max(3);
        let d2 = |base: usize| ((base as f64 * s2).round() as usize).max(3);
        let d1 = |base: usize| ((base as f64 * scale).round() as usize).max(16);
        match self {
            PaperMatrix::BmwCra1 => {
                grid::grid3d(d3(20), d3(20), d3(20), grid::Stencil::Box, Symmetry::Symmetric, 101)
            }
            PaperMatrix::Gupta3 => {
                lp::lp_normal_equations(d1(2000), d1(4000), 3, 8.max(d1(8) / 1000 + 8), 0.12, 102)
            }
            PaperMatrix::MsDoor => grid::shell3d(d2(64), d2(48), 3),
            PaperMatrix::Ship003 => grid::shell3d(d2(56), d2(36), 4),
            PaperMatrix::Pre2 => circuit::harmonic_balance(d1(1500), 8, 3, 6, 0.12, 105),
            PaperMatrix::TwoTone => circuit::harmonic_balance(d1(1000), 8, 5, 8, 0.18, 106),
            PaperMatrix::Ultrasound3 => {
                grid::grid3d(d3(20), d3(20), d3(20), grid::Stencil::Box, Symmetry::General, 107)
            }
            PaperMatrix::Xenon2 => {
                grid::grid3d(d3(24), d3(22), d3(15), grid::Stencil::Box, Symmetry::General, 108)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_instances_build_and_match_symmetry() {
        for m in ALL_PAPER_MATRICES {
            let a = m.instantiate_scaled(0.2);
            assert!(a.validate().is_ok(), "{} invalid", m.name());
            assert_eq!(a.symmetry(), m.symmetry(), "{}", m.name());
            assert!(a.nrows() > 100, "{} too small: {}", m.name(), a.nrows());
            if m.symmetry() == Symmetry::Symmetric {
                assert!(a.is_structurally_symmetric(), "{}", m.name());
            }
        }
    }

    #[test]
    fn scaling_grows_order() {
        let small = PaperMatrix::BmwCra1.instantiate_scaled(0.1);
        let big = PaperMatrix::BmwCra1.instantiate_scaled(0.4);
        assert!(big.nrows() > small.nrows());
    }

    #[test]
    fn catalogue_metadata_is_consistent() {
        assert_eq!(ALL_PAPER_MATRICES.len(), 8);
        let unsym: Vec<_> = ALL_PAPER_MATRICES.iter().filter(|m| m.is_unsymmetric()).collect();
        assert_eq!(unsym.len(), 4);
    }
}
