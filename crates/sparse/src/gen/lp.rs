//! Linear-programming normal-equations generator (GUPTA3 family).

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds the pattern of `B Bᵀ` for a random sparse LP constraint matrix
/// `B` (`m x ncols`), the structure family of GUPTA3 (`A·Aᵀ` of a linear
/// program).
///
/// LP constraint matrices mix many sparse columns with a few dense ones;
/// the dense columns make `B Bᵀ` locally very dense, which is what gives
/// GUPTA3 its extreme nnz/n ratio (~278 in the paper) and its shallow, fat
/// assembly trees.
///
/// * `m` — number of constraints = order of the result.
/// * `ncols` — number of LP variables (columns of `B`).
/// * `col_nnz` — entries per sparse column.
/// * `dense_cols` — number of dense columns; each touches `dense_frac * m`
///   random rows.
pub fn lp_normal_equations(
    m: usize,
    ncols: usize,
    col_nnz: usize,
    dense_cols: usize,
    dense_frac: f64,
    seed: u64,
) -> CscMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Columns of B as row-index lists.
    let mut cols: Vec<Vec<usize>> = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let k =
            if c < dense_cols { ((m as f64 * dense_frac) as usize).max(2) } else { col_nnz.max(2) };
        let mut rows: Vec<usize> = (0..k).map(|_| rng.gen_range(0..m)).collect();
        // Bias sparse columns towards locality so BBᵀ has banded structure
        // in addition to the dense blocks (LP staircase structure).
        if c >= dense_cols {
            let base = rng.gen_range(0..m);
            for r in rows.iter_mut() {
                *r = (base + *r % (4 * col_nnz + 1)) % m;
            }
        }
        rows.sort_unstable();
        rows.dedup();
        cols.push(rows);
    }
    // Pattern of B Bᵀ: clique over the rows of each column.
    let mut coo = CooMatrix::new_symmetric(m);
    for i in 0..m {
        coo.push(i, i, 1.0).unwrap();
    }
    let mut seen: Vec<std::collections::HashSet<usize>> = vec![Default::default(); m];
    for rows in &cols {
        for (a, &i) in rows.iter().enumerate() {
            for &j in &rows[a + 1..] {
                if seen[j].insert(i) {
                    coo.push(j, i, -1.0 / (rows.len() as f64)).unwrap();
                }
            }
        }
    }
    let csc = coo.to_csc();
    // Make it diagonally dominant for numeric tests.
    let mut coo2 = CooMatrix::new_symmetric(m);
    for j in 0..m {
        for (&i, &v) in csc.rows_in_col(j).iter().zip(csc.vals_in_col(j)) {
            if i > j {
                coo2.push(i, j, v).unwrap();
            } else if i == j {
                let off: f64 = csc.vals_in_col(j).iter().map(|x| x.abs()).sum();
                coo2.push(j, j, off + 1.0).unwrap();
            }
        }
    }
    coo2.to_csc()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_is_symmetric_and_dense_enough() {
        let a = lp_normal_equations(300, 600, 3, 4, 0.2, 42);
        assert_eq!(a.nrows(), 300);
        assert!(a.is_structurally_symmetric());
        // Dense columns should push average degree well above the sparse base.
        assert!(a.nnz() as f64 / a.nrows() as f64 > 8.0, "nnz/n = {}", a.nnz() as f64 / 300.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = lp_normal_equations(100, 200, 3, 2, 0.1, 7);
        let b = lp_normal_equations(100, 200, 3, 2, 0.1, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn diagonally_dominant() {
        let a = lp_normal_equations(120, 240, 3, 2, 0.15, 3);
        for j in 0..a.ncols() {
            let off: f64 = a
                .rows_in_col(j)
                .iter()
                .zip(a.vals_in_col(j))
                .filter(|(&i, _)| i != j)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(a.get(j, j) > off);
        }
    }
}
