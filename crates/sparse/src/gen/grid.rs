//! Regular-grid finite-element / finite-difference generators.

use crate::coo::CooMatrix;
use crate::csc::{CscMatrix, Symmetry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Coupling stencil for grid generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stencil {
    /// 5-point (2-D) / 7-point (3-D) finite differences.
    Star,
    /// 9-point (2-D) / 27-point (3-D) finite elements (full neighbour box).
    Box,
}

fn idx3(nx: usize, ny: usize, x: usize, y: usize, z: usize) -> usize {
    (z * ny + y) * nx + x
}

/// Symmetric positive-definite matrix on an `nx x ny` grid.
///
/// `Stencil::Star` gives the classic 5-point Laplacian; `Stencil::Box` the
/// 9-point FEM coupling. Values are diagonally dominant so that pivoting is
/// never an issue in the numeric tests.
pub fn grid2d(nx: usize, ny: usize, stencil: Stencil) -> CscMatrix {
    let n = nx * ny;
    let mut coo = CooMatrix::new_symmetric(n);
    coo.reserve(n * 5);
    for y in 0..ny {
        for x in 0..nx {
            let i = y * nx + x;
            let mut deg = 0.0;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    if stencil == Stencil::Star && dx != 0 && dy != 0 {
                        continue;
                    }
                    let (xx, yy) = (x as i64 + dx, y as i64 + dy);
                    if xx < 0 || yy < 0 || xx >= nx as i64 || yy >= ny as i64 {
                        continue;
                    }
                    let j = (yy as usize) * nx + xx as usize;
                    deg += 1.0;
                    if j < i {
                        coo.push(i, j, -1.0).unwrap();
                    }
                }
            }
            coo.push(i, i, deg + 1.0).unwrap();
        }
    }
    coo.to_csc()
}

/// Matrix on an `nx x ny x nz` grid.
///
/// With `Symmetry::Symmetric` the result is SPD (diagonally dominant
/// Laplacian-like); with `Symmetry::General` the off-diagonal couplings are
/// perturbed asymmetrically (convection-like), producing an unsymmetric
/// matrix with a structurally symmetric pattern, as in the ULTRASOUND3 and
/// XENON2 problems.
pub fn grid3d(
    nx: usize,
    ny: usize,
    nz: usize,
    stencil: Stencil,
    sym: Symmetry,
    seed: u64,
) -> CscMatrix {
    let n = nx * ny * nz;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo =
        if sym == Symmetry::Symmetric { CooMatrix::new_symmetric(n) } else { CooMatrix::new(n, n) };
    coo.reserve(n * if stencil == Stencil::Box { 27 } else { 7 });
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx3(nx, ny, x, y, z);
                let mut deg = 0.0;
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            if dx == 0 && dy == 0 && dz == 0 {
                                continue;
                            }
                            if stencil == Stencil::Star && dx.abs() + dy.abs() + dz.abs() != 1 {
                                continue;
                            }
                            let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if xx < 0
                                || yy < 0
                                || zz < 0
                                || xx >= nx as i64
                                || yy >= ny as i64
                                || zz >= nz as i64
                            {
                                continue;
                            }
                            let j = idx3(nx, ny, xx as usize, yy as usize, zz as usize);
                            deg += 1.0;
                            match sym {
                                Symmetry::Symmetric => {
                                    if j < i {
                                        coo.push(i, j, -1.0).unwrap();
                                    }
                                }
                                Symmetry::General => {
                                    // Asymmetric convection perturbation.
                                    let v = -1.0 + 0.4 * rng.gen::<f64>();
                                    coo.push(i, j, v).unwrap();
                                }
                            }
                        }
                    }
                }
                coo.push(i, i, deg + 1.0).unwrap();
            }
        }
    }
    coo.to_csc()
}

/// Thin 3-D grid ("2.5-D" shell), the structure family of plate/shell FEM
/// models such as MSDOOR and SHIP_003: large in two dimensions, a few
/// layers in the third, with full box coupling.
pub fn shell3d(nx: usize, ny: usize, layers: usize) -> CscMatrix {
    grid3d(nx, ny, layers.max(1), Stencil::Box, Symmetry::Symmetric, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2d_star_is_5_point() {
        let a = grid2d(4, 4, Stencil::Star);
        assert_eq!(a.nrows(), 16);
        // Interior node 5 has 4 neighbours + diagonal.
        assert_eq!(a.rows_in_col(5).len(), 5);
        assert!(a.is_structurally_symmetric());
    }

    #[test]
    fn grid2d_box_is_9_point() {
        let a = grid2d(4, 4, Stencil::Box);
        assert_eq!(a.rows_in_col(5).len(), 9);
    }

    #[test]
    fn grid3d_box_interior_has_27() {
        let a = grid3d(4, 4, 4, Stencil::Box, Symmetry::Symmetric, 0);
        // Node (1,1,1) = 21 is interior.
        assert_eq!(a.rows_in_col(21).len(), 27);
        assert!(a.is_structurally_symmetric());
    }

    #[test]
    fn grid3d_unsymmetric_values_pattern_symmetric() {
        let a = grid3d(3, 3, 3, Stencil::Star, Symmetry::General, 7);
        assert!(a.is_structurally_symmetric());
        assert_eq!(a.symmetry(), Symmetry::General);
        // Values differ across the diagonal somewhere.
        let asym = (0..a.ncols()).any(|j| {
            a.rows_in_col(j).iter().any(|&i| i != j && (a.get(i, j) - a.get(j, i)).abs() > 1e-12)
        });
        assert!(asym);
    }

    #[test]
    fn grid_is_diagonally_dominant() {
        let a = grid2d(5, 5, Stencil::Box);
        for j in 0..a.ncols() {
            let off: f64 = a
                .rows_in_col(j)
                .iter()
                .zip(a.vals_in_col(j))
                .filter(|(&i, _)| i != j)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(a.get(j, j) > off, "column {j} not dominant");
        }
    }

    #[test]
    fn shell_is_thin() {
        let a = shell3d(10, 8, 2);
        assert_eq!(a.nrows(), 160);
        assert!(a.is_structurally_symmetric());
    }
}
