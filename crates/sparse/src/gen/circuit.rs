//! Circuit-simulation generators (PRE2 / TWOTONE family).

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Unsymmetric circuit-like matrix: a sparse random network with power-law
/// style hubs (a few very high degree nodes, e.g. supply rails) and an
/// unsymmetric pattern.
///
/// * `n` — order.
/// * `avg_deg` — average off-diagonal entries per row.
/// * `hubs` — number of hub nodes; each hub connects to `hub_frac * n`
///   random nodes (one triangle only, making the pattern unsymmetric).
pub fn circuit(n: usize, avg_deg: usize, hubs: usize, hub_frac: f64, seed: u64) -> CscMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    coo.reserve(n * (avg_deg + 1));
    for i in 0..n {
        coo.push(i, i, avg_deg as f64 + 4.0).unwrap();
    }
    // Local couplings (components are laid out roughly linearly on a board).
    for i in 0..n {
        for _ in 0..avg_deg {
            let span = 2 + rng.gen_range(0..(avg_deg * 8).max(3));
            let j = (i + rng.gen_range(1..=span)) % n;
            if j != i {
                // Deliberately only one direction ~60% of the time.
                coo.push(i, j, -0.5 + rng.gen::<f64>() * 0.2).unwrap();
                if rng.gen::<f64>() < 0.4 {
                    coo.push(j, i, -0.5 + rng.gen::<f64>() * 0.2).unwrap();
                }
            }
        }
    }
    // Hubs: near-dense rows (voltage sources / rails).
    let reach = ((n as f64 * hub_frac) as usize).max(2);
    for h in 0..hubs {
        let hub = (h * n) / hubs.max(1);
        for _ in 0..reach {
            let j = rng.gen_range(0..n);
            if j != hub {
                coo.push(hub, j, -0.1).unwrap();
            }
        }
    }
    coo.to_csc()
}

/// Harmonic-balance structure (TWOTONE / PRE2 family): a base circuit
/// replicated over `nfreq` frequency blocks, with every component coupling
/// its images across neighbouring blocks.
///
/// The replication produces the characteristic quasi-block-circulant
/// pattern of AT&T's harmonic-balance matrices, whose assembly trees react
/// strongly to the ordering choice (the paper's biggest gain, TWOTONE/AMF
/// +50.6%, is in this family).
pub fn harmonic_balance(
    base_n: usize,
    nfreq: usize,
    avg_deg: usize,
    hubs: usize,
    hub_frac: f64,
    seed: u64,
) -> CscMatrix {
    let base = circuit(base_n, avg_deg, hubs, hub_frac, seed);
    let n = base_n * nfreq;
    let mut coo = CooMatrix::new(n, n);
    coo.reserve(base.nnz() * nfreq * 2);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);
    for f in 0..nfreq {
        let off = f * base_n;
        for j in 0..base_n {
            for (&i, &v) in base.rows_in_col(j).iter().zip(base.vals_in_col(j)) {
                coo.push(off + i, off + j, v).unwrap();
                // Cross-frequency coupling on the diagonal components.
                if i == j && f + 1 < nfreq && rng.gen::<f64>() < 0.6 {
                    coo.push(off + base_n + i, off + j, -0.05).unwrap();
                    coo.push(off + i, off + base_n + j, -0.05).unwrap();
                }
            }
        }
    }
    coo.to_csc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csc::Symmetry;

    #[test]
    fn circuit_is_unsymmetric() {
        let a = circuit(500, 4, 3, 0.1, 11);
        assert_eq!(a.symmetry(), Symmetry::General);
        assert!(!a.is_structurally_symmetric());
        assert!(a.nnz() > 500 * 4);
    }

    #[test]
    fn circuit_has_full_diagonal() {
        let a = circuit(200, 3, 2, 0.05, 5);
        for j in 0..a.ncols() {
            assert!(a.get(j, j) != 0.0, "missing diagonal at {j}");
        }
    }

    #[test]
    fn harmonic_balance_dimensions() {
        let a = harmonic_balance(100, 5, 3, 2, 0.1, 19);
        assert_eq!(a.nrows(), 500);
        // Coupled blocks: entries exist outside the block diagonal.
        let mut off_block = false;
        for j in 0..a.ncols() {
            for &i in a.rows_in_col(j) {
                if i / 100 != j / 100 {
                    off_block = true;
                }
            }
        }
        assert!(off_block);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = harmonic_balance(60, 3, 3, 1, 0.1, 2);
        let b = harmonic_balance(60, 3, 3, 1, 0.1, 2);
        assert_eq!(a, b);
    }
}
