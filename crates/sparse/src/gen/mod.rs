//! Synthetic problem generators.
//!
//! The paper evaluates on eight matrices from the Rutherford-Boeing, UF and
//! PARASOL collections (Table 1). Those exact instances are not
//! redistributable here, so this module generates *structural analogues*:
//! one generator per application family (3-D solid FEM, shell FEM,
//! linear-programming normal equations, harmonic-balance circuits, 3-D wave
//! propagation, crystal lattices). What the experiments measure — assembly
//! tree topology and front sizes under the four orderings — is governed by
//! the structure family, which these generators preserve. See
//! [`paper`] for the catalogue mapping each Table 1 matrix to a generator
//! and scale.

pub mod circuit;
pub mod grid;
pub mod lp;
pub mod paper;

pub use circuit::{circuit, harmonic_balance};
pub use grid::{grid2d, grid3d, shell3d, Stencil};
pub use lp::lp_normal_equations;
pub use paper::{PaperMatrix, ALL_PAPER_MATRICES};
