//! Matrix Market I/O.
//!
//! Supports the `matrix coordinate real {general|symmetric}` and
//! `matrix coordinate pattern {general|symmetric}` headers, which covers
//! the Rutherford-Boeing / UF instances the paper uses (after conversion
//! with standard tools). Pattern files get value 1.0 on every entry and a
//! boosted diagonal so they remain factorizable in tests.

use crate::coo::CooMatrix;
use crate::csc::{CscMatrix, Symmetry};
use crate::error::SparseError;
use std::io::{BufRead, Write};

/// Parses a Matrix Market stream into a [`CscMatrix`].
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<CscMatrix, SparseError> {
    let mut lines = reader.lines().enumerate();
    let (lineno, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (i + 1, line);
                }
            }
            None => return Err(SparseError::Parse { line: 0, msg: "empty stream".into() }),
        }
    };
    let h: Vec<String> = header.split_whitespace().map(|s| s.to_ascii_lowercase()).collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" || h[2] != "coordinate" {
        return Err(SparseError::Parse {
            line: lineno,
            msg: format!("unsupported header: {header}"),
        });
    }
    let pattern = match h[3].as_str() {
        "real" | "integer" => false,
        "pattern" => true,
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                msg: format!("unsupported field type: {other}"),
            })
        }
    };
    let symmetric = match h[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                msg: format!("unsupported symmetry: {other}"),
            })
        }
    };

    // Skip comments, read size line.
    let (sz_line_no, sz_line) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break (i + 1, line);
            }
            None => return Err(SparseError::Parse { line: 0, msg: "missing size line".into() }),
        }
    };
    let dims: Vec<usize> = sz_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| SparseError::Parse { line: sz_line_no, msg: e.to_string() })?;
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: sz_line_no,
            msg: "size line needs 3 fields".into(),
        });
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
    let mut coo =
        if symmetric { CooMatrix::new_symmetric(nrows) } else { CooMatrix::new(nrows, ncols) };
    coo.reserve(nnz);
    let mut read = 0usize;
    for (i, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse_idx = |s: Option<&str>, what: &str| -> Result<usize, SparseError> {
            s.ok_or_else(|| SparseError::Parse { line: i + 1, msg: format!("missing {what}") })?
                .parse::<usize>()
                .map_err(|e| SparseError::Parse { line: i + 1, msg: e.to_string() })
        };
        let r = parse_idx(it.next(), "row")?;
        let c = parse_idx(it.next(), "col")?;
        if r == 0 || c == 0 {
            return Err(SparseError::Parse { line: i + 1, msg: "indices are 1-based".into() });
        }
        let v = if pattern {
            if r == c {
                64.0 // boosted diagonal keeps pattern-only instances factorizable
            } else {
                1.0
            }
        } else {
            it.next()
                .ok_or_else(|| SparseError::Parse { line: i + 1, msg: "missing value".into() })?
                .parse::<f64>()
                .map_err(|e| SparseError::Parse { line: i + 1, msg: e.to_string() })?
        };
        coo.push(r - 1, c - 1, v)?;
        read += 1;
    }
    if read != nnz {
        return Err(SparseError::Parse {
            line: 0,
            msg: format!("expected {nnz} entries, read {read}"),
        });
    }
    Ok(coo.to_csc())
}

/// Writes a matrix in Matrix Market `coordinate real` format.
///
/// Symmetric matrices are written with their lower triangle only, under a
/// `symmetric` header.
pub fn write_matrix_market<W: Write>(w: &mut W, a: &CscMatrix) -> Result<(), SparseError> {
    let symmetric = a.symmetry() == Symmetry::Symmetric;
    let kind = if symmetric { "symmetric" } else { "general" };
    writeln!(w, "%%MatrixMarket matrix coordinate real {kind}")?;
    let nnz = if symmetric {
        (0..a.ncols()).map(|j| a.rows_in_col(j).iter().filter(|&&i| i >= j).count()).sum()
    } else {
        a.nnz()
    };
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), nnz)?;
    for j in 0..a.ncols() {
        for (&i, &v) in a.rows_in_col(j).iter().zip(a.vals_in_col(j)) {
            if symmetric && i < j {
                continue;
            }
            writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v)?;
        }
    }
    Ok(())
}

/// Reads a Matrix Market file from disk.
pub fn read_matrix_market_file(path: &std::path::Path) -> Result<CscMatrix, SparseError> {
    let f = std::fs::File::open(path)?;
    read_matrix_market(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid::{grid2d, Stencil};

    #[test]
    fn round_trip_general() {
        let mut coo = CooMatrix::new(3, 3);
        for &(i, j, v) in &[(0, 0, 2.0), (1, 0, -1.0), (1, 1, 2.0), (2, 2, 3.0)] {
            coo.push(i, j, v).unwrap();
        }
        let a = coo.to_csc();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn round_trip_symmetric() {
        let a = grid2d(5, 4, Stencil::Star);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(a.nnz(), b.nnz());
        assert_eq!(a.symmetry(), b.symmetry());
        for j in 0..a.ncols() {
            assert_eq!(a.rows_in_col(j), b.rows_in_col(j));
        }
    }

    #[test]
    fn pattern_files_get_unit_values() {
        let text =
            "%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n2 2 3\n1 1\n2 2\n2 1\n";
        let a = read_matrix_market(std::io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(a.nnz(), 4); // mirrored off-diagonal
        assert_eq!(a.get(0, 1), 1.0);
        assert!(a.get(0, 0) > 1.0);
    }

    #[test]
    fn bad_headers_are_rejected() {
        for bad in [
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 0.0\n",
            "garbage\n",
        ] {
            assert!(read_matrix_market(std::io::BufReader::new(bad.as_bytes())).is_err());
        }
    }

    #[test]
    fn truncated_file_is_rejected() {
        let text = "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n2 2 1.0\n";
        assert!(read_matrix_market(std::io::BufReader::new(text.as_bytes())).is_err());
    }
}
