//! Harwell–Boeing / Rutherford–Boeing reader.
//!
//! The paper's test problems come from the Rutherford-Boeing collection
//! \[7\], whose native exchange format is the Harwell–Boeing fixed-width
//! layout. This module reads the common subset: real or pattern,
//! assembled (`RUA`, `RSA`, `PUA`, `PSA`) matrices — enough to load every
//! matrix of Table 1 from its original distribution file.
//!
//! The format is line-oriented with Fortran fixed-width fields:
//!
//! ```text
//! line 1: title (72) | key (8)
//! line 2: TOTCRD PTRCRD INDCRD VALCRD RHSCRD           (5 x I14)
//! line 3: MXTYPE (3) | NROW NCOL NNZERO NELTVL         (4 x I14)
//! line 4: PTRFMT INDFMT VALFMT RHSFMT                  (format strings)
//! line 5: only when RHSCRD > 0 (skipped)
//! then the column pointers, row indices and values, each wrapped to the
//! declared Fortran formats.
//! ```
//!
//! Fortran `D` exponents (`1.5D+03`) are accepted. Symmetric files store
//! the lower triangle; the result is mirrored into the full pattern with
//! the `Symmetric` tag, matching the crate convention.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::error::SparseError;
use std::io::BufRead;

fn parse_err(line: usize, msg: impl Into<String>) -> SparseError {
    SparseError::Parse { line, msg: msg.into() }
}

/// Splits a data section of `count` whitespace-separated tokens spread
/// over multiple lines.
fn take_tokens(
    lines: &mut impl Iterator<Item = (usize, std::io::Result<String>)>,
    count: usize,
    what: &str,
) -> Result<Vec<String>, SparseError> {
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        match lines.next() {
            Some((_, line)) => {
                let line = line?;
                out.extend(line.split_whitespace().map(|t| t.to_string()));
            }
            None => {
                return Err(parse_err(0, format!("unexpected EOF while reading {what}")));
            }
        }
    }
    if out.len() > count {
        out.truncate(count);
    }
    Ok(out)
}

/// Reads a Harwell–Boeing stream into a [`CscMatrix`].
pub fn read_harwell_boeing<R: BufRead>(reader: R) -> Result<CscMatrix, SparseError> {
    let mut lines = reader.lines().enumerate().map(|(i, l)| (i + 1, l));

    // Line 1: title/key — ignored.
    let _ = lines.next().ok_or_else(|| parse_err(1, "empty stream"))?.1?;

    // Line 2: card counts; only RHSCRD matters (to skip line 5).
    let (l2no, l2) = lines.next().ok_or_else(|| parse_err(2, "missing card counts"))?;
    let l2 = l2?;
    let cards: Vec<i64> = l2
        .split_whitespace()
        .map(|t| t.parse::<i64>())
        .collect::<Result<_, _>>()
        .map_err(|e| parse_err(l2no, e.to_string()))?;
    if cards.len() < 4 {
        return Err(parse_err(l2no, "card-count line needs at least 4 fields"));
    }
    let rhscrd = cards.get(4).copied().unwrap_or(0);

    // Line 3: type and dimensions.
    let (l3no, l3) = lines.next().ok_or_else(|| parse_err(3, "missing type line"))?;
    let l3 = l3?;
    let mut it = l3.split_whitespace();
    let mxtype = it.next().ok_or_else(|| parse_err(l3no, "missing MXTYPE"))?.to_ascii_uppercase();
    let dims: Vec<usize> = it
        .take(3)
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| parse_err(l3no, e.to_string()))?;
    if dims.len() < 3 {
        return Err(parse_err(l3no, "type line needs NROW NCOL NNZERO"));
    }
    let (nrow, ncol, nnz) = (dims[0], dims[1], dims[2]);
    let ty: Vec<char> = mxtype.chars().collect();
    if ty.len() != 3 {
        return Err(parse_err(l3no, format!("bad MXTYPE '{mxtype}'")));
    }
    let pattern_only = ty[0] == 'P';
    if !(ty[0] == 'R' || ty[0] == 'P') {
        return Err(parse_err(l3no, format!("unsupported value type '{}'", ty[0])));
    }
    let symmetric = matches!(ty[1], 'S' | 'Z');
    let skew = ty[1] == 'Z';
    if !matches!(ty[1], 'U' | 'S' | 'Z' | 'R') {
        return Err(parse_err(l3no, format!("unsupported symmetry '{}'", ty[1])));
    }
    if ty[2] != 'A' {
        return Err(parse_err(l3no, "only assembled (A) matrices are supported"));
    }

    // Line 4: Fortran formats — tokenized reading makes them irrelevant.
    let _ = lines.next().ok_or_else(|| parse_err(4, "missing format line"))?.1?;
    if rhscrd > 0 {
        let _ = lines.next().ok_or_else(|| parse_err(5, "missing RHS format line"))?.1?;
    }

    // Data sections.
    let ptr_tok = take_tokens(&mut lines, ncol + 1, "column pointers")?;
    let col_ptr: Vec<usize> = ptr_tok
        .iter()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| parse_err(0, format!("bad column pointer: {e}")))?;
    let idx_tok = take_tokens(&mut lines, nnz, "row indices")?;
    let row_idx: Vec<usize> = idx_tok
        .iter()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| parse_err(0, format!("bad row index: {e}")))?;
    let values: Vec<f64> = if pattern_only {
        Vec::new()
    } else {
        let val_tok = take_tokens(&mut lines, nnz, "values")?;
        val_tok
            .iter()
            .map(|t| t.replace(['D', 'd'], "E").parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| parse_err(0, format!("bad value: {e}")))?
    };

    // Assemble (HB is 1-based).
    let mut coo =
        if symmetric { CooMatrix::new_symmetric(nrow) } else { CooMatrix::new(nrow, ncol) };
    coo.reserve(nnz);
    for j in 0..ncol {
        let (lo, hi) = (col_ptr[j], col_ptr[j + 1]);
        if lo < 1 || hi < lo || hi - 1 > nnz {
            return Err(parse_err(0, format!("bad pointer range for column {}", j + 1)));
        }
        for p in lo - 1..hi - 1 {
            let i = row_idx[p];
            if i < 1 || i > nrow {
                return Err(parse_err(0, format!("row index {i} out of range")));
            }
            let mut v = if pattern_only {
                if i - 1 == j {
                    64.0 // boosted diagonal, as in the Matrix Market reader
                } else {
                    1.0
                }
            } else {
                values[p]
            };
            if skew && i - 1 != j {
                v = -v; // skew-symmetric: mirror with sign (stored triangle)
            }
            coo.push(i - 1, j, v)?;
        }
    }
    Ok(coo.to_csc())
}

/// Reads a Harwell–Boeing file from disk.
pub fn read_harwell_boeing_file(path: &std::path::Path) -> Result<CscMatrix, SparseError> {
    let f = std::fs::File::open(path)?;
    read_harwell_boeing(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csc::Symmetry;

    /// A tiny RSA (real symmetric assembled) file: the lower triangle of
    /// the Figure 1-like 3x3 matrix [[4,-1,0],[-1,4,-2],[0,-2,4]].
    const RSA_SAMPLE: &str = "\
Sample symmetric matrix                                                 KEY00001
             4             1             1             2             0
RSA                        3             3             5             0
(26I3)          (26I3)          (5D16.8)            \n\
  1  3  5  6
  1  2  2  3  3
 4.0D+00 -1.0D+00  4.0D+00 -2.0D+00  4.0D+00
";

    /// A tiny RUA (real unsymmetric assembled) file:
    /// [[1,0],[5,2]] stored by columns.
    const RUA_SAMPLE: &str = "\
Sample unsymmetric matrix                                               KEY00002
             4             1             1             2             0
RUA                        2             2             3             0
(26I3)          (26I3)          (5E16.8)            \n\
  1  3  4
  1  2  2
 1.0E+00 5.0E+00 2.0E+00
";

    #[test]
    fn reads_symmetric_sample() {
        let a = read_harwell_boeing(RSA_SAMPLE.as_bytes()).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.symmetry(), Symmetry::Symmetric);
        assert_eq!(a.nnz(), 7); // mirrored off-diagonals
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(2, 1), -2.0);
        assert!(a.is_structurally_symmetric());
    }

    #[test]
    fn reads_unsymmetric_sample() {
        let a = read_harwell_boeing(RUA_SAMPLE.as_bytes()).unwrap();
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.symmetry(), Symmetry::General);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 0), 5.0);
        assert_eq!(a.get(1, 1), 2.0);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn fortran_d_exponents_are_parsed() {
        let a = read_harwell_boeing(RSA_SAMPLE.as_bytes()).unwrap();
        // all values came through D-format
        assert_eq!(a.get(1, 1), 4.0);
    }

    #[test]
    fn pattern_files_get_unit_values() {
        let text = "\
Pattern sample                                                          KEY00003
             3             1             1             0             0
PSA                        2             2             2             0
(26I3)          (26I3)
  1  2  3
  1  2
";
        let a = read_harwell_boeing(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 2);
        assert!(a.get(0, 0) > 1.0);
    }

    #[test]
    fn elemental_matrices_are_rejected() {
        let text = "\
Elemental                                                              KEY00004
             3             1             1             1             0
RSE                        2             2             2             0
(26I3)          (26I3)          (5E16.8)
  1  2  3
  1  2
 1.0 2.0
";
        assert!(read_harwell_boeing(text.as_bytes()).is_err());
    }

    #[test]
    fn truncated_data_is_rejected() {
        let text = "\
Truncated                                                              KEY00005
             4             1             1             2             0
RUA                        2             2             3             0
(26I3)          (26I3)          (5E16.8)
  1  3  4
  1  2  2
 1.0E+00
";
        assert!(read_harwell_boeing(text.as_bytes()).is_err());
    }

    #[test]
    fn solves_a_loaded_hb_matrix() {
        let a = read_harwell_boeing(RSA_SAMPLE.as_bytes()).unwrap();
        // End-to-end sanity through the pattern: structurally symmetric,
        // diagonally dominant, validates.
        assert!(a.validate().is_ok());
    }
}
