//! Structural statistics of sparse matrices.
//!
//! Cheap descriptors used by the experiment reports to characterize the
//! generated analogues against the published properties of the original
//! collection matrices (density, bandwidth, symmetry).

use crate::csc::CscMatrix;

/// Summary of a matrix's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Order (rows).
    pub n: usize,
    /// Stored entries.
    pub nnz: usize,
    /// Average entries per row.
    pub avg_row_nnz: f64,
    /// Maximum entries in any column.
    pub max_col_nnz: usize,
    /// Maximum `|i - j|` over stored entries.
    pub bandwidth: usize,
    /// Fraction of off-diagonal entries whose transpose position is also
    /// stored (1.0 = structurally symmetric).
    pub structural_symmetry: f64,
    /// Fraction of rows with a stored diagonal entry.
    pub diag_coverage: f64,
}

/// Computes [`MatrixStats`] for a square matrix.
pub fn matrix_stats(a: &CscMatrix) -> MatrixStats {
    assert_eq!(a.nrows(), a.ncols(), "stats are defined for square matrices");
    let n = a.ncols();
    let at = a.transpose();
    let mut bandwidth = 0usize;
    let mut max_col = 0usize;
    let mut diag = 0usize;
    let mut off = 0usize;
    let mut mirrored = 0usize;
    for j in 0..n {
        let rows = a.rows_in_col(j);
        max_col = max_col.max(rows.len());
        for &i in rows {
            bandwidth = bandwidth.max(i.abs_diff(j));
            if i == j {
                diag += 1;
            } else {
                off += 1;
                if at.rows_in_col(j).binary_search(&i).is_ok() {
                    mirrored += 1;
                }
            }
        }
    }
    MatrixStats {
        n,
        nnz: a.nnz(),
        avg_row_nnz: a.nnz() as f64 / n.max(1) as f64,
        max_col_nnz: max_col,
        bandwidth,
        structural_symmetry: if off == 0 { 1.0 } else { mirrored as f64 / off as f64 },
        diag_coverage: diag as f64 / n.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::gen::grid::{grid2d, Stencil};

    #[test]
    fn grid_stats_are_symmetric_and_banded() {
        let a = grid2d(6, 5, Stencil::Star);
        let s = matrix_stats(&a);
        assert_eq!(s.n, 30);
        assert_eq!(s.structural_symmetry, 1.0);
        assert_eq!(s.diag_coverage, 1.0);
        assert_eq!(s.bandwidth, 6); // one grid row apart
        assert!(s.avg_row_nnz > 3.0 && s.avg_row_nnz < 5.0);
    }

    #[test]
    fn unsymmetric_fraction_detected() {
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 1.0).unwrap();
        }
        coo.push(2, 0, 1.0).unwrap(); // no (0,2) mirror
        coo.push(1, 0, 1.0).unwrap();
        coo.push(0, 1, 1.0).unwrap(); // mirrored pair
        let s = matrix_stats(&coo.to_csc());
        assert!((s.structural_symmetry - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.bandwidth, 2);
    }

    #[test]
    fn diagonal_matrix_degenerate_values() {
        let a = crate::csc::CscMatrix::identity(4, 1.0);
        let s = matrix_stats(&a);
        assert_eq!(s.bandwidth, 0);
        assert_eq!(s.structural_symmetry, 1.0);
        assert_eq!(s.max_col_nnz, 1);
    }

    #[test]
    fn generators_match_paper_families() {
        // The analogue families keep their defining traits: circuits are
        // unsymmetric with hubs (large max column), LP normal equations
        // are dense-ish, grids are perfectly symmetric.
        let circuit = crate::gen::circuit::circuit(400, 4, 3, 0.1, 5);
        let sc = matrix_stats(&circuit);
        assert!(sc.structural_symmetry < 0.95);
        let lp = crate::gen::lp::lp_normal_equations(300, 600, 3, 4, 0.15, 5);
        let sl = matrix_stats(&lp);
        assert_eq!(sl.structural_symmetry, 1.0);
        assert!(sl.avg_row_nnz > 8.0);
    }
}
