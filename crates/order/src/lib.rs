//! Fill-reducing orderings.
//!
//! The paper studies its scheduling strategies under four reordering
//! techniques because the assembly-tree *topology* — deep and irregular vs.
//! wide and balanced — is what the dynamic schedulers react to:
//!
//! * **AMD** — approximate minimum degree ([`mindeg`] with the external
//!   degree metric), producing deep, irregular trees;
//! * **AMF** — approximate minimum fill (same quotient-graph engine with a
//!   deficiency metric, as implemented inside MUMPS), even deeper trees;
//! * **METIS-like nested dissection** ([`nd`]), wide well-balanced trees;
//! * **PORD-like hybrid** ([`pord`]), a bottom-up/top-down compromise.
//!
//! All four are exposed uniformly through [`OrderingKind::compute`].

#![warn(missing_docs)]
pub mod mindeg;
pub mod nd;
pub mod pord;
pub mod rcm;
pub mod stats;

use mf_sparse::{CscMatrix, Graph, Permutation};

/// The four orderings of the paper's experimental sweep (Tables 2-6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingKind {
    /// METIS-like nested dissection.
    Metis,
    /// PORD-like bottom-up/top-down hybrid.
    Pord,
    /// Approximate minimum degree.
    Amd,
    /// Approximate minimum fill.
    Amf,
}

/// All four orderings, in the column order of Tables 2-6.
pub const ALL_ORDERINGS: [OrderingKind; 4] =
    [OrderingKind::Metis, OrderingKind::Pord, OrderingKind::Amd, OrderingKind::Amf];

impl OrderingKind {
    /// Column header used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            OrderingKind::Metis => "METIS",
            OrderingKind::Pord => "PORD",
            OrderingKind::Amd => "AMD",
            OrderingKind::Amf => "AMF",
        }
    }

    /// Computes the fill-reducing permutation for `a` (the pattern of
    /// `A + Aᵀ` is used when `a` is unsymmetric, as MUMPS does).
    pub fn compute(self, a: &CscMatrix) -> Permutation {
        let g = Graph::from_matrix(a);
        self.compute_on_graph(&g)
    }

    /// Computes the permutation directly on an adjacency graph.
    pub fn compute_on_graph(self, g: &Graph) -> Permutation {
        match self {
            OrderingKind::Amd => mindeg::min_degree(g, mindeg::Metric::ApproxDegree),
            OrderingKind::Amf => mindeg::min_degree(g, mindeg::Metric::ApproxFill),
            OrderingKind::Metis => nd::nested_dissection(g, &nd::NdOptions::metis_like()),
            OrderingKind::Pord => pord::pord_like(g),
        }
    }
}
