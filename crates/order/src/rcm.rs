//! Reverse Cuthill–McKee ordering.
//!
//! Not part of the paper's sweep, but the standard bandwidth-reducing
//! baseline: it produces long, thin elimination trees (nearly chains),
//! the opposite extreme from nested dissection's wide ones — useful for
//! stress-testing the schedulers on degenerate topologies and as a
//! reference point in the ordering benchmarks.

use mf_sparse::{Graph, Permutation};
use std::collections::VecDeque;

/// Computes the reverse Cuthill–McKee ordering of `g`: BFS from a
/// pseudo-peripheral node, neighbors visited by increasing degree, final
/// order reversed.
pub fn rcm(g: &Graph) -> Permutation {
    let n = g.n();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mask = vec![true; n];
    let mut queue = VecDeque::new();
    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        let root = g.pseudo_peripheral(seed, &mask);
        let root = if visited[root] { seed } else { root };
        visited[root] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> =
                g.neighbors(v).iter().copied().filter(|&w| !visited[w]).collect();
            nbrs.sort_by_key(|&w| (g.degree(w), w));
            for w in nbrs {
                visited[w] = true;
                queue.push_back(w);
            }
        }
    }
    order.reverse();
    debug_assert_eq!(order.len(), n);
    Permutation::from_elimination_order(order).expect("RCM visits every node once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::envelope;
    use mf_sparse::gen::grid::{grid2d, Stencil};
    use mf_sparse::{CooMatrix, Graph};

    #[test]
    fn covers_all_nodes() {
        let a = grid2d(9, 7, Stencil::Box);
        let g = Graph::from_matrix(&a);
        let p = rcm(&g);
        assert_eq!(p.len(), 63);
    }

    #[test]
    fn reduces_envelope_on_shuffled_grid() {
        // Scramble a grid, then check RCM shrinks the envelope back.
        let a = grid2d(12, 12, Stencil::Star);
        let n = a.nrows();
        let scramble = Permutation::from_new_order((0..n).map(|i| (i * 89) % n).collect()).unwrap();
        let b = a.permute_symmetric(&scramble);
        let g = Graph::from_matrix(&b);
        let before = envelope(&g, &Permutation::identity(n));
        let after = envelope(&g, &rcm(&g));
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut coo = CooMatrix::new_symmetric(7);
        for i in 0..7 {
            coo.push(i, i, 1.0).unwrap();
        }
        coo.push(1, 0, 1.0).unwrap();
        coo.push(5, 4, 1.0).unwrap();
        let g = Graph::from_matrix(&coo.to_csc());
        let p = rcm(&g);
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn deterministic() {
        let a = grid2d(10, 11, Stencil::Box);
        let g = Graph::from_matrix(&a);
        assert_eq!(rcm(&g), rcm(&g));
    }

    #[test]
    fn path_graph_orders_end_to_end() {
        // On a path, RCM yields a monotone walk: bandwidth 1.
        let mut coo = CooMatrix::new_symmetric(8);
        for i in 0..8 {
            coo.push(i, i, 2.0).unwrap();
        }
        for i in 1..8 {
            coo.push(i, i - 1, -1.0).unwrap();
        }
        let g = Graph::from_matrix(&coo.to_csc());
        let p = rcm(&g);
        for v in 0..8 {
            for &w in g.neighbors(v) {
                assert!((p.new_of(v) as i64 - p.new_of(w) as i64).abs() == 1);
            }
        }
    }
}
