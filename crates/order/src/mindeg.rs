//! Quotient-graph minimum-degree engine with pluggable metric.
//!
//! One engine serves both AMD (approximate external degree, in the spirit of
//! Amestoy-Davis-Duff) and AMF (approximate deficiency/fill, as implemented
//! inside MUMPS). The engine maintains the classical quotient graph:
//! eliminated pivots become *elements* whose adjacency lists represent the
//! clique their elimination created, supervariables with identical adjacency
//! are merged, and degrees are updated with the `|Le \ Lp|` counter trick so
//! each elimination costs time proportional to the structures it touches.

use mf_sparse::{Graph, Permutation};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Pivot-selection metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Approximate external degree (AMD).
    ApproxDegree,
    /// Approximate deficiency `d² − Σ_e |Le\i|²` (AMF).
    ApproxFill,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Alive,
    Eliminated,
    Absorbed,
}

struct Engine {
    n: usize,
    metric: Metric,
    state: Vec<State>,
    /// Supervariable weight; 0 once absorbed.
    nv: Vec<usize>,
    /// Variable-variable adjacency (principal vars; may hold stale ids).
    var_adj: Vec<Vec<usize>>,
    /// Elements adjacent to each variable (may hold stale ids).
    elem_adj: Vec<Vec<usize>>,
    /// Variables of each element, keyed by the pivot that created it.
    elem_vars: Vec<Vec<usize>>,
    elem_alive: Vec<bool>,
    /// Approximate external degree (weighted).
    degree: Vec<usize>,
    /// Score under the selected metric.
    score: Vec<u64>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Stamp array for set operations.
    stamp: Vec<u64>,
    mark: u64,
    /// `|Le \ Lp|` working weights per element.
    wlen: Vec<usize>,
    wstamp: Vec<u64>,
    /// Children absorbed into each principal (for final expansion).
    absorbed_children: Vec<Vec<usize>>,
    alive_weight: usize,
}

impl Engine {
    fn new(g: &Graph, metric: Metric) -> Self {
        let n = g.n();
        let mut e = Engine {
            n,
            metric,
            state: vec![State::Alive; n],
            nv: vec![1; n],
            var_adj: (0..n).map(|i| g.neighbors(i).to_vec()).collect(),
            elem_adj: vec![Vec::new(); n],
            elem_vars: vec![Vec::new(); n],
            elem_alive: vec![false; n],
            degree: (0..n).map(|i| g.degree(i)).collect(),
            score: vec![0; n],
            heap: BinaryHeap::with_capacity(2 * n),
            stamp: vec![0; n],
            mark: 0,
            wlen: vec![0; n],
            wstamp: vec![0; n],
            absorbed_children: vec![Vec::new(); n],
            alive_weight: n,
        };
        for i in 0..n {
            e.score[i] = e.metric_score(i);
            e.heap.push(Reverse((e.score[i], i)));
        }
        e
    }

    fn metric_score(&self, i: usize) -> u64 {
        let d = self.degree[i] as u64;
        match self.metric {
            Metric::ApproxDegree => d,
            Metric::ApproxFill => {
                // Approximate deficiency: the clique of each adjacent
                // element is already filled, so subtract its contribution.
                let mut fill = d * d;
                for &e in &self.elem_adj[i] {
                    if self.elem_alive[e] {
                        let le = self.wlen[e] as u64; // |Le| weighted, maintained below
                        fill = fill.saturating_sub(le * le);
                    }
                }
                fill
            }
        }
    }

    fn next_mark(&mut self) -> u64 {
        self.mark += 1;
        self.mark
    }

    /// Weighted size of element `e`, pruning dead members in place.
    fn element_weight(&mut self, e: usize) -> usize {
        let mut members = std::mem::take(&mut self.elem_vars[e]);
        members.retain(|&v| self.state[v] == State::Alive);
        let w = members.iter().map(|&v| self.nv[v]).sum();
        self.elem_vars[e] = members;
        w
    }

    fn run(mut self) -> Permutation {
        let mut elim: Vec<usize> = Vec::with_capacity(self.n);
        while let Some(Reverse((s, p))) = self.heap.pop() {
            if self.state[p] != State::Alive || s != self.score[p] {
                continue; // stale heap entry
            }
            self.eliminate(p);
            elim.push(p);
        }
        // Expand supervariables: principal followed by its absorbed members
        // (depth-first through the absorption forest).
        let mut order = Vec::with_capacity(self.n);
        let mut stack = Vec::new();
        for &p in &elim {
            stack.push(p);
            while let Some(v) = stack.pop() {
                order.push(v);
                for &c in self.absorbed_children[v].iter().rev() {
                    stack.push(c);
                }
            }
        }
        debug_assert_eq!(order.len(), self.n, "every variable must be ordered");
        Permutation::from_elimination_order(order).expect("engine produced a bijection")
    }

    fn eliminate(&mut self, p: usize) {
        // ---- Build Lp = (Ap ∪ ⋃ Le) \ {p}, deduped with a stamp. ----
        let mark = self.next_mark();
        self.stamp[p] = mark;
        let mut lp: Vec<usize> = Vec::new();
        let mut lp_weight = 0usize;
        let var_adj_p = std::mem::take(&mut self.var_adj[p]);
        for &v in &var_adj_p {
            if self.state[v] == State::Alive && self.stamp[v] != mark {
                self.stamp[v] = mark;
                lp.push(v);
                lp_weight += self.nv[v];
            }
        }
        let elem_adj_p = std::mem::take(&mut self.elem_adj[p]);
        for &e in &elem_adj_p {
            if !self.elem_alive[e] {
                continue;
            }
            let members = std::mem::take(&mut self.elem_vars[e]);
            for &v in &members {
                if v != p && self.state[v] == State::Alive && self.stamp[v] != mark {
                    self.stamp[v] = mark;
                    lp.push(v);
                    lp_weight += self.nv[v];
                }
            }
            // Element e is absorbed by the new element p.
            self.elem_alive[e] = false;
        }

        self.state[p] = State::Eliminated;
        self.alive_weight -= self.nv[p];
        self.elem_vars[p] = lp.clone();
        self.elem_alive[p] = true;
        self.wlen[p] = lp_weight;

        if lp.is_empty() {
            return;
        }

        // ---- Pass 1: w[e] = |Le \ Lp| for every element touching Lp. ----
        let wmark = self.mark; // reuse current mark for wstamp domain
        for &i in &lp {
            let elems = std::mem::take(&mut self.elem_adj[i]);
            for &e in &elems {
                if !self.elem_alive[e] || e == p {
                    continue;
                }
                if self.wstamp[e] != wmark {
                    self.wstamp[e] = wmark;
                    self.wlen[e] = self.element_weight(e);
                }
                self.wlen[e] = self.wlen[e].saturating_sub(self.nv[i]);
            }
            self.elem_adj[i] = elems;
        }

        // ---- Pass 2: prune lists and recompute degrees for i in Lp. ----
        // Lp members are stamped with `mark`.
        for &i in &lp {
            if self.state[i] != State::Alive {
                continue; // absorbed earlier in this very loop
            }
            // Prune variable adjacency: drop dead vars and members of Lp
            // (those are covered by element p now).
            let mut va = std::mem::take(&mut self.var_adj[i]);
            va.retain(|&v| self.state[v] == State::Alive && self.stamp[v] != mark);
            va.sort_unstable();
            va.dedup();
            let a_weight: usize = va.iter().map(|&v| self.nv[v]).sum();
            self.var_adj[i] = va;

            // Prune element adjacency and append p.
            let mut ea = std::mem::take(&mut self.elem_adj[i]);
            ea.retain(|&e| self.elem_alive[e] && e != p);
            ea.sort_unstable();
            ea.dedup();
            let mut elem_weight_sum = 0usize;
            for &e in &ea {
                // wlen[e] was set to |Le \ Lp| in pass 1 for touched elements.
                elem_weight_sum +=
                    if self.wstamp[e] == wmark { self.wlen[e] } else { self.element_weight(e) };
            }
            ea.push(p);
            self.elem_adj[i] = ea;

            let d = a_weight + (lp_weight - self.nv[i]) + elem_weight_sum;
            self.degree[i] = d.min(self.alive_weight.saturating_sub(self.nv[i]));
        }

        // ---- Supervariable detection within Lp (cheap hash + exact check). ----
        let live: Vec<usize> =
            lp.iter().copied().filter(|&i| self.state[i] == State::Alive).collect();
        let mut buckets: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::with_capacity(live.len());
        for &i in &live {
            let mut h: u64 = 0x9e3779b97f4a7c15;
            for &v in &self.var_adj[i] {
                h = h.wrapping_add((v as u64).wrapping_mul(0x100000001b3));
            }
            for &e in &self.elem_adj[i] {
                h ^= (e as u64).wrapping_mul(0x9e3779b1);
            }
            buckets.entry(h).or_default().push(i);
        }
        for group in buckets.values() {
            for a_pos in 0..group.len() {
                let i = group[a_pos];
                if self.state[i] != State::Alive {
                    continue;
                }
                for &j in &group[a_pos + 1..] {
                    if self.state[j] != State::Alive {
                        continue;
                    }
                    if self.var_adj[i] == self.var_adj[j] && self.elem_adj[i] == self.elem_adj[j] {
                        // Absorb j into i.
                        self.nv[i] += self.nv[j];
                        self.nv[j] = 0;
                        self.state[j] = State::Absorbed;
                        self.absorbed_children[i].push(j);
                        self.var_adj[j].clear();
                        self.elem_adj[j].clear();
                    }
                }
            }
        }

        // ---- Final scores and heap reinsertion. ----
        for &i in &live {
            if self.state[i] != State::Alive {
                continue;
            }
            // Absorptions shrink external degree; recompute the cheap part.
            let d = self.degree[i].min(self.alive_weight.saturating_sub(self.nv[i]));
            self.degree[i] = d;
            self.score[i] = self.metric_score(i);
            self.heap.push(Reverse((self.score[i], i)));
        }
    }
}

/// Computes a minimum-degree (or minimum-fill) elimination ordering of the
/// graph `g`.
pub fn min_degree(g: &Graph, metric: Metric) -> Permutation {
    if g.n() == 0 {
        return Permutation::identity(0);
    }
    Engine::new(g, metric).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::gen::grid::{grid2d, Stencil};
    use mf_sparse::Graph;

    /// Exact fill count by naive symbolic elimination (small graphs only).
    fn exact_fill(g: &Graph, order: &[usize]) -> u64 {
        let p = Permutation::from_elimination_order(order.to_vec()).unwrap();
        crate::stats::exact_fill(g, &p)
    }

    #[test]
    fn produces_valid_permutation() {
        let a = grid2d(8, 8, Stencil::Star);
        let g = Graph::from_matrix(&a);
        for metric in [Metric::ApproxDegree, Metric::ApproxFill] {
            let p = min_degree(&g, metric);
            assert_eq!(p.len(), 64);
        }
    }

    #[test]
    fn beats_natural_order_on_grid() {
        let a = grid2d(12, 12, Stencil::Star);
        let g = Graph::from_matrix(&a);
        let natural: Vec<usize> = (0..g.n()).collect();
        let fill_nat = exact_fill(&g, &natural);
        for metric in [Metric::ApproxDegree, Metric::ApproxFill] {
            let p = min_degree(&g, metric);
            let fill_md = exact_fill(&g, p.elimination_order());
            assert!(fill_md < fill_nat, "{:?}: fill {} !< natural {}", metric, fill_md, fill_nat);
        }
    }

    #[test]
    fn path_graph_has_zero_fill() {
        // A path eliminated from the ends produces no fill; min degree
        // must find a zero-fill (perfect) ordering.
        let n = 30;
        let mut coo = mf_sparse::CooMatrix::new_symmetric(n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
        }
        for i in 1..n {
            coo.push(i, i - 1, -1.0).unwrap();
        }
        let g = Graph::from_matrix(&coo.to_csc());
        let p = min_degree(&g, Metric::ApproxDegree);
        assert_eq!(exact_fill(&g, p.elimination_order()), 0);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut coo = mf_sparse::CooMatrix::new_symmetric(6);
        for i in 0..6 {
            coo.push(i, i, 1.0).unwrap();
        }
        coo.push(1, 0, 1.0).unwrap();
        coo.push(4, 3, 1.0).unwrap();
        let g = Graph::from_matrix(&coo.to_csc());
        let p = min_degree(&g, Metric::ApproxDegree);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn handles_complete_graph() {
        let n = 8;
        let mut coo = mf_sparse::CooMatrix::new_symmetric(n);
        for i in 0..n {
            coo.push(i, i, 1.0).unwrap();
            for j in 0..i {
                coo.push(i, j, 1.0).unwrap();
            }
        }
        let g = Graph::from_matrix(&coo.to_csc());
        let p = min_degree(&g, Metric::ApproxFill);
        assert_eq!(p.len(), n);
        assert_eq!(exact_fill(&g, p.elimination_order()), 0);
    }

    #[test]
    fn deterministic() {
        let a = grid2d(10, 9, Stencil::Box);
        let g = Graph::from_matrix(&a);
        let p1 = min_degree(&g, Metric::ApproxDegree);
        let p2 = min_degree(&g, Metric::ApproxDegree);
        assert_eq!(p1, p2);
    }

    #[test]
    fn amd_and_amf_differ_on_structured_problems() {
        let a = grid2d(14, 14, Stencil::Box);
        let g = Graph::from_matrix(&a);
        let amd = min_degree(&g, Metric::ApproxDegree);
        let amf = min_degree(&g, Metric::ApproxFill);
        assert_ne!(amd, amf, "metrics should generally disagree");
    }
}
