//! PORD-like bottom-up/top-down hybrid ordering.
//!
//! Schulze's PORD couples a bottom-up (minimum-degree-like) process with
//! top-down separator refinement. We approximate its behaviour with a
//! dissection skeleton that (a) switches to a *fill-metric* local ordering
//! on much larger subgraphs than METIS would, and (b) uses a more
//! aggressive separator-thinning pass. The resulting trees sit between the
//! wide METIS trees and the deep AMD/AMF trees — which is exactly the role
//! PORD plays in the paper's sweep.

use crate::mindeg::Metric;
use crate::nd::{nested_dissection, NdOptions};
use mf_sparse::{Graph, Permutation};

/// Computes a PORD-like hybrid ordering of `g`.
pub fn pord_like(g: &Graph) -> Permutation {
    // Switch to the bottom-up (fill metric) ordering once subgraphs drop
    // below ~n/8, bounded so tiny and huge inputs stay reasonable.
    let leaf = (g.n() / 8).clamp(240, 6_000);
    let opts = NdOptions { leaf_size: leaf, leaf_metric: Metric::ApproxFill, max_imbalance: 0.75 };
    nested_dissection(g, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OrderingKind;
    use mf_sparse::gen::grid::{grid2d, Stencil};
    use mf_sparse::Graph;

    #[test]
    fn valid_permutation() {
        let a = grid2d(25, 25, Stencil::Star);
        let g = Graph::from_matrix(&a);
        let p = pord_like(&g);
        assert_eq!(p.len(), 625);
    }

    #[test]
    fn differs_from_metis_and_amd() {
        let a = grid2d(40, 40, Stencil::Star);
        let g = Graph::from_matrix(&a);
        let pord = OrderingKind::Pord.compute_on_graph(&g);
        let metis = OrderingKind::Metis.compute_on_graph(&g);
        let amd = OrderingKind::Amd.compute_on_graph(&g);
        assert_ne!(pord, metis);
        assert_ne!(pord, amd);
    }
}
