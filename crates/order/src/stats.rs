//! Ordering-quality statistics.
//!
//! Lightweight measures used by the tests and the experiment reports to
//! characterize what each ordering did to the problem, independent of the
//! heavier symbolic analysis in `mf-symbolic`.

use mf_sparse::{Graph, Permutation};

/// Profile/envelope size of the reordered pattern: `Σ_i (i − min_j)` over
/// rows, a classic cheap proxy for how "banded" the permuted matrix is.
pub fn envelope(g: &Graph, p: &Permutation) -> u64 {
    let mut total = 0u64;
    for v in 0..g.n() {
        let iv = p.new_of(v) as u64;
        let mut lo = iv;
        for &w in g.neighbors(v) {
            lo = lo.min(p.new_of(w) as u64);
        }
        total += iv - lo;
    }
    total
}

/// Exact fill-in of an elimination order, by naive symbolic elimination.
///
/// Quadratic in the worst case — intended for matrices up to a few
/// thousand nodes (tests, examples, reports), not production runs.
pub fn exact_fill(g: &Graph, p: &Permutation) -> u64 {
    let n = g.n();
    let mut adj: Vec<std::collections::BTreeSet<usize>> =
        (0..n).map(|i| g.neighbors(i).iter().copied().collect()).collect();
    let mut eliminated = vec![false; n];
    let mut fill = 0u64;
    for &v in p.elimination_order() {
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&w| !eliminated[w]).collect();
        for (a, &x) in nbrs.iter().enumerate() {
            for &y in &nbrs[a + 1..] {
                if adj[x].insert(y) {
                    adj[y].insert(x);
                    fill += 1;
                }
            }
        }
        eliminated[v] = true;
        adj[v].clear();
    }
    fill
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::gen::grid::{grid2d, Stencil};
    use mf_sparse::Graph;

    #[test]
    fn envelope_zero_for_diagonal() {
        let a = mf_sparse::CscMatrix::identity(5, 1.0);
        let g = Graph::from_matrix(&a);
        assert_eq!(envelope(&g, &Permutation::identity(5)), 0);
    }

    #[test]
    fn all_orderings_beat_reversed_natural_fill_on_grid() {
        let a = grid2d(13, 13, Stencil::Star);
        let g = Graph::from_matrix(&a);
        let id = Permutation::identity(g.n());
        let base = exact_fill(&g, &id);
        for kind in crate::ALL_ORDERINGS {
            let p = kind.compute_on_graph(&g);
            let f = exact_fill(&g, &p);
            assert!(f < base, "{}: {f} !< natural {base}", kind.name());
        }
        // Sanity: orderings are actually distinct permutations.
        let ps: Vec<_> = crate::ALL_ORDERINGS.iter().map(|k| k.compute_on_graph(&g)).collect();
        assert!(ps.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn compute_on_matrix_handles_unsymmetric_input() {
        let a = mf_sparse::gen::circuit::circuit(300, 3, 2, 0.1, 9);
        for kind in crate::ALL_ORDERINGS {
            let p = kind.compute(&a);
            assert_eq!(p.len(), 300, "{}", kind.name());
        }
    }
}
