//! Nested dissection (METIS-like) ordering.
//!
//! Recursive vertex bisection: a pseudo-peripheral BFS level structure
//! provides the initial separator, which is then shrunk to a minimal vertex
//! separator and lightly refined for balance. Small subgraphs are ordered
//! with the minimum-degree engine, as graph-partitioning packages do.
//! The separators end up last in the ordering, which is what produces the
//! wide, well-balanced assembly trees characteristic of METIS in the paper.

use crate::mindeg::{min_degree, Metric};
use mf_sparse::{Graph, Permutation};

/// Tuning knobs of the dissection.
#[derive(Debug, Clone)]
pub struct NdOptions {
    /// Subgraphs at or below this size are ordered with minimum degree.
    pub leaf_size: usize,
    /// Metric used on the leaves.
    pub leaf_metric: Metric,
    /// Maximum imbalance `max(|A|,|B|)/(|A|+|B|)` accepted before nudging
    /// the level cut (0.5 = perfectly balanced).
    pub max_imbalance: f64,
}

impl NdOptions {
    /// Parameters approximating METIS' defaults.
    pub fn metis_like() -> Self {
        NdOptions { leaf_size: 120, leaf_metric: Metric::ApproxDegree, max_imbalance: 0.65 }
    }
}

/// Computes a nested-dissection ordering of `g`.
pub fn nested_dissection(g: &Graph, opts: &NdOptions) -> Permutation {
    let n = g.n();
    let mut order = Vec::with_capacity(n);
    // Handle disconnected graphs: dissect each component.
    let (comp, ncomp) = g.components();
    let mut comp_nodes: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for v in 0..n {
        comp_nodes[comp[v]].push(v);
    }
    for nodes in comp_nodes {
        dissect(g, nodes, opts, &mut order);
    }
    debug_assert_eq!(order.len(), n);
    Permutation::from_elimination_order(order).expect("dissection covers every node once")
}

fn dissect(g: &Graph, nodes: Vec<usize>, opts: &NdOptions, out: &mut Vec<usize>) {
    if nodes.len() <= opts.leaf_size {
        order_leaf(g, &nodes, opts.leaf_metric, out);
        return;
    }
    match find_separator(g, &nodes, opts) {
        Some((a, b, sep)) => {
            // Recurse on halves; separator is ordered last (eliminated after
            // both halves), which puts it at the parent in the etree.
            dissect(g, a, opts, out);
            dissect(g, b, opts, out);
            order_leaf(g, &sep, opts.leaf_metric, out);
        }
        None => {
            // No usable separator (e.g. clique-like subgraph).
            order_leaf(g, &nodes, opts.leaf_metric, out);
        }
    }
}

/// Orders a small node set with minimum degree on its induced subgraph.
fn order_leaf(g: &Graph, nodes: &[usize], metric: Metric, out: &mut Vec<usize>) {
    if nodes.len() <= 2 {
        out.extend_from_slice(nodes);
        return;
    }
    let (sub, map) = g.subgraph(nodes);
    let p = min_degree(&sub, metric);
    out.extend(p.elimination_order().iter().map(|&k| map[k]));
}

/// Splits `nodes` into `(A, B, separator)`; returns `None` when the split
/// degenerates (one side empty).
fn find_separator(
    g: &Graph,
    nodes: &[usize],
    opts: &NdOptions,
) -> Option<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    // Restrict the search to this node set only.
    let in_set: Vec<bool> = {
        let mut s = vec![false; g.n()];
        for &v in nodes {
            s[v] = true;
        }
        s
    };
    let root = g.pseudo_peripheral(nodes[0], &in_set);
    let (levels, _, depth) = g.bfs_levels(root, &in_set);
    if depth == 0 {
        return None; // clique or single level: no separator possible
    }

    // Level sizes, then choose the cut level closest to the weight median
    // within the balance constraint, preferring small levels (thin cuts).
    let mut level_sizes = vec![0usize; depth + 1];
    for &v in nodes {
        if levels[v] != usize::MAX {
            level_sizes[levels[v]] += 1;
        }
    }
    let total: usize = level_sizes.iter().sum();
    let mut best_cut = None;
    let mut below = 0usize;
    for (lvl, &sz) in level_sizes.iter().enumerate().take(depth) {
        below += sz;
        let above = total - below;
        let bal = below.max(above) as f64 / total.max(1) as f64;
        if below == 0 || above == 0 {
            continue;
        }
        // Score: prefer thin next level (the separator candidate) and balance.
        let sep_sz = level_sizes[lvl + 1];
        let score = sep_sz as f64 + if bal > opts.max_imbalance { total as f64 } else { 0.0 };
        if best_cut.is_none_or(|(_, s)| score < s) {
            best_cut = Some((lvl, score));
        }
    }
    let (cut, _) = best_cut?;

    // Initial separator: the nodes of level cut+1 adjacent to level <= cut.
    let mut side = vec![0u8; g.n()]; // 1 = A (<= cut), 2 = B (> cut), 3 = sep
    for &v in nodes {
        side[v] = if levels[v] == usize::MAX {
            2 // unreached within set (shouldn't happen for connected input)
        } else if levels[v] <= cut {
            1
        } else {
            2
        };
    }
    let mut sep = Vec::new();
    for &v in nodes {
        if levels[v] == cut + 1 && g.neighbors(v).iter().any(|&w| in_set[w] && side[w] == 1) {
            side[v] = 3;
            sep.push(v);
        }
    }
    // Shrink: drop separator vertices not adjacent to A (already none) or
    // whose removal keeps A and B disconnected, i.e. vertices with no B
    // neighbour can move into A.
    let mut shrunk = Vec::with_capacity(sep.len());
    for &v in &sep {
        let touches_b = g.neighbors(v).iter().any(|&w| in_set[w] && side[w] == 2);
        if touches_b {
            shrunk.push(v);
        } else {
            side[v] = 1;
        }
    }
    let sep = shrunk;
    if sep.is_empty() {
        return None;
    }
    let a: Vec<usize> = nodes.iter().copied().filter(|&v| side[v] == 1).collect();
    let b: Vec<usize> = nodes.iter().copied().filter(|&v| side[v] == 2).collect();
    if a.is_empty() || b.is_empty() {
        return None;
    }
    Some((a, b, sep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::gen::grid::{grid2d, Stencil};
    use mf_sparse::Graph;

    #[test]
    fn orders_every_node_once() {
        let a = grid2d(20, 20, Stencil::Star);
        let g = Graph::from_matrix(&a);
        let p = nested_dissection(&g, &NdOptions::metis_like());
        assert_eq!(p.len(), 400);
    }

    #[test]
    fn separator_goes_last_on_a_path() {
        // On a path of 2k+1 nodes with leaf_size 1 the first separator is a
        // single node near the middle, eliminated last.
        let n = 31;
        let mut coo = mf_sparse::CooMatrix::new_symmetric(n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
        }
        for i in 1..n {
            coo.push(i, i - 1, -1.0).unwrap();
        }
        let g = Graph::from_matrix(&coo.to_csc());
        let opts = NdOptions { leaf_size: 4, ..NdOptions::metis_like() };
        let p = nested_dissection(&g, &opts);
        let last = p.old_of(n - 1);
        assert!(last > n / 4 && last < 3 * n / 4, "last-eliminated {last} not central");
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut coo = mf_sparse::CooMatrix::new_symmetric(10);
        for i in 0..10 {
            coo.push(i, i, 1.0).unwrap();
        }
        for i in 1..5 {
            coo.push(i, i - 1, 1.0).unwrap();
        }
        for i in 6..10 {
            coo.push(i, i - 1, 1.0).unwrap();
        }
        let g = Graph::from_matrix(&coo.to_csc());
        let p = nested_dissection(&g, &NdOptions { leaf_size: 2, ..NdOptions::metis_like() });
        assert_eq!(p.len(), 10);
    }

    #[test]
    fn reduces_fill_vs_natural_on_grid() {
        let a = grid2d(14, 14, Stencil::Star);
        let g = Graph::from_matrix(&a);
        let p = nested_dissection(&g, &NdOptions { leaf_size: 16, ..NdOptions::metis_like() });
        let f_nat = crate::stats::exact_fill(&g, &Permutation::identity(g.n()));
        let f_nd = crate::stats::exact_fill(&g, &p);
        assert!(f_nd < f_nat, "nd fill {f_nd} !< natural {f_nat}");
    }

    #[test]
    fn deterministic() {
        let a = grid2d(16, 12, Stencil::Box);
        let g = Graph::from_matrix(&a);
        let p1 = nested_dissection(&g, &NdOptions::metis_like());
        let p2 = nested_dissection(&g, &NdOptions::metis_like());
        assert_eq!(p1, p2);
    }
}
