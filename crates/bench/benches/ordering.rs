//! Micro-benchmarks of the four fill-reducing orderings on a fixed
//! 3-D grid problem (the analysis-phase cost the paper's pipeline pays
//! before any scheduling happens).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mf_order::ALL_ORDERINGS;
use mf_sparse::gen::grid::{grid3d, Stencil};
use mf_sparse::{Graph, Symmetry};

fn bench_orderings(c: &mut Criterion) {
    let a = grid3d(14, 14, 14, Stencil::Box, Symmetry::Symmetric, 1);
    let g = Graph::from_matrix(&a);
    let mut group = c.benchmark_group("ordering/grid14x14x14");
    group.sample_size(10);
    for kind in ALL_ORDERINGS {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &g, |b, g| {
            b.iter(|| kind.compute_on_graph(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
