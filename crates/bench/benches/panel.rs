//! Panel-factorization benchmark: the recursive (GEMM-rich) panel of
//! `partial_lu_blocked` against the historical rank-1 panel, across the
//! front sizes the paper's matrices produce. The trailing update is
//! identical in both kernels, so any spread is the panel roofline gap
//! this bench exists to watch.

use criterion::{criterion_group, criterion_main, Criterion};
use mf_frontal::dense::{
    partial_lu_blocked_mt, partial_lu_blocked_rank1_panel, DenseMat, FRONT_NB,
};

fn random_front(f: usize, seed: u64) -> DenseMat {
    let mut w = DenseMat::zeros(f, f);
    let mut h = seed | 1;
    for j in 0..f {
        for i in 0..f {
            h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            *w.get_mut(i, j) = if i == j { f as f64 } else { v };
        }
    }
    w
}

fn bench_panel(c: &mut Criterion) {
    let mut group = c.benchmark_group("panel/blocked_lu");
    group.sample_size(10);
    for f in [256usize, 512, 1024] {
        let npiv = f / 2;
        let a = random_front(f, 0xbeef ^ f as u64);
        group.bench_function(format!("recursive_f{f}"), |bch| {
            bch.iter_batched(
                || a.clone(),
                |mut w| {
                    let mut perm = Vec::new();
                    partial_lu_blocked_mt(&mut w, npiv, FRONT_NB, &mut perm, 1).unwrap();
                    w
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("rank1_f{f}"), |bch| {
            bch.iter_batched(
                || a.clone(),
                |mut w| {
                    let mut perm = Vec::new();
                    partial_lu_blocked_rank1_panel(&mut w, npiv, FRONT_NB, &mut perm).unwrap();
                    w
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_panel);
criterion_main!(benches);
