//! Throughput of the simulator's event queue: the current single-heap
//! representation (payloads stored inline in `BinaryHeap<HeapEntry>`,
//! ordered by `(time, seq)`) against the layout it replaced — a heap of
//! bare `(time, seq)` keys plus a `HashMap<seq, payload>` side table,
//! one lookup-and-remove per delivery.
//!
//! The workload is a self-sustaining hold model: a queue pre-filled to a
//! fixed depth where every delivery schedules one successor at a
//! pseudo-random future time, which is how the parallel-factorization
//! simulation actually drives the queue (timers and messages in flight
//! at once, depth roughly stable). Sizes span 10^4 .. 10^6 events.

use std::collections::{BinaryHeap, HashMap};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mf_sim::engine::{EventPayload, Sim};

const DEPTH: usize = 1 << 10;

#[inline]
fn lcg(x: &mut u64) -> u64 {
    *x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *x
}

/// Drives the production queue: `events` deliveries at constant depth.
fn run_single_heap(events: u64) -> u64 {
    let mut sim: Sim<u64> = Sim::new();
    let mut rng = 0x2545f4914f6cdd1du64;
    for k in 0..DEPTH as u64 {
        sim.schedule(lcg(&mut rng) % 1024, EventPayload::Timer { proc: 0, key: k });
    }
    let mut acc = 0u64;
    for _ in 0..events {
        let e = sim.next().expect("queue kept full");
        acc = acc.wrapping_add(e.at);
        if let EventPayload::Timer { proc, key } = e.payload {
            sim.schedule_timer(proc, lcg(&mut rng) % 1024, key);
        }
    }
    acc
}

/// The legacy two-structure queue, reproduced here as the baseline: a
/// max-heap of reversed `(time, seq)` keys and a `seq -> payload` map.
struct TwoStructQueue {
    now: u64,
    seq: u64,
    keys: BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    payloads: HashMap<u64, EventPayload<u64>>,
}

impl TwoStructQueue {
    fn new() -> Self {
        TwoStructQueue { now: 0, seq: 0, keys: BinaryHeap::new(), payloads: HashMap::new() }
    }

    fn schedule(&mut self, delay: u64, payload: EventPayload<u64>) {
        let seq = self.seq;
        self.seq += 1;
        self.keys.push(std::cmp::Reverse((self.now + delay, seq)));
        self.payloads.insert(seq, payload);
    }

    fn next(&mut self) -> Option<(u64, EventPayload<u64>)> {
        let std::cmp::Reverse((at, seq)) = self.keys.pop()?;
        self.now = at;
        let payload = self.payloads.remove(&seq).expect("payload for key");
        Some((at, payload))
    }
}

fn run_two_struct(events: u64) -> u64 {
    let mut q = TwoStructQueue::new();
    let mut rng = 0x2545f4914f6cdd1du64;
    for k in 0..DEPTH as u64 {
        q.schedule(lcg(&mut rng) % 1024, EventPayload::Timer { proc: 0, key: k });
    }
    let mut acc = 0u64;
    for _ in 0..events {
        let (at, payload) = q.next().expect("queue kept full");
        acc = acc.wrapping_add(at);
        if let EventPayload::Timer { proc, key } = payload {
            q.schedule(lcg(&mut rng) % 1024, EventPayload::Timer { proc, key });
        }
    }
    acc
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(10);
    for &events in &[10_000u64, 100_000, 1_000_000] {
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(BenchmarkId::new("single_heap", events), &events, |b, &n| {
            b.iter(|| run_single_heap(n))
        });
        group.bench_with_input(BenchmarkId::new("heap_plus_hashmap", events), &events, |b, &n| {
            b.iter(|| run_two_struct(n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
