//! Benchmarks of the numeric multifrontal engine: dense kernel, full
//! sequential factorization, rayon tree-parallel factorization, solve.

use criterion::{criterion_group, criterion_main, Criterion};
use mf_frontal::dense::{partial_lu, partial_lu_blocked, DenseMat};
use mf_frontal::numeric::Factorization;
use mf_frontal::parallel::factorize_parallel;
use mf_order::OrderingKind;
use mf_sparse::gen::grid::{grid3d, Stencil};
use mf_sparse::Symmetry;
use mf_symbolic::AmalgamationOptions;

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("numeric/kernel");
    for f in [64usize, 128, 256] {
        let p = f / 2;
        let make = move || {
            let mut w = DenseMat::zeros(f, f);
            for i in 0..f {
                for j in 0..f {
                    *w.get_mut(i, j) = if i == j { f as f64 } else { -0.5 };
                }
            }
            w
        };
        group.bench_function(format!("partial_lu_{f}x{f}_p{p}"), |b| {
            b.iter_batched(
                make,
                |mut w| {
                    let mut perm = Vec::new();
                    partial_lu(&mut w, p, &mut perm).unwrap();
                    w
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("partial_lu_blocked_{f}x{f}_p{p}"), |b| {
            b.iter_batched(
                make,
                |mut w| {
                    let mut perm = Vec::new();
                    partial_lu_blocked(&mut w, p, 32, &mut perm).unwrap();
                    w
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_factorize(c: &mut Criterion) {
    let a = grid3d(12, 12, 12, Stencil::Box, Symmetry::Symmetric, 3);
    let perm = OrderingKind::Metis.compute(&a);
    let s = mf_symbolic::analyze(&a, &perm, &AmalgamationOptions::default());

    let mut group = c.benchmark_group("numeric/grid12x12x12");
    group.sample_size(10);
    group.bench_function("factorize_sequential", |b| {
        b.iter(|| Factorization::from_symbolic(&a, &s).unwrap())
    });
    group.bench_function("factorize_parallel", |b| b.iter(|| factorize_parallel(&a, &s).unwrap()));
    let f = Factorization::from_symbolic(&a, &s).unwrap();
    let b_rhs: Vec<f64> = (0..a.nrows()).map(|i| (i % 11) as f64).collect();
    group.bench_function("solve", |b| b.iter(|| f.solve(&b_rhs)));
    group.finish();
}

criterion_group!(benches, bench_kernel, bench_factorize);
criterion_main!(benches);
