//! Micro-benchmarks of the symbolic analysis pipeline: elimination tree,
//! column counts, amalgamation, Liu reordering and splitting.

use criterion::{criterion_group, criterion_main, Criterion};
use mf_order::OrderingKind;
use mf_sparse::gen::paper::PaperMatrix;
use mf_symbolic::seqstack::{apply_liu_order, AssemblyDiscipline};
use mf_symbolic::AmalgamationOptions;

fn bench_symbolic(c: &mut Criterion) {
    let a = PaperMatrix::BmwCra1.instantiate_scaled(0.5);
    let perm = OrderingKind::Amd.compute(&a);

    let mut group = c.benchmark_group("symbolic/bmwcra1-half");
    group.sample_size(20);
    group.bench_function("analyze", |b| {
        b.iter(|| mf_symbolic::analyze(&a, &perm, &AmalgamationOptions::default()))
    });
    let s = mf_symbolic::analyze(&a, &perm, &AmalgamationOptions::default());
    group.bench_function("liu_order", |b| {
        b.iter_batched(
            || s.tree.clone(),
            |mut t| apply_liu_order(&mut t, AssemblyDiscipline::FrontThenFree),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("split_large_masters", |b| {
        b.iter_batched(
            || s.tree.clone(),
            |mut t| mf_symbolic::split::split_large_masters(&mut t, 50_000),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("front_structures", |b| {
        b.iter(|| mf_symbolic::frontstruct::front_structures(&s))
    });
    group.finish();
}

criterion_group!(benches, bench_symbolic);
criterion_main!(benches);
