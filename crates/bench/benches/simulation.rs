//! Benchmarks of the simulated parallel factorization — one Table 2 cell
//! per strategy, plus the static mapping. These are the building blocks
//! every experiment binary (table2..table6) is made of.

use criterion::{criterion_group, criterion_main, Criterion};
use mf_bench::sweep::{build_tree, paper_scale_config};
use mf_core::config::{SlaveSelection, SolverConfig, TaskSelection};
use mf_core::mapping::compute_mapping;
use mf_core::parsim;
use mf_order::OrderingKind;
use mf_sparse::gen::paper::PaperMatrix;

fn bench_simulation(c: &mut Criterion) {
    let tree = build_tree(PaperMatrix::TwoTone, OrderingKind::Amd, None);
    let base_cfg = paper_scale_config(32);
    let mem_cfg = SolverConfig {
        slave_selection: SlaveSelection::Memory,
        task_selection: TaskSelection::MemoryAware,
        use_subtree_info: true,
        use_prediction: true,
        ..base_cfg.clone()
    };
    let map = compute_mapping(&tree, &base_cfg);

    let mut group = c.benchmark_group("simulation/twotone-amd-32p");
    group.sample_size(10);
    group.bench_function("static_mapping", |b| b.iter(|| compute_mapping(&tree, &base_cfg)));
    group.bench_function("run_workload_baseline", |b| {
        b.iter(|| parsim::run(&tree, &map, &base_cfg).unwrap())
    });
    group.bench_function("run_memory_based", |b| {
        b.iter(|| parsim::run(&tree, &map, &mem_cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
