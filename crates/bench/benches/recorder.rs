//! Cost of `Recording::record()` on a driver-shaped event mix.
//!
//! The recorder's budget is ≤100 ns/event amortized (DESIGN.md,
//! "Recording cost model"): one fixed-size row append per event, plus a
//! bump allocation into the payload arena for the rare variable-length
//! variants. The mix below mirrors what the parallel drivers actually
//! emit — dominated by memory alloc/free traffic, a status-view refresh
//! every 4th event, and a full 32-processor slave selection (32-entry
//! metric and view-age vectors, 4 picked blocks) every 32nd event.
//!
//! Three configurations:
//!
//! * `off` — the driver-side fast path: `Option<Recording>` is `None`,
//!   so every site is one branch and the builder closure never runs;
//! * `on_unbounded` — the production attribution/export mode (paged
//!   store, unbounded);
//! * `on_ring_64k` — the black-box mode (preallocated circular buffer
//!   with arena compaction).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mf_sim::recorder::{MemArea, SlavePick, StatusKind};
use mf_sim::{CompactEvent, Recording, Time};

const EVENTS: u64 = 100_000;
const NPROCS: usize = 32;

/// The driver-side recording site: one branch when off, build + append
/// when on. Mirrors `SimDriver::record` / `Coordinator::record`.
#[inline]
fn record(rec: &mut Option<Recording>, at: Time, build: impl FnOnce() -> CompactEvent) {
    if let Some(r) = rec.as_mut() {
        r.record(at, build());
    }
}

/// Feeds `events` mixed events through `rec`; returns a checksum so the
/// off path cannot be optimized away.
fn run_mix(rec: &mut Option<Recording>, events: u64) -> u64 {
    let metric: [u64; NPROCS] = std::array::from_fn(|p| 1_000 + p as u64);
    let view_age: [Time; NPROCS] = std::array::from_fn(|p| 3 * p as Time);
    let picks: [SlavePick; 4] = std::array::from_fn(|p| SlavePick { proc: p, entries: 512 });
    let mut acc = 0u64;
    for i in 0..events {
        let at = i as Time;
        let node = (i % 4096) as usize;
        let p = (i % NPROCS as u64) as usize;
        if i % 32 == 7 {
            record(rec, at, || {
                CompactEvent::slave_selection(p, node, &metric, &view_age, &picks, 0, false)
            });
        } else if i % 4 == 1 {
            record(rec, at, || {
                CompactEvent::status_apply(
                    p,
                    (p + 1) % NPROCS,
                    (p + 1) % NPROCS,
                    StatusKind::MemDelta,
                    5,
                )
            });
        } else if i % 2 == 0 {
            record(rec, at, || CompactEvent::mem_alloc(p, node, MemArea::Front, 128));
        } else {
            record(rec, at, || CompactEvent::mem_free(p, node, MemArea::Front, 128));
        }
        acc = acc.wrapping_add(at);
    }
    acc.wrapping_add(rec.as_ref().map_or(0, |r| r.len() as u64))
}

fn bench_recorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("recorder");
    group.sample_size(10);
    group.throughput(Throughput::Elements(EVENTS));
    group.bench_function("off", |b| {
        b.iter(|| {
            let mut rec: Option<Recording> = None;
            run_mix(&mut rec, EVENTS)
        })
    });
    group.bench_function("on_unbounded", |b| {
        b.iter(|| {
            let mut rec = Some(Recording::new(None));
            run_mix(&mut rec, EVENTS)
        })
    });
    group.bench_function("on_ring_64k", |b| {
        b.iter(|| {
            let mut rec = Some(Recording::new(Some(1 << 16)));
            run_mix(&mut rec, EVENTS)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_recorder);
criterion_main!(benches);
