//! Benchmarks of the packed GEMM microkernel layer: the raw register
//! tile on pre-packed panels, packed vs naive trailing updates, and the
//! blocked LU front kernel at 1 vs N within-front threads.

use criterion::{criterion_group, criterion_main, Criterion};
use mf_frontal::dense::{partial_lu_blocked_mt, DenseMat};
use mf_frontal::gemm;

fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut h = seed | 1;
    (0..len)
        .map(|_| {
            h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect()
}

/// The microkernel ceiling: C -= A·B on L1-resident pre-packed panels.
fn bench_microkernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm/microkernel");
    for (m, n, kc) in [(48usize, 48usize, 64usize), (96, 96, 128)] {
        let a = fill(m * kc, 0x9e37);
        let b = fill(kc * n, 0x85eb);
        let mut cm = fill(m * n, 0xc2b2);
        let mut ws = gemm::GemmWorkspace::new();
        let ap = gemm::pack_a(&mut ws, &a, m, m, kc);
        let mut bp = Vec::new();
        gemm::pack_b(&mut bp, &b, kc, kc, n);
        group
            .bench_function(format!("packed_{m}x{n}x{kc}_{}", gemm::active_simd().name()), |bch| {
                bch.iter(|| gemm::gemm_sub_packed(&ap, &bp, n, &mut cm, m))
            });
    }
    group.finish();
}

/// Packing cost included: one full trailing update, packed vs the naive
/// triple loop the packed path replaced.
fn bench_trailing_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm/trailing_update");
    let (m, n, kc) = (448usize, 448usize, 64usize);
    let a = fill(m * kc, 0x1234);
    let b = fill(kc * n, 0x5678);
    let c0 = fill(m * n, 0x9abc);
    group.bench_function(format!("packed_{m}x{n}x{kc}"), |bch| {
        let mut cm = c0.clone();
        let mut ws = gemm::GemmWorkspace::new();
        bch.iter(|| {
            let ap = gemm::pack_a(&mut ws, &a, m, m, kc);
            let mut bp = Vec::new();
            gemm::pack_b(&mut bp, &b, kc, kc, n);
            gemm::gemm_sub_packed(&ap, &bp, n, &mut cm, m);
        })
    });
    group.bench_function(format!("naive_{m}x{n}x{kc}"), |bch| {
        let mut cm = c0.clone();
        bch.iter(|| gemm::gemm_sub_naive(m, n, kc, &a, m, &b, kc, &mut cm, m))
    });
    group.finish();
}

/// The full blocked front kernel with the within-front thread budget —
/// the shape `perf_baseline`'s floor guard watches.
fn bench_blocked_lu_mt(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm/blocked_lu");
    group.sample_size(10);
    let f = 512usize;
    let npiv = 256usize;
    let make = move || {
        let mut w = DenseMat::zeros(f, f);
        let v = fill(f * f, 0xfeed);
        for j in 0..f {
            for i in 0..f {
                *w.get_mut(i, j) = if i == j { f as f64 } else { v[j * f + i] };
            }
        }
        w
    };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for threads in [1usize, cores.clamp(2, 8)] {
        group.bench_function(format!("front{f}_npiv{npiv}_t{threads}"), |bch| {
            bch.iter_batched(
                make,
                |mut w| {
                    let mut perm = Vec::new();
                    partial_lu_blocked_mt(&mut w, npiv, 64, &mut perm, threads).unwrap();
                    w
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_microkernel, bench_trailing_update, bench_blocked_lu_mt);
criterion_main!(benches);
