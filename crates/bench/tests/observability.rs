//! Integration tests for the observability layer: Perfetto export
//! stability (golden file), schema validity of real exported traces, and
//! bit-identical recordings across rayon thread-pool widths.

use mf_bench::obs::{cell_summary_json, validate_json};
use mf_bench::sweep::{sweep_cell_captured, CellResult};
use mf_order::OrderingKind;
use mf_sim::recorder::{FrontClass, MemArea, SchedEvent, TaskRole};
use mf_sim::{write_chrome_trace, Recording};
use mf_sparse::gen::paper::PaperMatrix;
use rayon::prelude::*;

const GOLDEN: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/flight_recorder.trace.json");
const GOLDEN_SMALL: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/twotone_small.trace.json");

/// A small hand-built recording exercising every event kind the exporter
/// renders: slices on two processors, both memory areas, a transient
/// same-instant alloc/free pair, an activation instant, and a
/// stall-breaker instant.
fn sample_recording() -> Recording {
    let mut rec = Recording::new(None);
    rec.record(0, SchedEvent::Activate { proc: 0, node: 4, class: FrontClass::Subtree });
    rec.record(0, SchedEvent::MemAlloc { proc: 0, node: 4, area: MemArea::Front, entries: 120 });
    rec.record(0, SchedEvent::ComputeStart { proc: 0, node: 4, role: TaskRole::Elim });
    rec.record(8, SchedEvent::ComputeEnd { proc: 0, node: 4, role: TaskRole::Elim });
    rec.record(8, SchedEvent::MemFree { proc: 0, node: 4, area: MemArea::Front, entries: 120 });
    rec.record(8, SchedEvent::MemAlloc { proc: 0, node: 4, area: MemArea::Stack, entries: 30 });
    rec.record(10, SchedEvent::Activate { proc: 1, node: 7, class: FrontClass::Type2 });
    rec.record(10, SchedEvent::MemAlloc { proc: 1, node: 7, area: MemArea::Front, entries: 50 });
    rec.record(10, SchedEvent::ComputeStart { proc: 1, node: 7, role: TaskRole::Master });
    rec.record(12, SchedEvent::Forced { proc: 1, node: 9, cost: 77 });
    rec.record(15, SchedEvent::ComputeEnd { proc: 1, node: 7, role: TaskRole::Master });
    rec.record(15, SchedEvent::MemFree { proc: 1, node: 7, area: MemArea::Front, entries: 50 });
    rec
}

fn render(rec: &Recording, nprocs: usize) -> String {
    let mut buf = Vec::new();
    write_chrome_trace(&mut buf, nprocs, rec).expect("in-memory export cannot fail");
    String::from_utf8(buf).expect("trace is ASCII")
}

/// The exporter's output format is pinned by a committed golden file:
/// any change to the rendering is a deliberate, reviewed diff
/// (regenerate with `UPDATE_GOLDEN=1 cargo test -p mf-bench`).
#[test]
fn golden_perfetto_export_is_stable() {
    let s = render(&sample_recording(), 2);
    validate_json(&s).expect("exported trace must be well-formed JSON");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &s).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN).expect("golden file is committed");
    assert_eq!(s, golden, "Perfetto export drifted from the golden file");
}

/// End-to-end golden on a *real* (scaled-down) paper matrix: the whole
/// pipeline — generation, ordering, analysis, mapping, simulation with
/// the recorder on, Perfetto export — must stay byte-stable.
#[test]
fn golden_small_paper_matrix_trace_is_stable() {
    use mf_core::config::SolverConfig;
    use mf_symbolic::seqstack::{apply_liu_order, AssemblyDiscipline};

    let nprocs = 4;
    let a = PaperMatrix::TwoTone.instantiate_scaled(0.02);
    let perm = OrderingKind::Amd.compute(&a);
    let mut s = mf_symbolic::analyze(&a, &perm, &mf_symbolic::AmalgamationOptions::default());
    apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
    let cfg = SolverConfig { record_events: true, ..mf_bench::paper_scale_config(nprocs) };
    let map = mf_core::mapping::compute_mapping(&s.tree, &cfg);
    let r = mf_core::parsim::run(&s.tree, &map, &cfg).expect("small run completes");
    let rec = r.recording.expect("recorder was on");

    let out = render(&rec, nprocs);
    validate_json(&out).expect("exported trace must be well-formed JSON");
    let ts = int_values(&out, "ts");
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps must be monotone");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_SMALL, &out).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_SMALL).expect("golden file is committed");
    assert_eq!(out, golden, "small-matrix trace drifted from the golden file");
}

/// Extracts every `"key": <integer>` occurrence, in document order.
fn int_values(s: &str, key: &str) -> Vec<i64> {
    let needle = format!("\"{key}\": ");
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
        out.push(rest[..end].parse().expect("integer after key"));
    }
    out
}

/// A real captured run exports a schema-valid trace with monotone
/// timestamps and balanced, never-negative B/E slice nesting per
/// processor.
#[test]
fn real_trace_is_valid_monotone_and_balanced() {
    let nprocs = 4;
    let c = sweep_cell_captured(PaperMatrix::TwoTone, OrderingKind::Amd, nprocs, None);
    for run in [&c.baseline, &c.memory] {
        let rec = run.recording.as_ref().expect("captured run records");
        let s = render(rec, nprocs);
        validate_json(&s).expect("exported trace must be well-formed JSON");

        let ts = int_values(&s, "ts");
        assert!(!ts.is_empty(), "trace must carry timestamped events");
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps must be monotone");

        // Walk the emitted lines, tracking slice depth per pid.
        let mut depth = vec![0i64; nprocs];
        for line in s.lines() {
            let pid = match int_values(line, "pid").first() {
                Some(&p) => p as usize,
                None => continue,
            };
            if line.contains("\"ph\": \"B\"") {
                depth[pid] += 1;
            } else if line.contains("\"ph\": \"E\"") {
                depth[pid] -= 1;
                assert!(depth[pid] >= 0, "E without matching B on pid {pid}");
            }
        }
        assert!(depth.iter().all(|&d| d == 0), "unbalanced B/E slices: {depth:?}");

        // The counter track replays the same accounting the solver ran:
        // its maximum front+stack level per processor is the active peak.
        let summary = cell_summary_json(&c);
        validate_json(&summary).expect("summary must be well-formed JSON");
    }
}

/// Round-trip equivalence of the compact columnar encoding: decoding a
/// real recording to owned events and re-recording them must reproduce
/// the identical logical stream, a byte-identical Perfetto export, and a
/// peak attribution that still sums to the solver's `active_peak`.
#[test]
fn compact_recording_round_trips_through_owned_events() {
    let nprocs = 4;
    let c = sweep_cell_captured(PaperMatrix::TwoTone, OrderingKind::Amd, nprocs, None);
    for run in [&c.baseline, &c.memory] {
        let rec = run.recording.as_ref().expect("captured run records");
        assert!(rec.payload_refs_valid(), "payload refs must be in-bounds and non-overlapping");

        let mut rebuilt = Recording::new(None);
        for te in rec.events() {
            rebuilt.record(te.at, te.ev.to_owned());
        }
        assert!(&rebuilt == rec, "re-recording decoded events must reproduce the stream");
        assert_eq!(
            render(rec, nprocs),
            render(&rebuilt, nprocs),
            "exports must agree byte-for-byte"
        );

        let att = mf_sim::attribute_peaks(nprocs, &rebuilt);
        for (p, a) in att.iter().enumerate() {
            let sum: u64 = a.composition.iter().map(|it| it.entries).sum();
            assert_eq!(sum, a.peak, "proc {p}: composition must sum to the replayed peak");
            assert_eq!(a.peak, run.peaks[p], "proc {p}: replayed peak must equal active_peak");
        }
    }
}

/// The Prometheus exposition (run metrics + sampled time-series) is
/// pinned by a committed golden file: renaming a metric family, a
/// label, or a bucket edge is a deliberate, reviewed diff (regenerate
/// with `UPDATE_GOLDEN=1 cargo test -p mf-bench`).
#[test]
fn golden_prometheus_exposition_is_stable() {
    use mf_sim::{RunMetrics, RunTimeseries, SampleRow};
    const GOLDEN_PROM: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");

    let mut m = RunMetrics::new(2);
    m.control_msgs = 3;
    m.control_bytes = 480;
    m.status_msgs = 5;
    m.status_bytes = 200;
    m.reselect_rounds = 2;
    m.forced_activations = 1;
    m.view_staleness.observe(0);
    m.view_staleness.observe(9);
    m.pool_depth.observe(4);
    m.procs[0].busy_ticks = 70;
    m.procs[0].activations = 3;
    m.procs[1].busy_ticks = 40;
    m.procs[1].stalled_ticks = 10;
    m.procs[1].slave_tasks = 2;
    m.recovery.kills_observed = 1;
    m.recovery.subtrees_reassigned = 2;

    let mut ts = RunTimeseries::new(2, 50, 16);
    let row = |at, active, stack, pool_depth, queued, busy, stalled, cm, sm| SampleRow {
        at,
        active,
        stack,
        pool_depth,
        queued,
        busy,
        stalled,
        control_msgs: cm,
        status_msgs: sm,
    };
    ts.push(0, row(50, 120, 30, 2, 0, true, false, 1, 2));
    ts.push(1, row(50, 0, 0, 0, 1, false, true, 1, 2));
    ts.push(0, row(100, 90, 60, 1, 0, true, false, 3, 5));

    let mut buf = m.to_prometheus(100).into_bytes();
    ts.write_prometheus(&mut buf).expect("in-memory export cannot fail");
    let s = String::from_utf8(buf).expect("exposition is ASCII");

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PROM, &s).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PROM).expect("golden file is committed");
    assert_eq!(s, golden, "Prometheus exposition drifted from the golden file");
}

/// Turning the sampler on is pure observation at bench scale: the
/// recorded event stream, peaks, makespan, and metrics of both strategy
/// arms are identical with and without `sample_every`, and the
/// paper-style percent table rendered from the runs is byte-identical.
#[test]
fn sampler_on_recordings_and_tables_are_byte_identical() {
    use mf_bench::render_percent_table;
    use mf_core::config::{SlaveSelection, SolverConfig, TaskSelection};

    let nprocs = 8;
    let tree = mf_bench::sweep::build_tree(PaperMatrix::TwoTone, OrderingKind::Amd, None);
    let arm = |memory: bool, sample_every: Option<u64>| {
        let observed = SolverConfig {
            record_events: true,
            event_capacity: None,
            sample_every,
            ..mf_bench::paper_scale_config(nprocs)
        };
        let cfg = if memory {
            observed
        } else {
            SolverConfig {
                slave_selection: SlaveSelection::Workload,
                task_selection: TaskSelection::Lifo,
                use_subtree_info: false,
                use_prediction: false,
                ..observed
            }
        };
        let map = mf_core::mapping::compute_mapping(&tree, &cfg);
        mf_core::parsim::run(&tree, &map, &cfg).expect("run completes")
    };

    let table = |base_peak: u64, mem_peak: u64| {
        let gain = 100.0 * (base_peak as f64 - mem_peak as f64) / base_peak as f64;
        render_percent_table("sampler identity", &[("TWOTONE", [gain; 4])], None)
    };

    for memory in [false, true] {
        let off = arm(memory, None);
        let on = arm(memory, Some(500));
        assert!(off.recording == on.recording, "memory={memory}: sampler on/off recordings differ");
        assert_eq!(off.peaks, on.peaks, "memory={memory}: peaks differ");
        assert_eq!(off.makespan, on.makespan, "memory={memory}: makespan differs");
        assert!(off.metrics == on.metrics, "memory={memory}: metrics differ");
        assert!(off.timeseries.is_none(), "sampler off must not allocate series");
        let ts = on.timeseries.as_ref().expect("sampler on must produce a series");
        assert!(ts.total_len() > 0, "sampler on must retain samples");
    }

    let base_off = arm(false, None);
    let mem_off = arm(true, None);
    let base_on = arm(false, Some(500));
    let mem_on = arm(true, Some(500));
    let max = |peaks: &[u64]| peaks.iter().copied().max().unwrap_or(0);
    assert_eq!(
        table(max(&base_off.peaks), max(&mem_off.peaks)),
        table(max(&base_on.peaks), max(&mem_on.peaks)),
        "rendered paper table must not depend on the sampler"
    );
}

/// Flight recordings are part of the deterministic contract: sweeping
/// the same cells under different rayon pool widths must produce
/// byte-identical recordings, not just identical peaks.
#[test]
fn recordings_identical_across_thread_pool_widths() {
    let specs =
        [(PaperMatrix::TwoTone, OrderingKind::Amd), (PaperMatrix::Ship003, OrderingKind::Metis)];
    let run_with = |threads: usize| -> Vec<CellResult> {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build local pool")
            .install(|| {
                specs.par_iter().map(|&(m, k)| sweep_cell_captured(m, k, 4, None)).collect()
            })
    };
    let narrow = run_with(1);
    let wide = run_with(4);
    for (a, b) in narrow.iter().zip(&wide) {
        for (strat, x, y) in
            [("baseline", &a.baseline, &b.baseline), ("memory", &a.memory, &b.memory)]
        {
            let (rx, ry) = (x.recording.as_ref().unwrap(), y.recording.as_ref().unwrap());
            assert!(rx == ry, "{}/{strat}: recordings differ across pool widths", a.matrix.name());
            assert_eq!(x.peaks, y.peaks);
            assert_eq!(x.makespan, y.makespan);
            assert!(x.metrics == y.metrics, "{}/{strat}: metrics differ", a.matrix.name());
        }
    }
}
