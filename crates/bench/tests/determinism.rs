//! Regression tests for the central invariant of the experiment harness:
//! caching and parallel cell execution must not change a single output
//! number. Every table binary depends on it (see DESIGN.md,
//! "Performance").

use mf_bench::sweep::{sweep_cell, sweep_cells, CellResult, CellSpec};
use mf_order::OrderingKind;
use mf_sparse::gen::paper::PaperMatrix;
use rayon::ThreadPoolBuilder;

/// A small grid with deliberate artifact overlap: two split settings per
/// (matrix, ordering) and two processor counts, so the shared cache is
/// actually exercised across cells (not just within one).
fn grid() -> Vec<CellSpec> {
    let thr = mf_bench::sweep::split_threshold_for();
    let mut specs = Vec::new();
    for (m, k) in
        [(PaperMatrix::Gupta3, OrderingKind::Amd), (PaperMatrix::BmwCra1, OrderingKind::Metis)]
    {
        for nprocs in [8usize, 32] {
            for split in [None, Some(thr)] {
                specs.push((m, k, nprocs, split, false));
            }
        }
    }
    specs
}

/// Renders the fields the table binaries print, so byte-equal output
/// here means byte-equal published tables.
fn render(cells: &[CellResult]) -> String {
    let mut out = String::new();
    for c in cells {
        out.push_str(&format!(
            "{} {} split={:?} | base peak={} makespan={} msgs={} | mem peak={} makespan={} msgs={} | fronts={}\n",
            c.matrix.name(),
            c.ordering.name(),
            c.split,
            c.baseline.max_peak,
            c.baseline.makespan,
            c.baseline.messages,
            c.memory.max_peak,
            c.memory.makespan,
            c.memory.messages,
            c.stats.nodes,
        ));
    }
    out
}

#[test]
fn sweep_cell_is_reproducible() {
    let a = sweep_cell(PaperMatrix::Gupta3, OrderingKind::Amd, 16, None, false);
    let b = sweep_cell(PaperMatrix::Gupta3, OrderingKind::Amd, 16, None, false);
    assert_eq!(a.baseline.peaks, b.baseline.peaks);
    assert_eq!(a.baseline.makespan, b.baseline.makespan);
    assert_eq!(a.memory.peaks, b.memory.peaks);
    assert_eq!(a.memory.makespan, b.memory.makespan);
    assert_eq!(render(&[a]), render(&[b]));
}

#[test]
fn parallel_sweep_is_deterministic() {
    let specs = grid();
    // Same grid through thread pools of different widths. Results are
    // collected in input order regardless of completion order, so the
    // rendered tables must be byte-identical.
    let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let four = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let seq = one.install(|| sweep_cells(&specs));
    let par = four.install(|| sweep_cells(&specs));
    assert_eq!(seq.len(), specs.len());
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.baseline.max_peak, p.baseline.max_peak);
        assert_eq!(s.baseline.makespan, p.baseline.makespan);
        assert_eq!(s.memory.max_peak, p.memory.max_peak);
        assert_eq!(s.memory.makespan, p.memory.makespan);
    }
    assert_eq!(render(&seq), render(&par));

    // And a third pass through the now-warm cache, single-threaded calls
    // straight into sweep_cell, must agree with both.
    for (spec, p) in specs.iter().zip(&par) {
        let c = sweep_cell(spec.0, spec.1, spec.2, spec.3, spec.4);
        assert_eq!(c.baseline.peaks, p.baseline.peaks);
        assert_eq!(c.memory.peaks, p.memory.peaks);
    }
}
