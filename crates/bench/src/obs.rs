//! Observability plumbing shared by the experiment binaries.
//!
//! Every binary can export machine-readable run artifacts next to its
//! human-readable table: a per-cell **run summary** JSON (always
//! derivable — the metrics registry is always on) and, when the cell was
//! run with the flight recorder, a **Perfetto/Chrome trace** JSON
//! loadable in `ui.perfetto.dev` or `chrome://tracing`.
//!
//! Exports are opt-in and off by default: they trigger only when an
//! output directory is given, either with a `--obs-dir <dir>` pair on
//! the command line or through the `MF_OBS_DIR` environment variable
//! (the flag wins). Without it every hook below is a no-op, so the
//! binaries' default stdout stays byte-identical.
//!
//! The module also carries a small recursive-descent JSON validator used
//! by the exporters' tests and the CI `observability` job: the repo
//! renders all JSON by hand (no serde), so well-formedness is asserted,
//! not assumed.

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::sweep::CellResult;

/// Observability output directory, if exporting was requested: the value
/// following `--obs-dir` on the command line, else `MF_OBS_DIR` from the
/// environment, else `None` (all exports disabled).
pub fn obs_dir() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--obs-dir" {
            return args.next().map(PathBuf::from);
        }
    }
    std::env::var_os("MF_OBS_DIR").map(PathBuf::from)
}

/// File-name-safe label for a cell: `twotone_amd_p32_split0`.
pub fn cell_label(c: &CellResult) -> String {
    format!(
        "{}_{}_p{}_split{}",
        c.matrix.name().to_lowercase(),
        c.ordering.name().to_lowercase(),
        c.baseline.peaks.len(),
        c.split.unwrap_or(0)
    )
}

/// Renders one run (peaks + counters + the always-on metrics registry)
/// as a JSON object, indented for embedding at depth 1.
fn run_json(out: &mut String, name: &str, r: &mf_core::parsim::RunResult, last: bool) {
    let sep = if last { "" } else { "," };
    writeln!(out, "  \"{name}\": {{").unwrap();
    writeln!(out, "    \"max_peak\": {}, \"avg_peak\": {:.1},", r.max_peak, r.avg_peak).unwrap();
    writeln!(out, "    \"makespan\": {}, \"messages\": {},", r.makespan, r.messages).unwrap();
    writeln!(
        out,
        "    \"dropped_messages\": {}, \"forced_activations\": {},",
        r.dropped_messages, r.forced_activations
    )
    .unwrap();
    let fmt_u64s = |vals: &[u64]| {
        let body: Vec<String> = vals.iter().map(u64::to_string).collect();
        format!("[{}]", body.join(", "))
    };
    writeln!(out, "    \"peaks\": {},", fmt_u64s(&r.peaks)).unwrap();
    writeln!(out, "    \"underflows\": {},", fmt_u64s(&r.underflows)).unwrap();
    let (events, evicted) =
        r.recording.as_ref().map_or((0, 0), |rec| (rec.len(), rec.dropped() as usize));
    writeln!(out, "    \"recorded_events\": {events}, \"evicted_events\": {evicted},").unwrap();
    writeln!(out, "    \"metrics\": {}", r.metrics.to_json(r.makespan)).unwrap();
    writeln!(out, "  }}{sep}").unwrap();
}

/// Machine-readable summary of a cell: both strategies' peaks, traffic,
/// degradation counters and metrics registries.
pub fn cell_summary_json(c: &CellResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    writeln!(
        out,
        "  \"matrix\": \"{}\", \"ordering\": \"{}\", \"nprocs\": {},",
        c.matrix.name(),
        c.ordering.name(),
        c.baseline.peaks.len()
    )
    .unwrap();
    match c.split {
        Some(t) => writeln!(out, "  \"split\": {t},").unwrap(),
        None => writeln!(out, "  \"split\": null,").unwrap(),
    }
    writeln!(
        out,
        "  \"gain_percent\": {:.2}, \"time_loss_percent\": {:.2},",
        c.gain_percent(),
        c.time_loss_percent()
    )
    .unwrap();
    run_json(&mut out, "baseline", &c.baseline, false);
    run_json(&mut out, "memory", &c.memory, true);
    out.push_str("}\n");
    out
}

/// Exports whatever a cell carries into `obs_dir()`, if set: always the
/// summary (`<label>.summary.json`) and a Prometheus exposition of each
/// strategy's metrics registry (`<label>.<strategy>.metrics.prom`,
/// recovery counters included); plus, per recorded strategy, a Perfetto
/// trace (`<label>.<strategy>.trace.json`, with sampled counter tracks
/// overlaid when the cell ran with the telemetry sampler); plus, per
/// sampled strategy, the time series as JSONL and Prometheus text
/// (`<label>.<strategy>.timeseries.{jsonl,prom}`). No-op without an obs
/// dir. Returns the number of files written.
pub fn maybe_export_cell(c: &CellResult) -> usize {
    let Some(dir) = obs_dir() else { return 0 };
    std::fs::create_dir_all(&dir).expect("create obs dir");
    let label = cell_label(c);
    let mut written = 0;
    let summary = cell_summary_json(c);
    debug_assert!(validate_json(&summary).is_ok());
    std::fs::write(dir.join(format!("{label}.summary.json")), summary).expect("write run summary");
    written += 1;
    for (strategy, run) in [("baseline", &c.baseline), ("memory", &c.memory)] {
        std::fs::write(
            dir.join(format!("{label}.{strategy}.metrics.prom")),
            run.metrics.to_prometheus(run.makespan),
        )
        .expect("write metrics exposition");
        written += 1;
        if let Some(rec) = &run.recording {
            let nprocs = run.peaks.len();
            let path = dir.join(format!("{label}.{strategy}.trace.json"));
            let file = std::fs::File::create(&path).expect("create trace file");
            let mut w = std::io::BufWriter::new(file);
            mf_sim::write_chrome_trace_with_series(&mut w, nprocs, rec, run.timeseries.as_ref())
                .expect("write Perfetto trace");
            written += 1;
        }
        if let Some(ts) = &run.timeseries {
            let path = dir.join(format!("{label}.{strategy}.timeseries.jsonl"));
            let mut w = std::io::BufWriter::new(std::fs::File::create(&path).expect("create"));
            ts.write_jsonl(&mut w).expect("write timeseries JSONL");
            let path = dir.join(format!("{label}.{strategy}.timeseries.prom"));
            let mut w = std::io::BufWriter::new(std::fs::File::create(&path).expect("create"));
            ts.write_prometheus(&mut w).expect("write timeseries exposition");
            written += 2;
        }
    }
    written
}

/// Exports every cell of a sweep (see [`maybe_export_cell`]); returns
/// the number of files written (0 when exporting is off).
pub fn maybe_export_cells(cells: &[CellResult]) -> usize {
    let mut written = 0;
    for c in cells {
        written += maybe_export_cell(c);
    }
    if written > 0 {
        eprintln!("obs: exported {written} file(s) to {}", obs_dir().unwrap().display());
    }
    written
}

/// Validates that `s` is one well-formed JSON value (RFC 8259 subset:
/// objects, arrays, strings with escapes, numbers, `true`/`false`/
/// `null`). Returns the byte offset of the first violation.
///
/// This is a *validator*, not a parser — the repo's hand-rendered JSON
/// artifacts are checked for well-formedness in tests and CI without
/// pulling in a serde dependency.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // [
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
            },
            0x00..=0x1f => return Err(format!("raw control byte in string at {pos}", pos = *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("malformed number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("malformed fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("malformed exponent at byte {start}"));
        }
    }
    Ok(())
}

/// Extracts every numeric leaf of a JSON document as
/// (dotted-path, value) pairs in document order: object members append
/// `.key`, array elements append `[i]` — e.g.
/// `sweep_subset.warm_cache_ms` or `lu_kernel_blocked[1].gflops`.
///
/// This powers cross-run artifact diffing (`mf-obs diff sweeps`, the
/// `perf_baseline` trajectory report): two runs of the same harness
/// yield the same paths, so a regression is named by the exact metric
/// that moved. Input is expected to be well-formed (validate with
/// [`validate_json`] first); on malformed input the pairs collected up
/// to the defect are returned.
pub fn json_numbers(s: &str) -> Vec<(String, f64)> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    let mut path = String::new();
    skip_ws(b, &mut pos);
    let _ = collect_numbers(b, &mut pos, &mut path, &mut out);
    out
}

fn collect_numbers(
    b: &[u8],
    pos: &mut usize,
    path: &mut String,
    out: &mut Vec<(String, f64)>,
) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                let key_start = *pos + 1;
                string(b, pos)?;
                let key =
                    std::str::from_utf8(&b[key_start..*pos - 1]).map_err(|e| e.to_string())?;
                let key = key.to_string();
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let depth = path.len();
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(&key);
                collect_numbers(b, pos, path, out)?;
                path.truncate(depth);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            let mut i = 0usize;
            loop {
                let depth = path.len();
                path.push_str(&format!("[{i}]"));
                collect_numbers(b, pos, path, out)?;
                path.truncate(depth);
                i += 1;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            number(b, pos)?;
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            if let Ok(v) = text.parse::<f64>() {
                out.push((path.clone(), v));
            }
            Ok(())
        }
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_wellformed() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            r#"{ "a": [1, 2, {"b": "x\ny \u00e9"}], "c": false }"#,
            "  [true , null]  ",
        ] {
            assert!(validate_json(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn validator_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "01a",
            "\"unterminated",
            "nul",
            "[1] trailing",
            "1.",
            "{\"\\q\": 1}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn json_numbers_yields_dotted_paths_in_order() {
        let doc = r#"{ "a": 1, "b": { "c": 2.5, "d": [10, {"e": -3}] }, "f": null, "g": "x" }"#;
        let nums = json_numbers(doc);
        assert_eq!(
            nums,
            vec![
                ("a".to_string(), 1.0),
                ("b.c".to_string(), 2.5),
                ("b.d[0]".to_string(), 10.0),
                ("b.d[1].e".to_string(), -3.0),
            ]
        );
    }

    #[test]
    fn summary_of_a_real_cell_is_valid_json() {
        let c = crate::sweep::sweep_cell_captured(
            mf_sparse::gen::paper::PaperMatrix::TwoTone,
            mf_order::OrderingKind::Amd,
            4,
            None,
        );
        let s = cell_summary_json(&c);
        validate_json(&s).expect("summary must be well-formed");
        assert!(s.contains("\"recorded_events\""));
        assert!(c.baseline.recording.is_some());
    }
}
