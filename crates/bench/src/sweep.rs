//! Shared experiment-sweep machinery: backend selection, cell execution,
//! parallel sweeps, and the paper-style percent-table harness every
//! `tableN` binary builds on.

use std::sync::Arc;

use mf_core::config::{SlaveSelection, SolverConfig, TaskSelection};
use mf_core::mapping::{compute_mapping, StaticMapping};
use mf_core::parsim::{self, RunResult};
use mf_order::OrderingKind;
use mf_sparse::gen::paper::PaperMatrix;
use mf_symbolic::tree::TreeStats;
use mf_symbolic::AssemblyTree;
use rayon::prelude::*;

/// Which runtime executes the scheduler cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The discrete-event simulator (`mf_core::parsim`): the default, and
    /// the only backend supporting the noise models.
    Sim,
    /// Real OS threads with channels (`mf_exec`): the same cores, a
    /// physical memory ledger, identical results under the quiet model.
    Threads,
}

impl Backend {
    /// Reads the backend from the `MF_BACKEND` environment variable
    /// (`sim` | `threads`, default `sim`). Panics on an unknown value —
    /// silently falling back would invalidate an equivalence experiment.
    pub fn from_env() -> Backend {
        match std::env::var("MF_BACKEND").as_deref() {
            Ok("threads") => Backend::Threads,
            Ok("sim") | Err(_) => Backend::Sim,
            Ok(other) => panic!("MF_BACKEND must be `sim` or `threads`, got `{other}`"),
        }
    }

    /// Stable name (mirrors the `MF_BACKEND` values).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Threads => "threads",
        }
    }

    /// Runs one factorization on this backend, panicking on failure with
    /// full diagnostics (table cells run unperturbed and uncapped; an
    /// error here is a bug, not a result).
    pub fn run(self, tree: &AssemblyTree, map: &StaticMapping, cfg: &SolverConfig) -> RunResult {
        match self {
            Backend::Sim => {
                parsim::run(tree, map, cfg).unwrap_or_else(|e| panic!("simulator run failed: {e}"))
            }
            Backend::Threads => mf_exec::run_threads(tree, map, cfg)
                .unwrap_or_else(|e| panic!("threaded run failed: {e}")),
        }
    }
}

/// Result of one experiment cell (matrix × ordering × split setting),
/// with the baseline (workload) and the memory-based runs on the *same*
/// tree and mapping, as in the paper.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Which matrix.
    pub matrix: PaperMatrix,
    /// Which ordering.
    pub ordering: OrderingKind,
    /// Splitting threshold applied (entries), if any.
    pub split: Option<u64>,
    /// Tree shape (after splitting).
    pub stats: TreeStats,
    /// Run with the workload baseline.
    pub baseline: RunResult,
    /// Run with the full memory-based strategies.
    pub memory: RunResult,
}

impl CellResult {
    /// Table 2/3/5 quantity: percentage decrease of the maximum stack
    /// peak achieved by the memory strategies.
    pub fn gain_percent(&self) -> f64 {
        mf_core::driver::percent_decrease(self.baseline.max_peak, self.memory.max_peak)
    }

    /// Table 6 quantity: percentage loss of factorization time.
    pub fn time_loss_percent(&self) -> f64 {
        mf_core::driver::percent_increase(self.baseline.makespan, self.memory.makespan)
    }
}

/// Default telemetry sampling interval (virtual ticks) used by the
/// `timeline` tooling and the sampler-overhead guard when no explicit
/// interval is given. Paper-scale makespans run to a few hundred
/// thousand ticks, so this yields on the order of a hundred samples per
/// processor — dense enough for memory-evolution plots, sparse enough
/// that the sampler's cost (one timer event per processor per interval,
/// ~350 ns each of event-queue churn) stays within the perf guard's 3%
/// budget.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 10_000;

/// Telemetry sampling interval from the `MF_SAMPLE_EVERY` environment
/// variable (virtual ticks; unset or `0` disables the sampler). Panics
/// on a non-integer value — silently ignoring it would make a CI
/// sampler-invariance check vacuous. The sampler never perturbs
/// schedules (pinned by `mf_core`'s
/// `sampler_is_schedule_invariant_and_absent_when_disabled`), so every
/// table binary renders byte-identical stdout with this set or not.
pub fn sample_every_from_env() -> Option<u64> {
    match std::env::var("MF_SAMPLE_EVERY") {
        Ok(v) => match v.parse::<u64>() {
            Ok(0) => None,
            Ok(t) => Some(t),
            Err(_) => panic!("MF_SAMPLE_EVERY must be an integer tick count, got {v:?}"),
        },
        Err(_) => None,
    }
}

/// Base configuration at reproduction scale: 32 processors like the
/// paper, SP-like network, type-2 threshold fitting the reduced front
/// sizes. The telemetry sampler is wired through here (see
/// [`sample_every_from_env`]), so every sweep cell of every binary
/// produces time series when `MF_SAMPLE_EVERY` is set.
pub fn paper_scale_config(nprocs: usize) -> SolverConfig {
    SolverConfig {
        nprocs,
        type2_front_min: 150,
        type3_front_min: 500,
        min_rows_per_slave: 12,
        sample_every: sample_every_from_env(),
        ..SolverConfig::mumps_baseline(nprocs)
    }
}

/// Splitting threshold at reproduction scale.
///
/// The paper uses 2·10⁶ entries on matrices of order 10⁵–10⁶; our
/// analogues are 10–50× smaller, with master parts one to two orders of
/// magnitude smaller. 250k entries plays the same role: it splits only
/// the handful of huge type-2 masters. (The paper itself notes the
/// threshold "should be more matrix-dependent".)
pub fn split_threshold_for() -> u64 {
    250_000
}

/// Builds the assembly tree for a cell (ordering + analysis + Liu child
/// order + optional splitting), memoized process-wide: repeated calls
/// with the same key share one [`Arc`]'d artifact (see [`crate::cache`]).
pub fn build_tree(
    matrix: PaperMatrix,
    ordering: OrderingKind,
    split: Option<u64>,
) -> Arc<AssemblyTree> {
    crate::cache::cached_tree(matrix, ordering, split)
}

/// Runs one cell: same tree and static mapping, both dynamic strategies.
pub fn sweep_cell(
    matrix: PaperMatrix,
    ordering: OrderingKind,
    nprocs: usize,
    split: Option<u64>,
    record_traces: bool,
) -> CellResult {
    let tree = build_tree(matrix, ordering, split);
    let base_cfg = SolverConfig {
        slave_selection: SlaveSelection::Workload,
        task_selection: TaskSelection::Lifo,
        use_subtree_info: false,
        use_prediction: false,
        record_traces,
        ..paper_scale_config(nprocs)
    };
    let mem_cfg = SolverConfig {
        slave_selection: SlaveSelection::Memory,
        task_selection: TaskSelection::MemoryAware,
        use_subtree_info: true,
        use_prediction: true,
        record_traces,
        ..paper_scale_config(nprocs)
    };
    let map = compute_mapping(&tree, &base_cfg);
    let backend = Backend::from_env();
    let baseline = backend.run(&tree, &map, &base_cfg);
    let memory = backend.run(&tree, &map, &mem_cfg);
    CellResult { matrix, ordering, split, stats: tree.stats(), baseline, memory }
}

/// Runs one cell exactly like [`sweep_cell`], but with the full
/// observability surface enabled on both strategies: per-processor
/// memory traces *and* the structured flight recording (unbounded, so
/// peak attribution is exact). Schedules are guaranteed unperturbed —
/// the recorder's disabled/enabled paths produce identical peaks,
/// makespans and message counts (pinned by `mf_core`'s
/// `recording_is_deterministic_and_absent_when_disabled` test).
pub fn sweep_cell_captured(
    matrix: PaperMatrix,
    ordering: OrderingKind,
    nprocs: usize,
    split: Option<u64>,
) -> CellResult {
    let tree = build_tree(matrix, ordering, split);
    let observed = SolverConfig {
        record_traces: true,
        record_events: true,
        event_capacity: None,
        ..paper_scale_config(nprocs)
    };
    let base_cfg = SolverConfig {
        slave_selection: SlaveSelection::Workload,
        task_selection: TaskSelection::Lifo,
        use_subtree_info: false,
        use_prediction: false,
        ..observed.clone()
    };
    let mem_cfg = SolverConfig {
        slave_selection: SlaveSelection::Memory,
        task_selection: TaskSelection::MemoryAware,
        use_subtree_info: true,
        use_prediction: true,
        ..observed
    };
    let map = compute_mapping(&tree, &base_cfg);
    let backend = Backend::from_env();
    let baseline = backend.run(&tree, &map, &base_cfg);
    let memory = backend.run(&tree, &map, &mem_cfg);
    CellResult { matrix, ordering, split, stats: tree.stats(), baseline, memory }
}

/// Runs one cell exactly like [`sweep_cell`] with traces off, but with
/// the structured flight recorder on (unbounded). This is the honest
/// recorder-overhead arm: the *only* difference from
/// `sweep_cell(.., false)` is `record_events`, so timing the two on the
/// same cell set in the same process isolates the recorder's cost.
pub fn sweep_cell_recorded(
    matrix: PaperMatrix,
    ordering: OrderingKind,
    nprocs: usize,
    split: Option<u64>,
) -> CellResult {
    let tree = build_tree(matrix, ordering, split);
    let observed =
        SolverConfig { record_events: true, event_capacity: None, ..paper_scale_config(nprocs) };
    let base_cfg = SolverConfig {
        slave_selection: SlaveSelection::Workload,
        task_selection: TaskSelection::Lifo,
        use_subtree_info: false,
        use_prediction: false,
        ..observed.clone()
    };
    let mem_cfg = SolverConfig {
        slave_selection: SlaveSelection::Memory,
        task_selection: TaskSelection::MemoryAware,
        use_subtree_info: true,
        use_prediction: true,
        ..observed
    };
    let map = compute_mapping(&tree, &base_cfg);
    let backend = Backend::from_env();
    let baseline = backend.run(&tree, &map, &base_cfg);
    let memory = backend.run(&tree, &map, &mem_cfg);
    CellResult { matrix, ordering, split, stats: tree.stats(), baseline, memory }
}

/// Runs one cell exactly like [`sweep_cell`] (traces and recorder off),
/// but with the telemetry sampler armed at the given interval on both
/// strategies. This is the sampler-overhead arm of `perf_baseline`: the
/// *only* difference from `sweep_cell(.., false)` is `sample_every`, so
/// timing the two isolates the sampler's end-to-end cost — and the
/// schedule-invariance contract means peaks and makespans must agree
/// bit-exactly with the unsampled run.
pub fn sweep_cell_sampled(
    matrix: PaperMatrix,
    ordering: OrderingKind,
    nprocs: usize,
    split: Option<u64>,
    every: u64,
) -> CellResult {
    let tree = build_tree(matrix, ordering, split);
    let observed = SolverConfig { sample_every: Some(every), ..paper_scale_config(nprocs) };
    let base_cfg = SolverConfig {
        slave_selection: SlaveSelection::Workload,
        task_selection: TaskSelection::Lifo,
        use_subtree_info: false,
        use_prediction: false,
        ..observed.clone()
    };
    let mem_cfg = SolverConfig {
        slave_selection: SlaveSelection::Memory,
        task_selection: TaskSelection::MemoryAware,
        use_subtree_info: true,
        use_prediction: true,
        ..observed
    };
    let map = compute_mapping(&tree, &base_cfg);
    let backend = Backend::from_env();
    let baseline = backend.run(&tree, &map, &base_cfg);
    let memory = backend.run(&tree, &map, &mem_cfg);
    CellResult { matrix, ordering, split, stats: tree.stats(), baseline, memory }
}

/// One entry of a parallel sweep: the arguments of [`sweep_cell`].
pub type CellSpec = (PaperMatrix, OrderingKind, usize, Option<u64>, bool);

/// Runs many sweep cells in parallel, returning the results **in input
/// order** — cell `i` of the output is `sweep_cell(specs[i])`, whatever
/// the execution interleaving. Each cell is itself a deterministic pure
/// function (the simulator's virtual clock is unaffected by wall-clock
/// scheduling), so a parallel sweep renders bit-identical tables to the
/// sequential loop it replaces; the `parallel_sweep_is_deterministic`
/// test pins this under different thread-pool sizes.
pub fn sweep_cells(specs: &[CellSpec]) -> Vec<CellResult> {
    specs
        .par_iter()
        .map(|&(m, k, nprocs, split, traces)| sweep_cell(m, k, nprocs, split, traces))
        .collect()
}

/// Renders a matrix × ordering table of percentages, paper-style.
pub fn render_percent_table(
    title: &str,
    rows: &[(&str, [f64; 4])],
    paper: Option<&[(&str, [f64; 4])]>,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    writeln!(out, "{:-<width$}", "", width = title.len()).unwrap();
    writeln!(out, "{:14} {:>8} {:>8} {:>8} {:>8}", "", "METIS", "PORD", "AMD", "AMF").unwrap();
    for (name, vals) in rows {
        writeln!(
            out,
            "{:14} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            name, vals[0], vals[1], vals[2], vals[3]
        )
        .unwrap();
        if let Some(paper_rows) = paper {
            if let Some((_, p)) = paper_rows.iter().find(|(n, _)| n == name) {
                writeln!(
                    out,
                    "{:14} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
                    "  (paper)", p[0], p[1], p[2], p[3]
                )
                .unwrap();
            }
        }
    }
    out
}

/// The full paper-style table pipeline shared by the `tableN` binaries:
/// run `specs` in parallel ([`sweep_cells`]), export observability
/// artifacts if requested, then fold each matrix's four ordering columns
/// through `cell` — which receives the `group` consecutive cells of one
/// (matrix, ordering) entry and returns the percentage plus the progress
/// line to print on stderr — and render against the paper's numbers.
///
/// `specs` must hold `matrices.len() × 4 orderings × group` cells in
/// matrix-major, ordering-minor order (the natural order the binaries
/// already build).
pub fn run_percent_table(
    title: &str,
    paper: Option<&[(&str, [f64; 4])]>,
    matrices: &[PaperMatrix],
    group: usize,
    specs: &[CellSpec],
    cell: impl Fn(PaperMatrix, &[CellResult]) -> (f64, String),
) {
    assert_eq!(
        specs.len(),
        matrices.len() * 4 * group,
        "specs must cover every (matrix, ordering) entry exactly once"
    );
    let cells = sweep_cells(specs);
    crate::obs::maybe_export_cells(&cells);
    let mut rows = Vec::new();
    for (&m, row) in matrices.iter().zip(cells.chunks_exact(4 * group)) {
        let mut vals = [0.0f64; 4];
        for (i, entry) in row.chunks_exact(group).enumerate() {
            let (val, log) = cell(m, entry);
            vals[i] = val;
            eprintln!("{log}");
        }
        rows.push((m.name(), vals));
    }
    println!("{}", render_percent_table(title, &rows, paper));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_runs_both_strategies_deterministically() {
        let c1 = sweep_cell(PaperMatrix::TwoTone, OrderingKind::Amd, 8, None, false);
        let c2 = sweep_cell(PaperMatrix::TwoTone, OrderingKind::Amd, 8, None, false);
        assert_eq!(c1.baseline.max_peak, c2.baseline.max_peak);
        assert_eq!(c1.memory.max_peak, c2.memory.max_peak);
        assert!(c1.baseline.max_peak > 0);
    }

    #[test]
    fn render_table_has_all_columns() {
        let s = render_percent_table("T", &[("X", [1.0, 2.0, 3.0, 4.0])], None);
        assert!(s.contains("METIS") && s.contains("AMF"));
        assert!(s.contains("X"));
    }
}
