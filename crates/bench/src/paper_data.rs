//! The paper's published numbers, for side-by-side comparison in the
//! table binaries and in EXPERIMENTS.md.

/// Table 2 of the paper: % decrease of the maximum stack peak with the
/// dynamic memory strategies (columns METIS, PORD, AMD, AMF).
pub const PAPER_TABLE2: [(&str, [f64; 4]); 8] = [
    ("BMWCRA_1", [3.0, 0.0, 0.6, 4.1]),
    ("GUPTA3", [5.6, 0.0, 0.0, 0.0]),
    ("MSDOOR", [14.3, 0.0, 2.0, 0.0]),
    ("SHIP_003", [2.0, -1.0, 2.1, 0.2]),
    ("PRE2", [10.3, 1.0, 8.8, -10.5]),
    ("TWOTONE", [-0.3, -4.9, 10.9, 50.6]),
    ("ULTRASOUND3", [16.5, 3.5, -2.0, 3.9]),
    ("XENON2", [3.5, 0.0, 12.0, 12.4]),
];

/// Table 3: same with the statically split tree (unsymmetric matrices).
pub const PAPER_TABLE3: [(&str, [f64; 4]); 4] = [
    ("PRE2", [11.0, 16.9, 4.3, 0.8]),
    ("TWOTONE", [9.2, 0.0, 14.1, 51.4]),
    ("ULTRASOUND3", [5.9, 13.4, -2.8, 14.1]),
    ("XENON2", [12.9, 0.0, -3.3, 9.0]),
];

/// Table 4: absolute max stack peaks (millions of entries) on two cases,
/// rows = (strategy, no-split, split).
// The paper really does report 3.14 million entries; it is not π.
#[allow(clippy::approx_constant)]
pub const PAPER_TABLE4: [(&str, &str, f64, f64); 4] = [
    ("ULTRASOUND3-METIS", "MUMPS dynamic", 7.56, 6.09),
    ("ULTRASOUND3-METIS", "memory-based", 6.13, 5.73),
    ("XENON2-AMF", "MUMPS dynamic", 3.14, 3.14),
    ("XENON2-AMF", "memory-based", 1.55, 1.52),
];

/// Table 5: % decrease with both static and dynamic modifications
/// against original MUMPS.
pub const PAPER_TABLE5: [(&str, [f64; 4]); 4] = [
    ("PRE2", [12.5, 31.0, 24.5, 1.0]),
    ("TWOTONE", [-1.3, -3.0, 14.1, 51.4]),
    ("ULTRASOUND3", [24.2, 5.1, 31.6, 39.5]),
    ("XENON2", [13.8, 0.0, 18.0, 32.7]),
];

/// Table 6: % loss of factorization time of the memory-optimized
/// strategy.
pub const PAPER_TABLE6: [(&str, [f64; 4]); 3] = [
    ("SHIP_003", [3.0, 94.3, 21.2, 36.8]),
    ("PRE2", [-4.5, 0.1, 8.5, -3.2]),
    ("ULTRASOUND3", [8.5, 3.7, 9.0, 49.8]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_shapes() {
        assert_eq!(PAPER_TABLE2.len(), 8);
        assert_eq!(PAPER_TABLE3.len(), 4);
        assert_eq!(PAPER_TABLE5.len(), 4);
        assert_eq!(PAPER_TABLE6.len(), 3);
        // Table 3/5 rows are the unsymmetric matrices of Table 2.
        for (name, _) in PAPER_TABLE3 {
            assert!(PAPER_TABLE2.iter().any(|(n, _)| *n == name));
        }
    }
}
