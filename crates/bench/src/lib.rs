//! Experiment harness regenerating the tables and figures of the paper.
//!
//! Binaries (`cargo run --release -p mf-bench --bin tableN`):
//!
//! * `table1` — the test problems (synthetic analogues + paper metadata);
//! * `table2` — % decrease of the max stack peak, memory strategies vs.
//!   workload baseline, 8 matrices × 4 orderings, no splitting;
//! * `table3` — same on trees with large type-2 masters split;
//! * `table4` — absolute peaks, {no-split, split} × {workload, memory};
//! * `table5` — combined static + dynamic vs. original MUMPS strategy;
//! * `table6` — factorization-time loss of the memory strategies;
//! * `figures` — scenario reproductions of Figures 4, 5, 6 and 8;
//! * `probe` — quick timing/shape scan of all matrix × ordering cells;
//! * `explain` — flight-recorder peak-attribution report (see [`obs`]);
//! * `mf-obs` — protocol audit of recordings, cross-run diffing
//!   (backends, strategies, sweep artifacts), and sampled telemetry
//!   timelines.
//!
//! The library part holds the shared experiment-sweep machinery so the
//! binaries stay thin and the sweeps are testable.

#![warn(missing_docs)]
pub mod cache;
pub mod obs;
pub mod paper_data;
pub mod scenarios;
pub mod sweep;

pub use sweep::{
    paper_scale_config, render_percent_table, sample_every_from_env, split_threshold_for,
    sweep_cell, sweep_cell_captured, sweep_cell_sampled, sweep_cells, CellResult, CellSpec,
    DEFAULT_SAMPLE_INTERVAL,
};
