//! Process-wide memoization of symbolic sweep artifacts.
//!
//! Every sweep cell starts from the same three pure computations —
//! instantiate the matrix, compute the fill-reducing permutation, run the
//! symbolic analysis — and the table drivers revisit the same
//! `(matrix, ordering, split)` triples many times (two strategies per
//! cell, several tables per binary, ablation variants, scaling curves).
//! This module caches each level once per process behind `Arc`s:
//!
//! * matrix      — keyed by [`PaperMatrix`];
//! * permutation — keyed by `(PaperMatrix, OrderingKind)`;
//! * tree        — keyed by `(PaperMatrix, OrderingKind, Option<split>)`,
//!   where the `None` entry holds the analyzed tree after the Liu
//!   child reordering and a `Some(t)` entry is a clone of that tree with
//!   large type-2 masters split.
//!
//! All three computations are deterministic functions of their key, so
//! sharing the artifact cannot change any number downstream — it only
//! removes repeated work. The maps hold `Arc<OnceLock<..>>` slots so a
//! miss computes outside the map lock (concurrent sweep workers don't
//! serialize on each other) while concurrent misses of the *same* key
//! still compute it exactly once.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock};

use mf_order::OrderingKind;
use mf_sparse::gen::paper::PaperMatrix;
use mf_sparse::{CscMatrix, Permutation};
use mf_symbolic::seqstack::{apply_liu_order, AssemblyDiscipline};
use mf_symbolic::{AmalgamationOptions, AssemblyTree};

type Slot<V> = Arc<OnceLock<Arc<V>>>;
type Memo<K, V> = Mutex<HashMap<K, Slot<V>>>;
type TreeKey = (PaperMatrix, OrderingKind, Option<u64>);

/// Returns the cached value for `key`, computing it at most once per
/// process. The map lock is held only to fetch/insert the slot; the
/// (possibly expensive) computation runs on the slot's `OnceLock`.
fn memo<K, V, F>(map: &Memo<K, V>, key: K, f: F) -> Arc<V>
where
    K: Eq + Hash,
    F: FnOnce() -> V,
{
    let slot = map.lock().unwrap().entry(key).or_default().clone();
    slot.get_or_init(|| Arc::new(f())).clone()
}

/// The instantiated synthetic analogue of `m`, shared process-wide.
pub fn cached_matrix(m: PaperMatrix) -> Arc<CscMatrix> {
    static CACHE: OnceLock<Memo<PaperMatrix, CscMatrix>> = OnceLock::new();
    memo(CACHE.get_or_init(Default::default), m, || m.instantiate())
}

/// The fill-reducing permutation of ordering `k` on matrix `m`.
pub fn cached_permutation(m: PaperMatrix, k: OrderingKind) -> Arc<Permutation> {
    static CACHE: OnceLock<Memo<(PaperMatrix, OrderingKind), Permutation>> = OnceLock::new();
    memo(CACHE.get_or_init(Default::default), (m, k), || k.compute(&cached_matrix(m)))
}

/// The analyzed assembly tree for `(m, k, split)`: symbolic analysis with
/// default amalgamation, Liu `FrontThenFree` child order, and — for
/// `Some(t)` — large type-2 masters split at threshold `t` (computed on a
/// clone of the cached unsplit tree).
pub fn cached_tree(m: PaperMatrix, k: OrderingKind, split: Option<u64>) -> Arc<AssemblyTree> {
    static CACHE: OnceLock<Memo<TreeKey, AssemblyTree>> = OnceLock::new();
    let cache = CACHE.get_or_init(Default::default);
    memo(cache, (m, k, split), || match split {
        None => {
            let a = cached_matrix(m);
            let perm = cached_permutation(m, k);
            let mut s = mf_symbolic::analyze(&a, &perm, &AmalgamationOptions::default());
            apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
            s.tree
        }
        Some(t) => {
            let mut tree = (*cached_tree(m, k, None)).clone();
            mf_symbolic::split::split_large_masters(&mut tree, t);
            tree
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_tree_is_shared_and_matches_uncached() {
        let t1 = cached_tree(PaperMatrix::TwoTone, OrderingKind::Amd, None);
        let t2 = cached_tree(PaperMatrix::TwoTone, OrderingKind::Amd, None);
        assert!(Arc::ptr_eq(&t1, &t2), "same key must share one artifact");

        // Same numbers as the uncached pipeline.
        let a = PaperMatrix::TwoTone.instantiate();
        let perm = OrderingKind::Amd.compute(&a);
        let mut s = mf_symbolic::analyze(&a, &perm, &AmalgamationOptions::default());
        apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
        assert_eq!(t1.stats(), s.tree.stats());
    }

    #[test]
    fn split_variant_is_distinct_from_base() {
        let base = cached_tree(PaperMatrix::TwoTone, OrderingKind::Amd, None);
        let split = cached_tree(PaperMatrix::TwoTone, OrderingKind::Amd, Some(50_000));
        assert!(!Arc::ptr_eq(&base, &split));
        assert!(split.stats().nodes >= base.stats().nodes);
    }
}
