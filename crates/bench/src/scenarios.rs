//! Scripted scenarios reproducing the situations of Figures 4, 5, 6, 8,
//! plus the seeded full-size instance synthesizer behind the `scale`
//! sweep (see [`SynthConfig`]).
//!
//! Each figure scenario is a small hand-built assembly tree plus a
//! hand-built static mapping, arranged so that the mechanism under study
//! fires at a controlled virtual time. The `figures` binary prints them;
//! the integration tests assert their direction (the documented strategy
//! must win in its own scenario).

use mf_core::config::{SlaveSelection, SolverConfig, TaskSelection};
use mf_core::mapping::{NodeKind, StaticMapping};
use mf_core::parsim::{self, RunResult};
use mf_sim::NetworkModel;
use mf_sparse::Symmetry;
use mf_symbolic::seqstack::{subtree_peaks, AssemblyDiscipline};
use mf_symbolic::{AssemblyTree, FrontNode};

fn node(first_col: usize, npiv: usize, nfront: usize, parent: Option<usize>) -> FrontNode {
    FrontNode { first_col, npiv, nfront, parent, children: Vec::new(), chain_head: None }
}

fn link(nodes: &mut [FrontNode]) {
    for i in 0..nodes.len() {
        if let Some(p) = nodes[i].parent {
            nodes[p].children.push(i);
        }
    }
}

/// The master/slave race tree shared by the Figure 5 and Figure 6
/// scenarios, on 4 processors:
///
/// * node 0 — child of `B`, runs on P2 from t = 0;
/// * node 1 — `B`, a large type-1 front owned by P0, becomes ready when
///   node 0 completes;
/// * node 2 — child of `S`, runs on P1 (locally, so `S` becomes ready
///   without messaging delay); its pivot count tunes *when* `S`'s master
///   performs its slave selection relative to `B`'s activation;
/// * node 3 — `S`, a type-2 front mastered by P1 choosing exactly one
///   slave among {P0, P2, P3};
/// * node 4 — the root absorbing `S`'s contribution block, on P3.
fn race_tree(s_child_npiv: usize) -> (AssemblyTree, StaticMapping) {
    let mut nodes = vec![
        node(0, 30, 150, Some(1)),                            // B-child, P2
        node(30, 300, 300, None),                             // B, P0 (root)
        node(330, s_child_npiv, 200 + s_child_npiv, Some(3)), // S-child, P1
        node(330 + s_child_npiv, 100, 200, Some(4)),          // S, type-2, P1
        node(430 + s_child_npiv, 100, 100, None),             // R, P3 (root)
    ];
    link(&mut nodes);
    let n = 530 + s_child_npiv;
    let tree = AssemblyTree { nodes, sym: Symmetry::General, n };
    tree.validate().expect("scenario tree is well-formed");
    let map = StaticMapping {
        kind: vec![
            NodeKind::Type1,
            NodeKind::Type1,
            NodeKind::Type1,
            NodeKind::Type2,
            NodeKind::Type1,
        ],
        owner: vec![2, 0, 1, 1, 3],
        subtree_of: vec![None; 5],
        subtree_roots: vec![],
        subtree_proc: vec![],
        subtree_peak: vec![],
        initial_pool: vec![vec![], vec![2], vec![0], vec![]],
    };
    (tree, map)
}

fn race_config() -> SolverConfig {
    SolverConfig {
        nprocs: 4,
        slave_selection: SlaveSelection::Memory,
        task_selection: TaskSelection::Lifo,
        use_subtree_info: false,
        use_prediction: false,
        min_rows_per_slave: 100, // exactly one slave for S
        type2_front_min: 150,
        type3_front_min: usize::MAX,
        ..SolverConfig::mumps_baseline(4)
    }
}

/// Outcome of a figure scenario: the peak of the processor under attack
/// (P0) and the global maximum, for the two contrasted settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// P0 peak / global max with the problematic setting.
    pub bad: (u64, u64),
    /// P0 peak / global max with the protective setting.
    pub good: (u64, u64),
}

fn outcome(bad: &RunResult, good: &RunResult) -> ScenarioOutcome {
    ScenarioOutcome { bad: (bad.peaks[0], bad.max_peak), good: (good.peaks[0], good.max_peak) }
}

/// Figure 5: the coherence problem. `S`'s master selects its slave just
/// after `B` allocated on P0, but the memory increment is still in
/// flight: with a slow control network the stale view sends the slave
/// block straight onto P0 and the peak rises; with an instantaneous
/// network the same decision avoids P0.
pub fn figure5() -> ScenarioOutcome {
    let (tree, map) = race_tree(20); // S ready after B activates
    let slow = SolverConfig {
        network: NetworkModel { latency: 500, bytes_per_tick: 350 },
        ..race_config()
    };
    let fast = SolverConfig { network: NetworkModel::instantaneous(), ..race_config() };
    let bad = parsim::run(&tree, &map, &slow).expect("scenario run failed");
    let good = parsim::run(&tree, &map, &fast).expect("scenario run failed");
    outcome(&bad, &good)
}

/// Figure 6: predicting the activation of an incoming master task. `S`'s
/// master selects *before* `B` becomes ready, so every memory view of P0
/// is genuinely small — only the prediction mechanism (Section 5.1) knows
/// `B` is about to allocate there.
pub fn figure6() -> ScenarioOutcome {
    let (tree, map) = race_tree(10); // S ready before B activates
    let without = race_config();
    let with = SolverConfig { use_prediction: true, ..race_config() };
    let bad = parsim::run(&tree, &map, &without).expect("scenario run failed");
    let good = parsim::run(&tree, &map, &with).expect("scenario run failed");
    outcome(&bad, &good)
}

/// Figure 8: memory-aware task selection. P0 is processing a subtree
/// when a large type-2 master task `T` becomes ready; LIFO activates `T`
/// on top of the subtree's stacked contribution blocks, Algorithm 2
/// delays it until the subtree is finished.
pub fn figure8() -> ScenarioOutcome {
    // Subtree on P0: two leaves (0, 1) under root 2. T (4) is a type-2
    // master on P0 in an *independent branch*: its only child (3) runs
    // quickly on P1, so T becomes ready while P0 is mid-subtree. The
    // root 5 (on P1) absorbs both the subtree's and T's CBs.
    let mut nodes = vec![
        node(0, 20, 120, Some(2)),    // L1a: cb 100 -> 10000 entries
        node(20, 20, 120, Some(2)),   // L1b
        node(40, 100, 110, Some(5)),  // L2 subtree root: cb 10 -> 100
        node(140, 4, 154, Some(4)),   // C: T's child on P1, fast; cb 150
        node(144, 150, 300, Some(5)), // T: type-2 master on P0, cb 150
        node(294, 150, 150, None),    // R root on P1
    ];
    // Both CBs (10 and 150) fit R's front (150).
    link(&mut nodes);
    let tree = AssemblyTree { nodes, sym: Symmetry::General, n: 444 };
    tree.validate().expect("scenario tree is well-formed");
    let subtree_peak = {
        let peaks = subtree_peaks(&tree, AssemblyDiscipline::FrontThenFree);
        vec![peaks[2]]
    };
    let map = StaticMapping {
        kind: vec![
            NodeKind::Subtree(0),
            NodeKind::Subtree(0),
            NodeKind::Subtree(0),
            NodeKind::Type1,
            NodeKind::Type2,
            NodeKind::Type1,
        ],
        owner: vec![0, 0, 0, 1, 0, 1],
        subtree_of: vec![Some(0), Some(0), Some(0), None, None, None],
        subtree_roots: vec![2],
        subtree_proc: vec![0],
        subtree_peak,
        initial_pool: vec![vec![1, 0], vec![3]],
    };
    let base = SolverConfig {
        nprocs: 2,
        slave_selection: SlaveSelection::Workload,
        task_selection: TaskSelection::Lifo,
        use_subtree_info: false,
        use_prediction: false,
        min_rows_per_slave: 150,
        type2_front_min: 150,
        type3_front_min: usize::MAX,
        ..SolverConfig::mumps_baseline(2)
    };
    let alg2 = SolverConfig { task_selection: TaskSelection::MemoryAware, ..base.clone() };
    let bad = parsim::run(&tree, &map, &base).expect("scenario run failed");
    let good = parsim::run(&tree, &map, &alg2).expect("scenario run failed");
    outcome(&bad, &good)
}

/// Parameters of the synthetic nested-dissection instance generator.
///
/// The generator emits the assembly tree a nested-dissection ordering of
/// a regular 2D/3D mesh would produce, at the scale of the paper's
/// Table 1 matrices, without paying for an actual ordering + symbolic
/// analysis at benchmark setup time:
///
/// * a complete binary tree of `depth` levels below the root — the
///   recursion tree of binary dissection, so `2^depth` leaf subtrees
///   (4096 at the default depth 12, enough to keep 1024 processors busy);
/// * separator (pivot-block) sizes shrink geometrically from the root:
///   a node at level `l` eliminates `s0 * gamma^l` pivots, the classic
///   profile of regular-mesh separators, perturbed by a seeded
///   multiplicative jitter of up to `jitter` so the tree is not
///   pathologically symmetric;
/// * contribution blocks are `beta * npiv` rows (clamped to fit the
///   parent front, which [`mf_symbolic::AssemblyTree::validate`]
///   requires), so fronts are `(1 + beta) * npiv` — border-to-separator
///   ratios around 1.5 match the paper's larger matrices.
///
/// Node ids are a postorder (children before parents, pivot columns
/// contiguous in id order), the layout every real ordering in this repo
/// produces and the one `compute_mapping`'s layered proportional mapping
/// expects. The same `(seed, shape)` always yields the identical tree:
/// the jitter comes from a private LCG, so instances are reproducible
/// across machines and sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Root separator size (pivots eliminated at the root front).
    pub s0: usize,
    /// Geometric decay of separator sizes per level (0 < gamma < 1).
    pub gamma: f64,
    /// Levels below the root; the tree has `2^(depth+1) - 1` fronts.
    pub depth: usize,
    /// Contribution-block rows per pivot (`cb = beta * npiv`).
    pub beta: f64,
    /// Maximum relative separator-size perturbation (e.g. 0.1 = ±10%).
    pub jitter: f64,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl SynthConfig {
    /// The Table-1-scale default: `s0 = 1000`, `gamma = 0.7`,
    /// `depth = 12` gives ~197k columns over 8191 fronts and 4096 leaf
    /// subtrees — the order of the paper's larger test matrices.
    pub fn paper_scale(seed: u64) -> Self {
        SynthConfig { s0: 1000, gamma: 0.7, depth: 12, beta: 1.5, jitter: 0.1, seed }
    }

    /// A smaller instance for smoke tests and CI: ~6k columns over 511
    /// fronts, same shape, fast even in debug builds.
    pub fn smoke(seed: u64) -> Self {
        SynthConfig { s0: 300, gamma: 0.6, depth: 8, beta: 1.5, jitter: 0.1, seed }
    }
}

/// Builds the synthetic nested-dissection assembly tree described by
/// `cfg`. The result passes [`mf_symbolic::AssemblyTree::validate`] and
/// feeds directly into `compute_mapping` + the simulation drivers.
pub fn synth_nd_tree(cfg: &SynthConfig) -> AssemblyTree {
    assert!(cfg.s0 >= 1 && cfg.gamma > 0.0 && cfg.gamma < 1.0, "degenerate shape");
    // Private LCG (MMIX constants): the jitter stream must not depend on
    // any global RNG so equal configs give equal instances everywhere.
    let mut state = cfg.seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut unit = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        // Top 53 bits -> [0, 1).
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut nodes: Vec<FrontNode> = Vec::with_capacity((1usize << (cfg.depth + 1)) - 1);
    // Top-down sizes, bottom-up (postorder) ids: a node's front order is
    // fixed before its children are generated, so each child's CB can be
    // clamped to fit it, and children are pushed before their parent.
    fn gen(
        cfg: &SynthConfig,
        unit: &mut dyn FnMut() -> f64,
        nodes: &mut Vec<FrontNode>,
        level: usize,
        parent_front: Option<usize>,
    ) -> usize {
        let base = cfg.s0 as f64 * cfg.gamma.powi(level as i32);
        let wobble = 1.0 + cfg.jitter * (2.0 * unit() - 1.0);
        let npiv = ((base * wobble).round() as usize).max(1);
        let cb = match parent_front {
            None => 0, // the root's contribution block is empty
            Some(pf) => ((cfg.beta * npiv as f64).round() as usize).min(pf),
        };
        let nfront = npiv + cb;
        let children: Vec<usize> = if level < cfg.depth {
            (0..2).map(|_| gen(cfg, unit, nodes, level + 1, Some(nfront))).collect()
        } else {
            Vec::new()
        };
        let id = nodes.len();
        nodes.push(FrontNode {
            first_col: 0, // assigned below, once the postorder is complete
            npiv,
            nfront,
            parent: None,
            children: children.clone(),
            chain_head: None,
        });
        for c in children {
            nodes[c].parent = Some(id);
        }
        id
    }
    gen(cfg, &mut unit, &mut nodes, 0, None);
    // Pivot columns contiguous in postorder: the partition validate()
    // checks, and the column layout real orderings produce.
    let mut col = 0usize;
    for nd in nodes.iter_mut() {
        nd.first_col = col;
        col += nd.npiv;
    }
    let tree = AssemblyTree { nodes, sym: Symmetry::General, n: col };
    tree.validate().expect("synthetic instance is well-formed");
    tree
}

/// Figure 4: one memory-based slave-selection decision over an uneven
/// memory landscape. Returns `(memories, assignment)` for display: rows
/// given to each candidate by Algorithm 1.
pub fn figure4() -> (Vec<u64>, Vec<(usize, usize)>) {
    use mf_core::slavesel::{select_memory, SelectionInput};
    let memories: Vec<u64> = vec![90_000, 10_000, 35_000, 60_000, 20_000, 75_000, 45_000, 5_000];
    let candidates: Vec<usize> = (1..8).collect();
    let input = SelectionInput {
        candidates: &candidates,
        metric: &memories,
        fill_metric: None,
        master_metric: memories[0],
        nfront: 400,
        npiv: 100,
        sym: Symmetry::General,
        min_rows_per_slave: 16,
    };
    let sel = select_memory(&input);
    (memories, sel.into_iter().map(|a| (a.proc, a.nrows)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_latency_raises_the_peak() {
        let o = figure5();
        assert!(o.bad.0 > o.good.0, "stale views must hurt P0: {} !> {}", o.bad.0, o.good.0);
        assert!(o.bad.1 > o.good.1, "and the global peak: {:?}", o);
    }

    #[test]
    fn figure6_prediction_protects_p0() {
        let o = figure6();
        assert!(o.bad.0 > o.good.0, "prediction must protect P0: {:?}", o);
        assert!(o.bad.1 > o.good.1, "{o:?}");
    }

    #[test]
    fn figure8_algorithm2_delays_the_big_master() {
        let o = figure8();
        assert!(o.bad.0 > o.good.0, "Algorithm 2 must lower P0's peak: {:?}", o);
    }

    #[test]
    fn synth_tree_is_valid_deterministic_and_paper_sized() {
        let cfg = SynthConfig::paper_scale(7);
        let a = synth_nd_tree(&cfg);
        let b = synth_nd_tree(&cfg);
        assert_eq!(a.nodes, b.nodes, "same seed, same instance");
        let stats = a.stats();
        assert_eq!(stats.nodes, (1 << 13) - 1, "complete binary tree of depth 12");
        assert_eq!(stats.leaves, 1 << 12);
        assert_eq!(stats.depth, 12);
        // ~197k columns at the default shape; jitter moves it a little.
        assert!((150_000..250_000).contains(&a.n), "n = {}", a.n);
        let c = synth_nd_tree(&SynthConfig::paper_scale(8));
        assert_ne!(a.nodes, c.nodes, "different seed, different jitter");
    }

    #[test]
    fn synth_tree_maps_onto_many_processors() {
        let tree = synth_nd_tree(&SynthConfig::smoke(3));
        let cfg = SolverConfig::mumps_baseline(64);
        let map = mf_core::mapping::compute_mapping(&tree, &cfg);
        let used: std::collections::BTreeSet<usize> = map.owner.iter().copied().collect();
        assert!(used.len() >= 32, "only {} of 64 processors used", used.len());
        let r = parsim::run(&tree, &map, &cfg).expect("synthetic instance runs");
        assert_eq!(r.nodes_done, r.total_nodes);
    }

    #[test]
    fn figure4_lowest_memory_gets_most_rows() {
        let (memories, sel) = figure4();
        assert!(!sel.is_empty());
        // First selected = least loaded (proc 7 at 5k).
        assert_eq!(sel[0].0, 7);
        let rows: usize = sel.iter().map(|&(_, r)| r).sum();
        assert_eq!(rows, 300);
        // Rows monotone non-increasing along the memory-sorted selection.
        for w in sel.windows(2) {
            assert!(memories[w[0].0] <= memories[w[1].0], "selection must be memory-sorted");
            assert!(w[0].1 >= w[1].1, "leveling gives more rows to emptier procs");
        }
    }
}
