//! Table 4: absolute maximum stack peaks (millions of entries) on the two
//! illustrative cases, isolating the gain of the static splitting from
//! the gain of the dynamic memory strategies.

use mf_bench::paper_data::PAPER_TABLE4;
use mf_bench::sweep::{split_threshold_for, sweep_cells, CellSpec};
use mf_order::OrderingKind;
use mf_sparse::gen::paper::PaperMatrix;

fn main() {
    let nprocs = 32;
    let thr = split_threshold_for();
    let cases = [
        (PaperMatrix::Ultrasound3, OrderingKind::Metis, "ULTRASOUND3-METIS"),
        (PaperMatrix::Xenon2, OrderingKind::Amf, "XENON2-AMF"),
    ];
    // Per case: the unsplit cell, then the split cell.
    let specs: Vec<CellSpec> = cases
        .iter()
        .flat_map(|&(m, k, _)| [(m, k, nprocs, None, false), (m, k, nprocs, Some(thr), false)])
        .collect();
    let cells = sweep_cells(&specs);
    mf_bench::obs::maybe_export_cells(&cells);
    println!("Table 4: max stack peak, millions of entries (measured | paper)");
    println!(
        "{:18} {:16} {:>10} {:>10}   {:>7} {:>7}",
        "Case", "Strategy", "No split", "Split", "paper:N", "paper:S"
    );
    for ((_, _, case), pair) in cases.iter().zip(cells.chunks_exact(2)) {
        let (plain, split) = (&pair[0], &pair[1]);
        let to_m = |v: u64| v as f64 / 1.0e6;
        for (strategy, nosplit, withsplit) in [
            ("MUMPS dynamic", plain.baseline.max_peak, split.baseline.max_peak),
            ("memory-based", plain.memory.max_peak, split.memory.max_peak),
        ] {
            let paper = PAPER_TABLE4
                .iter()
                .find(|(c, s, _, _)| c == case && strategy.starts_with(&s[..5]))
                .map(|&(_, _, a, b)| (a, b))
                .unwrap_or((f64::NAN, f64::NAN));
            println!(
                "{:18} {:16} {:>10.3} {:>10.3}   {:>7.2} {:>7.2}",
                case,
                strategy,
                to_m(nosplit),
                to_m(withsplit),
                paper.0,
                paper.1
            );
        }
    }
    println!("\n(paper columns: IBM SP, full-scale matrices; ours: reproduction scale)");
}
