//! End-to-end performance harness: times the sweep fast path against the
//! old sequential/uncached execution model and the two hot-path kernels,
//! then writes the numbers to `BENCH_sweep.json` (see DESIGN.md,
//! "Performance").
//!
//! Three sections:
//!
//! 1. **sweep subset** — a representative slice of the Table 2/3 grid
//!    run (a) the old way: one cell at a time, rebuilding the matrix,
//!    permutation and tree from scratch per cell; and (b) the current
//!    way: [`sweep_cells`] over the shared artifact cache. The two must
//!    agree peak-for-peak (asserted) — the speedup is pure scheduling
//!    and reuse, not a change of results.
//! 2. **event queue** — raw push/pop throughput of the simulator's
//!    single-heap event queue.
//! 3. **LU kernel** — the blocked partial-LU front kernel at several
//!    front orders.

use std::fmt::Write as _;
use std::time::Instant;

use mf_bench::sweep::{sweep_cell, sweep_cells, CellResult, CellSpec};
use mf_frontal::dense::{partial_lu_blocked, DenseMat};
use mf_order::OrderingKind;
use mf_sim::engine::{EventPayload, Sim};
use mf_sparse::gen::paper::PaperMatrix;
use mf_symbolic::seqstack::{apply_liu_order, AssemblyDiscipline};
use mf_symbolic::AmalgamationOptions;

/// The timed sweep subset mirrors the Table 5 driver's shape: each
/// (matrix, ordering) pair swept across split settings and processor
/// counts. That key overlap is exactly what the real drivers present to
/// the artifact cache — the matrix, permutation and base tree are shared
/// across every cell of a pair, and each split threshold re-derives its
/// tree from the cached base once.
fn subset() -> Vec<CellSpec> {
    let thr = mf_bench::sweep::split_threshold_for();
    let mut specs = Vec::new();
    for (m, k) in [
        (PaperMatrix::TwoTone, OrderingKind::Amd),
        (PaperMatrix::Ship003, OrderingKind::Metis),
    ] {
        for nprocs in [16usize, 32] {
            for split in [None, Some(thr)] {
                specs.push((m, k, nprocs, split, false));
            }
        }
    }
    specs
}

/// One cell the way the pre-cache drivers ran it: every artifact rebuilt
/// from scratch, nothing shared, strictly sequential at the call site.
fn uncached_cell(spec: &CellSpec) -> CellResult {
    let &(matrix, ordering, nprocs, split, traces) = spec;
    let a = matrix.instantiate();
    let perm = ordering.compute(&a);
    let mut s = mf_symbolic::analyze(&a, &perm, &AmalgamationOptions::default());
    apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
    if let Some(t) = split {
        mf_symbolic::split::split_large_masters(&mut s.tree, t);
    }
    // The simulation part is identical to sweep_cell's; only the tree
    // construction differs (fresh vs cached). Reuse sweep_cell for the
    // runs by... no: sweep_cell would hit the cache. Run the two
    // strategies directly instead.
    use mf_core::config::{SlaveSelection, SolverConfig, TaskSelection};
    let base_cfg = SolverConfig {
        slave_selection: SlaveSelection::Workload,
        task_selection: TaskSelection::Lifo,
        use_subtree_info: false,
        use_prediction: false,
        record_traces: traces,
        ..mf_bench::sweep::paper_scale_config(nprocs)
    };
    let mem_cfg = SolverConfig {
        slave_selection: SlaveSelection::Memory,
        task_selection: TaskSelection::MemoryAware,
        use_subtree_info: true,
        use_prediction: true,
        record_traces: traces,
        ..mf_bench::sweep::paper_scale_config(nprocs)
    };
    let map = mf_core::mapping::compute_mapping(&s.tree, &base_cfg);
    let baseline = mf_core::parsim::run(&s.tree, &map, &base_cfg).expect("baseline run failed");
    let memory = mf_core::parsim::run(&s.tree, &map, &mem_cfg).expect("memory run failed");
    CellResult { matrix, ordering, split, stats: s.tree.stats(), baseline, memory }
}

/// Section 2: ns/event for schedule+next through the single-heap queue,
/// with a live queue of `depth` events (each pop schedules a successor).
fn event_queue_ns(depth: usize, events: u64) -> f64 {
    let mut sim: Sim<u64> = Sim::new();
    let mut delay = 1u64;
    for k in 0..depth as u64 {
        delay = delay.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        sim.schedule(delay % 1024, EventPayload::Timer { proc: 0, key: k });
    }
    let start = Instant::now();
    for _ in 0..events {
        let e = sim.next().expect("queue kept full");
        if let EventPayload::Timer { proc, key } = e.payload {
            delay = delay.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            sim.schedule_timer(proc, delay % 1024, key);
        }
    }
    let ns = start.elapsed().as_nanos() as f64;
    assert_eq!(sim.pending(), depth, "queue depth must stay constant");
    ns / events as f64
}

/// Section 3: blocked partial LU on a synthetic diagonally dominant
/// front; returns (milliseconds, gflop/s).
fn lu_kernel(f: usize, npiv: usize, reps: u32) -> (f64, f64) {
    let mut a = DenseMat::zeros(f, f);
    let mut h = 0x9e3779b97f4a7c15u64 ^ f as u64;
    for j in 0..f {
        for i in 0..f {
            h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            *a.get_mut(i, j) = if i == j { f as f64 } else { v };
        }
    }
    // Flops of a partial LU with npiv pivots on an f×f front.
    let mut flops = 0f64;
    for k in 0..npiv {
        let r = (f - k - 1) as f64;
        flops += r + 2.0 * r * r;
    }
    let mut perm = Vec::new();
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let mut w = a.clone();
        let start = Instant::now();
        partial_lu_blocked(&mut w, npiv, 64, &mut perm).expect("dominant front factors");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(ms);
    }
    (best_ms, flops / (best_ms * 1e6))
}

fn main() {
    let specs = subset();

    eprintln!("[1/3] sweep subset, {} cells, sequential + uncached ...", specs.len());
    let start = Instant::now();
    let slow: Vec<CellResult> = specs.iter().map(uncached_cell).collect();
    let sequential_uncached_ms = start.elapsed().as_secs_f64() * 1e3;

    eprintln!("[2/3] sweep subset, parallel + shared artifact cache ...");
    let start = Instant::now();
    let fast = sweep_cells(&specs);
    let parallel_cached_ms = start.elapsed().as_secs_f64() * 1e3;

    for (s, f) in slow.iter().zip(&fast) {
        assert_eq!(s.baseline.max_peak, f.baseline.max_peak, "peaks must not change");
        assert_eq!(s.memory.max_peak, f.memory.max_peak, "peaks must not change");
        assert_eq!(s.baseline.makespan, f.baseline.makespan, "makespans must not change");
        assert_eq!(s.memory.makespan, f.memory.makespan, "makespans must not change");
    }
    // A third pass through the warm cache isolates the memoization gain.
    let start = Instant::now();
    let warm = sweep_cells(&specs);
    let warm_cache_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(warm.len(), fast.len());
    let speedup = sequential_uncached_ms / parallel_cached_ms;

    eprintln!("[3/3] event queue + LU kernel ...");
    let eq_depth = 10_000;
    let eq_events = 2_000_000u64;
    let eq_ns = event_queue_ns(eq_depth, eq_events);
    let kernels: Vec<(usize, usize, f64, f64)> = [(256usize, 128usize, 20u32), (512, 256, 10), (1024, 512, 3)]
        .into_iter()
        .map(|(f, p, reps)| {
            let (ms, gflops) = lu_kernel(f, p, reps);
            (f, p, ms, gflops)
        })
        .collect();

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"generated_by\": \"cargo run --release -p mf-bench --bin perf_baseline\",").unwrap();
    writeln!(json, "  \"sweep_subset\": {{").unwrap();
    writeln!(json, "    \"cells\": {},", specs.len()).unwrap();
    writeln!(json, "    \"shape\": \"2 (matrix,ordering) x 2 nprocs x 2 split\",").unwrap();
    writeln!(json, "    \"sequential_uncached_ms\": {sequential_uncached_ms:.1},").unwrap();
    writeln!(json, "    \"parallel_cached_ms\": {parallel_cached_ms:.1},").unwrap();
    writeln!(json, "    \"warm_cache_ms\": {warm_cache_ms:.1},").unwrap();
    writeln!(json, "    \"speedup\": {speedup:.2},").unwrap();
    writeln!(json, "    \"results_identical\": true").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"event_queue\": {{").unwrap();
    writeln!(json, "    \"queue_depth\": {eq_depth},").unwrap();
    writeln!(json, "    \"events\": {eq_events},").unwrap();
    writeln!(json, "    \"ns_per_event\": {eq_ns:.1}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"lu_kernel_blocked\": [").unwrap();
    for (i, (f, p, ms, gflops)) in kernels.iter().enumerate() {
        let sep = if i + 1 == kernels.len() { "" } else { "," };
        writeln!(
            json,
            "    {{ \"front\": {f}, \"npiv\": {p}, \"ms\": {ms:.2}, \"gflops\": {gflops:.2} }}{sep}"
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    print!("{json}");
    eprintln!(
        "sweep subset: {sequential_uncached_ms:.0} ms -> {parallel_cached_ms:.0} ms \
         ({speedup:.1}x; warm cache {warm_cache_ms:.0} ms); \
         event queue {eq_ns:.0} ns/event"
    );
    // Re-running a cell sequentially now also hits the warm cache.
    let c = sweep_cell(specs[0].0, specs[0].1, specs[0].2, specs[0].3, false);
    assert_eq!(c.baseline.max_peak, fast[0].baseline.max_peak);
}
