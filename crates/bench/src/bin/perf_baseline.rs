//! End-to-end performance harness: times the sweep fast path against the
//! old sequential/uncached execution model and the two hot-path kernels,
//! then writes the numbers to `BENCH_sweep.json` (see DESIGN.md,
//! "Performance").
//!
//! Three sections:
//!
//! 1. **sweep subset** — a representative slice of the Table 2/3 grid
//!    run (a) the old way: one cell at a time, rebuilding the matrix,
//!    permutation and tree from scratch per cell; and (b) the current
//!    way: [`sweep_cells`] over the shared artifact cache. The two must
//!    agree peak-for-peak (asserted) — the speedup is pure scheduling
//!    and reuse, not a change of results.
//! 2. **event queue** — raw push/pop throughput of the simulator's
//!    single-heap event queue.
//! 3. **LU kernel + packed GEMM** — the blocked partial-LU front kernel
//!    at several front orders (with trajectory fields carrying the prior
//!    run's numbers), plus a GEMM section sweeping panel width × within-
//!    front thread budget at front=512, the packed-microkernel roofline
//!    estimate, and two guards: a gflop/s floor on the blocked kernel
//!    (SIMD-level dependent) and a ≥3× self-speedup check at 8 threads
//!    (only on hosts with ≥8 cores).
//! 4. **recorder overhead** — the same warm-cache sweep with the flight
//!    recorder off vs on: the *identical* cell set, in the same process,
//!    with `record_events` the only configuration difference between the
//!    two arms, each timed as the best of a few alternating rounds to
//!    reject scheduler noise. The disabled path must stay free (its warm time is
//!    compared against the previous `BENCH_sweep.json`, guarded to <3%
//!    regression plus a fixed noise floor); the enabled path is guarded
//!    to <=5x the disabled time (plus the same noise floor) and reported
//!    both as overhead_percent and as amortized ns/event. Both paths
//!    must agree peak-for-peak.
//! 5. **sampler overhead** — the same discipline for the telemetry
//!    sampler (`sample_every` the only difference between arms):
//!    schedules must be bit-identical and the end-to-end cost is
//!    guarded to <=3% at the default interval. Afterwards the whole
//!    artifact is diffed against the prior `BENCH_sweep.json` and every
//!    metric that moved is named (the trajectory report).

use std::fmt::Write as _;
use std::time::Instant;

use mf_bench::sweep::{
    sweep_cell, sweep_cell_recorded, sweep_cell_sampled, sweep_cells, CellResult, CellSpec,
    DEFAULT_SAMPLE_INTERVAL,
};
use mf_core::config::{SlaveSelection, SolverConfig, TaskSelection};
use mf_core::CoreAlloc;
use mf_frontal::dense::{partial_lu_blocked_mt, partial_lu_blocked_rank1_panel, DenseMat};
use mf_frontal::gemm;
use mf_order::OrderingKind;
use mf_sim::engine::{EventPayload, Sim};
use mf_sparse::gen::paper::PaperMatrix;
use mf_symbolic::seqstack::{apply_liu_order, AssemblyDiscipline};
use mf_symbolic::AmalgamationOptions;
use rayon::prelude::*;

/// The timed sweep subset mirrors the Table 5 driver's shape: each
/// (matrix, ordering) pair swept across split settings and processor
/// counts. That key overlap is exactly what the real drivers present to
/// the artifact cache — the matrix, permutation and base tree are shared
/// across every cell of a pair, and each split threshold re-derives its
/// tree from the cached base once.
fn subset() -> Vec<CellSpec> {
    let thr = mf_bench::sweep::split_threshold_for();
    let mut specs = Vec::new();
    for (m, k) in
        [(PaperMatrix::TwoTone, OrderingKind::Amd), (PaperMatrix::Ship003, OrderingKind::Metis)]
    {
        for nprocs in [16usize, 32] {
            for split in [None, Some(thr)] {
                specs.push((m, k, nprocs, split, false));
            }
        }
    }
    specs
}

/// One cell the way the pre-cache drivers ran it: every artifact rebuilt
/// from scratch, nothing shared, strictly sequential at the call site.
fn uncached_cell(spec: &CellSpec) -> CellResult {
    let &(matrix, ordering, nprocs, split, traces) = spec;
    let a = matrix.instantiate();
    let perm = ordering.compute(&a);
    let mut s = mf_symbolic::analyze(&a, &perm, &AmalgamationOptions::default());
    apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
    if let Some(t) = split {
        mf_symbolic::split::split_large_masters(&mut s.tree, t);
    }
    // The simulation part is identical to sweep_cell's; only the tree
    // construction differs (fresh vs cached). Reuse sweep_cell for the
    // runs by... no: sweep_cell would hit the cache. Run the two
    // strategies directly instead.
    let base_cfg = SolverConfig {
        slave_selection: SlaveSelection::Workload,
        task_selection: TaskSelection::Lifo,
        use_subtree_info: false,
        use_prediction: false,
        record_traces: traces,
        ..mf_bench::sweep::paper_scale_config(nprocs)
    };
    let mem_cfg = SolverConfig {
        slave_selection: SlaveSelection::Memory,
        task_selection: TaskSelection::MemoryAware,
        use_subtree_info: true,
        use_prediction: true,
        record_traces: traces,
        ..mf_bench::sweep::paper_scale_config(nprocs)
    };
    let map = mf_core::mapping::compute_mapping(&s.tree, &base_cfg);
    let run = |cfg: &SolverConfig, what: &str| {
        mf_core::parsim::run(&s.tree, &map, cfg)
            .unwrap_or_else(|e| panic!("{what} failed: {e} [{}]", e.diagnostics().summary_line()))
    };
    let baseline = run(&base_cfg, "baseline run");
    let memory = run(&mem_cfg, "memory run");
    CellResult { matrix, ordering, split, stats: s.tree.stats(), baseline, memory }
}

/// Section 2: ns/event for schedule+next through the single-heap queue,
/// with a live queue of `depth` events (each pop schedules a successor).
fn event_queue_ns(depth: usize, events: u64) -> f64 {
    let mut sim: Sim<u64> = Sim::new();
    let mut delay = 1u64;
    for k in 0..depth as u64 {
        delay = delay.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        sim.schedule(delay % 1024, EventPayload::Timer { proc: 0, key: k });
    }
    let start = Instant::now();
    for _ in 0..events {
        let e = sim.next().expect("queue kept full");
        if let EventPayload::Timer { proc, key } = e.payload {
            delay = delay.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            sim.schedule_timer(proc, delay % 1024, key);
        }
    }
    let ns = start.elapsed().as_nanos() as f64;
    assert_eq!(sim.pending(), depth, "queue depth must stay constant");
    ns / events as f64
}

/// Section 3: blocked partial LU on a synthetic diagonally dominant
/// front with an explicit panel width and within-front thread budget;
/// returns (milliseconds, gflop/s).
fn lu_kernel_cfg(f: usize, npiv: usize, nb: usize, threads: usize, reps: u32) -> (f64, f64) {
    let mut a = DenseMat::zeros(f, f);
    let mut h = 0x9e3779b97f4a7c15u64 ^ f as u64;
    for j in 0..f {
        for i in 0..f {
            h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            *a.get_mut(i, j) = if i == j { f as f64 } else { v };
        }
    }
    // Flops of a partial LU with npiv pivots on an f×f front.
    let mut flops = 0f64;
    for k in 0..npiv {
        let r = (f - k - 1) as f64;
        flops += r + 2.0 * r * r;
    }
    let mut perm = Vec::new();
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let mut w = a.clone();
        let start = Instant::now();
        partial_lu_blocked_mt(&mut w, npiv, nb, &mut perm, threads)
            .expect("dominant front factors");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(ms);
    }
    (best_ms, flops / (best_ms * 1e6))
}

/// The production configuration (the drivers' panel width, sequential).
/// Prior entries in the trajectory fields were measured the same way —
/// whatever panel width the drivers used then.
fn lu_kernel(f: usize, npiv: usize, reps: u32) -> (f64, f64) {
    lu_kernel_cfg(f, npiv, mf_frontal::dense::FRONT_NB, 1, reps)
}

/// Recursive-panel (production) vs rank-1-panel (pre-recursive
/// reference) blocked LU, measured **interleaved** — rep k of each
/// kernel runs back to back, so a loaded host's frequency drift hits
/// both arms alike and the *ratio* stays meaningful even when absolute
/// gflop/s swing between runs. Returns `((ms, gflops) recursive,
/// (ms, gflops) rank1)`, each the best over `reps`.
fn panel_pair(f: usize, npiv: usize, reps: u32) -> ((f64, f64), (f64, f64)) {
    let mut a = DenseMat::zeros(f, f);
    let mut h = 0x9e3779b97f4a7c15u64 ^ f as u64;
    for j in 0..f {
        for i in 0..f {
            h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            *a.get_mut(i, j) = if i == j { f as f64 } else { v };
        }
    }
    let mut flops = 0f64;
    for k in 0..npiv {
        let r = (f - k - 1) as f64;
        flops += r + 2.0 * r * r;
    }
    let nb = mf_frontal::dense::FRONT_NB;
    let mut perm = Vec::new();
    let (mut rec_ms, mut r1_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let mut w = a.clone();
        let start = Instant::now();
        partial_lu_blocked_mt(&mut w, npiv, nb, &mut perm, 1).expect("dominant front factors");
        rec_ms = rec_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let mut w = a.clone();
        let start = Instant::now();
        partial_lu_blocked_rank1_panel(&mut w, npiv, nb, &mut perm)
            .expect("dominant front factors");
        r1_ms = r1_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    ((rec_ms, flops / (rec_ms * 1e6)), (r1_ms, flops / (r1_ms * 1e6)))
}

/// Single-core roofline estimate: the packed microkernel on L1-resident
/// pre-packed panels (no packing, no panel factorization, no memory
/// traffic beyond the tile) — the ceiling the full kernel works under.
fn microkernel_roofline_gflops() -> f64 {
    let (m, n, kc) = (48usize, 48usize, 64usize);
    let mut h = 0x243f6a8885a308d3u64;
    let mut fill = |len: usize| -> Vec<f64> {
        (0..len)
            .map(|_| {
                h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect()
    };
    let a = fill(m * kc);
    let b = fill(kc * n);
    let mut c = fill(m * n);
    let mut ws = gemm::GemmWorkspace::new();
    let ap = gemm::pack_a(&mut ws, &a, m, m, kc);
    let mut bp = Vec::new();
    gemm::pack_b(&mut bp, &b, kc, kc, n);
    let inner = 2000u32;
    let flops = 2.0 * (m * n * kc) as f64 * inner as f64;
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..inner {
            gemm::gemm_sub_packed(&ap, &bp, n, &mut c, m);
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    flops / best / 1e9
}

/// Pulls the prior (ms, gflops) pair of one `lu_kernel_blocked` entry
/// out of a previous `BENCH_sweep.json` — the trajectory fields.
fn prior_lu_stats(path: &str, front: usize) -> Option<(f64, f64)> {
    let text = std::fs::read_to_string(path).ok()?;
    let sec = &text[text.find("\"lu_kernel_blocked\"")?..];
    let entry = &sec[sec.find(&format!("\"front\": {front},"))?..];
    let number_after = |key: &str| -> Option<f64> {
        let at = entry.find(key)? + key.len();
        let rest = entry[at..].trim_start();
        let end = rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))?;
        rest[..end].parse().ok()
    };
    Some((number_after("\"ms\":")?, number_after("\"gflops\":")?))
}

/// Pulls `"key": <number>` out of a previous hand-rendered
/// `BENCH_sweep.json`, if the file exists. String-searching is enough:
/// the file is our own output with unique key names.
fn prior_json_number(path: &str, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))?;
    rest[..end].parse().ok()
}

fn main() {
    let specs = subset();
    // Read before this run overwrites the file (the full text is kept
    // for the end-of-run trajectory diff).
    let prior_text = std::fs::read_to_string("BENCH_sweep.json").ok();
    let prior_warm_ms = prior_json_number("BENCH_sweep.json", "warm_cache_ms");
    let prior_enabled_ms = prior_json_number("BENCH_sweep.json", "recorder_enabled_ms");
    let prior_overhead_percent = prior_json_number("BENCH_sweep.json", "overhead_percent");
    let prior_lu: Vec<Option<(f64, f64)>> =
        [256usize, 512, 1024].iter().map(|&f| prior_lu_stats("BENCH_sweep.json", f)).collect();
    let prior_e2e_gflops = prior_json_number("BENCH_sweep.json", "e2e_gflops");

    eprintln!("[1/7] sweep subset, {} cells, sequential + uncached ...", specs.len());
    let start = Instant::now();
    let slow: Vec<CellResult> = specs.iter().map(uncached_cell).collect();
    let sequential_uncached_ms = start.elapsed().as_secs_f64() * 1e3;

    eprintln!("[2/7] sweep subset, parallel + shared artifact cache ...");
    let start = Instant::now();
    let fast = sweep_cells(&specs);
    let parallel_cached_ms = start.elapsed().as_secs_f64() * 1e3;

    for (s, f) in slow.iter().zip(&fast) {
        for (a, b) in [(&s.baseline, &f.baseline), (&s.memory, &f.memory)] {
            assert_eq!(
                (a.max_peak, a.makespan),
                (b.max_peak, b.makespan),
                "cached sweep changed results: uncached [{}] vs cached [{}]",
                a.summary_line(),
                b.summary_line()
            );
        }
    }
    // A third pass through the warm cache isolates the memoization gain.
    let start = Instant::now();
    let warm = sweep_cells(&specs);
    let warm_cache_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(warm.len(), fast.len());
    let speedup = sequential_uncached_ms / parallel_cached_ms;

    eprintln!("[3/7] event queue + LU kernel + packed GEMM ...");
    let eq_depth = 10_000;
    let eq_events = 2_000_000u64;
    let eq_ns = event_queue_ns(eq_depth, eq_events);
    let kernels: Vec<(usize, usize, f64, f64)> =
        [(256usize, 128usize, 40u32), (512, 256, 25), (1024, 512, 6)]
            .into_iter()
            .map(|(f, p, reps)| {
                let (ms, gflops) = lu_kernel(f, p, reps);
                (f, p, ms, gflops)
            })
            .collect();

    // Panel comparison: the recursive panel (production) against the
    // rank-1 reference, interleaved rep for rep so the ratio survives
    // host noise. Reported with percent-of-same-run-roofline, the only
    // stable metric on shared hosts whose absolute rates drift.
    let panel_rows: Vec<(usize, usize, (f64, f64), (f64, f64))> =
        [(256usize, 128usize, 24u32), (512, 256, 12), (1024, 512, 5)]
            .into_iter()
            .map(|(f, p, reps)| {
                let (rec, r1) = panel_pair(f, p, reps);
                (f, p, rec, r1)
            })
            .collect();

    // GEMM section: the same blocked kernel swept over panel width and
    // within-front thread budget at the acceptance front size, plus the
    // microkernel ceiling. Thread counts above the host's core count are
    // still measured (they exercise the chunked dispatch) but cannot
    // show real speedup — host_cores is recorded next to them.
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let simd = gemm::active_simd();
    let roofline_gflops = microkernel_roofline_gflops();
    let mut gemm_rows: Vec<(usize, usize, f64, f64)> = Vec::new();
    for nb in [32usize, 64, 128] {
        for threads in [1usize, 2, 4, 8] {
            let (ms, gflops) = lu_kernel_cfg(512, 256, nb, threads, 6);
            gemm_rows.push((nb, threads, ms, gflops));
        }
    }
    let speedup_at = |threads: usize| -> f64 {
        let ms1 = gemm_rows.iter().find(|r| r.0 == 64 && r.1 == 1).unwrap().2;
        let msn = gemm_rows.iter().find(|r| r.0 == 64 && r.1 == threads).unwrap().2;
        ms1 / msn
    };
    let self_speedup_8t = speedup_at(8);

    // Floor guard: the packed kernel must not regress below the level's
    // floor at the acceptance point (front=512, production panel width,
    // single thread).
    // The recursive panel + MC-blocked GEMM measure ~35-50 gflop/s on a
    // quiet AVX2 host, but best-of-reps still swings by ~40% on loaded
    // shared hosts, so the SIMD floor sits at 16 — above the 12 the
    // rank-1-panel kernel was held to, with headroom for that noise.
    // The scalar floor covers hosts without AVX2.
    let g512 = kernels.iter().find(|k| k.0 == 512).unwrap().3;
    let floor = match simd {
        gemm::SimdLevel::Scalar => 1.0,
        gemm::SimdLevel::Avx2 | gemm::SimdLevel::Avx512 => 16.0,
    };
    assert!(
        g512 >= floor,
        "blocked LU at front=512 regressed: {g512:.2} gflop/s under the {} floor of {floor} \
         (prior axpy kernel: 9.4)",
        simd.name()
    );
    eprintln!(
        "lu-kernel floor guard: {g512:.2} gflop/s at front=512 >= {floor} ({}) OK",
        simd.name()
    );

    // Self-speedup guard: only meaningful where 8 real cores exist.
    if host_cores >= 8 {
        assert!(
            self_speedup_8t >= 3.0,
            "trailing-update self-speedup at 8 threads is {self_speedup_8t:.2}x on a \
             {host_cores}-core host (>=3x required)"
        );
        eprintln!("self-speedup guard: {self_speedup_8t:.2}x at 8 threads OK");
    } else {
        eprintln!(
            "self-speedup guard: skipped ({host_cores} host core(s); measured \
             {self_speedup_8t:.2}x at 8 threads)"
        );
    }

    eprintln!("[4/7] malleable core allocation: static vs malleable makespan ...");
    // Static(1) reproduces the historical scheduler tick for tick; the
    // malleable allocator may only help (the speedup curve never
    // lengthens a duration, and idle cores are free), so the summed
    // makespan over the subset is guarded to never regress. Per-cell
    // rows carry events_delivered and the modelled utilization as
    // trajectory fields for `mf-obs diff sweeps`.
    let mall_rows: Vec<(String, usize, bool, u64, u64, u64, u64, f64)> = specs
        .iter()
        .map(|&(m, k, nprocs, split, _)| {
            let tree = mf_bench::sweep::build_tree(m, k, split);
            let mk = |alloc: CoreAlloc| SolverConfig {
                slave_selection: SlaveSelection::Memory,
                task_selection: TaskSelection::MemoryAware,
                use_subtree_info: true,
                use_prediction: true,
                core_alloc: alloc,
                ..mf_bench::sweep::paper_scale_config(nprocs)
            };
            let cfg_s = mk(CoreAlloc::Static(1));
            let cfg_m = mk(CoreAlloc::malleable(4 * nprocs));
            let map = mf_core::mapping::compute_mapping(&tree, &cfg_s);
            let st = mf_core::parsim::run(&tree, &map, &cfg_s)
                .unwrap_or_else(|e| panic!("static run failed: {e}"));
            let ml = mf_core::parsim::run(&tree, &map, &cfg_m)
                .unwrap_or_else(|e| panic!("malleable run failed: {e}"));
            assert_eq!(st.nodes_done, ml.nodes_done, "malleable run lost fronts");
            // Modelled utilization: elimination flops the tree carries
            // per processor-tick of makespan (1.0 = every core of the
            // one-core-per-processor machine busy the whole run).
            let fpt = cfg_s.flops_per_tick as f64;
            let util = tree.total_flops() as f64 / (ml.makespan as f64 * fpt * nprocs as f64);
            (
                format!("{}/{}", m.name(), k.name()),
                nprocs,
                split.is_some(),
                st.makespan,
                ml.makespan,
                st.events_delivered,
                ml.events_delivered,
                util,
            )
        })
        .collect();
    let static_total: u64 = mall_rows.iter().map(|r| r.3).sum();
    let mall_total: u64 = mall_rows.iter().map(|r| r.4).sum();
    assert!(
        mall_total <= static_total,
        "malleable allocation regressed the summed makespan: {mall_total} vs static \
         {static_total} ticks"
    );
    let won = mall_rows.iter().filter(|r| r.4 <= r.3).count();
    eprintln!(
        "malleable guard: {mall_total} <= {static_total} summed ticks \
         ({won}/{} cells tie or win) OK",
        mall_rows.len()
    );

    eprintln!("[5/7] end-to-end numeric factorization ...");
    // Real factor bytes through the full stack (assembly + recursive
    // panels + packed trailing GEMM), timed end to end; the gflop/s
    // lands in the artifact as a trajectory field.
    let (e2e_ms, e2e_gflops, e2e_flops, e2e_n) = {
        let a = PaperMatrix::Ship003.instantiate_scaled(0.2);
        let perm = OrderingKind::Amd.compute(&a);
        let s = mf_symbolic::analyze(&a, &perm, &AmalgamationOptions::default());
        let flops = s.tree.total_flops();
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            let f = mf_frontal::Factorization::from_symbolic(&a, &s).expect("factorize");
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(&f);
        }
        (best, flops as f64 / (best * 1e6), flops, a.nrows())
    };
    eprintln!("end-to-end: n={e2e_n}, {e2e_flops} flops, {e2e_ms:.1} ms, {e2e_gflops:.2} gflop/s");

    eprintln!("[6/7] recorder overhead: identical cells, same process, off vs on ...");
    // Both arms run the identical spec list through the same warm cache
    // with the same parallel driver; `record_events` is the *only*
    // difference, so the timing delta is the recorder's cost and nothing
    // else (the old measurement compared different runs/configurations).
    // Each arm is timed as the best of a few alternating rounds — the
    // same minimum-of-reps noise rejection as the LU-kernel section —
    // so a transient stall on a loaded box cannot masquerade as
    // recorder cost.
    const REC_ROUNDS: u32 = 3;
    let mut recorder_disabled_ms = f64::INFINITY;
    let mut recorder_enabled_ms = f64::INFINITY;
    let mut plain = Vec::new();
    let mut recorded = Vec::new();
    for _ in 0..REC_ROUNDS {
        let start = Instant::now();
        plain = sweep_cells(&specs);
        recorder_disabled_ms = recorder_disabled_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        recorded = specs
            .par_iter()
            .map(|&(m, k, nprocs, split, _)| sweep_cell_recorded(m, k, nprocs, split))
            .collect();
        recorder_enabled_ms = recorder_enabled_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    // Recording must observe, never perturb: same schedule either way.
    for (a, b) in plain.iter().zip(&recorded) {
        assert_eq!(a.baseline.peaks, b.baseline.peaks, "recorder changed baseline peaks");
        assert_eq!(a.memory.peaks, b.memory.peaks, "recorder changed memory peaks");
        assert_eq!(a.baseline.makespan, b.baseline.makespan, "recorder moved baseline time");
        assert_eq!(a.memory.makespan, b.memory.makespan, "recorder moved memory time");
    }
    let events_recorded: usize = recorded
        .iter()
        .flat_map(|c| [&c.baseline.recording, &c.memory.recording])
        .map(|r| r.as_ref().map_or(0, |rec| rec.len()))
        .sum();
    let overhead_percent = 100.0 * (recorder_enabled_ms / recorder_disabled_ms.max(1e-9) - 1.0);
    let ns_per_event = ((recorder_enabled_ms - recorder_disabled_ms).max(0.0) * 1e6)
        / events_recorded.max(1) as f64;

    // Enabled-overhead budget: recording the full event stream may cost
    // at most 5x the recorder-off sweep (same noise floor as the
    // disabled guard, so tiny absolute times cannot trip the ratio).
    let enabled_allowed = recorder_disabled_ms * 5.0 + 250.0;
    assert!(
        recorder_enabled_ms <= enabled_allowed,
        "recorder-on sweep exceeded its overhead budget: {recorder_enabled_ms:.1} ms vs \
         disabled {recorder_disabled_ms:.1} ms (allowed {enabled_allowed:.1} ms = \
         disabled x5 + 250 ms noise floor)"
    );
    eprintln!(
        "recorder-on guard: {recorder_enabled_ms:.1} ms vs disabled {recorder_disabled_ms:.1} ms \
         (<=5x + floor, {ns_per_event:.0} ns/event) OK"
    );

    eprintln!("[7/7] sampler overhead: identical cells, sampler off vs on ...");
    // Same discipline as the recorder arms: the identical spec list,
    // `sample_every` the only difference, best of alternating rounds.
    // The sampler is a timer chain through the cores' own protocol, so
    // beyond never perturbing the schedule it must also be nearly free:
    // the acceptance guard is <=3% end-to-end at the default interval
    // (plus the usual noise floor for tiny absolute times).
    let mut sampler_off_ms = f64::INFINITY;
    let mut sampler_on_ms = f64::INFINITY;
    let mut unsampled = Vec::new();
    let mut sampled = Vec::new();
    for _ in 0..REC_ROUNDS {
        let start = Instant::now();
        unsampled = sweep_cells(&specs);
        sampler_off_ms = sampler_off_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        sampled = specs
            .par_iter()
            .map(|&(m, k, nprocs, split, _)| {
                sweep_cell_sampled(m, k, nprocs, split, DEFAULT_SAMPLE_INTERVAL)
            })
            .collect();
        sampler_on_ms = sampler_on_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    // Sampling must observe, never perturb: same schedule either way.
    for (a, b) in unsampled.iter().zip(&sampled) {
        assert_eq!(a.baseline.peaks, b.baseline.peaks, "sampler changed baseline peaks");
        assert_eq!(a.memory.peaks, b.memory.peaks, "sampler changed memory peaks");
        assert_eq!(a.baseline.makespan, b.baseline.makespan, "sampler moved baseline time");
        assert_eq!(a.memory.makespan, b.memory.makespan, "sampler moved memory time");
    }
    let samples_total: usize = sampled
        .iter()
        .flat_map(|c| [&c.baseline.timeseries, &c.memory.timeseries])
        .map(|ts| ts.as_ref().map_or(0, |t| t.total_len() + t.total_dropped() as usize))
        .sum();
    assert!(samples_total > 0, "sampled sweep produced no samples");
    let sampler_overhead_percent = 100.0 * (sampler_on_ms / sampler_off_ms.max(1e-9) - 1.0);
    let sampler_allowed = sampler_off_ms * 1.03 + 250.0;
    assert!(
        sampler_on_ms <= sampler_allowed,
        "sampler-on sweep exceeded its overhead budget: {sampler_on_ms:.1} ms vs off \
         {sampler_off_ms:.1} ms (allowed {sampler_allowed:.1} ms = off x1.03 + 250 ms noise floor)"
    );
    eprintln!(
        "sampler guard: {sampler_on_ms:.1} ms vs off {sampler_off_ms:.1} ms \
         ({sampler_overhead_percent:+.1}%, {samples_total} samples, <=3% + floor) OK"
    );

    // Regression guard for the disabled path: the recorder hooks must be
    // free when off. Compare the better of the two warm disabled timings
    // against the previous run's file, with a fixed noise floor so tiny
    // absolute times cannot trip the percentage.
    let best_disabled_ms = warm_cache_ms.min(recorder_disabled_ms);
    if let Some(prior) = prior_warm_ms {
        let allowed = prior * 1.03 + 250.0;
        assert!(
            best_disabled_ms <= allowed,
            "recorder-off warm sweep regressed: {best_disabled_ms:.1} ms vs prior \
             {prior:.1} ms (allowed {allowed:.1} ms = prior x1.03 + 250 ms noise floor)"
        );
        eprintln!(
            "recorder-off guard: {best_disabled_ms:.1} ms vs prior {prior:.1} ms (<=3% + floor) OK"
        );
    } else {
        eprintln!("recorder-off guard: no prior BENCH_sweep.json, recording first baseline");
    }

    // Degradation counters over the (unperturbed, uncapped) subset: all
    // structurally zero here, surfaced so any nonzero value in a future
    // run is visible in the artifact diff.
    let count = |f: fn(&mf_core::parsim::RunResult) -> u64| -> u64 {
        fast.iter().flat_map(|c| [&c.baseline, &c.memory]).map(f).sum()
    };
    let dropped_total = count(|r| r.dropped_messages);
    let forced_total = count(|r| r.forced_activations);
    let underflow_total = count(|r| r.underflows.iter().sum());

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"generated_by\": \"cargo run --release -p mf-bench --bin perf_baseline\",")
        .unwrap();
    writeln!(json, "  \"sweep_subset\": {{").unwrap();
    writeln!(json, "    \"cells\": {},", specs.len()).unwrap();
    writeln!(json, "    \"shape\": \"2 (matrix,ordering) x 2 nprocs x 2 split\",").unwrap();
    writeln!(json, "    \"sequential_uncached_ms\": {sequential_uncached_ms:.1},").unwrap();
    writeln!(json, "    \"parallel_cached_ms\": {parallel_cached_ms:.1},").unwrap();
    writeln!(json, "    \"warm_cache_ms\": {warm_cache_ms:.1},").unwrap();
    writeln!(json, "    \"speedup\": {speedup:.2},").unwrap();
    writeln!(json, "    \"results_identical\": true,").unwrap();
    writeln!(
        json,
        "    \"dropped_messages\": {dropped_total}, \"forced_activations\": {forced_total}, \
         \"underflows\": {underflow_total},"
    )
    .unwrap();
    let events_delivered_total: u64 =
        fast.iter().flat_map(|c| [&c.baseline, &c.memory]).map(|r| r.events_delivered).sum();
    writeln!(json, "    \"events_delivered\": {events_delivered_total}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"core_alloc\": {{").unwrap();
    writeln!(json, "    \"guard\": \"summed malleable makespan <= summed static makespan\",").unwrap();
    writeln!(json, "    \"static_makespan_total\": {static_total},").unwrap();
    writeln!(json, "    \"malleable_makespan_total\": {mall_total},").unwrap();
    writeln!(json, "    \"cells_tie_or_win\": {won},").unwrap();
    writeln!(json, "    \"by_cell\": [").unwrap();
    for (i, (name, nprocs, split, st, ml, ev_s, ev_m, util)) in mall_rows.iter().enumerate() {
        let sep = if i + 1 == mall_rows.len() { "" } else { "," };
        let gain = 100.0 * (*st as f64 - *ml as f64) / (*st).max(1) as f64;
        writeln!(
            json,
            "      {{ \"cell\": \"{name}\", \"nprocs\": {nprocs}, \"split\": {split}, \
             \"static_makespan\": {st}, \"malleable_makespan\": {ml}, \
             \"gain_percent\": {gain:.1}, \"static_events_delivered\": {ev_s}, \
             \"malleable_events_delivered\": {ev_m}, \"modelled_utilization\": {util:.3} }}{sep}"
        )
        .unwrap();
    }
    writeln!(json, "    ]").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"end_to_end\": {{").unwrap();
    writeln!(json, "    \"matrix\": \"SHIP_003\", \"scale\": 0.2, \"n\": {e2e_n},").unwrap();
    writeln!(json, "    \"flops\": {e2e_flops},").unwrap();
    writeln!(json, "    \"e2e_ms\": {e2e_ms:.1},").unwrap();
    writeln!(json, "    \"e2e_gflops\": {e2e_gflops:.2},").unwrap();
    match prior_e2e_gflops {
        Some(prior) => writeln!(json, "    \"prior_e2e_gflops\": {prior:.2}").unwrap(),
        None => writeln!(json, "    \"prior_e2e_gflops\": null").unwrap(),
    }
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"recorder_overhead\": {{").unwrap();
    writeln!(
        json,
        "    \"measurement\": \"identical cell set, same process; arms differ only in \
         record_events\","
    )
    .unwrap();
    writeln!(json, "    \"recorder_disabled_ms\": {recorder_disabled_ms:.1},").unwrap();
    writeln!(json, "    \"recorder_enabled_ms\": {recorder_enabled_ms:.1},").unwrap();
    writeln!(json, "    \"overhead_percent\": {overhead_percent:.1},").unwrap();
    writeln!(json, "    \"ns_per_event\": {ns_per_event:.1},").unwrap();
    writeln!(json, "    \"events_recorded\": {events_recorded},").unwrap();
    match prior_warm_ms {
        Some(prior) => writeln!(json, "    \"prior_warm_cache_ms\": {prior:.1},").unwrap(),
        None => writeln!(json, "    \"prior_warm_cache_ms\": null,").unwrap(),
    }
    match prior_enabled_ms {
        Some(prior) => writeln!(json, "    \"prior_recorder_enabled_ms\": {prior:.1},").unwrap(),
        None => writeln!(json, "    \"prior_recorder_enabled_ms\": null,").unwrap(),
    }
    match prior_overhead_percent {
        Some(prior) => writeln!(json, "    \"prior_overhead_percent\": {prior:.1},").unwrap(),
        None => writeln!(json, "    \"prior_overhead_percent\": null,").unwrap(),
    }
    writeln!(json, "    \"disabled_regression_guard\": \"<=3% + 250 ms floor\",").unwrap();
    writeln!(json, "    \"enabled_overhead_guard\": \"<=5x disabled + 250 ms floor\",").unwrap();
    writeln!(json, "    \"schedule_unperturbed\": true").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"sampler_overhead\": {{").unwrap();
    writeln!(
        json,
        "    \"measurement\": \"identical cell set, same process; arms differ only in \
         sample_every\","
    )
    .unwrap();
    writeln!(json, "    \"sample_interval_ticks\": {DEFAULT_SAMPLE_INTERVAL},").unwrap();
    writeln!(json, "    \"sampler_off_ms\": {sampler_off_ms:.1},").unwrap();
    writeln!(json, "    \"sampler_on_ms\": {sampler_on_ms:.1},").unwrap();
    writeln!(json, "    \"overhead_percent\": {sampler_overhead_percent:.1},").unwrap();
    writeln!(json, "    \"samples_total\": {samples_total},").unwrap();
    writeln!(json, "    \"overhead_guard\": \"<=3% of sampler-off + 250 ms floor\",").unwrap();
    writeln!(json, "    \"schedule_unperturbed\": true").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"event_queue\": {{").unwrap();
    writeln!(json, "    \"queue_depth\": {eq_depth},").unwrap();
    writeln!(json, "    \"events\": {eq_events},").unwrap();
    writeln!(json, "    \"ns_per_event\": {eq_ns:.1}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"gemm\": {{").unwrap();
    writeln!(json, "    \"host_cores\": {host_cores},").unwrap();
    writeln!(json, "    \"simd\": \"{}\",", simd.name()).unwrap();
    writeln!(json, "    \"microkernel_roofline_gflops\": {roofline_gflops:.2},").unwrap();
    writeln!(json, "    \"self_speedup_8t\": {self_speedup_8t:.2},").unwrap();
    writeln!(json, "    \"self_speedup_guard\": \">=3x at 8 threads when host_cores >= 8\",")
        .unwrap();
    writeln!(json, "    \"lu_floor_gflops\": {floor:.1},").unwrap();
    writeln!(json, "    \"by_config\": [").unwrap();
    for (i, (nb, threads, ms, gflops)) in gemm_rows.iter().enumerate() {
        let sep = if i + 1 == gemm_rows.len() { "" } else { "," };
        writeln!(
            json,
            "      {{ \"front\": 512, \"npiv\": 256, \"nb\": {nb}, \"threads\": {threads}, \
             \"ms\": {ms:.2}, \"gflops\": {gflops:.2} }}{sep}"
        )
        .unwrap();
    }
    writeln!(json, "    ]").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"panel\": {{").unwrap();
    writeln!(
        json,
        "    \"measurement\": \"recursive (production) vs rank-1 (reference) panel, \
         interleaved reps, best-of-reps; pct_roofline is vs the same run's microkernel \
         ceiling\","
    )
    .unwrap();
    writeln!(json, "    \"by_front\": [").unwrap();
    for (i, (f, p, rec, r1)) in panel_rows.iter().enumerate() {
        let sep = if i + 1 == panel_rows.len() { "" } else { "," };
        let rec_pct = 100.0 * rec.1 / roofline_gflops.max(1e-9);
        let r1_pct = 100.0 * r1.1 / roofline_gflops.max(1e-9);
        writeln!(
            json,
            "      {{ \"front\": {f}, \"npiv\": {p}, \"recursive_ms\": {:.2}, \
             \"recursive_gflops\": {:.2}, \"recursive_pct_roofline\": {rec_pct:.1}, \
             \"rank1_ms\": {:.2}, \"rank1_gflops\": {:.2}, \
             \"rank1_pct_roofline\": {r1_pct:.1} }}{sep}",
            rec.0, rec.1, r1.0, r1.1
        )
        .unwrap();
    }
    writeln!(json, "    ]").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"lu_kernel_blocked\": [").unwrap();
    for (i, (f, p, ms, gflops)) in kernels.iter().enumerate() {
        let sep = if i + 1 == kernels.len() { "" } else { "," };
        // Trajectory fields: the same configuration's numbers from the
        // previous run of this harness, so the artifact diff shows the
        // kernel's history, not just its present.
        let prior = match prior_lu.get(i).copied().flatten() {
            Some((pm, pg)) => format!(", \"prior_ms\": {pm:.2}, \"prior_gflops\": {pg:.2}"),
            None => String::new(),
        };
        writeln!(
            json,
            "    {{ \"front\": {f}, \"npiv\": {p}, \"ms\": {ms:.2}, \
             \"gflops\": {gflops:.2}{prior} }}{sep}"
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    mf_bench::obs::validate_json(&json).expect("BENCH_sweep.json must be well-formed");
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    print!("{json}");

    // Trajectory diff against the file this run replaced: every shared
    // metric that moved, named by its JSON path, largest movement first
    // (the same comparison `mf-obs diff sweeps` offers across commits).
    if let Some(prior) = &prior_text {
        let old_nums = mf_bench::obs::json_numbers(prior);
        let new_nums = mf_bench::obs::json_numbers(&json);
        let old_map: std::collections::HashMap<&str, f64> =
            old_nums.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let mut moved: Vec<(&str, f64, f64, f64)> = new_nums
            .iter()
            .filter_map(|(k, nv)| {
                let ov = *old_map.get(k.as_str())?;
                let pct = if ov == 0.0 { 0.0 } else { 100.0 * (nv - ov) / ov.abs() };
                (pct.abs() >= 1.0).then_some((k.as_str(), ov, *nv, pct))
            })
            .collect();
        moved.sort_by(|x, y| y.3.abs().total_cmp(&x.3.abs()));
        eprintln!(
            "trajectory vs prior BENCH_sweep.json: {} shared metric(s), {} moved >=1%",
            new_nums.iter().filter(|(k, _)| old_map.contains_key(k.as_str())).count(),
            moved.len()
        );
        for (k, ov, nv, pct) in moved.iter().take(12) {
            eprintln!("  {k}: {ov} -> {nv} ({pct:+.1}%)");
        }
    }
    eprintln!(
        "sweep subset: {sequential_uncached_ms:.0} ms -> {parallel_cached_ms:.0} ms \
         ({speedup:.1}x; warm cache {warm_cache_ms:.0} ms); \
         event queue {eq_ns:.0} ns/event; \
         recorder {recorder_disabled_ms:.0} -> {recorder_enabled_ms:.0} ms \
         ({overhead_percent:+.1}%, {events_recorded} events, {ns_per_event:.0} ns/event)"
    );
    // Re-running a cell sequentially now also hits the warm cache.
    let c = sweep_cell(specs[0].0, specs[0].1, specs[0].2, specs[0].3, false);
    assert_eq!(c.baseline.max_peak, fast[0].baseline.max_peak);
}
