//! Backend equivalence check: the discrete-event simulator and the
//! threaded executor must produce *identical* results for every paper
//! matrix under the quiet model — same per-processor active peaks, same
//! makespan, same message count, same merged metrics. The two backends
//! share the per-processor `SchedulerCore` state machines; this binary
//! pins the claim that everything *around* the cores (transport, clock,
//! memory accounting) is equivalent too.
//!
//! Usage:
//!
//! ```text
//! backend_equiv [--nprocs N] [--quick]
//! ```
//!
//! Defaults: 32 processors, all 8 matrices × both strategies. `--quick`
//! restricts to two matrices (CI uses `--quick --nprocs 16` to keep the
//! job short; the full grid is the local acceptance run).

use mf_bench::sweep::{build_tree, paper_scale_config};
use mf_core::config::{SlaveSelection, SolverConfig, TaskSelection};
use mf_core::CoreAlloc;
use mf_core::mapping::compute_mapping;
use mf_core::parsim;
use mf_order::OrderingKind;
use mf_sparse::gen::paper::{PaperMatrix, ALL_PAPER_MATRICES};

fn main() {
    let mut nprocs = 32usize;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--nprocs" => {
                nprocs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--nprocs needs an integer"));
            }
            "--quick" => quick = true,
            other => panic!("unknown argument {other:?} (expected --nprocs N or --quick)"),
        }
    }
    let matrices: &[PaperMatrix] =
        if quick { &[PaperMatrix::TwoTone, PaperMatrix::Ship003] } else { &ALL_PAPER_MATRICES };

    type CfgOf = fn(usize) -> SolverConfig;
    let strategies: [(&str, CfgOf); 3] = [
        ("workload", |n| SolverConfig {
            slave_selection: SlaveSelection::Workload,
            task_selection: TaskSelection::Lifo,
            use_subtree_info: false,
            use_prediction: false,
            ..paper_scale_config(n)
        }),
        ("memory", |n| SolverConfig {
            slave_selection: SlaveSelection::Memory,
            task_selection: TaskSelection::MemoryAware,
            use_subtree_info: true,
            use_prediction: true,
            ..paper_scale_config(n)
        }),
        // Malleable grants feed the shared speedup-curve duration model;
        // both backends must still agree tick for tick.
        ("malleable", |n| SolverConfig {
            slave_selection: SlaveSelection::Memory,
            task_selection: TaskSelection::MemoryAware,
            use_subtree_info: true,
            use_prediction: true,
            core_alloc: CoreAlloc::malleable(4 * n),
            ..paper_scale_config(n)
        }),
    ];

    let mut cells = 0usize;
    for &m in matrices {
        let tree = build_tree(m, OrderingKind::Metis, None);
        for (name, cfg_of) in strategies {
            let cfg = cfg_of(nprocs);
            let map = compute_mapping(&tree, &cfg);
            let sim = parsim::run(&tree, &map, &cfg)
                .unwrap_or_else(|e| panic!("{}/{name}: simulator failed: {e}", m.name()));
            let thr = mf_exec::run_threads(&tree, &map, &cfg)
                .unwrap_or_else(|e| panic!("{}/{name}: threaded backend failed: {e}", m.name()));
            assert_eq!(sim.peaks, thr.peaks, "{}/{name}: active peaks differ", m.name());
            assert_eq!(sim.total_peaks, thr.total_peaks, "{}/{name}: total peaks", m.name());
            assert_eq!(sim.makespan, thr.makespan, "{}/{name}: makespan differs", m.name());
            assert_eq!(sim.messages, thr.messages, "{}/{name}: message count", m.name());
            assert_eq!(sim.nodes_done, thr.nodes_done, "{}/{name}: fronts done", m.name());
            assert_eq!(sim.metrics, thr.metrics, "{}/{name}: metrics differ", m.name());
            println!(
                "{:12} {:8} nprocs {:3}: backends agree — {}",
                m.name(),
                name,
                nprocs,
                sim.summary_line()
            );
            cells += 1;
        }
    }
    println!("backend equivalence: {cells} cells, sim == threads on every one");
}
