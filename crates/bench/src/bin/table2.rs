//! Table 2: percentage decrease of the maximum stack-memory peak
//! obtained by the dynamic memory strategies (Algorithm 1 with the
//! Section 5.1 mechanisms and Algorithm 2) against the workload baseline
//! — 8 matrices x 4 orderings, 32 simulated processors, no splitting.

use mf_bench::paper_data::PAPER_TABLE2;
use mf_bench::sweep::{run_percent_table, CellSpec};
use mf_order::ALL_ORDERINGS;
use mf_sparse::gen::paper::ALL_PAPER_MATRICES;

fn main() {
    let nprocs = 32;
    let specs: Vec<CellSpec> = ALL_PAPER_MATRICES
        .into_iter()
        .flat_map(|m| ALL_ORDERINGS.into_iter().map(move |k| (m, k, nprocs, None, false)))
        .collect();
    // All 32 cells run in parallel; results come back in spec order, so
    // the rendered table is identical to the sequential loop's.
    run_percent_table(
        "Table 2: % decrease of max stack peak (dynamic memory strategies, no splitting)",
        Some(&PAPER_TABLE2),
        &ALL_PAPER_MATRICES,
        1,
        &specs,
        |m, entry| {
            let c = &entry[0];
            let val = c.gain_percent();
            let log = format!(
                "{:12} {:5}: baseline peak {:>9}, memory peak {:>9} -> {:+.1}%",
                m.name(),
                c.ordering.name(),
                c.baseline.max_peak,
                c.memory.max_peak,
                val
            );
            (val, log)
        },
    );
}
