//! Table 2: percentage decrease of the maximum stack-memory peak
//! obtained by the dynamic memory strategies (Algorithm 1 with the
//! Section 5.1 mechanisms and Algorithm 2) against the workload baseline
//! — 8 matrices x 4 orderings, 32 simulated processors, no splitting.

use mf_bench::paper_data::PAPER_TABLE2;
use mf_bench::sweep::{render_percent_table, sweep_cell};
use mf_order::ALL_ORDERINGS;
use mf_sparse::gen::paper::ALL_PAPER_MATRICES;

fn main() {
    let nprocs = 32;
    let mut rows = Vec::new();
    for m in ALL_PAPER_MATRICES {
        let mut vals = [0.0f64; 4];
        for (i, k) in ALL_ORDERINGS.into_iter().enumerate() {
            let c = sweep_cell(m, k, nprocs, None, false);
            vals[i] = c.gain_percent();
            eprintln!(
                "{:12} {:5}: baseline peak {:>9}, memory peak {:>9} -> {:+.1}%",
                m.name(),
                k.name(),
                c.baseline.max_peak,
                c.memory.max_peak,
                vals[i]
            );
        }
        rows.push((m.name(), vals));
    }
    println!(
        "{}",
        render_percent_table(
            "Table 2: % decrease of max stack peak (dynamic memory strategies, no splitting)",
            &rows,
            Some(&PAPER_TABLE2),
        )
    );
}
