//! Static-vs-malleable core-allocation table over the full paper set.
//!
//! Machine model: `nprocs` processors with **4 cores each** (the pool
//! `CoreAlloc::malleable` is sized for). A *rigid* front can only use
//! its own processor's cores, so the feasible static budgets are
//! `Static(c)`, c ∈ {1, 2, 4}; a *malleable* front may additionally
//! collect idle peers' cores, up to 8 — that borrowing is the entire
//! point of malleability, and `pool/busy` is how the grant rule prices
//! it. `Static(8)` is also printed as an **oracle** column: it presumes
//! 8 cores resident on every processor simultaneously (2× the machine)
//! and is therefore infeasible — the interesting question is how close
//! malleable gets to it with half the silicon.
//!
//! For every paper matrix (plus one synthetic grid) the simulator runs
//! all five configurations under the memory-aware strategy over the
//! *same* tree and static mapping; every configuration prices durations
//! through the same speedup curve, so the comparison isolates *who gets
//! the cores when* — not the curve itself.
//!
//! The acceptance bar this binary pins: malleable must tie or beat the
//! *best feasible* static budget (chosen per matrix, with hindsight) on
//! at least 6 of the 8 paper matrices. EXPERIMENTS.md reproduces the
//! printed table; CI does not run this binary (it is the local
//! acceptance run — `perf_baseline` carries the cheap subset guard).
//!
//! Usage: `malleable_table [--nprocs N]` (default 32).

use mf_bench::sweep::{build_tree, paper_scale_config};
use mf_core::config::{SlaveSelection, SolverConfig, TaskSelection};
use mf_core::mapping::compute_mapping;
use mf_core::{parsim, CoreAlloc};
use mf_order::OrderingKind;
use mf_sparse::gen::grid::{grid2d, Stencil};
use mf_sparse::gen::paper::ALL_PAPER_MATRICES;
use mf_symbolic::AmalgamationOptions;

/// Budgets a rigid scheduler can actually run on a 4-core-per-processor
/// machine. `ORACLE_BUDGET` (8) is infeasible and reported separately.
const STATIC_BUDGETS: [usize; 3] = [1, 2, 4];
const ORACLE_BUDGET: usize = 8;

fn cfg_with(nprocs: usize, alloc: CoreAlloc) -> SolverConfig {
    SolverConfig {
        slave_selection: SlaveSelection::Memory,
        task_selection: TaskSelection::MemoryAware,
        use_subtree_info: true,
        use_prediction: true,
        core_alloc: alloc,
        ..paper_scale_config(nprocs)
    }
}

fn main() {
    let mut nprocs = 32usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--nprocs" => {
                nprocs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--nprocs needs an integer"));
            }
            other => panic!("unknown argument {other:?} (expected --nprocs N)"),
        }
    }

    // Synthetic companion case: a 60x60 box-stencil grid, AMD-ordered.
    // Regular grids have balanced trees (the opposite stress from the
    // paper's skewed industrial trees), so they check that malleability
    // does not *hurt* when tree-parallelism alone already saturates.
    let grid = grid2d(60, 60, Stencil::Box);
    let grid_perm = OrderingKind::Amd.compute(&grid);
    let grid_tree =
        mf_symbolic::analyze(&grid, &grid_perm, &AmalgamationOptions::default()).tree;

    println!(
        "{:<12} {:>9} {:>9} {:>9} | {:>9} {:>10} {:>7} | {:>9} {:>9}",
        "matrix", "static1", "static2", "static4", "malleable", "vs best", "result", "oracle8", "vs oracle"
    );
    let mut wins = 0usize;
    let mut rows = 0usize;
    let mut run_case = |name: &str, tree: &mf_symbolic::AssemblyTree, paper: bool| {
        let map = compute_mapping(tree, &cfg_with(nprocs, CoreAlloc::Static(1)));
        let makespan_with = |alloc: CoreAlloc| {
            parsim::run(tree, &map, &cfg_with(nprocs, alloc))
                .unwrap_or_else(|e| panic!("{name}/{alloc:?}: {e}"))
                .makespan
        };
        let statics: Vec<u64> =
            STATIC_BUDGETS.iter().map(|&c| makespan_with(CoreAlloc::Static(c))).collect();
        let oracle = makespan_with(CoreAlloc::Static(ORACLE_BUDGET));
        let mall = makespan_with(CoreAlloc::malleable(4 * nprocs));
        let best = *statics.iter().min().unwrap();
        let gain = 100.0 * (best as f64 - mall as f64) / best as f64;
        let vs_oracle = 100.0 * (mall as f64 - oracle as f64) / oracle as f64;
        let tie_or_win = mall <= best;
        if paper {
            rows += 1;
            wins += tie_or_win as usize;
        }
        println!(
            "{:<12} {:>9} {:>9} {:>9} | {:>9} {:>+9.1}% {:>7} | {:>9} {:>+8.1}%",
            name,
            statics[0],
            statics[1],
            statics[2],
            mall,
            gain,
            if tie_or_win { "ok" } else { "LOSS" },
            oracle,
            vs_oracle
        );
    };
    for m in ALL_PAPER_MATRICES {
        let tree = build_tree(m, OrderingKind::Metis, None);
        run_case(m.name(), &tree, true);
    }
    run_case("GRID60x60", &grid_tree, false);

    println!(
        "\nmalleable ties/beats best feasible static on {wins}/{rows} paper matrices \
         (acceptance floor: 6/8); machine = {nprocs} procs x 4 cores \
         (pool {}), malleable may borrow idle peers' cores up to 8/front; \
         oracle8 assumes 8 resident cores everywhere (2x the machine)",
        4 * nprocs
    );
    assert!(wins >= 6, "malleable won only {wins}/{rows} — below the 6/8 acceptance floor");
}
