//! Quick scan of every matrix × ordering cell: generation, ordering and
//! symbolic-analysis timings plus tree-shape statistics. Useful to sanity
//! check the whole analysis pipeline before launching the table sweeps.

use mf_order::ALL_ORDERINGS;
use mf_sparse::gen::paper::ALL_PAPER_MATRICES;
use mf_symbolic::AmalgamationOptions;
use std::time::Instant;

fn main() {
    for m in ALL_PAPER_MATRICES {
        let t0 = Instant::now();
        let a = m.instantiate();
        let tg = t0.elapsed();
        for k in ALL_ORDERINGS {
            let t1 = Instant::now();
            let p = k.compute(&a);
            let to = t1.elapsed();
            let t2 = Instant::now();
            let s = mf_symbolic::analyze(&a, &p, &AmalgamationOptions::default());
            let ts = t2.elapsed();
            let st = s.tree.stats();
            println!(
                "{:12} n={:6} nnz={:8} gen={:6.1?} {:5}: ord={:7.2?} sym={:7.2?} \
                 nodes={:5} leaves={:5} depth={:4} maxfront={:5} flops={:.2e} factors={:.2e}",
                m.name(),
                a.nrows(),
                a.nnz(),
                tg,
                k.name(),
                to,
                ts,
                st.nodes,
                st.leaves,
                st.depth,
                st.max_nfront,
                st.flops as f64,
                st.factor_entries as f64
            );
        }
    }
}
