//! Memory scalability study — the paper's motivation, quantified.
//!
//! "By minimizing the stack memory and improving the memory scalability,
//! we will be able to treat larger problems since the scalability of the
//! stack is currently a limiting factor of the factorization."
//!
//! For processor counts 1..32 this binary reports, per strategy:
//! the maximum per-processor stack peak (what each node must provision),
//! the *sum* of the peaks (total machine memory — perfect scalability
//! would keep it flat at the sequential peak), and the memory efficiency
//! `seq_peak / (nprocs * max_peak)`, plus the makespan speedup.

use mf_bench::sweep::{build_tree, paper_scale_config};
use mf_core::config::{SlaveSelection, SolverConfig, TaskSelection};
use mf_core::mapping::compute_mapping;
use mf_core::parsim;
use mf_order::OrderingKind;
use mf_sparse::gen::paper::PaperMatrix;
use mf_symbolic::seqstack::{sequential_peak, AssemblyDiscipline};
use rayon::prelude::*;

fn main() {
    let tree = build_tree(PaperMatrix::Ultrasound3, OrderingKind::Metis, None);
    let seq = sequential_peak(&tree, AssemblyDiscipline::FrontThenFree);
    println!("ULTRASOUND3 / METIS; sequential stack peak = {seq} entries");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>10} {:>8}  strategy",
        "procs", "max peak", "sum peaks", "efficiency", "makespan", "speedup"
    );
    // All (processor count, strategy) points run in parallel against the
    // shared tree; results come back in input order so the report rows
    // and the speedup baselines (the nprocs=1 rows) are unchanged.
    let points: Vec<(usize, usize, bool)> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .flat_map(|np| [(np, 0usize, false), (np, 1, true)])
        .collect();
    let results: Vec<_> = points
        .par_iter()
        .map(|&(nprocs, _, memory)| {
            let mut cfg = paper_scale_config(nprocs);
            if memory {
                cfg = SolverConfig {
                    slave_selection: SlaveSelection::Memory,
                    task_selection: TaskSelection::MemoryAware,
                    use_subtree_info: true,
                    use_prediction: true,
                    ..cfg
                };
            }
            let map = compute_mapping(&tree, &cfg);
            parsim::run(&tree, &map, &cfg).expect("scaling run failed")
        })
        .collect();
    let t1 = [results[0].makespan, results[1].makespan];
    for (&(nprocs, si, memory), r) in points.iter().zip(&results) {
        let sum: u64 = r.peaks.iter().sum();
        println!(
            "{:>6} {:>10} {:>12} {:>11.1}% {:>10} {:>7.1}x  {}",
            nprocs,
            r.max_peak,
            sum,
            100.0 * seq as f64 / (nprocs as f64 * r.max_peak as f64),
            r.makespan,
            t1[si] as f64 / r.makespan as f64,
            if memory { "memory" } else { "workload" },
        );
    }
}
