//! Processor-count scaling sweep on full-size synthetic instances —
//! the workload the lane-sharded event core exists for.
//!
//! The paper's tables stop at 32 processors because its matrices do; the
//! engine itself is sized for three more doublings. This binary runs the
//! memory-based strategy over a Table-1-scale synthetic nested-dissection
//! instance (~197k columns, 8191 fronts, 4096 leaf subtrees — see
//! [`mf_bench::scenarios::SynthConfig`]) at P in {32, 128, 512, 1024}
//! and writes `BENCH_scale.json` with, per point:
//!
//! * wall-clock, delivered events, ns/event and events/sec — the
//!   engine's end-to-end cost per point;
//! * makespan, peaks, and the status-coherence traffic (status message
//!   and byte counts) — how the paper's protocol scales with P;
//! * the process RSS high-water mark after the point (VmHWM, cumulative
//!   over the run, so the 1024-processor figure bounds the whole sweep).
//!
//! `--smoke` runs one 256-processor cell on the small smoke instance
//! under a hard wall-clock ceiling and validates the rendered JSON with
//! `mf_bench::obs` — the CI guard that the full sweep stays runnable.

use std::fmt::Write as _;
use std::time::Instant;

use mf_bench::scenarios::{synth_nd_tree, SynthConfig};
use mf_core::config::{SlaveSelection, SolverConfig, TaskSelection};
use mf_core::mapping::compute_mapping;
use mf_core::parsim::{self, RunResult};
use mf_symbolic::AssemblyTree;

/// The memory-based strategy at scale-sweep settings: the paper's
/// headline configuration (Algorithm 1 slave selection, Algorithm 2 task
/// selection, subtree info and prediction on), front-type thresholds as
/// in the table drivers.
fn scale_config(nprocs: usize) -> SolverConfig {
    SolverConfig {
        nprocs,
        type2_front_min: 150,
        type3_front_min: 500,
        min_rows_per_slave: 12,
        slave_selection: SlaveSelection::Memory,
        task_selection: TaskSelection::MemoryAware,
        use_subtree_info: true,
        use_prediction: true,
        ..SolverConfig::mumps_baseline(nprocs)
    }
}

/// Process RSS high-water mark (kB) from `/proc/self/status`; 0 where
/// the file is unavailable (non-Linux hosts).
fn peak_rss_kb() -> u64 {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    text.lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

struct Point {
    nprocs: usize,
    wall_ms: f64,
    ns_per_event: f64,
    events_per_sec: f64,
    rss_hwm_kb: u64,
    r: RunResult,
}

fn run_point(tree: &AssemblyTree, nprocs: usize) -> Point {
    let cfg = scale_config(nprocs);
    let map = compute_mapping(tree, &cfg);
    let start = Instant::now();
    let r = parsim::run(tree, &map, &cfg)
        .unwrap_or_else(|e| panic!("scale run at P={nprocs} failed: {e}"));
    let wall = start.elapsed();
    assert_eq!(r.nodes_done, r.total_nodes, "P={nprocs}: run did not complete");
    let wall_ms = wall.as_secs_f64() * 1e3;
    let events = r.events_delivered.max(1);
    Point {
        nprocs,
        wall_ms,
        ns_per_event: wall.as_nanos() as f64 / events as f64,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        rss_hwm_kb: peak_rss_kb(),
        r,
    }
}

fn render_json(shape: &SynthConfig, tree: &AssemblyTree, points: &[Point]) -> String {
    let stats = tree.stats();
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"generated_by\": \"cargo run --release -p mf-bench --bin scale\",").unwrap();
    writeln!(json, "  \"instance\": {{").unwrap();
    writeln!(
        json,
        "    \"synth\": {{ \"s0\": {}, \"gamma\": {}, \"depth\": {}, \"beta\": {}, \
         \"jitter\": {}, \"seed\": {} }},",
        shape.s0, shape.gamma, shape.depth, shape.beta, shape.jitter, shape.seed
    )
    .unwrap();
    writeln!(
        json,
        "    \"n\": {}, \"fronts\": {}, \"leaves\": {}, \"depth\": {}, \
         \"factor_entries\": {}, \"flops\": {}",
        tree.n, stats.nodes, stats.leaves, stats.depth, stats.factor_entries, stats.flops
    )
    .unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"strategy\": \"memory-based (Alg 1 + Alg 2, subtree info, prediction)\",")
        .unwrap();
    writeln!(json, "  \"points\": [").unwrap();
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let m = &p.r.metrics;
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"nprocs\": {},", p.nprocs).unwrap();
        writeln!(json, "      \"wall_ms\": {:.1},", p.wall_ms).unwrap();
        writeln!(json, "      \"events_delivered\": {},", p.r.events_delivered).unwrap();
        writeln!(json, "      \"ns_per_event\": {:.1},", p.ns_per_event).unwrap();
        writeln!(json, "      \"events_per_sec\": {:.0},", p.events_per_sec).unwrap();
        writeln!(json, "      \"makespan\": {},", p.r.makespan).unwrap();
        writeln!(json, "      \"max_peak\": {},", p.r.max_peak).unwrap();
        writeln!(json, "      \"sum_peaks\": {},", p.r.peaks.iter().sum::<u64>()).unwrap();
        writeln!(json, "      \"messages\": {},", p.r.messages).unwrap();
        writeln!(
            json,
            "      \"status_msgs\": {}, \"status_bytes\": {}, \"dropped_status\": {},",
            m.status_msgs, m.status_bytes, m.dropped_status
        )
        .unwrap();
        writeln!(
            json,
            "      \"control_msgs\": {}, \"control_bytes\": {},",
            m.control_msgs, m.control_bytes
        )
        .unwrap();
        writeln!(
            json,
            "      \"status_msgs_per_event\": {:.3},",
            m.status_msgs as f64 / p.r.events_delivered.max(1) as f64
        )
        .unwrap();
        writeln!(json, "      \"view_staleness_p95\": {},", m.view_staleness.quantile(0.95))
            .unwrap();
        writeln!(json, "      \"rss_hwm_kb\": {}", p.rss_hwm_kb).unwrap();
        writeln!(json, "    }}{sep}").unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    json
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        // CI guard: one 256-processor cell on the small instance must
        // finish comfortably inside the ceiling and render valid JSON
        // whose numeric leaves are extractable (the artifact-diff path).
        const CEILING_MS: f64 = 60_000.0;
        let shape = SynthConfig::smoke(42);
        let tree = synth_nd_tree(&shape);
        let start = Instant::now();
        let p = run_point(&tree, 256);
        let total_ms = start.elapsed().as_secs_f64() * 1e3;
        let json = render_json(&shape, &tree, std::slice::from_ref(&p));
        mf_bench::obs::validate_json(&json).expect("smoke JSON must be well-formed");
        let nums = mf_bench::obs::json_numbers(&json);
        assert!(
            nums.iter().any(|(k, v)| k == "points[0].events_delivered" && *v > 0.0),
            "smoke JSON must carry delivered-event counts"
        );
        assert!(
            total_ms <= CEILING_MS,
            "scale smoke exceeded its ceiling: {total_ms:.0} ms > {CEILING_MS:.0} ms"
        );
        println!("{json}");
        eprintln!(
            "scale smoke OK: P=256, {} events in {:.0} ms ({:.0} ns/event, ceiling {:.0} ms)",
            p.r.events_delivered, total_ms, p.ns_per_event, CEILING_MS
        );
        return;
    }

    let shape = SynthConfig::paper_scale(42);
    eprintln!(
        "synthesizing instance (s0={}, gamma={}, depth={}) ...",
        shape.s0, shape.gamma, shape.depth
    );
    let tree = synth_nd_tree(&shape);
    let stats = tree.stats();
    eprintln!("instance: n={}, {} fronts, {} leaves", tree.n, stats.nodes, stats.leaves);
    let mut points = Vec::new();
    for nprocs in [32usize, 128, 512, 1024] {
        eprintln!("P={nprocs} ...");
        let p = run_point(&tree, nprocs);
        eprintln!(
            "  {} events in {:.0} ms: {:.0} ns/event, {:.2e} events/s, \
             {} status msgs, rss {} MB",
            p.r.events_delivered,
            p.wall_ms,
            p.ns_per_event,
            p.events_per_sec,
            p.r.metrics.status_msgs,
            p.rss_hwm_kb / 1024
        );
        points.push(p);
    }
    let json = render_json(&shape, &tree, &points);
    mf_bench::obs::validate_json(&json).expect("BENCH_scale.json must be well-formed");
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    print!("{json}");
}
