//! Context experiment: impact of the reordering on memory (the paper's
//! reference \[12\], Guermouche, L'Excellent & Utard, Parallel Computing
//! 2003 — the study whose observations this paper builds on).
//!
//! For every matrix × ordering: sequential stack peak (with and without
//! Liu's optimal child order), total factor entries and elimination
//! flops. This is where "the stack memory evolution is very dependent on
//! the assembly tree topology" becomes visible: minimum-degree orderings
//! trade a smaller stack for more flops, dissection orderings the
//! reverse.

use mf_order::ALL_ORDERINGS;
use mf_sparse::gen::paper::ALL_PAPER_MATRICES;
use mf_symbolic::seqstack::{apply_liu_order, sequential_peak, AssemblyDiscipline};
use mf_symbolic::AmalgamationOptions;

fn main() {
    println!(
        "{:12} {:5} {:>12} {:>12} {:>7} {:>12} {:>12}",
        "Matrix", "Ord", "stack(DFS)", "stack(Liu)", "gain%", "factors", "flops"
    );
    for m in ALL_PAPER_MATRICES {
        let a = m.instantiate();
        for k in ALL_ORDERINGS {
            let perm = k.compute(&a);
            let mut s = mf_symbolic::analyze(&a, &perm, &AmalgamationOptions::default());
            let before = sequential_peak(&s.tree, AssemblyDiscipline::FrontThenFree);
            let after = apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
            println!(
                "{:12} {:5} {:>12} {:>12} {:>6.1}% {:>12} {:>12}",
                m.name(),
                k.name(),
                before,
                after,
                100.0 * (before - after) as f64 / before.max(1) as f64,
                s.tree.total_factor_entries(),
                s.tree.total_flops(),
            );
        }
    }
}
