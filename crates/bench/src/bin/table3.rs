//! Table 3: percentage decrease of the maximum stack-memory peak by the
//! dynamic memory strategies on trees whose large type-2 masters were
//! statically split (both runs use the same split tree, as in the paper).

use mf_bench::paper_data::PAPER_TABLE3;
use mf_bench::sweep::{render_percent_table, split_threshold_for, sweep_cells, CellSpec};
use mf_order::ALL_ORDERINGS;
use mf_sparse::gen::paper::{PaperMatrix, ALL_PAPER_MATRICES};

fn main() {
    let nprocs = 32;
    let thr = split_threshold_for();
    let matrices: Vec<PaperMatrix> =
        ALL_PAPER_MATRICES.into_iter().filter(|m| m.is_unsymmetric()).collect();
    let specs: Vec<CellSpec> = matrices
        .iter()
        .flat_map(|&m| ALL_ORDERINGS.into_iter().map(move |k| (m, k, nprocs, Some(thr), false)))
        .collect();
    let cells = sweep_cells(&specs);
    mf_bench::obs::maybe_export_cells(&cells);
    let mut rows = Vec::new();
    for (m, row) in matrices.iter().zip(cells.chunks_exact(4)) {
        let mut vals = [0.0f64; 4];
        for (i, c) in row.iter().enumerate() {
            vals[i] = c.gain_percent();
            eprintln!(
                "{:12} {:5}: split-baseline {:>9}, split-memory {:>9} -> {:+.1}% ({} fronts)",
                m.name(),
                c.ordering.name(),
                c.baseline.max_peak,
                c.memory.max_peak,
                vals[i],
                c.stats.nodes,
            );
        }
        rows.push((m.name(), vals));
    }
    println!(
        "{}",
        render_percent_table(
            &format!(
                "Table 3: % decrease of max stack peak on split trees (threshold {thr} entries)"
            ),
            &rows,
            Some(&PAPER_TABLE3),
        )
    );
}
