//! Table 3: percentage decrease of the maximum stack-memory peak by the
//! dynamic memory strategies on trees whose large type-2 masters were
//! statically split (both runs use the same split tree, as in the paper).

use mf_bench::paper_data::PAPER_TABLE3;
use mf_bench::sweep::{render_percent_table, split_threshold_for, sweep_cell};
use mf_order::ALL_ORDERINGS;
use mf_sparse::gen::paper::ALL_PAPER_MATRICES;

fn main() {
    let nprocs = 32;
    let thr = split_threshold_for();
    let mut rows = Vec::new();
    for m in ALL_PAPER_MATRICES.into_iter().filter(|m| m.is_unsymmetric()) {
        let mut vals = [0.0f64; 4];
        for (i, k) in ALL_ORDERINGS.into_iter().enumerate() {
            let c = sweep_cell(m, k, nprocs, Some(thr), false);
            vals[i] = c.gain_percent();
            eprintln!(
                "{:12} {:5}: split-baseline {:>9}, split-memory {:>9} -> {:+.1}% ({} fronts)",
                m.name(),
                k.name(),
                c.baseline.max_peak,
                c.memory.max_peak,
                vals[i],
                c.stats.nodes,
            );
        }
        rows.push((m.name(), vals));
    }
    println!(
        "{}",
        render_percent_table(
            &format!(
                "Table 3: % decrease of max stack peak on split trees (threshold {thr} entries)"
            ),
            &rows,
            Some(&PAPER_TABLE3),
        )
    );
}
