//! Table 3: percentage decrease of the maximum stack-memory peak by the
//! dynamic memory strategies on trees whose large type-2 masters were
//! statically split (both runs use the same split tree, as in the paper).

use mf_bench::paper_data::PAPER_TABLE3;
use mf_bench::sweep::{run_percent_table, split_threshold_for, CellSpec};
use mf_order::ALL_ORDERINGS;
use mf_sparse::gen::paper::{PaperMatrix, ALL_PAPER_MATRICES};

fn main() {
    let nprocs = 32;
    let thr = split_threshold_for();
    let matrices: Vec<PaperMatrix> =
        ALL_PAPER_MATRICES.into_iter().filter(|m| m.is_unsymmetric()).collect();
    let specs: Vec<CellSpec> = matrices
        .iter()
        .flat_map(|&m| ALL_ORDERINGS.into_iter().map(move |k| (m, k, nprocs, Some(thr), false)))
        .collect();
    run_percent_table(
        &format!("Table 3: % decrease of max stack peak on split trees (threshold {thr} entries)"),
        Some(&PAPER_TABLE3),
        &matrices,
        1,
        &specs,
        |m, entry| {
            let c = &entry[0];
            let val = c.gain_percent();
            let log = format!(
                "{:12} {:5}: split-baseline {:>9}, split-memory {:>9} -> {:+.1}% ({} fronts)",
                m.name(),
                c.ordering.name(),
                c.baseline.max_peak,
                c.memory.max_peak,
                val,
                c.stats.nodes,
            );
            (val, log)
        },
    );
}
