//! Ablation study of the design choices (beyond the paper's tables):
//! which mechanism buys what?
//!
//! Runs the same matrix × ordering cells under every meaningful strategy
//! combination — isolating Algorithm 1, the two Section 5.1 information
//! mechanisms, Algorithm 2 and its global refinement, and the hybrid
//! strategy of the paper's conclusion — and reports max/avg stack peak
//! and makespan for each.

use mf_bench::sweep::{build_tree, paper_scale_config};
use mf_core::config::{SlaveSelection, SolverConfig, TaskSelection};
use mf_core::mapping::compute_mapping;
use mf_core::parsim;
use mf_order::OrderingKind;
use mf_sparse::gen::paper::PaperMatrix;
use rayon::prelude::*;

struct Variant {
    name: &'static str,
    cfg: fn(SolverConfig) -> SolverConfig,
}

const VARIANTS: &[Variant] = &[
    Variant { name: "workload+lifo (baseline)", cfg: |c| c },
    Variant {
        name: "alg1 only",
        cfg: |c| SolverConfig { slave_selection: SlaveSelection::Memory, ..c },
    },
    Variant {
        name: "alg1 + subtree info",
        cfg: |c| SolverConfig {
            slave_selection: SlaveSelection::Memory,
            use_subtree_info: true,
            ..c
        },
    },
    Variant {
        name: "alg1 + prediction",
        cfg: |c| SolverConfig {
            slave_selection: SlaveSelection::Memory,
            use_prediction: true,
            ..c
        },
    },
    Variant {
        name: "alg2 only",
        cfg: |c| SolverConfig { task_selection: TaskSelection::MemoryAware, ..c },
    },
    Variant {
        name: "full memory (paper)",
        cfg: |c| SolverConfig {
            slave_selection: SlaveSelection::Memory,
            task_selection: TaskSelection::MemoryAware,
            use_subtree_info: true,
            use_prediction: true,
            ..c
        },
    },
    Variant {
        name: "full + global alg2",
        cfg: |c| SolverConfig {
            slave_selection: SlaveSelection::Memory,
            task_selection: TaskSelection::MemoryAwareGlobal,
            use_subtree_info: true,
            use_prediction: true,
            ..c
        },
    },
    Variant {
        name: "hybrid (conclusion)",
        cfg: |c| SolverConfig {
            slave_selection: SlaveSelection::Hybrid,
            task_selection: TaskSelection::MemoryAware,
            use_subtree_info: true,
            use_prediction: true,
            ..c
        },
    },
    Variant {
        name: "mem-aware subtrees",
        cfg: |c| SolverConfig {
            slave_selection: SlaveSelection::Memory,
            task_selection: TaskSelection::MemoryAware,
            use_subtree_info: true,
            use_prediction: true,
            subtree_peak_factor: Some(1.0),
            ..c
        },
    },
];

fn main() {
    let nprocs = 32;
    for (m, k) in [
        (PaperMatrix::TwoTone, OrderingKind::Amd),
        (PaperMatrix::Ultrasound3, OrderingKind::Amf),
        (PaperMatrix::Ship003, OrderingKind::Metis),
    ] {
        println!("=== {} / {} ({nprocs} processors) ===", m.name(), k.name());
        let tree = build_tree(m, k, None);
        println!(
            "{:26} {:>10} {:>10} {:>10} {:>8}",
            "variant", "max peak", "avg peak", "makespan", "vs base"
        );
        // All variants share the cached tree and run in parallel; the
        // results vector keeps VARIANTS order, so the report (and the
        // "vs base" column, anchored on the first variant) is unchanged.
        let results: Vec<_> = VARIANTS
            .par_iter()
            .map(|v| {
                let cfg = (v.cfg)(paper_scale_config(nprocs));
                let map = compute_mapping(&tree, &cfg);
                parsim::run(&tree, &map, &cfg).unwrap_or_else(|e| panic!("{} failed: {e}", v.name))
            })
            .collect();
        let base_peak = results[0].max_peak;
        for (v, r) in VARIANTS.iter().zip(&results) {
            println!(
                "{:26} {:>10} {:>10.0} {:>10} {:>+7.1}%",
                v.name,
                r.max_peak,
                r.avg_peak,
                r.makespan,
                100.0 * (base_peak as f64 - r.max_peak as f64) / base_peak as f64,
            );
        }
        println!();
    }
}
