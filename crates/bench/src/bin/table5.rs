//! Table 5: percentage decrease of the maximum stack-memory peak when
//! both the static (splitting) and dynamic (memory-based) approaches are
//! applied, compared to the original MUMPS strategy on the unsplit tree.

use mf_bench::paper_data::PAPER_TABLE5;
use mf_bench::sweep::{render_percent_table, split_threshold_for, sweep_cell};
use mf_core::driver::percent_decrease;
use mf_order::ALL_ORDERINGS;
use mf_sparse::gen::paper::ALL_PAPER_MATRICES;

fn main() {
    let nprocs = 32;
    let thr = split_threshold_for();
    let mut rows = Vec::new();
    for m in ALL_PAPER_MATRICES.into_iter().filter(|m| m.is_unsymmetric()) {
        let mut vals = [0.0f64; 4];
        for (i, k) in ALL_ORDERINGS.into_iter().enumerate() {
            let original = sweep_cell(m, k, nprocs, None, false);
            let combined = sweep_cell(m, k, nprocs, Some(thr), false);
            vals[i] = percent_decrease(original.baseline.max_peak, combined.memory.max_peak);
            eprintln!(
                "{:12} {:5}: original {:>9} -> split+memory {:>9} = {:+.1}%",
                m.name(),
                k.name(),
                original.baseline.max_peak,
                combined.memory.max_peak,
                vals[i]
            );
        }
        rows.push((m.name(), vals));
    }
    println!(
        "{}",
        render_percent_table(
            "Table 5: % decrease of max stack peak, static splitting + dynamic memory vs original MUMPS",
            &rows,
            Some(&PAPER_TABLE5),
        )
    );
}
