//! Table 5: percentage decrease of the maximum stack-memory peak when
//! both the static (splitting) and dynamic (memory-based) approaches are
//! applied, compared to the original MUMPS strategy on the unsplit tree.

use mf_bench::paper_data::PAPER_TABLE5;
use mf_bench::sweep::{run_percent_table, split_threshold_for, CellSpec};
use mf_core::driver::percent_decrease;
use mf_order::ALL_ORDERINGS;
use mf_sparse::gen::paper::{PaperMatrix, ALL_PAPER_MATRICES};

fn main() {
    let nprocs = 32;
    let thr = split_threshold_for();
    let matrices: Vec<PaperMatrix> =
        ALL_PAPER_MATRICES.into_iter().filter(|m| m.is_unsymmetric()).collect();
    // Per (matrix, ordering): the original (unsplit) cell, then the
    // combined (split) cell.
    let specs: Vec<CellSpec> = matrices
        .iter()
        .flat_map(|&m| {
            ALL_ORDERINGS
                .into_iter()
                .flat_map(move |k| [(m, k, nprocs, None, false), (m, k, nprocs, Some(thr), false)])
        })
        .collect();
    run_percent_table(
        "Table 5: % decrease of max stack peak, static splitting + dynamic memory vs original MUMPS",
        Some(&PAPER_TABLE5),
        &matrices,
        2,
        &specs,
        |m, entry| {
            let (original, combined) = (&entry[0], &entry[1]);
            let val = percent_decrease(original.baseline.max_peak, combined.memory.max_peak);
            let log = format!(
                "{:12} {:5}: original {:>9} -> split+memory {:>9} = {:+.1}%",
                m.name(),
                original.ordering.name(),
                original.baseline.max_peak,
                combined.memory.max_peak,
                val
            );
            (val, log)
        },
    );
}
