//! Table 5: percentage decrease of the maximum stack-memory peak when
//! both the static (splitting) and dynamic (memory-based) approaches are
//! applied, compared to the original MUMPS strategy on the unsplit tree.

use mf_bench::paper_data::PAPER_TABLE5;
use mf_bench::sweep::{render_percent_table, split_threshold_for, sweep_cells, CellSpec};
use mf_core::driver::percent_decrease;
use mf_order::ALL_ORDERINGS;
use mf_sparse::gen::paper::{PaperMatrix, ALL_PAPER_MATRICES};

fn main() {
    let nprocs = 32;
    let thr = split_threshold_for();
    let matrices: Vec<PaperMatrix> =
        ALL_PAPER_MATRICES.into_iter().filter(|m| m.is_unsymmetric()).collect();
    // Per (matrix, ordering): the original (unsplit) cell, then the
    // combined (split) cell.
    let specs: Vec<CellSpec> = matrices
        .iter()
        .flat_map(|&m| {
            ALL_ORDERINGS.into_iter().flat_map(move |k| {
                [(m, k, nprocs, None, false), (m, k, nprocs, Some(thr), false)]
            })
        })
        .collect();
    let cells = sweep_cells(&specs);
    mf_bench::obs::maybe_export_cells(&cells);
    let mut rows = Vec::new();
    for (m, row) in matrices.iter().zip(cells.chunks_exact(8)) {
        let mut vals = [0.0f64; 4];
        for (i, pair) in row.chunks_exact(2).enumerate() {
            let (original, combined) = (&pair[0], &pair[1]);
            vals[i] = percent_decrease(original.baseline.max_peak, combined.memory.max_peak);
            eprintln!(
                "{:12} {:5}: original {:>9} -> split+memory {:>9} = {:+.1}%",
                m.name(),
                original.ordering.name(),
                original.baseline.max_peak,
                combined.memory.max_peak,
                vals[i]
            );
        }
        rows.push((m.name(), vals));
    }
    println!(
        "{}",
        render_percent_table(
            "Table 5: % decrease of max stack peak, static splitting + dynamic memory vs original MUMPS",
            &rows,
            Some(&PAPER_TABLE5),
        )
    );
}
