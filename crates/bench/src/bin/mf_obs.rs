//! `mf-obs` — run auditing, cross-run diffing, and telemetry timelines.
//!
//! The observability companion to the table binaries: where `explain`
//! narrates *why* a run peaked, `mf-obs` checks that runs are *correct*
//! and tells two runs apart. Three subcommands:
//!
//! ```text
//! mf-obs audit [MATRIX] [ORDERING] [--nprocs N] [--split] [--check-all]
//!              [--kill IDX:PROC]... [--join IDX:PROC]...
//! mf-obs diff backends   [MATRIX] [ORDERING] [--nprocs N]
//! mf-obs diff strategies [MATRIX] [ORDERING] [--nprocs N]
//! mf-obs diff faults     [MATRIX] [ORDERING] [--nprocs N]
//!                        [--kill IDX:PROC]... [--join IDX:PROC]...
//! mf-obs diff sweeps OLD.json NEW.json
//! mf-obs timeline [MATRIX] [ORDERING] [--nprocs N] [--every TICKS]
//!                 [--strategy baseline|memory] [--format csv|jsonl|prom]
//! ```
//!
//! * **audit** replays a cell with the flight recorder on and verifies
//!   the protocol invariants (`mf_sim::audit`): memory-account balance,
//!   compute-span pairing, activation epochs, membership fencing. Every
//!   violation prints as a typed finding naming the processor, node and
//!   area; any finding exits nonzero. `--check-all` sweeps every paper
//!   matrix under both strategies (CI runs this on both backends via
//!   `MF_BACKEND`); `--kill`/`--join` audit a recovery run under the
//!   given membership-fault schedule.
//! * **diff** compares two runs. `backends` runs the same cell on the
//!   simulator and the thread pool and reports the first divergent
//!   recorded event (the bit-identity contract means there should be
//!   none). `strategies` contrasts workload vs memory-based scheduling:
//!   first divergent event, per-processor peak deltas, and how the
//!   machine peak's composition moved. `faults` contrasts a fault-free
//!   memory-strategy run with its twin under a kill/join schedule
//!   (default: kill processor 1 at control-message 128) — the runs are
//!   identical up to the membership event, and the diff shows what the
//!   recovery machinery cost. `sweeps` diffs two
//!   `BENCH_sweep.json`-style artifacts (commit vs commit) and names
//!   every metric that moved.
//! * **timeline** runs one strategy with the telemetry sampler armed
//!   and dumps the time series to stdout as CSV, JSONL, or Prometheus
//!   text exposition.
//!
//! Default cell: TWOTONE / AMD / 32 processors, matching `explain`.

use mf_bench::obs;
use mf_bench::sweep::{
    build_tree, paper_scale_config, split_threshold_for, sweep_cell_captured, Backend, CellResult,
    DEFAULT_SAMPLE_INTERVAL,
};
use mf_core::config::{RecoveryConfig, SlaveSelection, SolverConfig, TaskSelection};
use mf_core::mapping::compute_mapping;
use mf_core::parsim::{self, RunResult};
use mf_order::{OrderingKind, ALL_ORDERINGS};
use mf_sim::{attribute_peaks, audit_recording, FaultModel, Recording};
use mf_sparse::gen::paper::{PaperMatrix, ALL_PAPER_MATRICES};

fn die(msg: &str) -> ! {
    eprintln!("mf-obs: {msg}");
    std::process::exit(2);
}

fn parse_matrix(s: &str) -> Option<PaperMatrix> {
    ALL_PAPER_MATRICES.into_iter().find(|m| m.name().eq_ignore_ascii_case(s))
}

fn parse_ordering(s: &str) -> Option<OrderingKind> {
    ALL_ORDERINGS.into_iter().find(|k| k.name().eq_ignore_ascii_case(s))
}

fn parse_fault(s: &str, flag: &str) -> (u64, usize) {
    let parsed = s.split_once(':').and_then(|(i, p)| Some((i.parse().ok()?, p.parse().ok()?)));
    parsed.unwrap_or_else(|| die(&format!("{flag} needs IDX:PROC, got {s:?}")))
}

/// Options shared by the cell-running subcommands.
struct CellArgs {
    matrix: PaperMatrix,
    ordering: OrderingKind,
    nprocs: usize,
    split: Option<u64>,
    check_all: bool,
    kills: Vec<(u64, usize)>,
    joins: Vec<(u64, usize)>,
    every: u64,
    strategy: String,
    format: String,
    rest: Vec<String>,
}

fn parse_cell_args(args: impl Iterator<Item = String>) -> CellArgs {
    let mut out = CellArgs {
        matrix: PaperMatrix::TwoTone,
        ordering: OrderingKind::Amd,
        nprocs: 32,
        split: None,
        check_all: false,
        kills: Vec::new(),
        joins: Vec::new(),
        every: DEFAULT_SAMPLE_INTERVAL,
        strategy: "memory".into(),
        format: "csv".into(),
        rest: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--nprocs" => {
                let v = args.next().and_then(|v| v.parse().ok());
                out.nprocs = v.unwrap_or_else(|| die("--nprocs needs an integer"));
            }
            "--split" => out.split = Some(split_threshold_for()),
            "--check-all" => out.check_all = true,
            "--kill" => {
                let v = args.next().unwrap_or_else(|| die("--kill needs IDX:PROC"));
                out.kills.push(parse_fault(&v, "--kill"));
            }
            "--join" => {
                let v = args.next().unwrap_or_else(|| die("--join needs IDX:PROC"));
                out.joins.push(parse_fault(&v, "--join"));
            }
            "--every" => {
                let v = args.next().and_then(|v| v.parse().ok());
                out.every = v.unwrap_or_else(|| die("--every needs a tick count"));
            }
            "--strategy" => {
                let v = args.next().unwrap_or_else(|| die("--strategy needs baseline|memory"));
                if v != "baseline" && v != "memory" {
                    die(&format!("--strategy must be baseline or memory, got {v:?}"));
                }
                out.strategy = v;
            }
            "--format" => {
                let v = args.next().unwrap_or_else(|| die("--format needs csv|jsonl|prom"));
                if !matches!(v.as_str(), "csv" | "jsonl" | "prom") {
                    die(&format!("--format must be csv, jsonl or prom, got {v:?}"));
                }
                out.format = v;
            }
            "--obs-dir" => {
                args.next(); // consumed by obs::obs_dir()
            }
            other => {
                if let Some(m) = parse_matrix(other) {
                    out.matrix = m;
                } else if let Some(k) = parse_ordering(other) {
                    out.ordering = k;
                } else {
                    out.rest.push(other.to_string());
                }
            }
        }
    }
    out
}

/// Strategy knobs for one arm of a cell, on top of a base config.
fn strategy_cfg(strategy: &str, base: &SolverConfig) -> SolverConfig {
    match strategy {
        "baseline" => SolverConfig {
            slave_selection: SlaveSelection::Workload,
            task_selection: TaskSelection::Lifo,
            use_subtree_info: false,
            use_prediction: false,
            ..base.clone()
        },
        _ => SolverConfig {
            slave_selection: SlaveSelection::Memory,
            task_selection: TaskSelection::MemoryAware,
            use_subtree_info: true,
            use_prediction: true,
            ..base.clone()
        },
    }
}

// ---------------------------------------------------------------- audit

/// Audits one run's recording; prints findings and returns their count.
fn audit_run(what: &str, nprocs: usize, r: &RunResult) -> usize {
    let rec = r.recording.as_ref().expect("audited runs carry a recording");
    let findings = audit_recording(nprocs, rec);
    if findings.is_empty() {
        println!("{what}: {} events, 0 findings", rec.len());
    } else {
        println!("{what}: {} events, {} FINDING(S)", rec.len(), findings.len());
        for f in &findings {
            println!("  finding: {f}");
        }
    }
    findings.len()
}

fn audit_cell(c: &CellResult) -> usize {
    let label = obs::cell_label(c);
    let nprocs = c.baseline.peaks.len();
    audit_run(&format!("{label} workload"), nprocs, &c.baseline)
        + audit_run(&format!("{label} memory"), nprocs, &c.memory)
}

/// Audits a recovery run: the memory-based strategy under the given
/// membership-fault schedule, recovery layer armed, recorder on.
fn audit_recovery(a: &CellArgs) -> usize {
    let tree = build_tree(a.matrix, a.ordering, a.split);
    let cfg = SolverConfig {
        recovery: Some(RecoveryConfig::default()),
        fault: Some(FaultModel {
            kill_at: a.kills.clone(),
            join_at: a.joins.clone(),
            ..FaultModel::quiet(7)
        }),
        record_events: true,
        ..strategy_cfg("memory", &paper_scale_config(a.nprocs))
    };
    let map = compute_mapping(&tree, &cfg);
    let r = parsim::run(&tree, &map, &cfg)
        .unwrap_or_else(|e| die(&format!("recovery run failed: {e}")));
    println!("recovery run (kills {:?}, joins {:?}): {}", a.kills, a.joins, r.summary_line());
    audit_run(&format!("{} memory+recovery", a.matrix.name().to_lowercase()), a.nprocs, &r)
}

fn cmd_audit(a: &CellArgs) {
    let mut findings = 0usize;
    if !a.kills.is_empty() || !a.joins.is_empty() {
        findings += audit_recovery(a);
    } else if a.check_all {
        for m in ALL_PAPER_MATRICES {
            let c = sweep_cell_captured(m, a.ordering, a.nprocs, a.split);
            findings += audit_cell(&c);
        }
    } else {
        let c = sweep_cell_captured(a.matrix, a.ordering, a.nprocs, a.split);
        findings += audit_cell(&c);
    }
    if findings > 0 {
        eprintln!("mf-obs audit: {findings} finding(s)");
        std::process::exit(1);
    }
    println!("audit: every invariant holds");
}

// ----------------------------------------------------------------- diff

/// First index at which two recordings disagree, with a rendering of
/// both sides; `None` when one is a prefix of the other of equal length.
fn first_divergence(a: &Recording, b: &Recording) -> Option<(usize, String, String)> {
    let mut ia = a.events();
    let mut ib = b.events();
    let mut i = 0usize;
    loop {
        match (ia.next(), ib.next()) {
            (None, None) => return None,
            (Some(x), Some(y)) => {
                if x != y {
                    return Some((
                        i,
                        format!("t={} {:?}", x.at, x.ev.to_owned()),
                        format!("t={} {:?}", y.at, y.ev.to_owned()),
                    ));
                }
            }
            (Some(x), None) => {
                return Some((i, format!("t={} {:?}", x.at, x.ev.to_owned()), "<end>".into()))
            }
            (None, Some(y)) => {
                return Some((i, "<end>".into(), format!("t={} {:?}", y.at, y.ev.to_owned())))
            }
        }
        i += 1;
    }
}

fn print_metric_deltas(aname: &str, bname: &str, a: &RunResult, b: &RunResult) {
    println!("{:>24} {:>14} {:>14} {:>10}", "metric", aname, bname, "delta%");
    let rows: [(&str, u64, u64); 6] = [
        ("max_peak", a.max_peak, b.max_peak),
        ("makespan", a.makespan, b.makespan),
        ("messages", a.messages, b.messages),
        ("status_msgs", a.metrics.status_msgs, b.metrics.status_msgs),
        ("forced_activations", a.forced_activations, b.forced_activations),
        ("reselect_rounds", a.metrics.reselect_rounds, b.metrics.reselect_rounds),
    ];
    for (name, x, y) in rows {
        let pct = if x == 0 { 0.0 } else { 100.0 * (y as f64 - x as f64) / x as f64 };
        println!("{name:>24} {x:>14} {y:>14} {pct:>+10.1}");
    }
}

/// How the machine peak's composition moved between two runs.
fn print_peak_composition_diff(a: &RunResult, b: &RunResult) {
    let (ra, rb) = (a.recording.as_ref().unwrap(), b.recording.as_ref().unwrap());
    let aa = attribute_peaks(a.peaks.len(), ra);
    let ab = attribute_peaks(b.peaks.len(), rb);
    let wa = aa.iter().max_by_key(|x| x.peak).expect("procs");
    let wb = ab.iter().max_by_key(|x| x.peak).expect("procs");
    println!(
        "machine peak: proc {} ({} entries at t={}) -> proc {} ({} entries at t={})",
        wa.proc, wa.peak, wa.at, wb.proc, wb.peak, wb.at
    );
    for (side, w) in [("a", wa), ("b", wb)] {
        let mut comp: Vec<_> = w.composition.iter().collect();
        comp.sort_by_key(|it| std::cmp::Reverse(it.entries));
        let head: Vec<String> = comp
            .iter()
            .take(5)
            .map(|it| format!("n{}/{}:{}", it.node, it.area.name(), it.entries))
            .collect();
        println!("  peak composition ({side}): {}", head.join("  "));
    }
}

fn cmd_diff_backends(a: &CellArgs) {
    let tree = build_tree(a.matrix, a.ordering, a.split);
    let base =
        SolverConfig { record_events: true, event_capacity: None, ..paper_scale_config(a.nprocs) };
    println!(
        "diff backends: {} / {} on {} processors (sim vs threads)",
        a.matrix.name(),
        a.ordering.name(),
        a.nprocs
    );
    let mut diverged = false;
    for strategy in ["baseline", "memory"] {
        let cfg = strategy_cfg(strategy, &base);
        let map = compute_mapping(&tree, &cfg);
        let sim = Backend::Sim.run(&tree, &map, &cfg);
        let thr = Backend::Threads.run(&tree, &map, &cfg);
        let (rs, rt) = (sim.recording.as_ref().unwrap(), thr.recording.as_ref().unwrap());
        match first_divergence(rs, rt) {
            None => println!(
                "{strategy}: identical — {} events, peaks and makespan agree bit-exactly",
                rs.len()
            ),
            Some((i, x, y)) => {
                diverged = true;
                println!("{strategy}: DIVERGED at event {i}");
                println!("  sim:     {x}");
                println!("  threads: {y}");
                print_metric_deltas("sim", "threads", &sim, &thr);
            }
        }
    }
    if !diverged {
        println!("backends agree: the sans-io core is driven bit-identically");
    }
}

fn cmd_diff_strategies(a: &CellArgs) {
    println!(
        "diff strategies: {} / {} on {} processors (workload vs memory)",
        a.matrix.name(),
        a.ordering.name(),
        a.nprocs
    );
    let c = sweep_cell_captured(a.matrix, a.ordering, a.nprocs, a.split);
    let (ra, rb) = (c.baseline.recording.as_ref().unwrap(), c.memory.recording.as_ref().unwrap());
    match first_divergence(ra, rb) {
        None => println!("schedules identical ({} events)", ra.len()),
        Some((i, x, y)) => {
            println!("first divergent event: #{i}");
            println!("  workload: {x}");
            println!("  memory:   {y}");
        }
    }
    print_metric_deltas("workload", "memory", &c.baseline, &c.memory);
    print_peak_composition_diff(&c.baseline, &c.memory);
    println!("peak gain {:.1}%, time loss {:.1}%", c.gain_percent(), c.time_loss_percent());
}

/// Fault-free memory-strategy run vs its twin under a membership-fault
/// schedule: same tree, same mapping, recorder on in both. The streams
/// agree bit-exactly up to the first membership event; everything after
/// is what surviving the fault cost.
fn cmd_diff_faults(a: &CellArgs) {
    let (kills, joins) = if a.kills.is_empty() && a.joins.is_empty() {
        (vec![(128, 1)], Vec::new())
    } else {
        (a.kills.clone(), a.joins.clone())
    };
    println!(
        "diff faults: {} / {} on {} processors (fault-free vs kills {:?}, joins {:?})",
        a.matrix.name(),
        a.ordering.name(),
        a.nprocs,
        kills,
        joins
    );
    let tree = build_tree(a.matrix, a.ordering, a.split);
    let base = SolverConfig {
        record_events: true,
        event_capacity: None,
        ..strategy_cfg("memory", &paper_scale_config(a.nprocs))
    };
    let fault_cfg = SolverConfig {
        recovery: Some(RecoveryConfig::default()),
        fault: Some(FaultModel { kill_at: kills, join_at: joins, ..FaultModel::quiet(7) }),
        ..base.clone()
    };
    let map = compute_mapping(&tree, &base);
    let run = |cfg: &SolverConfig| {
        parsim::run(&tree, &map, cfg).unwrap_or_else(|e| die(&format!("run failed: {e}")))
    };
    let clean = run(&base);
    let faulty = run(&fault_cfg);
    for (what, r) in [("fault-free", &clean), ("faulted", &faulty)] {
        let n = audit_run(what, a.nprocs, r);
        if n > 0 {
            eprintln!("mf-obs diff faults: {what} run has {n} finding(s)");
            std::process::exit(1);
        }
    }
    let (ra, rb) = (clean.recording.as_ref().unwrap(), faulty.recording.as_ref().unwrap());
    match first_divergence(ra, rb) {
        None => println!("schedules identical ({} events) — the fault never fired", ra.len()),
        Some((i, x, y)) => {
            println!("first divergent event: #{i} (of {} / {})", ra.len(), rb.len());
            println!("  fault-free: {x}");
            println!("  faulted:    {y}");
        }
    }
    print_metric_deltas("fault-free", "faulted", &clean, &faulty);
    print_peak_composition_diff(&clean, &faulty);
    println!("dead at exit: {:?}", faulty.dead);
    println!("{}", faulty.metrics.recovery.summary());
}

fn cmd_diff_sweeps(old_path: &str, new_path: &str) {
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| die(&format!("cannot read {p}: {e}")))
    };
    let (old_text, new_text) = (read(old_path), read(new_path));
    for (p, t) in [(old_path, &old_text), (new_path, &new_text)] {
        if let Err(e) = obs::validate_json(t) {
            die(&format!("{p} is not well-formed JSON: {e}"));
        }
    }
    let old_nums = obs::json_numbers(&old_text);
    let new_nums = obs::json_numbers(&new_text);
    let old_map: std::collections::HashMap<&str, f64> =
        old_nums.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let new_keys: std::collections::HashSet<&str> =
        new_nums.iter().map(|(k, _)| k.as_str()).collect();

    println!("diff sweeps: {old_path} -> {new_path}");
    let mut moved: Vec<(&str, f64, f64, f64)> = new_nums
        .iter()
        .filter_map(|(k, nv)| {
            let ov = *old_map.get(k.as_str())?;
            if ov == *nv {
                return None;
            }
            let pct = if ov == 0.0 { f64::INFINITY } else { 100.0 * (nv - ov) / ov.abs() };
            Some((k.as_str(), ov, *nv, pct))
        })
        .collect();
    moved.sort_by(|x, y| y.3.abs().total_cmp(&x.3.abs()));
    if moved.is_empty() {
        println!("no shared metric moved");
    }
    for (k, ov, nv, pct) in &moved {
        println!("  {k}: {ov} -> {nv} ({pct:+.1}%)");
    }
    for (k, _) in &old_nums {
        if !new_keys.contains(k.as_str()) {
            println!("  {k}: removed");
        }
    }
    for (k, v) in &new_nums {
        if !old_map.contains_key(k.as_str()) {
            println!("  {k}: added ({v})");
        }
    }
}

// ------------------------------------------------------------- timeline

fn cmd_timeline(a: &CellArgs) {
    let tree = build_tree(a.matrix, a.ordering, a.split);
    let cfg = SolverConfig {
        sample_every: Some(a.every),
        ..strategy_cfg(&a.strategy, &paper_scale_config(a.nprocs))
    };
    let map = compute_mapping(&tree, &cfg);
    let r = Backend::from_env().run(&tree, &map, &cfg);
    let ts = r.timeseries.as_ref().expect("sampled run carries a time series");
    eprintln!(
        "timeline: {} / {} / {} on {} processors, interval {} ticks, {} samples",
        a.matrix.name(),
        a.ordering.name(),
        a.strategy,
        a.nprocs,
        a.every,
        ts.total_len()
    );
    let mut out = std::io::stdout().lock();
    let res = match a.format.as_str() {
        "jsonl" => ts.write_jsonl(&mut out),
        "prom" => ts.write_prometheus(&mut out),
        _ => ts.write_csv(&mut out),
    };
    res.unwrap_or_else(|e| die(&format!("writing timeline: {e}")));
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| die("usage: mf-obs <audit|diff|timeline> ..."));
    match cmd.as_str() {
        "audit" => cmd_audit(&parse_cell_args(args)),
        "diff" => {
            let mode = args.next().unwrap_or_else(|| {
                die("usage: mf-obs diff <backends|strategies|faults|sweeps> ...")
            });
            match mode.as_str() {
                "backends" => cmd_diff_backends(&parse_cell_args(args)),
                "strategies" => cmd_diff_strategies(&parse_cell_args(args)),
                "faults" => cmd_diff_faults(&parse_cell_args(args)),
                "sweeps" => {
                    let a = parse_cell_args(args);
                    match a.rest.as_slice() {
                        [old, new] => cmd_diff_sweeps(old, new),
                        _ => die("usage: mf-obs diff sweeps OLD.json NEW.json"),
                    }
                }
                other => die(&format!("unknown diff mode {other:?}")),
            }
        }
        "timeline" => cmd_timeline(&parse_cell_args(args)),
        other => die(&format!("unknown subcommand {other:?}; try audit, diff or timeline")),
    }
}
