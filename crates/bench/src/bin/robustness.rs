//! Robustness sweep: perturbation intensity × scheduling strategy.
//!
//! For each (matrix, ordering) pair and each strategy, runs the simulated
//! factorization under a ladder of fault intensities (latency jitter,
//! bounded extra delay/reordering, status-message drops, stragglers —
//! see `mf_sim::FaultModel`), several seeds per intensity, and reports
//! how the schedule degrades: makespan and peak ratios versus the
//! unperturbed run, messages dropped, and whether every run completed
//! (it must — that is the robustness claim).
//!
//! A second section exercises the hard per-processor memory cap: with
//! `capacity` set to 1.2× the uncapped peak, every strategy must finish
//! without any processor exceeding the cap.
//!
//! A third section is the membership degradation curve: 0, 1, 2 and 4
//! processors killed mid-run (plus one kill+join scenario), each run
//! recovering through the lease protocol and subtree re-execution. The
//! factor digest must equal the fault-free run's on every cell, and the
//! rows carry the recovery counters (subtrees reassigned, nodes
//! recomputed, rebalance migrations, orphaned CB entries reclaimed).
//!
//! Writes `BENCH_robustness.json` and prints it.

use std::fmt::Write as _;

use mf_bench::sweep::{build_tree, paper_scale_config};
use mf_core::config::{RecoveryConfig, SlaveSelection, SolverConfig, TaskSelection};
use mf_core::mapping::compute_mapping;
use mf_core::parsim::{self, RunResult};
use mf_order::OrderingKind;
use mf_sim::FaultModel;
use mf_sparse::gen::paper::{PaperMatrix, ALL_PAPER_MATRICES};
use rayon::prelude::*;

const NPROCS: usize = 32;
const INTENSITIES: [f64; 5] = [0.0, 0.5, 1.0, 2.0, 3.0];
const SEEDS: [u64; 3] = [11, 23, 47];

struct Strategy {
    name: &'static str,
    cfg: fn() -> SolverConfig,
}

const STRATEGIES: [Strategy; 3] = [
    Strategy { name: "workload", cfg: workload_cfg },
    Strategy { name: "memory", cfg: memory_cfg },
    Strategy { name: "memory+improvements", cfg: improved_cfg },
];

fn workload_cfg() -> SolverConfig {
    SolverConfig {
        slave_selection: SlaveSelection::Workload,
        task_selection: TaskSelection::Lifo,
        use_subtree_info: false,
        use_prediction: false,
        ..paper_scale_config(NPROCS)
    }
}

fn memory_cfg() -> SolverConfig {
    SolverConfig {
        slave_selection: SlaveSelection::Memory,
        task_selection: TaskSelection::MemoryAware,
        use_subtree_info: false,
        use_prediction: false,
        ..paper_scale_config(NPROCS)
    }
}

fn improved_cfg() -> SolverConfig {
    SolverConfig {
        slave_selection: SlaveSelection::Memory,
        task_selection: TaskSelection::MemoryAwareGlobal,
        use_subtree_info: true,
        use_prediction: true,
        ..paper_scale_config(NPROCS)
    }
}

struct PerturbRow {
    matrix: PaperMatrix,
    strategy: &'static str,
    level: f64,
    seeds: usize,
    makespan_ratio_max: f64,
    peak_ratio_max: f64,
    dropped_total: u64,
    underflow_total: u64,
    forced_total: u64,
}

struct CapRow {
    matrix: PaperMatrix,
    strategy: &'static str,
    capacity: u64,
    uncapped_peak: u64,
    capped_peak: u64,
    makespan_ratio: f64,
    forced_activations: u64,
    serialized_fronts: u64,
    deferrals: u64,
    stalled_ticks: u64,
    underflow_total: u64,
}

struct MembershipRow {
    matrix: PaperMatrix,
    strategy: &'static str,
    scenario: &'static str,
    kills: u64,
    joins: u64,
    makespan_ratio: f64,
    peak_ratio_max: f64,
    subtrees_reassigned: u64,
    nodes_recomputed: u64,
    rebalance_migrations: u64,
    orphaned_cb_entries: u64,
}

fn run_ok(
    tree: &mf_symbolic::AssemblyTree,
    map: &mf_core::mapping::StaticMapping,
    cfg: &SolverConfig,
    what: &str,
) -> RunResult {
    let r = parsim::run(tree, map, cfg)
        .unwrap_or_else(|e| panic!("{what} failed: {e} [{}]", e.diagnostics().summary_line()));
    assert_eq!(r.nodes_done, r.total_nodes, "{what}: fronts lost");
    assert!(r.final_active.iter().all(|&a| a == 0), "{what}: stack leaked");
    r
}

/// Like [`run_ok`], but tolerating fail-stopped processors: a dead
/// processor's stack is frozen at kill time; only survivors must drain
/// to zero.
fn run_recovered(
    tree: &mf_symbolic::AssemblyTree,
    map: &mf_core::mapping::StaticMapping,
    cfg: &SolverConfig,
    what: &str,
) -> RunResult {
    let r = parsim::run(tree, map, cfg)
        .unwrap_or_else(|e| panic!("{what} failed: {e} [{}]", e.diagnostics().summary_line()));
    assert_eq!(r.nodes_done, r.total_nodes, "{what}: fronts lost");
    for (p, &a) in r.final_active.iter().enumerate() {
        if !r.dead.contains(&p) {
            assert_eq!(a, 0, "{what}: survivor {p} leaked {a} entries");
        }
    }
    r
}

fn main() {
    let pairs =
        [(PaperMatrix::TwoTone, OrderingKind::Amd), (PaperMatrix::Ship003, OrderingKind::Metis)];

    let mut perturb_rows: Vec<PerturbRow> = Vec::new();
    let mut cap_rows: Vec<CapRow> = Vec::new();

    for (m, k) in pairs {
        let tree = build_tree(m, k, None);
        for s in &STRATEGIES {
            let cfg0 = (s.cfg)();
            let map = compute_mapping(&tree, &cfg0);
            let plain = run_ok(&tree, &map, &cfg0, "unperturbed run");
            eprintln!("{:10} / {:20} unperturbed: {}", m.name(), s.name, plain.summary_line());

            for level in INTENSITIES {
                // All seeds of a level are independent: fan them out.
                let runs: Vec<RunResult> = SEEDS
                    .par_iter()
                    .map(|&seed| {
                        let cfg = SolverConfig {
                            fault: Some(FaultModel::intensity(seed, level)),
                            ..cfg0.clone()
                        };
                        run_ok(&tree, &map, &cfg, "perturbed run")
                    })
                    .collect();
                if level == 0.0 {
                    // Intensity zero is the bit-identical guarantee.
                    for r in &runs {
                        assert_eq!(r.peaks, plain.peaks, "quiet fault model changed peaks");
                        assert_eq!(r.makespan, plain.makespan, "quiet fault model moved time");
                        assert_eq!(r.dropped_messages, 0);
                    }
                }
                let ratio = |v: u64, base: u64| v as f64 / base.max(1) as f64;
                perturb_rows.push(PerturbRow {
                    matrix: m,
                    strategy: s.name,
                    level,
                    seeds: SEEDS.len(),
                    makespan_ratio_max: runs
                        .iter()
                        .map(|r| ratio(r.makespan, plain.makespan))
                        .fold(0.0, f64::max),
                    peak_ratio_max: runs
                        .iter()
                        .map(|r| ratio(r.max_peak, plain.max_peak))
                        .fold(0.0, f64::max),
                    dropped_total: runs.iter().map(|r| r.dropped_messages).sum(),
                    underflow_total: runs.iter().map(|r| r.underflows.iter().sum::<u64>()).sum(),
                    forced_total: runs.iter().map(|r| r.forced_activations).sum(),
                });
            }
            let last = perturb_rows.last().unwrap();
            eprintln!(
                "{:10} / {:20} perturbation ladder done \
                 (top level: {} dropped, {} forced, {} underflows)",
                m.name(),
                s.name,
                last.dropped_total,
                last.forced_total,
                last.underflow_total
            );
        }
    }

    // Hard caps at 1.2x the uncapped peak, on EVERY test matrix and
    // strategy: graceful degradation must hold across the whole suite,
    // not just the two sweep cells.
    for m in ALL_PAPER_MATRICES {
        let tree = build_tree(m, OrderingKind::Metis, None);
        for s in &STRATEGIES {
            let cfg0 = (s.cfg)();
            let map = compute_mapping(&tree, &cfg0);
            let plain = run_ok(&tree, &map, &cfg0, "unperturbed run");
            let cap = plain.max_peak + plain.max_peak / 5;
            let capped_cfg = SolverConfig { capacity: Some(cap), ..cfg0.clone() };
            let capped = run_ok(&tree, &map, &capped_cfg, "capped run");
            assert!(
                capped.peaks.iter().all(|&pk| pk <= cap),
                "{} / {}: capped peaks {:?} exceed {}",
                m.name(),
                s.name,
                capped.peaks,
                cap
            );
            let mm = &capped.metrics;
            cap_rows.push(CapRow {
                matrix: m,
                strategy: s.name,
                capacity: cap,
                uncapped_peak: plain.max_peak,
                capped_peak: capped.max_peak,
                makespan_ratio: capped.makespan as f64 / plain.makespan.max(1) as f64,
                forced_activations: capped.forced_activations,
                serialized_fronts: mm.serialized_fronts,
                deferrals: mm.procs.iter().map(|p| p.deferrals).sum(),
                stalled_ticks: mm.procs.iter().map(|p| p.stalled_ticks).sum(),
                underflow_total: capped.underflows.iter().sum(),
            });
            let row = cap_rows.last().unwrap();
            eprintln!(
                "{:10} / {:20} cap {} held \
                 ({} deferrals, {} serialized, {} forced, {} stalled ticks, {} underflows)",
                m.name(),
                s.name,
                cap,
                row.deferrals,
                row.serialized_fronts,
                row.forced_activations,
                row.stalled_ticks,
                row.underflow_total
            );
        }
    }

    // Membership degradation curve on the two sweep matrices: processors
    // killed mid-run (plus one kill+join scenario), recovered through
    // the lease protocol and capacity-aware subtree re-execution. Every
    // cell must reproduce the fault-free factor digest; the curve is how
    // makespan and survivor peak degrade with the number of losses.
    let mut membership_rows: Vec<MembershipRow> = Vec::new();
    type FaultSchedule = &'static [(u64, usize)];
    let scenarios: [(&'static str, FaultSchedule, FaultSchedule); 5] = [
        ("0 kills (armed detector)", &[], &[]),
        ("1 kill", &[(1_000, 3)], &[]),
        ("2 kills", &[(1_000, 3), (2_500, 11)], &[]),
        ("4 kills", &[(1_000, 3), (2_500, 11), (4_000, 19), (5_500, 27)], &[]),
        ("1 kill + 1 join", &[(1_000, 3)], &[(3_000, 31)]),
    ];
    for (m, k) in pairs {
        let tree = build_tree(m, k, None);
        for s in &STRATEGIES {
            let cfg0 = (s.cfg)();
            let map = compute_mapping(&tree, &cfg0);
            let plain = run_ok(&tree, &map, &cfg0, "fault-free run");
            let idx: Vec<usize> = (0..scenarios.len()).collect();
            let rows: Vec<(usize, RunResult)> = idx
                .par_iter()
                .map(|&i| {
                    let (name, kills, joins) = scenarios[i];
                    let cfg = SolverConfig {
                        recovery: Some(RecoveryConfig::default()),
                        fault: Some(FaultModel {
                            kill_at: kills.to_vec(),
                            join_at: joins.to_vec(),
                            ..FaultModel::quiet(7)
                        }),
                        ..cfg0.clone()
                    };
                    (i, run_recovered(&tree, &map, &cfg, name))
                })
                .collect();
            for (i, r) in rows {
                let (name, kills, joins) = scenarios[i];
                assert_eq!(
                    r.factor_digest,
                    plain.factor_digest,
                    "{} / {} / {name}: recovered factors diverged",
                    m.name(),
                    s.name
                );
                if kills.is_empty() && joins.is_empty() {
                    // The armed-but-idle detector must not perturb the
                    // schedule at all: bit-identical to the plain run.
                    assert_eq!(r.peaks, plain.peaks, "armed detector changed peaks");
                    assert_eq!(r.makespan, plain.makespan, "armed detector moved time");
                }
                let survivor_peak = r
                    .peaks
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| !r.dead.contains(p))
                    .map(|(_, &pk)| pk)
                    .max()
                    .unwrap_or(0);
                let rec = r.metrics.recovery;
                eprintln!(
                    "{:10} / {:20} {:24} makespan x{:.3}, survivor peak x{:.3}, \
                     {} reassigned, {} recomputed, {} migrated, {} CB entries reclaimed",
                    m.name(),
                    s.name,
                    name,
                    r.makespan as f64 / plain.makespan.max(1) as f64,
                    survivor_peak as f64 / plain.max_peak.max(1) as f64,
                    rec.subtrees_reassigned,
                    rec.nodes_recomputed,
                    rec.rebalance_migrations,
                    rec.orphaned_cb_entries
                );
                membership_rows.push(MembershipRow {
                    matrix: m,
                    strategy: s.name,
                    scenario: name,
                    kills: rec.kills_observed,
                    joins: rec.joins_observed,
                    makespan_ratio: r.makespan as f64 / plain.makespan.max(1) as f64,
                    peak_ratio_max: survivor_peak as f64 / plain.max_peak.max(1) as f64,
                    subtrees_reassigned: rec.subtrees_reassigned,
                    nodes_recomputed: rec.nodes_recomputed,
                    rebalance_migrations: rec.rebalance_migrations,
                    orphaned_cb_entries: rec.orphaned_cb_entries,
                });
            }
        }
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"generated_by\": \"cargo run --release -p mf-bench --bin robustness\",")
        .unwrap();
    writeln!(json, "  \"nprocs\": {NPROCS},").unwrap();
    writeln!(json, "  \"seeds_per_level\": {},", SEEDS.len()).unwrap();
    writeln!(json, "  \"perturbation\": [").unwrap();
    for (i, r) in perturb_rows.iter().enumerate() {
        let sep = if i + 1 == perturb_rows.len() { "" } else { "," };
        writeln!(
            json,
            "    {{ \"matrix\": \"{}\", \"strategy\": \"{}\", \"intensity\": {:.1}, \
             \"seeds\": {}, \"completed\": true, \"makespan_ratio_max\": {:.3}, \
             \"peak_ratio_max\": {:.3}, \"dropped_messages\": {}, \
             \"forced_activations\": {}, \"underflows\": {} }}{sep}",
            r.matrix.name(),
            r.strategy,
            r.level,
            r.seeds,
            r.makespan_ratio_max,
            r.peak_ratio_max,
            r.dropped_total,
            r.forced_total,
            r.underflow_total
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"capacity\": [").unwrap();
    for (i, r) in cap_rows.iter().enumerate() {
        let sep = if i + 1 == cap_rows.len() { "" } else { "," };
        writeln!(
            json,
            "    {{ \"matrix\": \"{}\", \"strategy\": \"{}\", \"capacity\": {}, \
             \"uncapped_peak\": {}, \"capped_peak\": {}, \"within_cap\": true, \
             \"makespan_ratio\": {:.3}, \"forced_activations\": {}, \
             \"serialized_fronts\": {}, \"deferrals\": {}, \"stalled_ticks\": {}, \
             \"underflows\": {} }}{sep}",
            r.matrix.name(),
            r.strategy,
            r.capacity,
            r.uncapped_peak,
            r.capped_peak,
            r.makespan_ratio,
            r.forced_activations,
            r.serialized_fronts,
            r.deferrals,
            r.stalled_ticks,
            r.underflow_total
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"membership\": [").unwrap();
    for (i, r) in membership_rows.iter().enumerate() {
        let sep = if i + 1 == membership_rows.len() { "" } else { "," };
        writeln!(
            json,
            "    {{ \"matrix\": \"{}\", \"strategy\": \"{}\", \"scenario\": \"{}\", \
             \"kills\": {}, \"joins\": {}, \"completed\": true, \"digest_identical\": true, \
             \"makespan_ratio\": {:.3}, \"peak_ratio_max\": {:.3}, \
             \"subtrees_reassigned\": {}, \"nodes_recomputed\": {}, \
             \"rebalance_migrations\": {}, \"orphaned_cb_entries\": {} }}{sep}",
            r.matrix.name(),
            r.strategy,
            r.scenario,
            r.kills,
            r.joins,
            r.makespan_ratio,
            r.peak_ratio_max,
            r.subtrees_reassigned,
            r.nodes_recomputed,
            r.rebalance_migrations,
            r.orphaned_cb_entries
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    mf_bench::obs::validate_json(&json).expect("BENCH_robustness.json must be well-formed");
    std::fs::write("BENCH_robustness.json", &json).expect("write BENCH_robustness.json");
    print!("{json}");
}
