//! `explain` — peak-attribution reports from the flight recorder.
//!
//! Answers the question the tables cannot: *why* did a run peak where it
//! did? For one experiment cell the binary re-runs both strategies with
//! the flight recorder on, replays each recording, and prints:
//!
//! * the exact peak instant and live-front **composition** of every
//!   processor's active-memory peak (entries per front/stack item, which
//!   must — and is asserted to — sum bit-exactly to the solver's
//!   `active_peak`);
//! * the **decision chain** leading into the machine-wide peak: the last
//!   scheduling decisions touching the peak processor, contrasting what
//!   the deciding master *believed* (the recorded metric vector, view
//!   ages) with the ground truth replayed from the same recording;
//! * a **strategy diff**: where the baseline and the memory-based
//!   schedules put their peaks, and which decisions moved.
//!
//! Usage:
//!
//! ```text
//! explain [MATRIX] [ORDERING] [--nprocs N] [--split] [--obs-dir DIR] [--check-all]
//!         [--cores] [--kill IDX:PROC]... [--join IDX:PROC]...
//! ```
//!
//! Defaults: TWOTONE, AMD, 32 processors, no splitting. `--check-all`
//! replaces the report with the acceptance sweep: every paper matrix is
//! run with the recorder on and the composition-sums-to-peak invariant is
//! asserted for every processor under both strategies (CI runs this).
//! With `--obs-dir` (or `MF_OBS_DIR`), the cell's Perfetto traces and
//! run summary are exported too.
//!
//! `--kill`/`--join` replace the report with a **recovery replay**: the
//! cell is run with the recorder on under the given membership-fault
//! schedule (kill/join processor `PROC` at delivered-event index `IDX`)
//! and the recording is narrated end-to-end — every processor loss, the
//! subtree reassignment chain (which orphaned root went to which
//! adopter), every join with its rebalancing migrations — followed by
//! the recovery counters and the factor-digest comparison against the
//! fault-free run.
//!
//! `--cores` replaces the report with a **core-allocation timeline**:
//! the cell is re-run under `CoreAlloc::Malleable` with the recorder on
//! and every `CoreGrant` decision is replayed against the granted
//! front's assembly-tree depth — making the malleable trade visible
//! (leaf storms run one core per front; the root chain collects the
//! pool) — followed by the makespan comparison against the static run.

use mf_bench::obs;
use mf_bench::sweep::{
    build_tree, paper_scale_config, split_threshold_for, sweep_cell_captured, CellResult,
};
use mf_core::config::{RecoveryConfig, SlaveSelection, SolverConfig, TaskSelection};
use mf_core::CoreAlloc;
use mf_core::mapping::compute_mapping;
use mf_core::parsim::{self, RunResult};
use mf_order::{OrderingKind, ALL_ORDERINGS};
use mf_sim::recorder::{EventRef, SchedEvent};
use mf_sim::{active_before, attribute_peaks, FaultModel, PeakAttribution, Recording};
use mf_sparse::gen::paper::{PaperMatrix, ALL_PAPER_MATRICES};

fn parse_matrix(s: &str) -> Option<PaperMatrix> {
    ALL_PAPER_MATRICES.into_iter().find(|m| m.name().eq_ignore_ascii_case(s))
}

fn parse_ordering(s: &str) -> Option<OrderingKind> {
    ALL_ORDERINGS.into_iter().find(|k| k.name().eq_ignore_ascii_case(s))
}

struct Args {
    matrix: PaperMatrix,
    ordering: OrderingKind,
    nprocs: usize,
    split: Option<u64>,
    check_all: bool,
    cores: bool,
    kills: Vec<(u64, usize)>,
    joins: Vec<(u64, usize)>,
}

/// Parses an `IDX:PROC` membership-fault operand.
fn parse_fault(s: &str, flag: &str) -> (u64, usize) {
    let parsed = s.split_once(':').and_then(|(i, p)| Some((i.parse().ok()?, p.parse().ok()?)));
    parsed.unwrap_or_else(|| die(&format!("{flag} needs IDX:PROC, got {s:?}")))
}

fn parse_args() -> Args {
    let mut out = Args {
        matrix: PaperMatrix::TwoTone,
        ordering: OrderingKind::Amd,
        nprocs: 32,
        split: None,
        check_all: false,
        cores: false,
        kills: Vec::new(),
        joins: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--nprocs" => {
                let v = args.next().and_then(|v| v.parse().ok());
                out.nprocs = v.unwrap_or_else(|| die("--nprocs needs an integer"));
            }
            "--split" => out.split = Some(split_threshold_for()),
            "--check-all" => out.check_all = true,
            "--cores" => out.cores = true,
            "--kill" => {
                let v = args.next().unwrap_or_else(|| die("--kill needs IDX:PROC"));
                out.kills.push(parse_fault(&v, "--kill"));
            }
            "--join" => {
                let v = args.next().unwrap_or_else(|| die("--join needs IDX:PROC"));
                out.joins.push(parse_fault(&v, "--join"));
            }
            "--obs-dir" => {
                args.next(); // consumed by obs::obs_dir()
            }
            other => {
                if let Some(m) = parse_matrix(other) {
                    out.matrix = m;
                } else if let Some(k) = parse_ordering(other) {
                    out.ordering = k;
                } else {
                    die(&format!(
                        "unknown argument {other:?}; matrices: {}; orderings: {}",
                        ALL_PAPER_MATRICES.map(|m| m.name()).join(", "),
                        ALL_ORDERINGS.map(|k| k.name()).join(", ")
                    ));
                }
            }
        }
    }
    out
}

fn die(msg: &str) -> ! {
    eprintln!("explain: {msg}");
    std::process::exit(2);
}

/// Asserts the report's central invariant for one run: the replayed
/// composition of every processor's peak sums bit-exactly to the
/// solver's own `active_peak`. Returns the attributions.
fn checked_attribution(r: &RunResult) -> Vec<PeakAttribution> {
    let rec = r.recording.as_ref().expect("captured run carries a recording");
    assert_eq!(rec.dropped(), 0, "peak attribution needs an uncapped recording");
    let att = attribute_peaks(r.peaks.len(), rec);
    for (p, a) in att.iter().enumerate() {
        let sum: u64 = a.composition.iter().map(|it| it.entries).sum();
        assert_eq!(sum, a.peak, "proc {p}: composition must sum to the replayed peak");
        assert_eq!(
            a.peak, r.peaks[p],
            "proc {p}: replayed peak must equal the solver's active_peak"
        );
    }
    att
}

/// Stream index of the event that first set processor `p`'s peak.
fn peak_event_index(rec: &Recording, p: usize) -> Option<usize> {
    let mut active = 0u64;
    let mut peak = 0u64;
    let mut idx = None;
    for (i, te) in rec.events().enumerate() {
        match te.ev {
            EventRef::MemAlloc { proc, entries, .. } if proc == p => {
                active += entries;
                if active > peak {
                    peak = active;
                    idx = Some(i);
                }
            }
            EventRef::MemFree { proc, entries, .. } if proc == p => {
                active = active.saturating_sub(entries);
            }
            _ => {}
        }
    }
    idx
}

/// Is this a scheduling *decision* involving processor `p`?
fn involves(e: EventRef<'_>, p: usize) -> bool {
    match e {
        EventRef::Activate { proc, .. }
        | EventRef::PoolDecision { proc, .. }
        | EventRef::Forced { proc, .. } => proc == p,
        EventRef::SlaveSelection { master, picked, .. } => {
            master == p || picked.iter().any(|s| s.proc == p)
        }
        EventRef::Reselect { master, dropped, .. } => master == p || dropped.contains(p),
        EventRef::StatusApply { to, .. } => to == p,
        _ => false,
    }
}

fn describe(e: &SchedEvent, p: usize, truth: &[u64]) -> String {
    match e {
        SchedEvent::Activate { proc, node, class } => {
            format!("proc {proc} activates {} front n{node}", class.name())
        }
        SchedEvent::PoolDecision { proc, depth, picked } => match picked {
            Some(n) => format!("proc {proc} picks n{n} from a pool of {depth}"),
            None => format!("proc {proc} defers all {depth} pooled tasks (capacity verdict)"),
        },
        SchedEvent::Forced { proc, node, cost } => {
            format!("stall-breaker forces n{node} on proc {proc} (cost {cost})")
        }
        SchedEvent::SlaveSelection {
            master,
            node,
            metric,
            view_age,
            picked,
            rounds,
            serialized,
        } => {
            let mut s = format!("master {master} selects slaves for type-2 n{node}: ");
            if *serialized {
                s.push_str("serialized on master");
            } else {
                let parts: Vec<String> =
                    picked.iter().map(|sl| format!("p{}\u{2190}{}", sl.proc, sl.entries)).collect();
                s.push_str(&parts.join(" "));
            }
            if *rounds > 0 {
                s.push_str(&format!(" after {rounds} capacity round(s)"));
            }
            // The believed-vs-actual contrast for the processor under the
            // microscope: what the master's (stale) view said against the
            // ground truth replayed at the same stream position.
            s.push_str(&format!(
                "; believed metric[p{p}]={} (view age {}), actual active={}",
                metric[p], view_age[p], truth[p]
            ));
            s
        }
        SchedEvent::Reselect { master, node, dropped } => {
            let procs: Vec<String> = dropped.iter().map(|q| format!("p{q}")).collect();
            format!("master {master} drops {} over capacity on n{node}", procs.join(","))
        }
        SchedEvent::StatusApply { to, from, about, kind, age } => format!(
            "proc {to} refreshes its view of p{about} ({} from p{from}, was {age} stale)",
            kind.name()
        ),
        SchedEvent::CoreGrant { proc, node, cores, busy } => format!(
            "proc {proc} grants n{node} {cores} core(s) ({busy} peer(s) believed busy)"
        ),
        _ => String::new(),
    }
}

/// Prints the decision chain leading into processor `p`'s peak: the last
/// `limit` decisions involving `p` before (and including) the
/// peak-setting instant.
fn print_decision_chain(rec: &Recording, nprocs: usize, p: usize, limit: usize) {
    let Some(peak_idx) = peak_event_index(rec, p) else {
        println!("  (no memory traffic recorded for proc {p})");
        return;
    };
    let decisions: Vec<(usize, mf_sim::Time, SchedEvent)> = rec
        .events()
        .enumerate()
        .take(peak_idx + 1)
        .filter(|(_, te)| involves(te.ev, p))
        .map(|(i, te)| (i, te.at, te.ev.to_owned()))
        .collect();
    let skipped = decisions.len().saturating_sub(limit);
    if skipped > 0 {
        println!("  ... {skipped} earlier decision(s) elided ...");
    }
    for (i, at, e) in decisions.iter().rev().take(limit).rev() {
        let truth = active_before(nprocs, rec, *i);
        println!("  t={at:>8}  {}", describe(e, p, &truth));
    }
}

fn print_report(name: &str, r: &RunResult) {
    let att = checked_attribution(r);
    let rec = r.recording.as_ref().unwrap();
    println!("\n=== {name} strategy ===");
    println!("{} ({} recorded events)", r.summary_line(), rec.len());
    println!("\nper-processor peaks (composition verified to sum to active_peak):");
    println!("{:>5} {:>12} {:>10} {:>6}  top fronts at the peak", "proc", "peak", "at", "live");
    for a in &att {
        let mut top: Vec<_> = a.composition.iter().collect();
        top.sort_by_key(|it| std::cmp::Reverse(it.entries));
        let head: Vec<String> = top
            .iter()
            .take(3)
            .map(|it| format!("n{}/{}:{}", it.node, it.area.name(), it.entries))
            .collect();
        println!(
            "{:>5} {:>12} {:>10} {:>6}  {}",
            a.proc,
            a.peak,
            a.at,
            a.composition.len(),
            head.join("  ")
        );
    }

    let worst = att.iter().max_by_key(|a| a.peak).expect("at least one processor");
    println!(
        "\nmachine peak: proc {} at t={} with {} entries across {} live items:",
        worst.proc,
        worst.at,
        worst.peak,
        worst.composition.len()
    );
    let mut comp: Vec<_> = worst.composition.iter().collect();
    comp.sort_by_key(|it| std::cmp::Reverse(it.entries));
    for it in comp.iter().take(12) {
        println!(
            "    n{:<6} {:6} {:>12} entries ({:>5.1}%)",
            it.node,
            it.area.name(),
            it.entries,
            100.0 * it.entries as f64 / worst.peak.max(1) as f64
        );
    }
    if comp.len() > 12 {
        let rest: u64 = comp.iter().skip(12).map(|it| it.entries).sum();
        println!("    ... {} more items, {} entries", comp.len() - 12, rest);
    }

    println!("\ndecision chain into the machine peak (believed vs actual):");
    print_decision_chain(rec, r.peaks.len(), worst.proc, 10);

    println!("\n{}", r.metrics.traffic_line());
    println!("{}", r.metrics.decisions_line());
}

fn print_diff(c: &CellResult) {
    let base = checked_attribution(&c.baseline);
    let mem = checked_attribution(&c.memory);
    println!("\n=== strategy vs strategy ===");
    println!(
        "max peak: {} -> {} ({:+.1}%), makespan: {} -> {} ({:+.1}%)",
        c.baseline.max_peak,
        c.memory.max_peak,
        -c.gain_percent(),
        c.baseline.makespan,
        c.memory.makespan,
        c.time_loss_percent()
    );
    let bw = base.iter().max_by_key(|a| a.peak).unwrap();
    let mw = mem.iter().max_by_key(|a| a.peak).unwrap();
    println!(
        "machine peak moved: proc {} (t={}) -> proc {} (t={})",
        bw.proc, bw.at, mw.proc, mw.at
    );
    println!("{:>5} {:>12} {:>12} {:>8}", "proc", "baseline", "memory", "delta%");
    for (b, m) in base.iter().zip(&mem) {
        let delta =
            if b.peak == 0 { 0.0 } else { 100.0 * (m.peak as f64 - b.peak as f64) / b.peak as f64 };
        println!("{:>5} {:>12} {:>12} {:>+8.1}", b.proc, b.peak, m.peak, delta);
    }
    let (bm, mm) = (&c.baseline.metrics, &c.memory.metrics);
    println!(
        "status traffic: {} -> {} msgs; staleness mean {:.0} -> {:.0} ticks",
        bm.status_msgs,
        mm.status_msgs,
        bm.view_staleness.mean(),
        mm.view_staleness.mean()
    );
}

/// `--kill`/`--join`: the recovery replay. Runs the cell under the given
/// membership-fault schedule with the recorder on (memory-based
/// strategy, recovery layer armed) and narrates the recording: losses,
/// the subtree reassignment chain, joins with their migrations —
/// asserting along the way that the run completed, the survivors
/// drained, and the factors are exactly the fault-free run's.
fn recovery_replay(args: &Args) {
    let tree = build_tree(args.matrix, args.ordering, args.split);
    let cfg0 = SolverConfig {
        slave_selection: SlaveSelection::Memory,
        task_selection: TaskSelection::MemoryAware,
        use_subtree_info: true,
        use_prediction: true,
        record_events: true,
        ..paper_scale_config(args.nprocs)
    };
    let map = compute_mapping(&tree, &cfg0);
    let plain = parsim::run(&tree, &map, &cfg0).expect("fault-free run");
    let cfg = SolverConfig {
        recovery: Some(RecoveryConfig::default()),
        fault: Some(FaultModel {
            kill_at: args.kills.clone(),
            join_at: args.joins.clone(),
            ..FaultModel::quiet(7)
        }),
        ..cfg0
    };
    let r = parsim::run(&tree, &map, &cfg)
        .unwrap_or_else(|e| die(&format!("recovery run failed: {e}")));
    let rec = r.recording.as_ref().expect("recovery run carries a recording");

    println!("\n=== recovery replay ===");
    println!("schedule: kills {:?}, joins {:?}", args.kills, args.joins);
    println!("fault-free: {}", plain.summary_line());
    println!("recovered:  {}", r.summary_line());

    println!("\nmembership narrative (from the flight recording):");
    let mut lines = 0usize;
    for te in rec.events() {
        match te.ev {
            EventRef::ProcLost { proc, nodes_lost } => {
                println!(
                    "  t={:>8}  processor {proc} declared dead: {nodes_lost} unfinished \
                     node(s) reclaimed for re-execution",
                    te.at
                );
                lines += 1;
            }
            EventRef::SubtreeReassigned { root, from, to } => {
                println!(
                    "  t={:>8}    subtree rooted at n{root} reassigned p{from} -> p{to}",
                    te.at
                );
                lines += 1;
            }
            EventRef::ProcJoined { proc, migrated } => {
                println!(
                    "  t={:>8}  processor {proc} joined: {migrated} pooled task(s) migrated \
                     to it by rebalancing",
                    te.at
                );
                lines += 1;
            }
            _ => {}
        }
    }
    if lines == 0 {
        println!("  (no membership change fired: the schedule lies past the run's end)");
    }

    assert_eq!(r.nodes_done, r.total_nodes, "recovered run lost fronts");
    for (p, &a) in r.final_active.iter().enumerate() {
        if !r.dead.contains(&p) {
            assert_eq!(a, 0, "survivor {p} leaked {a} stack entries");
        }
    }
    assert_eq!(
        r.factor_digest, plain.factor_digest,
        "recovered factors diverged from the fault-free run"
    );

    let rec_counters = r.metrics.recovery;
    let summary = rec_counters.summary();
    if !summary.is_empty() {
        println!("\n{summary}");
    }
    println!(
        "\nfactor digest {:016x}: recovered run identical to the fault-free run",
        r.factor_digest
    );
    println!(
        "degradation: makespan x{:.3}, survivor peak x{:.3}",
        r.makespan as f64 / plain.makespan.max(1) as f64,
        r.peaks
            .iter()
            .enumerate()
            .filter(|(p, _)| !r.dead.contains(p))
            .map(|(_, &pk)| pk)
            .max()
            .unwrap_or(0) as f64
            / plain.max_peak.max(1) as f64
    );
}

/// `--cores`: the core-allocation timeline. Re-runs the cell under
/// `CoreAlloc::Malleable` with the recorder on and replays every
/// `CoreGrant` against the granted front's assembly-tree depth, then
/// summarizes grants per depth band — the malleable trade (tree
/// parallelism near the leaves, front parallelism near the root) read
/// straight off the flight recording.
fn core_timeline(args: &Args) {
    let tree = build_tree(args.matrix, args.ordering, args.split);
    let mk_cfg = |alloc: CoreAlloc| SolverConfig {
        slave_selection: SlaveSelection::Memory,
        task_selection: TaskSelection::MemoryAware,
        use_subtree_info: true,
        use_prediction: true,
        record_events: true,
        core_alloc: alloc,
        ..paper_scale_config(args.nprocs)
    };
    let cfg_static = mk_cfg(CoreAlloc::Static(1));
    let cfg_mall = mk_cfg(CoreAlloc::malleable(4 * args.nprocs));
    let map = compute_mapping(&tree, &cfg_static);
    let fixed = parsim::run(&tree, &map, &cfg_static).expect("static run");
    let r = parsim::run(&tree, &map, &cfg_mall).expect("malleable run");
    let rec = r.recording.as_ref().expect("malleable run carries a recording");

    // Depth of every front below its root (roots at depth 0): parents
    // precede children when the topological order is walked backwards.
    let mut depth = vec![0usize; tree.len()];
    for &v in tree.topo_order().iter().rev() {
        for &c in &tree.nodes[v].children {
            depth[c] = depth[v] + 1;
        }
    }

    let grants: Vec<(mf_sim::Time, usize, usize, u32, u64)> = rec
        .events()
        .filter_map(|te| match te.ev {
            EventRef::CoreGrant { proc, node, cores, busy } => {
                Some((te.at, proc, node, cores, busy))
            }
            _ => None,
        })
        .collect();

    println!("\n=== core-allocation timeline (malleable) ===");
    println!("static:    {}", fixed.summary_line());
    println!("malleable: {}", r.summary_line());
    println!(
        "\n{} grant decision(s) recorded; pool {} cores over {} processors:",
        grants.len(),
        4 * args.nprocs,
        args.nprocs
    );
    let show = 20usize.min(grants.len());
    for &(at, proc, node, cores, busy) in &grants[grants.len() - show..] {
        println!(
            "  t={at:>8}  p{proc:<3} n{node:<6} depth {:>2}: {cores} core(s), {busy} peer(s) busy",
            depth[node]
        );
    }
    if grants.len() > show {
        println!("  (showing the last {show}; earlier grants elided)");
    }

    // Grants vs depth: the leaf storm should sit at 1 core/front, the
    // root chain should collect the pool.
    let maxd = grants.iter().map(|g| depth[g.2]).max().unwrap_or(0);
    println!("\n{:>6} {:>8} {:>10} {:>10}", "depth", "grants", "mean", "max");
    for d in 0..=maxd {
        let at_d: Vec<u32> = grants.iter().filter(|g| depth[g.2] == d).map(|g| g.3).collect();
        if at_d.is_empty() {
            continue;
        }
        let mean = at_d.iter().map(|&c| c as f64).sum::<f64>() / at_d.len() as f64;
        let max = at_d.iter().max().copied().unwrap_or(1);
        println!("{:>6} {:>8} {:>10.2} {:>10}", d, at_d.len(), mean, max);
    }
    println!(
        "\nmakespan: static {} -> malleable {} ({:+.1}%)",
        fixed.makespan,
        r.makespan,
        100.0 * (r.makespan as f64 - fixed.makespan as f64) / fixed.makespan.max(1) as f64
    );
    assert_eq!(
        r.nodes_done, r.total_nodes,
        "malleable run must finish every front"
    );
}

/// `--check-all`: the acceptance sweep. Every paper matrix, both
/// strategies, recorder on; asserts composition-sums-to-peak for every
/// processor (via [`checked_attribution`]) and prints one line per cell.
fn check_all(ordering: OrderingKind, nprocs: usize, split: Option<u64>) {
    for m in ALL_PAPER_MATRICES {
        let c = sweep_cell_captured(m, ordering, nprocs, split);
        for (name, r) in [("workload", &c.baseline), ("memory", &c.memory)] {
            let att = checked_attribution(r);
            let worst = att.iter().max_by_key(|a| a.peak).unwrap();
            println!(
                "{:12} {:5} {:8}: {} procs verified, machine peak {} on proc {} at t={}",
                m.name(),
                ordering.name(),
                name,
                att.len(),
                worst.peak,
                worst.proc,
                worst.at
            );
        }
        obs::maybe_export_cell(&c);
    }
    println!("check-all: every composition sums to its active_peak under both strategies");
}

fn main() {
    let args = parse_args();
    if args.check_all {
        check_all(args.ordering, args.nprocs, args.split);
        return;
    }
    if args.cores {
        println!(
            "explain {} / {} on {} processors (core-allocation timeline)",
            args.matrix.name(),
            args.ordering.name(),
            args.nprocs
        );
        core_timeline(&args);
        return;
    }
    if !args.kills.is_empty() || !args.joins.is_empty() {
        println!(
            "explain {} / {} on {} processors (recovery replay)",
            args.matrix.name(),
            args.ordering.name(),
            args.nprocs
        );
        recovery_replay(&args);
        return;
    }
    println!(
        "explain {} / {} on {} processors{}",
        args.matrix.name(),
        args.ordering.name(),
        args.nprocs,
        match args.split {
            Some(t) => format!(", split at {t} entries"),
            None => String::new(),
        }
    );
    let c = sweep_cell_captured(args.matrix, args.ordering, args.nprocs, args.split);
    print_report("workload (baseline)", &c.baseline);
    print_report("memory-based", &c.memory);
    print_diff(&c);
    let written = obs::maybe_export_cell(&c);
    if written > 0 {
        eprintln!("explain: exported {written} artifact(s)");
    }
}
