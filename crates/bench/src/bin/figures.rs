//! Scenario reproductions of the paper's illustrative figures.
//!
//! * Figure 3 — the regular (LU) vs irregular (LDLᵀ) type-2 blockings;
//! * Figure 4 — one memory-based slave-selection decision;
//! * Figure 5 — the stale-view coherence problem;
//! * Figure 6 — predicting incoming master tasks;
//! * Figure 8 — memory-aware task selection vs LIFO.

use mf_bench::scenarios::{figure4, figure5, figure6, figure8};
use mf_core::blocking::equal_entry_blocks;
use mf_sparse::Symmetry;

fn bar(value: u64, unit: u64) -> String {
    "#".repeat(((value + unit / 2) / unit.max(1)) as usize)
}

fn main() {
    println!("== Figure 3: type-2 blocking, front 100 with 20 pivots, 4 slaves ==");
    for sym in [Symmetry::General, Symmetry::Symmetric] {
        let blocks = equal_entry_blocks(sym, 100, 20, 4);
        let rows: Vec<usize> = blocks.iter().map(|&(_, n)| n).collect();
        println!("  {:?}: rows per slave {:?}", sym, rows);
    }

    println!("\n== Figure 4: memory-based slave selection (Algorithm 1) ==");
    let (memories, sel) = figure4();
    println!("  memory load per processor (# = 10k entries):");
    for (p, &m) in memories.iter().enumerate() {
        let role = if p == 0 { " (master)" } else { "" };
        println!("   P{p}: {:>7} {}{}", m, bar(m, 10_000), role);
    }
    println!("  Algorithm 1 row distribution (front 400, 100 pivots):");
    for (p, rows) in &sel {
        println!("   P{p}: {rows} rows");
    }
    let excluded: Vec<usize> = (1..8).filter(|p| !sel.iter().any(|&(q, _)| q == *p)).collect();
    println!("  processors left alone (their load already at the peak): {excluded:?}");

    println!("\n== Figure 5: the coherence problem ==");
    let o = figure5();
    println!("  slow control network  : P0 peak {:>7}, global {:>7}", o.bad.0, o.bad.1);
    println!("  instantaneous network : P0 peak {:>7}, global {:>7}", o.good.0, o.good.1);
    println!("  -> the stale memory view sends a slave block onto P0 while its");
    println!("     big master front is live; fresh information avoids it.");

    println!("\n== Figure 6: predicting the activation of ready tasks ==");
    let o = figure6();
    println!("  without prediction : P0 peak {:>7}, global {:>7}", o.bad.0, o.bad.1);
    println!("  with prediction    : P0 peak {:>7}, global {:>7}", o.good.0, o.good.1);
    println!("  -> every view of P0 is genuinely small at selection time; only the");
    println!("     Section 5.1 prediction knows a large master is about to start.");

    println!("\n== Figure 8: memory-aware task selection (Algorithm 2) ==");
    let o = figure8();
    println!("  LIFO pool          : P0 peak {:>7}, global {:>7}", o.bad.0, o.bad.1);
    println!("  Algorithm 2        : P0 peak {:>7}, global {:>7}", o.good.0, o.good.1);
    println!("  -> delaying the big type-2 master until the subtree finishes keeps");
    println!("     its master part from stacking on the subtree's CBs.");
}
