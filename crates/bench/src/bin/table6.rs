//! Table 6: loss of performance (percentage increase of the simulated
//! factorization time) between the original MUMPS strategy and the
//! memory-optimized strategy (splitting + dynamic memory scheduling).

use mf_bench::paper_data::PAPER_TABLE6;
use mf_bench::sweep::{render_percent_table, split_threshold_for, sweep_cell};
use mf_core::driver::percent_increase;
use mf_order::ALL_ORDERINGS;
use mf_sparse::gen::paper::PaperMatrix;

fn main() {
    let nprocs = 32;
    let thr = split_threshold_for();
    let mut rows = Vec::new();
    for m in [PaperMatrix::Ship003, PaperMatrix::Pre2, PaperMatrix::Ultrasound3] {
        let mut vals = [0.0f64; 4];
        for (i, k) in ALL_ORDERINGS.into_iter().enumerate() {
            // Symmetric SHIP_003 was not split in the paper's Table 3/5
            // either; apply splitting only to the unsymmetric problems.
            let split = m.is_unsymmetric().then_some(thr);
            let original = sweep_cell(m, k, nprocs, None, false);
            let optimized = sweep_cell(m, k, nprocs, split, false);
            vals[i] = percent_increase(original.baseline.makespan, optimized.memory.makespan);
            eprintln!(
                "{:12} {:5}: makespan {:>9} -> {:>9} = {:+.1}%",
                m.name(),
                k.name(),
                original.baseline.makespan,
                optimized.memory.makespan,
                vals[i]
            );
        }
        rows.push((m.name(), vals));
    }
    println!(
        "{}",
        render_percent_table(
            "Table 6: % loss of factorization time, memory-optimized vs original strategy",
            &rows,
            Some(&PAPER_TABLE6),
        )
    );
}
