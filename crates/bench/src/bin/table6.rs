//! Table 6: loss of performance (percentage increase of the simulated
//! factorization time) between the original MUMPS strategy and the
//! memory-optimized strategy (splitting + dynamic memory scheduling).

use mf_bench::paper_data::PAPER_TABLE6;
use mf_bench::sweep::{run_percent_table, split_threshold_for, CellSpec};
use mf_core::driver::percent_increase;
use mf_order::ALL_ORDERINGS;
use mf_sparse::gen::paper::PaperMatrix;

fn main() {
    let nprocs = 32;
    let thr = split_threshold_for();
    let matrices = [PaperMatrix::Ship003, PaperMatrix::Pre2, PaperMatrix::Ultrasound3];
    // Per (matrix, ordering): the original cell, then the optimized one.
    // Symmetric SHIP_003 was not split in the paper's Table 3/5 either;
    // apply splitting only to the unsymmetric problems.
    let specs: Vec<CellSpec> = matrices
        .iter()
        .flat_map(|&m| {
            let split = m.is_unsymmetric().then_some(thr);
            ALL_ORDERINGS
                .into_iter()
                .flat_map(move |k| [(m, k, nprocs, None, false), (m, k, nprocs, split, false)])
        })
        .collect();
    run_percent_table(
        "Table 6: % loss of factorization time, memory-optimized vs original strategy",
        Some(&PAPER_TABLE6),
        &matrices,
        2,
        &specs,
        |m, entry| {
            let (original, optimized) = (&entry[0], &entry[1]);
            let val = percent_increase(original.baseline.makespan, optimized.memory.makespan);
            let log = format!(
                "{:12} {:5}: makespan {:>9} -> {:>9} = {:+.1}%",
                m.name(),
                original.ordering.name(),
                original.baseline.makespan,
                optimized.memory.makespan,
                val
            );
            (val, log)
        },
    );
}
