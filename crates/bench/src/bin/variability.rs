//! Sensitivity of each strategy to execution-timing noise.
//!
//! The paper attributes small differences between its Tables 2 and 3 to
//! "the non-deterministic execution scheme of MUMPS". This binary
//! quantifies the analogous effect in the reproduction: it perturbs task
//! durations by ±10% under 16 seeds and reports the spread of the
//! maximum stack peak for the workload baseline and the memory-based
//! strategy.

use mf_bench::sweep::{build_tree, paper_scale_config};
use mf_core::config::{SlaveSelection, SolverConfig, TaskSelection};
use mf_core::mapping::compute_mapping;
use mf_core::parsim;
use mf_order::OrderingKind;
use mf_sparse::gen::paper::PaperMatrix;
use rayon::prelude::*;

fn spread(tree: &mf_symbolic::AssemblyTree, cfg: &SolverConfig, seeds: u64) -> (u64, u64, f64) {
    let map = compute_mapping(tree, cfg);
    // Independent seeded runs; each seed fully determines its jittered
    // simulation, so the parallel fan-out changes nothing but wall time.
    let seed_list: Vec<u64> = (0..seeds).collect();
    let peaks: Vec<u64> = seed_list
        .par_iter()
        .map(|&seed| {
            let jcfg = SolverConfig { jitter: Some((seed, 0.10)), ..cfg.clone() };
            let r = parsim::run(tree, &map, &jcfg).expect("jittered run failed");
            r.max_peak
        })
        .collect();
    let min = *peaks.iter().min().unwrap();
    let max = *peaks.iter().max().unwrap();
    let mean = peaks.iter().sum::<u64>() as f64 / peaks.len() as f64;
    (min, max, mean)
}

fn main() {
    let seeds = 16;
    println!("max stack peak under ±10% duration noise, {seeds} seeds");
    println!(
        "{:22} {:>10} {:>10} {:>10} {:>8}",
        "cell / strategy", "min", "mean", "max", "spread%"
    );
    for (m, k) in
        [(PaperMatrix::TwoTone, OrderingKind::Amd), (PaperMatrix::Ultrasound3, OrderingKind::Amf)]
    {
        let tree = build_tree(m, k, None);
        let base = paper_scale_config(32);
        let mem = SolverConfig {
            slave_selection: SlaveSelection::Memory,
            task_selection: TaskSelection::MemoryAware,
            use_subtree_info: true,
            use_prediction: true,
            ..base.clone()
        };
        for (name, cfg) in [("workload", &base), ("memory", &mem)] {
            let (min, max, mean) = spread(&tree, cfg, seeds);
            println!(
                "{:12} {:9} {:>10} {:>10.0} {:>10} {:>7.1}%",
                m.name(),
                name,
                min,
                mean,
                max,
                100.0 * (max - min) as f64 / mean,
            );
        }
    }
    println!("\n(the paper: \"the little difference on the gains measured between");
    println!(" Table 2 and Table 3 is due to the non-deterministic execution scheme\")");
}
