//! Determinism suite: the factorization bytes must not depend on *how*
//! the work was scheduled or *which* SIMD path computed it.
//!
//! Three independent axes are pinned by construction and verified here:
//!
//! * **rayon pool width** — tree tasks partition the assembly tree, and
//!   each front's trailing sweep partitions columns disjointly, so no
//!   cross-thread reduction exists whose order could vary;
//! * **cores-per-front budget** — kernel dispatch keys on the pivot
//!   count only, and the parallel trailing sweep is partition-invariant;
//! * **SIMD level** — every microkernel (scalar, AVX2+FMA, AVX-512F)
//!   computes each output element by the same fused-multiply-add chain,
//!   so forcing the scalar fallback reproduces the vectorized bits.
//!
//! The suite runs all eight paper matrices (four symmetric → LDLᵀ, four
//! unsymmetric → LU) at a reduced scale, comparing full-content digests
//! ([`Factorization::content_digest`], which hashes the exact bit
//! patterns of every factor block).

use mf_frontal::dense::{partial_lu_blocked_mt, partial_lu_blocked_rank1_panel, DenseMat};
use mf_frontal::numeric::{Factorization, NumericOptions};
use mf_frontal::parallel::factorize_parallel_with;
use mf_frontal::{gemm, FactorError};
use mf_order::OrderingKind;
use mf_sparse::gen::paper::{PaperMatrix, ALL_PAPER_MATRICES};
use mf_sparse::CscMatrix;
use mf_symbolic::{AmalgamationOptions, SymbolicAnalysis};
use proptest::prelude::*;

/// Reduced instantiation scale: big enough that root fronts cross the
/// blocked-kernel threshold on several matrices, small enough that the
/// full 8x3 sweep stays in debug-test budget.
const SCALE: f64 = 0.08;

fn analyzed(m: PaperMatrix) -> (CscMatrix, SymbolicAnalysis) {
    let a = m.instantiate_scaled(SCALE);
    let perm = OrderingKind::Amd.compute(&a);
    let s = mf_symbolic::analyze(&a, &perm, &AmalgamationOptions::default());
    (a, s)
}

fn parallel_digest(a: &CscMatrix, s: &SymbolicAnalysis, width: usize) -> Result<u64, FactorError> {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(width).build().expect("pool");
    let opts = NumericOptions { cores_per_front: width, ..NumericOptions::default() };
    pool.install(|| factorize_parallel_with(a, s, &opts)).map(|f| f.content_digest())
}

#[test]
fn factors_bit_identical_across_pool_widths() {
    for m in ALL_PAPER_MATRICES {
        let (a, s) = analyzed(m);
        let base = parallel_digest(&a, &s, 1).unwrap_or_else(|e| panic!("{}: {e}", m.name()));
        for width in [2, 8] {
            let got = parallel_digest(&a, &s, width).unwrap();
            assert_eq!(got, base, "{} differs at pool width {width}", m.name());
        }
    }
}

#[test]
fn sequential_driver_ignores_cores_per_front() {
    for m in ALL_PAPER_MATRICES {
        let (a, s) = analyzed(m);
        let base = Factorization::from_symbolic(&a, &s).unwrap().content_digest();
        for cores in [2, 8] {
            let opts = NumericOptions { cores_per_front: cores, ..NumericOptions::default() };
            let got = Factorization::from_symbolic_with(&a, &s, &opts).unwrap().content_digest();
            assert_eq!(got, base, "{} differs at cores_per_front={cores}", m.name());
        }
    }
}

#[test]
fn malleable_thread_grants_leave_factors_bit_identical() {
    // The malleable allocator's busy count is racy by design; it is
    // safe only because the kernels are budget-invariant. Pin the
    // digest across pool sizes (and against the fixed-budget run) on
    // every paper matrix.
    for m in ALL_PAPER_MATRICES {
        let (a, s) = analyzed(m);
        let base = parallel_digest(&a, &s, 4).unwrap_or_else(|e| panic!("{}: {e}", m.name()));
        for pool in [1usize, 2, 8] {
            let opts = NumericOptions { cores_per_front: 4, malleable_pool: Some(pool) };
            let got = factorize_parallel_with(&a, &s, &opts).unwrap().content_digest();
            assert_eq!(got, base, "{} differs under malleable pool {pool}", m.name());
        }
    }
}

#[test]
fn forced_scalar_path_matches_simd_bits() {
    // One symmetric (LDLᵀ) and one unsymmetric (LU) instance; the digest
    // covers every front, so any per-element divergence between the
    // scalar and vectorized microkernels would surface.
    for m in [PaperMatrix::Ship003, PaperMatrix::TwoTone] {
        let (a, s) = analyzed(m);
        gemm::force_simd(Some(gemm::SimdLevel::Scalar));
        let scalar = Factorization::from_symbolic(&a, &s).map(|f| f.content_digest());
        gemm::force_simd(None);
        let scalar = scalar.unwrap();
        let auto = Factorization::from_symbolic(&a, &s).unwrap().content_digest();
        assert_eq!(
            scalar,
            auto,
            "{}: scalar fallback diverges from {} bits",
            m.name(),
            gemm::active_simd().name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The packed microkernel path must equal the naive triple loop
    /// *exactly* (bit-for-bit), for arbitrary tile shapes including the
    /// masked edge cases around the MR/NR register-tile boundaries.
    #[test]
    fn packed_gemm_equals_naive_triple_loop(
        m in 1usize..48,
        n in 1usize..40,
        kc in 1usize..32,
        seed in 0u64..1_000_000,
    ) {
        let lcg = |s: &mut u64| {
            *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((*s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut st = seed | 1;
        let a: Vec<f64> = (0..m * kc).map(|_| lcg(&mut st)).collect();
        let b: Vec<f64> = (0..kc * n).map(|_| lcg(&mut st)).collect();
        let c0: Vec<f64> = (0..m * n).map(|_| lcg(&mut st)).collect();

        let mut expect = c0.clone();
        gemm::gemm_sub_naive(m, n, kc, &a, m, &b, kc, &mut expect, m);

        let mut got = c0;
        let mut ws = gemm::GemmWorkspace::new();
        let ap = gemm::pack_a(&mut ws, &a, m, m, kc);
        let mut bp = Vec::new();
        gemm::pack_b(&mut bp, &b, kc, kc, n);
        gemm::gemm_sub_packed(&ap, &bp, n, &mut got, m);

        for (i, (x, y)) in got.iter().zip(&expect).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "({}x{}x{}) mismatch at {}: {} vs {}", m, n, kc, i, x, y
            );
        }
    }

    /// For panel widths at or below the recursion base the recursive
    /// panel *is* the historical rank-1 loop, so the blocked kernel must
    /// reproduce the rank-1-panel reference exactly: same pivot choices,
    /// same factor bits — for arbitrary fronts, pivot counts and widths.
    #[test]
    fn recursive_panel_equals_rank1_reference_at_narrow_widths(
        f in 2usize..40,
        npiv_frac in 0.1f64..1.0,
        nb in 1usize..=8,
        seed in 0u64..1_000_000,
    ) {
        let npiv = ((f as f64 * npiv_frac) as usize).clamp(1, f);
        let lcg = |s: &mut u64| {
            *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((*s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut st = seed | 1;
        let mut w = DenseMat::zeros(f, f);
        for j in 0..f {
            for i in 0..f {
                *w.get_mut(i, j) = lcg(&mut st) + if i == j { f as f64 } else { 0.0 };
            }
        }
        let mut w_ref = w.clone();
        let (mut perm, mut perm_ref) = (Vec::new(), Vec::new());
        partial_lu_blocked_mt(&mut w, npiv, nb, &mut perm, 1).unwrap();
        partial_lu_blocked_rank1_panel(&mut w_ref, npiv, nb, &mut perm_ref).unwrap();
        prop_assert_eq!(&perm, &perm_ref, "pivot choices diverged (f={}, npiv={}, nb={})", f, npiv, nb);
        for (i, (x, y)) in w.data().iter().zip(w_ref.data()).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "factor bits diverged at {} (f={}, npiv={}, nb={}): {} vs {}", i, f, npiv, nb, x, y
            );
        }
    }
}
