//! Dense frontal kernels and the numeric multifrontal factorization.
//!
//! This crate is the "compute" half of the solver: everything here deals
//! with real numbers, while `mf-symbolic` deals with structure and
//! `mf-core` with scheduling. It provides:
//!
//! * [`dense`] — column-major dense storage and the partial factorization
//!   kernels (LU with pivoting inside the fully-summed block, LDLᵀ);
//! * [`arena`] — the three-area memory manager of the multifrontal method
//!   (factors / contribution-block stack / current front) with exact
//!   usage and peak tracking, mirroring Section 2 of the paper;
//! * [`numeric`] — a sequential numeric multifrontal factorization and
//!   solve over an assembly tree (the correctness anchor of the whole
//!   reproduction: residual tests prove the symbolic layer + tree
//!   semantics are right);
//! * [`gemm`] — packed cache-blocked GEMM microkernels (runtime SIMD
//!   dispatch, bit-identical across scalar/AVX2/AVX-512 paths) backing
//!   the blocked kernels' trailing updates;
//! * [`parallel`] — a rayon tree-parallel variant exploiting the same
//!   tree parallelism the paper's type-1 nodes exploit across MPI ranks,
//!   here across threads.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // indexed loops are the idiom of dense kernels
pub mod arena;
pub mod dense;
pub mod gemm;
pub mod numeric;
pub mod parallel;

pub use numeric::{FactorError, Factorization};
