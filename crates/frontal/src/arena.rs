//! The three-area memory manager of the multifrontal method.
//!
//! Section 2 of the paper: "The algorithm uses three areas of storage in a
//! contiguous memory space, one for the factors, one to stack the
//! contribution blocks, and another one for the current frontal matrix."
//! This module reproduces that discipline and reports the exact usage and
//! peak of each area in *entries* (f64 words), so that the numeric runs
//! can validate the symbolic stack model used by the schedulers.

/// A LIFO stack of contribution blocks with usage/peak accounting.
///
/// Blocks must be released in reverse order of allocation, which is
/// exactly the postorder discipline of a sequential multifrontal
/// factorization (children CBs are consumed when the parent assembles).
#[derive(Debug, Default)]
pub struct CbStack {
    blocks: Vec<(u64, Vec<f64>)>, // (id, data)
    next_id: u64,
    used: u64,
    peak: u64,
}

/// Handle of a stacked contribution block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbHandle(u64);

impl CbStack {
    /// Empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a block, returning its handle.
    pub fn push(&mut self, data: Vec<f64>) -> CbHandle {
        self.used += data.len() as u64;
        self.peak = self.peak.max(self.used);
        let id = self.next_id;
        self.next_id += 1;
        self.blocks.push((id, data));
        CbHandle(id)
    }

    /// Borrows the data of the block `h` (must still be stacked).
    pub fn get(&self, h: CbHandle) -> &[f64] {
        let (_, data) = self
            .blocks
            .iter()
            .rev()
            .find(|(id, _)| *id == h.0)
            .expect("contribution block already released");
        data
    }

    /// Releases the *top* block, which must be `h` — enforcing the LIFO
    /// discipline of the contiguous stack area.
    pub fn pop(&mut self, h: CbHandle) -> Vec<f64> {
        let (id, data) = self.blocks.pop().expect("pop on empty CB stack");
        assert_eq!(id, h.0, "CB stack released out of order (id {} != top {})", h.0, id);
        self.used -= data.len() as u64;
        data
    }

    /// Current entries stacked.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Peak entries stacked since creation.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Number of blocks currently stacked.
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }
}

/// Accounting for the whole three-area space.
///
/// `factors` only grows; `stack` is the CB stack; the current front is
/// tracked separately so the *active memory* (stack + front), the
/// quantity the paper's tables report, can peak mid-factorization.
#[derive(Debug, Default)]
pub struct MemoryAccount {
    factors: u64,
    front: u64,
    stack_used: u64,
    stack_peak: u64,
    active_peak: u64,
    total_peak: u64,
}

impl MemoryAccount {
    /// Fresh account.
    pub fn new() -> Self {
        Self::default()
    }

    fn bump(&mut self) {
        let active = self.stack_used + self.front;
        self.stack_peak = self.stack_peak.max(self.stack_used);
        self.active_peak = self.active_peak.max(active);
        self.total_peak = self.total_peak.max(active + self.factors);
    }

    /// Allocates the current frontal matrix.
    pub fn alloc_front(&mut self, entries: u64) {
        self.front += entries;
        self.bump();
    }

    /// Releases the current frontal matrix (factor part moved to the
    /// factors area, CB part to the stack — call the respective methods).
    pub fn free_front(&mut self, entries: u64) {
        assert!(self.front >= entries, "front underflow");
        self.front -= entries;
    }

    /// Moves `entries` into the factors area.
    pub fn store_factors(&mut self, entries: u64) {
        self.factors += entries;
        self.bump();
    }

    /// Pushes `entries` on the CB stack.
    pub fn push_cb(&mut self, entries: u64) {
        self.stack_used += entries;
        self.bump();
    }

    /// Pops `entries` from the CB stack.
    pub fn pop_cb(&mut self, entries: u64) {
        assert!(self.stack_used >= entries, "CB stack underflow");
        self.stack_used -= entries;
    }

    /// Current CB-stack usage.
    pub fn stack_used(&self) -> u64 {
        self.stack_used
    }

    /// Peak of the CB stack alone.
    pub fn stack_peak(&self) -> u64 {
        self.stack_peak
    }

    /// Peak of the *active memory* (CB stack + current fronts): the
    /// quantity reported in the paper's tables.
    pub fn active_peak(&self) -> u64 {
        self.active_peak
    }

    /// Peak of everything including factors.
    pub fn total_peak(&self) -> u64 {
        self.total_peak
    }

    /// Factor entries stored so far.
    pub fn factors(&self) -> u64 {
        self.factors
    }

    /// Currently allocated front entries.
    pub fn front(&self) -> u64 {
        self.front
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_tracks_usage_and_peak() {
        let mut s = CbStack::new();
        let a = s.push(vec![0.0; 10]);
        let b = s.push(vec![0.0; 5]);
        assert_eq!(s.used(), 15);
        assert_eq!(s.peak(), 15);
        s.pop(b);
        assert_eq!(s.used(), 10);
        let c = s.push(vec![0.0; 2]);
        assert_eq!(s.peak(), 15);
        s.pop(c);
        s.pop(a);
        assert_eq!(s.used(), 0);
        assert_eq!(s.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn lifo_violation_panics() {
        let mut s = CbStack::new();
        let a = s.push(vec![0.0; 1]);
        let _b = s.push(vec![0.0; 1]);
        s.pop(a);
    }

    #[test]
    fn get_borrows_any_live_block() {
        let mut s = CbStack::new();
        let a = s.push(vec![1.0, 2.0]);
        let _b = s.push(vec![3.0]);
        assert_eq!(s.get(a), &[1.0, 2.0]);
    }

    #[test]
    fn account_active_peak_counts_front_plus_stack() {
        let mut m = MemoryAccount::new();
        m.push_cb(100);
        m.alloc_front(50);
        assert_eq!(m.active_peak(), 150);
        m.pop_cb(100); // children assembled
        m.store_factors(30);
        m.push_cb(20); // own CB
        m.free_front(50);
        assert_eq!(m.stack_used(), 20);
        assert_eq!(m.factors(), 30);
        assert_eq!(m.active_peak(), 150);
        assert_eq!(m.total_peak(), 150);
    }

    #[test]
    fn factors_grow_monotonically() {
        let mut m = MemoryAccount::new();
        m.store_factors(5);
        m.store_factors(7);
        assert_eq!(m.factors(), 12);
    }
}
