//! Column-major dense storage and partial factorization kernels.

/// A column-major dense matrix (the layout of frontal matrices).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMat {
    /// Zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMat { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Raw column-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[j * self.nrows + i]
    }

    /// Adds `v` to element `(i, j)` (assembly primitive).
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i] += v;
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Swaps rows `a` and `b` across all columns.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        debug_assert!(a < self.nrows && b < self.nrows);
        for col in self.data.chunks_exact_mut(self.nrows) {
            col.swap(a, b);
        }
    }

    /// `y += A x` (used by tests for residual checks).
    pub fn mul_vec_add(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for j in 0..self.ncols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            for (i, &a) in self.col(j).iter().enumerate() {
                y[i] += a * xj;
            }
        }
    }
}

/// Failure of a dense partial factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// A pivot smaller (in magnitude) than the threshold was met.
    TinyPivot {
        /// Elimination step at which it happened.
        step: usize,
        /// The offending pivot value.
        value: f64,
    },
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::TinyPivot { step, value } => {
                write!(f, "pivot too small at step {step}: {value:e}")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// `dst[i] -= l[i] * u` over equal-length slices. Slicing `l` to
/// `dst.len()` up front lets the inner loop run without bounds checks.
#[inline]
fn axpy_sub(dst: &mut [f64], l: &[f64], u: f64) {
    let n = dst.len();
    let l = &l[..n];
    for i in 0..n {
        dst[i] -= l[i] * u;
    }
}

/// Four fused axpy updates: `dst[i] -= l0[i]*u0; dst[i] -= l1[i]*u1; ...`
/// with the subtractions kept sequential per element, so the rounding of
/// each destination value is exactly that of four separate [`axpy_sub`]
/// calls (one pass over `dst` instead of four).
#[inline]
fn axpy_sub4(dst: &mut [f64], l0: &[f64], l1: &[f64], l2: &[f64], l3: &[f64], u: [f64; 4]) {
    let n = dst.len();
    let (l0, l1, l2, l3) = (&l0[..n], &l1[..n], &l2[..n], &l3[..n]);
    for i in 0..n {
        let mut v = dst[i];
        v -= l0[i] * u[0];
        v -= l1[i] * u[1];
        v -= l2[i] * u[2];
        v -= l3[i] * u[3];
        dst[i] = v;
    }
}

/// Partial LU of the leading `npiv` columns of a square front `w`
/// (order `f = w.nrows()`), with partial pivoting restricted to the
/// fully-summed rows `0..npiv`.
///
/// On return, the leading `npiv` columns hold `L` (unit diagonal implied)
/// below the diagonal and `U` on/above it; the trailing
/// `(f-npiv) x (f-npiv)` block holds the Schur complement (contribution
/// block). `row_perm[k]` records the row swapped into position `k`.
///
/// Restricting pivot search to the fully-summed rows is exact for the
/// diagonally dominant problems generated in this reproduction and is the
/// discipline MUMPS follows before resorting to delayed pivots (which we
/// do not model; a tiny pivot is an error instead).
pub fn partial_lu(
    w: &mut DenseMat,
    npiv: usize,
    row_perm: &mut Vec<usize>,
) -> Result<(), KernelError> {
    let f = w.nrows();
    assert_eq!(f, w.ncols(), "frontal matrices are square");
    assert!(npiv <= f);
    row_perm.clear();
    row_perm.extend(0..f);
    for k in 0..npiv {
        // Pivot: largest magnitude in column k among fully-summed rows.
        let mut piv_row = k;
        let mut piv_val = w.get(k, k).abs();
        for i in k + 1..npiv {
            let v = w.get(i, k).abs();
            if v > piv_val {
                piv_val = v;
                piv_row = i;
            }
        }
        if piv_val < 1e-300 {
            return Err(KernelError::TinyPivot { step: k, value: w.get(piv_row, k) });
        }
        if piv_row != k {
            w.swap_rows(k, piv_row);
            row_perm.swap(k, piv_row);
        }
        let d = w.get(k, k);
        // Scale column k below the diagonal.
        let inv = 1.0 / d;
        for i in k + 1..f {
            *w.get_mut(i, k) *= inv;
        }
        // Rank-1 update of the trailing block: W[k+1.., k+1..] -= l * u.
        // Splitting after column k separates the finished L column from
        // the columns being updated, so the axpy runs on plain slices.
        let (head, tail) = w.data.split_at_mut((k + 1) * f);
        let lcol = &head[k * f + k + 1..];
        for colj in tail.chunks_exact_mut(f) {
            let ukj = colj[k];
            if ukj == 0.0 {
                continue;
            }
            axpy_sub(&mut colj[k + 1..], lcol, ukj);
        }
    }
    Ok(())
}

/// Cache-blocked variant of [`partial_lu`]: identical result (same pivot
/// choices), computed by panels of `nb` columns with a GEMM-shaped
/// trailing update — the textbook BLAS-3 restructuring.
///
/// The trailing update is a register-blocked microkernel on disjoint
/// column slices ([`axpy_sub4`]): one pass over each target column per
/// four panel columns, no bounds checks in the inner loop. See the
/// `numeric/kernel` benches; [`factor_front_lu`] dispatches here beyond
/// 512 pivots, where panel reuse pays for the extra structure.
pub fn partial_lu_blocked(
    w: &mut DenseMat,
    npiv: usize,
    nb: usize,
    row_perm: &mut Vec<usize>,
) -> Result<(), KernelError> {
    let f = w.nrows();
    assert_eq!(f, w.ncols(), "frontal matrices are square");
    assert!(npiv <= f);
    let nb = nb.max(1);
    row_perm.clear();
    row_perm.extend(0..f);
    let mut k0 = 0;
    while k0 < npiv {
        let kb = nb.min(npiv - k0);
        // ---- Panel factorization (unblocked on columns k0..k0+kb). ----
        for k in k0..k0 + kb {
            let mut piv_row = k;
            let mut piv_val = w.get(k, k).abs();
            for i in k + 1..npiv {
                let v = w.get(i, k).abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = i;
                }
            }
            if piv_val < 1e-300 {
                return Err(KernelError::TinyPivot { step: k, value: w.get(piv_row, k) });
            }
            if piv_row != k {
                w.swap_rows(k, piv_row);
                row_perm.swap(k, piv_row);
            }
            let inv = 1.0 / w.get(k, k);
            for i in k + 1..f {
                *w.get_mut(i, k) *= inv;
            }
            // Update only the remaining panel columns now.
            let (head, tail) = w.data.split_at_mut((k + 1) * f);
            let lcol = &head[k * f + k + 1..];
            for colj in tail.chunks_exact_mut(f).take(k0 + kb - k - 1) {
                let ukj = colj[k];
                if ukj == 0.0 {
                    continue;
                }
                axpy_sub(&mut colj[k + 1..], lcol, ukj);
            }
        }
        let kend = k0 + kb;
        // ---- Columns right of the panel: the triangular U12 update
        // (rows k0..kend) followed by the trailing GEMM update
        // (rows kend..f), fused so each column is touched once per panel.
        // One split separates the factored panel (read-only L) from the
        // columns being updated; the microkernels then run on plain
        // slices with no index arithmetic in the inner loop. Each target
        // element receives its panel updates one `k` at a time in
        // ascending order — the same subtraction sequence as the rank-1
        // form, so downstream pivot decisions are unaffected. ----
        let (panel, trailing) = w.data.split_at_mut(kend * f);
        for colj in trailing.chunks_exact_mut(f) {
            // U12: solve L11 (unit lower) against rows k0..kend.
            for k in k0..kend {
                let ukj = colj[k];
                if ukj == 0.0 {
                    continue;
                }
                let base = k * f + k + 1;
                axpy_sub(&mut colj[k + 1..kend], &panel[base..base + kend - k - 1], ukj);
            }
            // GEMM: rows kend..f minus L21 times this column of U12,
            // four panel columns per pass.
            let (u12, dst) = colj.split_at_mut(kend);
            let n = dst.len();
            let mut k = k0;
            while k + 4 <= kend {
                let base = k * f + kend;
                axpy_sub4(
                    dst,
                    &panel[base..base + n],
                    &panel[base + f..base + f + n],
                    &panel[base + 2 * f..base + 2 * f + n],
                    &panel[base + 3 * f..base + 3 * f + n],
                    [u12[k], u12[k + 1], u12[k + 2], u12[k + 3]],
                );
                k += 4;
            }
            while k < kend {
                let ukj = u12[k];
                if ukj != 0.0 {
                    let base = k * f + kend;
                    axpy_sub(dst, &panel[base..base + n], ukj);
                }
                k += 1;
            }
        }
        k0 = kend;
    }
    Ok(())
}

/// Partial LDLᵀ of the leading `npiv` columns of a symmetric front stored
/// *fully* (both triangles) in `w`; no pivoting (1x1 diagonal pivots),
/// suitable for the diagonally dominant symmetric problems here.
///
/// On return, columns `0..npiv` hold `L` below the diagonal, `D` on it;
/// the trailing block holds the symmetric Schur complement.
pub fn partial_ldlt(w: &mut DenseMat, npiv: usize) -> Result<(), KernelError> {
    let f = w.nrows();
    assert_eq!(f, w.ncols());
    assert!(npiv <= f);
    for k in 0..npiv {
        let d = w.get(k, k);
        if d.abs() < 1e-300 {
            return Err(KernelError::TinyPivot { step: k, value: d });
        }
        let inv = 1.0 / d;
        for i in k + 1..f {
            *w.get_mut(i, k) *= inv;
        }
        // Rank-1 update over *full* trailing columns (rows k+1..f), which
        // keeps both triangles current directly — no separate mirror pass.
        // The lower triangle and diagonal see the exact subtraction
        // sequence of a lower-only update, so the factor and the lower
        // Schur triangle are unchanged; upper entries are now computed by
        // the symmetric formula instead of copied.
        let (head, tail) = w.data.split_at_mut((k + 1) * f);
        let lcol = &head[k * f + k + 1..];
        for (jt, colj) in tail.chunks_exact_mut(f).enumerate() {
            let ljk_d = lcol[jt] * d; // l_jk * d_k
            if ljk_d == 0.0 {
                continue;
            }
            axpy_sub(&mut colj[k + 1..], lcol, ljk_d);
        }
    }
    Ok(())
}

/// Production entry point used by the numeric drivers: picks the blocked
/// kernel for pivot blocks large enough to benefit, the rank-1 kernel
/// otherwise. Both compute the same factorization (identical pivot
/// choices; floating-point results differ only by summation order).
/// The threshold follows the `numeric/kernel` benchmarks: below it the
/// rank-1 kernel wins on this workload's cache-resident fronts.
pub fn factor_front_lu(
    w: &mut DenseMat,
    npiv: usize,
    row_perm: &mut Vec<usize>,
) -> Result<(), KernelError> {
    const BLOCK_THRESHOLD: usize = 512;
    const NB: usize = 64;
    if npiv >= BLOCK_THRESHOLD {
        partial_lu_blocked(w, npiv, NB, row_perm)
    } else {
        partial_lu(w, npiv, row_perm)
    }
}

/// Full dense LU solve used as a test oracle: solves `A x = b` with
/// partial pivoting over all rows. Returns `None` for singular input.
pub fn dense_solve(a: &DenseMat, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    assert_eq!(b.len(), n);
    let mut w = a.clone();
    let mut x = b.to_vec();
    for k in 0..n {
        let (mut pr, mut pv) = (k, w.get(k, k).abs());
        for i in k + 1..n {
            let v = w.get(i, k).abs();
            if v > pv {
                pv = v;
                pr = i;
            }
        }
        if pv < 1e-300 {
            return None;
        }
        if pr != k {
            w.swap_rows(k, pr);
            x.swap(k, pr);
        }
        let inv = 1.0 / w.get(k, k);
        for i in k + 1..n {
            let l = w.get(i, k) * inv;
            if l == 0.0 {
                continue;
            }
            *w.get_mut(i, k) = l;
            for j in k + 1..n {
                let ukj = w.get(k, j);
                *w.get_mut(i, j) -= l * ukj;
            }
            x[i] -= l * x[k];
        }
    }
    for k in (0..n).rev() {
        let mut s = x[k];
        for j in k + 1..n {
            s -= w.get(k, j) * x[j];
        }
        x[k] = s / w.get(k, k);
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn front_from(rows: &[&[f64]]) -> DenseMat {
        let n = rows.len();
        let mut w = DenseMat::zeros(n, n);
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                *w.get_mut(i, j) = v;
            }
        }
        w
    }

    #[test]
    fn full_lu_matches_dense_solve() {
        let a = front_from(&[&[4.0, 1.0, 0.0], &[1.0, 5.0, 2.0], &[0.0, 2.0, 6.0]]);
        let mut w = a.clone();
        let mut perm = Vec::new();
        partial_lu(&mut w, 3, &mut perm).unwrap();
        // Solve via the factors and compare with the oracle.
        let b = vec![1.0, 2.0, 3.0];
        let xo = dense_solve(&a, &b).unwrap();
        // forward/backward with perm
        let mut y = [0.0; 3];
        for (k, &p) in perm.iter().enumerate() {
            y[k] = b[p];
        }
        for k in 0..3 {
            for i in k + 1..3 {
                y[i] -= w.get(i, k) * y[k];
            }
        }
        for k in (0..3).rev() {
            for j in k + 1..3 {
                y[k] -= w.get(k, j) * y[j];
            }
            y[k] /= w.get(k, k);
        }
        for i in 0..3 {
            assert!((y[i] - xo[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn partial_lu_schur_complement_is_correct() {
        // A = [A11 A12; A21 A22], npiv = 2; Schur = A22 - A21 A11^-1 A12.
        let a = front_from(&[
            &[4.0, 1.0, 2.0, 0.5],
            &[1.0, 5.0, 0.0, 1.0],
            &[2.0, 0.0, 6.0, 1.5],
            &[0.5, 1.0, 1.5, 7.0],
        ]);
        let mut w = a.clone();
        let mut perm = Vec::new();
        partial_lu(&mut w, 2, &mut perm).unwrap();
        // Compute the Schur complement with the oracle: solve A11 X = A12.
        let a11 = front_from(&[&[4.0, 1.0], &[1.0, 5.0]]);
        let x1 = dense_solve(&a11, &[2.0, 0.0]).unwrap();
        let x2 = dense_solve(&a11, &[0.5, 1.0]).unwrap();
        let a21 = [[2.0, 0.0], [0.5, 1.0]];
        let a22 = [[6.0, 1.5], [1.5, 7.0]];
        for i in 0..2 {
            for j in 0..2 {
                let xj = if j == 0 { &x1 } else { &x2 };
                let expect = a22[i][j] - (a21[i][0] * xj[0] + a21[i][1] * xj[1]);
                let got = w.get(2 + i, 2 + j);
                assert!((got - expect).abs() < 1e-12, "({i},{j}): {got} vs {expect}");
            }
        }
    }

    #[test]
    fn partial_lu_pivots_within_block() {
        // Needs a row swap inside the fully-summed block.
        let a = front_from(&[&[0.0, 1.0, 1.0], &[2.0, 1.0, 0.0], &[1.0, 0.0, 3.0]]);
        let mut w = a.clone();
        let mut perm = Vec::new();
        partial_lu(&mut w, 2, &mut perm).unwrap();
        assert_eq!(&perm[..2], &[1, 0]);
    }

    #[test]
    fn singular_pivot_block_is_reported() {
        let a = front_from(&[&[0.0, 0.0], &[0.0, 1.0]]);
        let mut w = a.clone();
        let mut perm = Vec::new();
        assert!(matches!(partial_lu(&mut w, 1, &mut perm), Err(KernelError::TinyPivot { .. })));
    }

    #[test]
    fn ldlt_schur_matches_lu_schur_for_symmetric_input() {
        let a = front_from(&[
            &[4.0, 1.0, 2.0, 0.5],
            &[1.0, 5.0, 0.0, 1.0],
            &[2.0, 0.0, 6.0, 1.5],
            &[0.5, 1.0, 1.5, 7.0],
        ]);
        let mut wl = a.clone();
        let mut perm = Vec::new();
        partial_lu(&mut wl, 2, &mut perm).unwrap();
        let mut ws = a.clone();
        partial_ldlt(&mut ws, 2).unwrap();
        for i in 2..4 {
            for j in 2..=i {
                assert!((wl.get(i, j) - ws.get(i, j)).abs() < 1e-12, "Schur mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn ldlt_reconstructs_matrix() {
        let a = front_from(&[&[4.0, 1.0, 2.0], &[1.0, 5.0, 0.5], &[2.0, 0.5, 6.0]]);
        let mut w = a.clone();
        partial_ldlt(&mut w, 3).unwrap();
        // Rebuild A = L D L^T from the packed result.
        let mut l = DenseMat::zeros(3, 3);
        let mut d = [0.0; 3];
        for k in 0..3 {
            d[k] = w.get(k, k);
            *l.get_mut(k, k) = 1.0;
            for i in k + 1..3 {
                *l.get_mut(i, k) = w.get(i, k);
            }
        }
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l.get(i, k) * d[k] * l.get(j, k);
                }
                assert!((s - a.get(i, j)).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    fn random_front(f: usize, seed: u64) -> DenseMat {
        let mut w = DenseMat::zeros(f, f);
        let mut h = seed | 1;
        for j in 0..f {
            for i in 0..f {
                h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                *w.get_mut(i, j) = if i == j { f as f64 } else { v };
            }
        }
        w
    }

    #[test]
    fn blocked_lu_matches_unblocked() {
        for (f, p, nb) in [(7, 4, 2), (20, 20, 8), (33, 17, 8), (64, 50, 16), (65, 65, 32)] {
            let a = random_front(f, (f * 31 + p) as u64);
            let mut w1 = a.clone();
            let mut w2 = a.clone();
            let (mut p1, mut p2) = (Vec::new(), Vec::new());
            partial_lu(&mut w1, p, &mut p1).unwrap();
            partial_lu_blocked(&mut w2, p, nb, &mut p2).unwrap();
            assert_eq!(p1, p2, "pivot choices must agree (f={f}, p={p})");
            for j in 0..f {
                for i in 0..f {
                    let (x, y) = (w1.get(i, j), w2.get(i, j));
                    assert!(
                        (x - y).abs() <= 1e-10 * (1.0 + x.abs()),
                        "(f={f},p={p}) mismatch at ({i},{j}): {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_lu_detects_singularity_too() {
        let mut w = DenseMat::zeros(4, 4);
        *w.get_mut(0, 0) = 1.0; // rank 1: second pivot is exactly zero
        let mut perm = Vec::new();
        assert!(matches!(
            partial_lu_blocked(&mut w, 2, 2, &mut perm),
            Err(KernelError::TinyPivot { .. })
        ));
    }

    #[test]
    fn factor_front_dispatches_consistently() {
        // Above the threshold the dispatcher takes the blocked path; the
        // pivot choices must match the rank-1 kernel's exactly.
        let a = random_front(540, 99);
        let mut w1 = a.clone();
        let mut w2 = a.clone();
        let (mut p1, mut p2) = (Vec::new(), Vec::new());
        factor_front_lu(&mut w1, 520, &mut p1).unwrap(); // blocked path
        partial_lu(&mut w2, 520, &mut p2).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn mul_vec_add_works() {
        let a = front_from(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut y = vec![0.0, 0.0];
        a.mul_vec_add(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }
}
