//! Column-major dense storage and partial factorization kernels.

use crate::gemm::{self, GemmWorkspace};
use rayon::prelude::*;

/// A column-major dense matrix (the layout of frontal matrices).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMat {
    /// Zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMat { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Raw column-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[j * self.nrows + i]
    }

    /// Adds `v` to element `(i, j)` (assembly primitive).
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i] += v;
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Raw column-major backing slice (crate-internal: content digests).
    pub(crate) fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Swaps rows `a` and `b` across all columns.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        debug_assert!(a < self.nrows && b < self.nrows);
        for col in self.data.chunks_exact_mut(self.nrows) {
            col.swap(a, b);
        }
    }

    /// `y += A x` (used by tests for residual checks).
    pub fn mul_vec_add(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for j in 0..self.ncols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            for (i, &a) in self.col(j).iter().enumerate() {
                y[i] += a * xj;
            }
        }
    }
}

/// Failure of a dense partial factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// A pivot smaller (in magnitude) than the threshold was met.
    TinyPivot {
        /// Elimination step at which it happened.
        step: usize,
        /// The offending pivot value.
        value: f64,
    },
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::TinyPivot { step, value } => {
                write!(f, "pivot too small at step {step}: {value:e}")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// `dst[i] -= l[i] * u` over equal-length slices. Slicing `l` to
/// `dst.len()` up front lets the inner loop run without bounds checks.
#[inline]
fn axpy_sub(dst: &mut [f64], l: &[f64], u: f64) {
    gemm::axpy_sub(dst, l, u);
}

/// `dst[i] += src[i]` over equal-length slices (assembly fast path for
/// contribution blocks whose variables land on consecutive parent rows).
#[inline]
pub(crate) fn add_assign_slice(dst: &mut [f64], src: &[f64]) {
    let n = dst.len();
    let src = &src[..n];
    for i in 0..n {
        dst[i] += src[i];
    }
}

/// Partial LU of the leading `npiv` columns of a square front `w`
/// (order `f = w.nrows()`), with partial pivoting restricted to the
/// fully-summed rows `0..npiv`.
///
/// On return, the leading `npiv` columns hold `L` (unit diagonal implied)
/// below the diagonal and `U` on/above it; the trailing
/// `(f-npiv) x (f-npiv)` block holds the Schur complement (contribution
/// block). `row_perm[k]` records the row swapped into position `k`.
///
/// Restricting pivot search to the fully-summed rows is exact for the
/// diagonally dominant problems generated in this reproduction and is the
/// discipline MUMPS follows before resorting to delayed pivots (which we
/// do not model; a tiny pivot is an error instead).
pub fn partial_lu(
    w: &mut DenseMat,
    npiv: usize,
    row_perm: &mut Vec<usize>,
) -> Result<(), KernelError> {
    let f = w.nrows();
    assert_eq!(f, w.ncols(), "frontal matrices are square");
    assert!(npiv <= f);
    row_perm.clear();
    row_perm.extend(0..f);
    for k in 0..npiv {
        // Pivot: largest magnitude in column k among fully-summed rows.
        let mut piv_row = k;
        let mut piv_val = w.get(k, k).abs();
        for i in k + 1..npiv {
            let v = w.get(i, k).abs();
            if v > piv_val {
                piv_val = v;
                piv_row = i;
            }
        }
        if piv_val < 1e-300 {
            return Err(KernelError::TinyPivot { step: k, value: w.get(piv_row, k) });
        }
        if piv_row != k {
            w.swap_rows(k, piv_row);
            row_perm.swap(k, piv_row);
        }
        let d = w.get(k, k);
        // Scale column k below the diagonal.
        let inv = 1.0 / d;
        for i in k + 1..f {
            *w.get_mut(i, k) *= inv;
        }
        // Rank-1 update of the trailing block: W[k+1.., k+1..] -= l * u.
        // Splitting after column k separates the finished L column from
        // the columns being updated, so the axpy runs on plain slices.
        let (head, tail) = w.data.split_at_mut((k + 1) * f);
        let lcol = &head[k * f + k + 1..];
        for colj in tail.chunks_exact_mut(f) {
            let ukj = colj[k];
            if ukj == 0.0 {
                continue;
            }
            axpy_sub(&mut colj[k + 1..], lcol, ukj);
        }
    }
    Ok(())
}

/// Fixed column-chunk width of the parallel trailing sweep (a multiple
/// of the microkernel tile width). The partition never changes results:
/// every column's update is computed independently from the shared
/// packed panel, so any chunking — including the single-chunk sequential
/// sweep — produces bit-identical bytes.
const PAR_COL_CHUNK: usize = 8 * gemm::NR;

/// Below this many trailing columns a parallel dispatch cannot pay for
/// its thread handoff; stay on the single-chunk path.
const PAR_MIN_COLS: usize = 2 * PAR_COL_CHUNK;

/// One chunk of the LU trailing update: for every column of `cols`
/// (whole front columns, length `f` each), solve `L11` against the
/// fully-summed rows `k0..kend` (forming `U12`), then subtract
/// `L21 · U12` from rows `kend..` through the packed microkernel.
fn lu_trailing_chunk(
    cols: &mut [f64],
    f: usize,
    k0: usize,
    kend: usize,
    panel: &[f64],
    ap: &gemm::APack<'_>,
) {
    let nc = cols.len() / f;
    solve_u12_rec(cols, f, k0, kend, panel);
    let mut bp = Vec::new();
    gemm::pack_b(&mut bp, &cols[k0..], f, kend - k0, nc);
    gemm::gemm_sub_packed(ap, &bp, nc, &mut cols[kend..], f);
}

/// Width at which the recursive triangular solves fall back to the
/// per-column `axpy_sub` loop (the solve is L1-resident at this size).
const TRSM_BASE: usize = 16;

/// In-place unit-lower-triangular solve forming `U12`: applies
/// `L(k0..kend, k0..kend)⁻¹` to rows `k0..kend` of every column in
/// `cols` (L read from `panel`). Recursive: the top half solves, one
/// packed GEMM pushes it into the bottom-half rows, the bottom half
/// solves — so the O(nc·kb²) solve flops run through the microkernels
/// instead of column-at-a-time `axpy_sub`. Contributions still land in
/// ascending-`k` order per element; only the rounding granularity of
/// the accumulation changes (axpy two-op steps vs one fused GEMM
/// chain), which the blocked-vs-unblocked tolerance tests cover.
fn solve_u12_rec(cols: &mut [f64], f: usize, k0: usize, kend: usize, panel: &[f64]) {
    let kb = kend - k0;
    if kb <= TRSM_BASE {
        for colj in cols.chunks_exact_mut(f) {
            for k in k0..kend {
                let ukj = colj[k];
                if ukj == 0.0 {
                    continue;
                }
                let base = k * f + k + 1;
                axpy_sub(&mut colj[k + 1..kend], &panel[base..base + kend - k - 1], ukj);
            }
        }
        return;
    }
    let h = kb / 2;
    let mid = k0 + h;
    solve_u12_rec(cols, f, k0, mid, panel);
    let nc = cols.len() / f;
    let mut ws = GemmWorkspace::new();
    let ap = gemm::pack_a(&mut ws, &panel[k0 * f + mid..], f, kend - mid, h);
    let mut bp = Vec::new();
    gemm::pack_b(&mut bp, &cols[k0..], f, h, nc);
    gemm::gemm_sub_packed(&ap, &bp, nc, &mut cols[mid..], f);
    solve_u12_rec(cols, f, mid, kend, panel);
}

/// The LDLᵀ mirror analogue of [`solve_u12_rec`]: subtracts
/// `L(k0..kend, k0..kend)_strict · B` from rows `k0..kend` of every
/// column, where the `B` coefficients (`d_k·l_{jk}`) are already final
/// in `bvals` (no feedback, unlike the LU solve — the recursion exists
/// purely to route the triangular flops through the microkernels).
/// `bvals` is `kb_tot × nc` column-major with rows indexed by
/// `k - gk0`.
#[allow(clippy::too_many_arguments)]
fn ldlt_mirror_rec(
    cols: &mut [f64],
    f: usize,
    k0: usize,
    kend: usize,
    panel: &[f64],
    bvals: &[f64],
    kb_tot: usize,
    gk0: usize,
) {
    let kb = kend - k0;
    if kb <= TRSM_BASE {
        for (jl, colj) in cols.chunks_exact_mut(f).enumerate() {
            for k in k0..kend {
                let ljk_d = bvals[jl * kb_tot + (k - gk0)];
                if ljk_d == 0.0 {
                    continue;
                }
                let base = k * f + k + 1;
                axpy_sub(&mut colj[k + 1..kend], &panel[base..base + kend - k - 1], ljk_d);
            }
        }
        return;
    }
    let h = kb / 2;
    let mid = k0 + h;
    ldlt_mirror_rec(cols, f, k0, mid, panel, bvals, kb_tot, gk0);
    let nc = cols.len() / f;
    let mut ws = GemmWorkspace::new();
    let ap = gemm::pack_a(&mut ws, &panel[k0 * f + mid..], f, kend - mid, h);
    let mut bp = Vec::new();
    gemm::pack_b(&mut bp, &bvals[k0 - gk0..], kb_tot, h, nc);
    gemm::gemm_sub_packed(&ap, &bp, nc, &mut cols[mid..], f);
    ldlt_mirror_rec(cols, f, mid, kend, panel, bvals, kb_tot, gk0);
}

/// One chunk of the LDLᵀ trailing update: for every column `j`
/// (`global_j0 + local`), form the scaled row `B(k,j) = d_k·l_{jk}`,
/// apply the mirror update to the fully-summed rows `k+1..kend`, then
/// subtract `L21 · B` from rows `kend..` through the packed microkernel.
#[allow(clippy::too_many_arguments)]
fn ldlt_trailing_chunk(
    cols: &mut [f64],
    global_j0: usize,
    f: usize,
    k0: usize,
    kend: usize,
    panel: &[f64],
    ap: &gemm::APack<'_>,
    d: &[f64],
) {
    let kb = kend - k0;
    let nc = cols.len() / f;
    // The scaled rows depend only on the (finished) panel and `d`, so
    // they can be formed up front and the mirror update deferred to the
    // recursive GEMM-rich sweep.
    let mut bvals = vec![0.0; kb * nc];
    for jl in 0..nc {
        let gj = global_j0 + jl;
        for k in k0..kend {
            bvals[jl * kb + (k - k0)] = panel[k * f + gj] * d[k - k0];
        }
    }
    ldlt_mirror_rec(cols, f, k0, kend, panel, &bvals, kb, k0);
    let mut bp = Vec::new();
    gemm::pack_b(&mut bp, &bvals, kb, kb, nc);
    gemm::gemm_sub_packed(ap, &bp, nc, &mut cols[kend..], f);
}

/// Runs `chunk_fn` over the trailing columns, either as one sequential
/// chunk or as fixed-width chunks fanned out over up to `threads` rayon
/// workers. Chunks write disjoint whole columns and read only the shared
/// packed panel, so there is **no cross-thread reduction to order**: the
/// per-element accumulation order is pinned inside the microkernel
/// (ascending `k`), and the output is bit-identical for every thread
/// count and chunk partition.
fn dispatch_trailing(
    trailing: &mut [f64],
    f: usize,
    threads: usize,
    chunk_fn: impl Fn(usize, &mut [f64]) + Sync,
) {
    let ncols = trailing.len() / f;
    if threads <= 1 || ncols < PAR_MIN_COLS {
        chunk_fn(0, trailing);
        return;
    }
    let chunks: Vec<(usize, &mut [f64])> = trailing
        .chunks_mut(f * PAR_COL_CHUNK)
        .enumerate()
        .map(|(i, c)| (i * PAR_COL_CHUNK, c))
        .collect();
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
    pool.install(|| {
        chunks.into_par_iter().for_each(|(c0, cols)| chunk_fn(c0, cols));
    });
}

/// Width at which the recursive panel factorization stops splitting and
/// runs the rank-1 column loop directly. At or below this width the
/// sub-panel is cache-resident and a GEMM call cannot pay for its
/// packing; above it the right half of each split is updated through the
/// packed microkernels instead of `axpy_sub`.
const PANEL_BASE: usize = 8;

/// Rank-1 panel LU over columns `k0..k0+kb`: the historical unblocked
/// panel loop — pivot (argmax over rows `k..npiv`, strict `>`), swap
/// across all columns, scale, then `axpy_sub` updates of the remaining
/// panel columns only. The base case of [`panel_lu_rec`] and the
/// reference the `panel` benchmark compares the recursion against.
fn panel_lu_rank1(
    w: &mut DenseMat,
    npiv: usize,
    row_perm: &mut [usize],
    k0: usize,
    kb: usize,
) -> Result<(), KernelError> {
    let f = w.nrows;
    for k in k0..k0 + kb {
        let mut piv_row = k;
        let mut piv_val = w.get(k, k).abs();
        for i in k + 1..npiv {
            let v = w.get(i, k).abs();
            if v > piv_val {
                piv_val = v;
                piv_row = i;
            }
        }
        if piv_val < 1e-300 {
            return Err(KernelError::TinyPivot { step: k, value: w.get(piv_row, k) });
        }
        if piv_row != k {
            w.swap_rows(k, piv_row);
            row_perm.swap(k, piv_row);
        }
        let inv = 1.0 / w.get(k, k);
        for i in k + 1..f {
            *w.get_mut(i, k) *= inv;
        }
        // Update only the remaining sub-panel columns now.
        let (head, tail) = w.data.split_at_mut((k + 1) * f);
        let lcol = &head[k * f + k + 1..];
        for colj in tail.chunks_exact_mut(f).take(k0 + kb - k - 1) {
            let ukj = colj[k];
            if ukj == 0.0 {
                continue;
            }
            axpy_sub(&mut colj[k + 1..], lcol, ukj);
        }
    }
    Ok(())
}

/// Recursive panel LU over columns `k0..k0+kb`: split the panel in
/// halves, factor the left half, apply the left half to the right half
/// (triangular solve on the fully-summed panel rows + packed-GEMM update
/// of the rows below — exactly [`lu_trailing_chunk`] restricted to the
/// right-half columns), then recurse into the right half. The pivot rule
/// is unchanged (argmax over rows `k..npiv`, strict `>`), so pivot
/// choices match the rank-1 panel; at widths `<= PANEL_BASE` (hence at
/// `nb = 1`) the code path *is* the rank-1 loop.
fn panel_lu_rec(
    w: &mut DenseMat,
    npiv: usize,
    row_perm: &mut [usize],
    k0: usize,
    kb: usize,
    ws: &mut GemmWorkspace,
) -> Result<(), KernelError> {
    let f = w.nrows;
    if kb <= PANEL_BASE {
        return panel_lu_rank1(w, npiv, row_perm, k0, kb);
    }
    let h = kb / 2;
    panel_lu_rec(w, npiv, row_perm, k0, h, ws)?;
    let mid = k0 + h;
    {
        let (panel, rest) = w.data.split_at_mut(mid * f);
        let cols = &mut rest[..(kb - h) * f];
        let ap = gemm::pack_a(ws, &panel[k0 * f + mid..], f, f - mid, h);
        lu_trailing_chunk(cols, f, k0, mid, panel, &ap);
    }
    panel_lu_rec(w, npiv, row_perm, mid, kb - h, ws)
}

/// Recursive panel LDLᵀ over columns `k0..k0+kb` (all rows, both
/// triangles kept current — the discipline of the unblocked kernel).
/// Same halving scheme as [`panel_lu_rec`], with the right-half update
/// delegated to [`ldlt_trailing_chunk`].
fn panel_ldlt_rec(
    w: &mut DenseMat,
    k0: usize,
    kb: usize,
    ws: &mut GemmWorkspace,
) -> Result<(), KernelError> {
    let f = w.nrows;
    if kb <= PANEL_BASE {
        for k in k0..k0 + kb {
            let d = w.get(k, k);
            if d.abs() < 1e-300 {
                return Err(KernelError::TinyPivot { step: k, value: d });
            }
            let inv = 1.0 / d;
            for i in k + 1..f {
                *w.get_mut(i, k) *= inv;
            }
            let (head, tail) = w.data.split_at_mut((k + 1) * f);
            let lcol = &head[k * f + k + 1..];
            for (jt, colj) in tail.chunks_exact_mut(f).take(k0 + kb - k - 1).enumerate() {
                let ljk_d = lcol[jt] * d;
                if ljk_d == 0.0 {
                    continue;
                }
                axpy_sub(&mut colj[k + 1..], lcol, ljk_d);
            }
        }
        return Ok(());
    }
    let h = kb / 2;
    panel_ldlt_rec(w, k0, h, ws)?;
    let mid = k0 + h;
    let dvals: Vec<f64> = (k0..mid).map(|k| w.data[k * f + k]).collect();
    {
        let (panel, rest) = w.data.split_at_mut(mid * f);
        let cols = &mut rest[..(kb - h) * f];
        let ap = gemm::pack_a(ws, &panel[k0 * f + mid..], f, f - mid, h);
        ldlt_trailing_chunk(cols, mid, f, k0, mid, panel, &ap, &dvals);
    }
    panel_ldlt_rec(w, mid, kb - h, ws)
}

/// Cache-blocked variant of [`partial_lu`]: identical result (same pivot
/// choices), computed by panels of `nb` columns with a packed-GEMM
/// trailing update — the textbook BLAS-3 restructuring over the
/// [`crate::gemm`] microkernels. Single-threaded; see
/// [`partial_lu_blocked_mt`] for the within-front parallel variant
/// (which this delegates to and is bit-identical with).
pub fn partial_lu_blocked(
    w: &mut DenseMat,
    npiv: usize,
    nb: usize,
    row_perm: &mut Vec<usize>,
) -> Result<(), KernelError> {
    partial_lu_blocked_mt(w, npiv, nb, row_perm, 1)
}

/// [`partial_lu_blocked`] with the trailing update of each panel fanned
/// out across up to `threads` rayon workers (within-front parallelism —
/// the "malleable task" axis). Output bytes are identical for every
/// `threads` value: the panel factorization is sequential, and the
/// parallel trailing sweep partitions columns disjointly with a pinned
/// per-element accumulation order (see [`crate::gemm`]).
pub fn partial_lu_blocked_mt(
    w: &mut DenseMat,
    npiv: usize,
    nb: usize,
    row_perm: &mut Vec<usize>,
    threads: usize,
) -> Result<(), KernelError> {
    let f = w.nrows();
    assert_eq!(f, w.ncols(), "frontal matrices are square");
    assert!(npiv <= f);
    let nb = nb.max(1);
    row_perm.clear();
    row_perm.extend(0..f);
    let mut ws = GemmWorkspace::new();
    let mut k0 = 0;
    while k0 < npiv {
        let kb = nb.min(npiv - k0);
        // ---- Panel factorization (recursive, GEMM-rich) on columns
        // k0..k0+kb. ----
        panel_lu_rec(w, npiv, row_perm, k0, kb, &mut ws)?;
        let kend = k0 + kb;
        // ---- Columns right of the panel: the triangular U12 solve
        // (rows k0..kend) followed by the GEMM update of rows kend..f,
        // `W22 -= L21 · U12`, through the packed microkernels. L21 is
        // packed once per panel and read-shared by every chunk. ----
        if kend < f {
            let (panel, trailing) = w.data.split_at_mut(kend * f);
            let ap = gemm::pack_a(&mut ws, &panel[k0 * f + kend..], f, f - kend, kb);
            dispatch_trailing(trailing, f, threads, |_, cols| {
                lu_trailing_chunk(cols, f, k0, kend, panel, &ap);
            });
        }
        k0 = kend;
    }
    Ok(())
}

/// [`partial_lu_blocked`] with the *rank-1* panel of the pre-recursive
/// kernel: identical pivot rule and trailing update, but the panel
/// columns advance by `axpy_sub` alone. Kept as the reference the
/// `panel` benchmark and the recursive-panel tests compare against —
/// the drivers never call it.
pub fn partial_lu_blocked_rank1_panel(
    w: &mut DenseMat,
    npiv: usize,
    nb: usize,
    row_perm: &mut Vec<usize>,
) -> Result<(), KernelError> {
    let f = w.nrows();
    assert_eq!(f, w.ncols(), "frontal matrices are square");
    assert!(npiv <= f);
    let nb = nb.max(1);
    row_perm.clear();
    row_perm.extend(0..f);
    let mut ws = GemmWorkspace::new();
    let mut k0 = 0;
    while k0 < npiv {
        let kb = nb.min(npiv - k0);
        panel_lu_rank1(w, npiv, row_perm, k0, kb)?;
        let kend = k0 + kb;
        if kend < f {
            let (panel, trailing) = w.data.split_at_mut(kend * f);
            let ap = gemm::pack_a(&mut ws, &panel[k0 * f + kend..], f, f - kend, kb);
            dispatch_trailing(trailing, f, 1, |_, cols| {
                lu_trailing_chunk(cols, f, k0, kend, panel, &ap);
            });
        }
        k0 = kend;
    }
    Ok(())
}

/// Partial LDLᵀ of the leading `npiv` columns of a symmetric front stored
/// *fully* (both triangles) in `w`; no pivoting (1x1 diagonal pivots),
/// suitable for the diagonally dominant symmetric problems here.
///
/// On return, columns `0..npiv` hold `L` below the diagonal, `D` on it;
/// the trailing block holds the symmetric Schur complement.
pub fn partial_ldlt(w: &mut DenseMat, npiv: usize) -> Result<(), KernelError> {
    let f = w.nrows();
    assert_eq!(f, w.ncols());
    assert!(npiv <= f);
    for k in 0..npiv {
        let d = w.get(k, k);
        if d.abs() < 1e-300 {
            return Err(KernelError::TinyPivot { step: k, value: d });
        }
        let inv = 1.0 / d;
        for i in k + 1..f {
            *w.get_mut(i, k) *= inv;
        }
        // Rank-1 update over *full* trailing columns (rows k+1..f), which
        // keeps both triangles current directly — no separate mirror pass.
        // The lower triangle and diagonal see the exact subtraction
        // sequence of a lower-only update, so the factor and the lower
        // Schur triangle are unchanged; upper entries are now computed by
        // the symmetric formula instead of copied.
        let (head, tail) = w.data.split_at_mut((k + 1) * f);
        let lcol = &head[k * f + k + 1..];
        for (jt, colj) in tail.chunks_exact_mut(f).enumerate() {
            let ljk_d = lcol[jt] * d; // l_jk * d_k
            if ljk_d == 0.0 {
                continue;
            }
            axpy_sub(&mut colj[k + 1..], lcol, ljk_d);
        }
    }
    Ok(())
}

/// Cache-blocked variant of [`partial_ldlt`]: same (unpivoted) pivot
/// sequence, computed by panels of `nb` columns. Panel columns keep the
/// rank-1 form (all rows); trailing columns receive the fully-summed-row
/// mirror updates per column and a deferred `W22 -= L21 · (D·L21ᵀ)`
/// through the packed microkernels. Values differ from the rank-1 kernel
/// only by summation order. See [`partial_ldlt_blocked_mt`].
pub fn partial_ldlt_blocked(w: &mut DenseMat, npiv: usize, nb: usize) -> Result<(), KernelError> {
    partial_ldlt_blocked_mt(w, npiv, nb, 1)
}

/// [`partial_ldlt_blocked`] with the trailing update of each panel fanned
/// out across up to `threads` rayon workers. Bit-identical output for
/// every `threads` value, by the same argument as
/// [`partial_lu_blocked_mt`]: columns are partitioned disjointly and the
/// per-element accumulation order is pinned.
pub fn partial_ldlt_blocked_mt(
    w: &mut DenseMat,
    npiv: usize,
    nb: usize,
    threads: usize,
) -> Result<(), KernelError> {
    let f = w.nrows();
    assert_eq!(f, w.ncols());
    assert!(npiv <= f);
    let nb = nb.max(1);
    let mut ws = GemmWorkspace::new();
    let mut k0 = 0;
    while k0 < npiv {
        let kb = nb.min(npiv - k0);
        let kend = k0 + kb;
        // ---- Panel factorization (recursive, GEMM-rich) over the panel
        // columns only — all rows, both triangles current, same pivot
        // sequence as the unblocked kernel restricted to these columns. ----
        panel_ldlt_rec(w, k0, kb, &mut ws)?;
        // ---- Trailing columns: scaled rows `B(k,j) = d_k·l_jk` come
        // from the factored panel (the diagonal keeps `d_k`; scaling
        // touches only rows below it), mirror rows k+1..kend per column,
        // GEMM for rows kend..f. ----
        if kend < f {
            let dvals: Vec<f64> = (k0..kend).map(|k| w.data[k * f + k]).collect();
            let (panel, trailing) = w.data.split_at_mut(kend * f);
            let ap = gemm::pack_a(&mut ws, &panel[k0 * f + kend..], f, f - kend, kb);
            dispatch_trailing(trailing, f, threads, |c0, cols| {
                ldlt_trailing_chunk(cols, kend + c0, f, k0, kend, panel, &ap, &dvals);
            });
        }
        k0 = kend;
    }
    Ok(())
}

/// Production entry point used by the numeric drivers: picks the blocked
/// kernel for pivot blocks large enough to benefit, the rank-1 kernel
/// otherwise. Both compute the same factorization (identical pivot
/// choices; floating-point results differ only by summation order).
/// The threshold follows the `numeric/kernel` benchmarks: below it the
/// rank-1 kernel wins on this workload's cache-resident fronts.
pub fn factor_front_lu(
    w: &mut DenseMat,
    npiv: usize,
    row_perm: &mut Vec<usize>,
) -> Result<(), KernelError> {
    factor_front_lu_mt(w, npiv, row_perm, 1)
}

/// [`factor_front_lu`] with a within-front thread budget. The kernel
/// choice depends **only** on `npiv` — never on `threads` — so a
/// different cores-per-front setting can never change which arithmetic
/// runs, and the factors stay bit-identical across budgets.
pub fn factor_front_lu_mt(
    w: &mut DenseMat,
    npiv: usize,
    row_perm: &mut Vec<usize>,
    threads: usize,
) -> Result<(), KernelError> {
    if npiv >= BLOCK_THRESHOLD {
        partial_lu_blocked_mt(w, npiv, FRONT_NB, row_perm, threads)
    } else {
        partial_lu(w, npiv, row_perm)
    }
}

/// Symmetric analogue of [`factor_front_lu`]: blocked LDLᵀ for large
/// pivot blocks, rank-1 otherwise.
pub fn factor_front_ldlt(w: &mut DenseMat, npiv: usize) -> Result<(), KernelError> {
    factor_front_ldlt_mt(w, npiv, 1)
}

/// [`factor_front_ldlt`] with a within-front thread budget; same
/// `npiv`-only dispatch rule as [`factor_front_lu_mt`].
pub fn factor_front_ldlt_mt(
    w: &mut DenseMat,
    npiv: usize,
    threads: usize,
) -> Result<(), KernelError> {
    if npiv >= BLOCK_THRESHOLD {
        partial_ldlt_blocked_mt(w, npiv, FRONT_NB, threads)
    } else {
        partial_ldlt(w, npiv)
    }
}

/// Pivot-block size above which the numeric drivers switch from the
/// rank-1 kernels to the packed-GEMM blocked kernels. Set from the
/// `numeric/kernel` benchmarks; with the packed microkernels the
/// crossover sits far below the old axpy-based value of 512.
const BLOCK_THRESHOLD: usize = 128;
/// Panel width used by the drivers' blocked kernels. With the recursive
/// panel and triangular solves the panel is no longer axpy-bound, so the
/// width is set by the trailing update alone: a wide panel (large GEMM
/// inner dimension `kc`) amortizes the compulsory C read+write traffic
/// over more flops. 128 wins across front sizes 256–1024 in the
/// `perf_baseline` nb sweep; public so the harness benchmarks the
/// production configuration.
pub const FRONT_NB: usize = 128;

/// Full dense LU solve used as a test oracle: solves `A x = b` with
/// partial pivoting over all rows. Returns `None` for singular input.
pub fn dense_solve(a: &DenseMat, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    assert_eq!(b.len(), n);
    let mut w = a.clone();
    let mut x = b.to_vec();
    for k in 0..n {
        let (mut pr, mut pv) = (k, w.get(k, k).abs());
        for i in k + 1..n {
            let v = w.get(i, k).abs();
            if v > pv {
                pv = v;
                pr = i;
            }
        }
        if pv < 1e-300 {
            return None;
        }
        if pr != k {
            w.swap_rows(k, pr);
            x.swap(k, pr);
        }
        let inv = 1.0 / w.get(k, k);
        for i in k + 1..n {
            let l = w.get(i, k) * inv;
            if l == 0.0 {
                continue;
            }
            *w.get_mut(i, k) = l;
            for j in k + 1..n {
                let ukj = w.get(k, j);
                *w.get_mut(i, j) -= l * ukj;
            }
            x[i] -= l * x[k];
        }
    }
    for k in (0..n).rev() {
        let mut s = x[k];
        for j in k + 1..n {
            s -= w.get(k, j) * x[j];
        }
        x[k] = s / w.get(k, k);
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn front_from(rows: &[&[f64]]) -> DenseMat {
        let n = rows.len();
        let mut w = DenseMat::zeros(n, n);
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                *w.get_mut(i, j) = v;
            }
        }
        w
    }

    #[test]
    fn full_lu_matches_dense_solve() {
        let a = front_from(&[&[4.0, 1.0, 0.0], &[1.0, 5.0, 2.0], &[0.0, 2.0, 6.0]]);
        let mut w = a.clone();
        let mut perm = Vec::new();
        partial_lu(&mut w, 3, &mut perm).unwrap();
        // Solve via the factors and compare with the oracle.
        let b = vec![1.0, 2.0, 3.0];
        let xo = dense_solve(&a, &b).unwrap();
        // forward/backward with perm
        let mut y = [0.0; 3];
        for (k, &p) in perm.iter().enumerate() {
            y[k] = b[p];
        }
        for k in 0..3 {
            for i in k + 1..3 {
                y[i] -= w.get(i, k) * y[k];
            }
        }
        for k in (0..3).rev() {
            for j in k + 1..3 {
                y[k] -= w.get(k, j) * y[j];
            }
            y[k] /= w.get(k, k);
        }
        for i in 0..3 {
            assert!((y[i] - xo[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn partial_lu_schur_complement_is_correct() {
        // A = [A11 A12; A21 A22], npiv = 2; Schur = A22 - A21 A11^-1 A12.
        let a = front_from(&[
            &[4.0, 1.0, 2.0, 0.5],
            &[1.0, 5.0, 0.0, 1.0],
            &[2.0, 0.0, 6.0, 1.5],
            &[0.5, 1.0, 1.5, 7.0],
        ]);
        let mut w = a.clone();
        let mut perm = Vec::new();
        partial_lu(&mut w, 2, &mut perm).unwrap();
        // Compute the Schur complement with the oracle: solve A11 X = A12.
        let a11 = front_from(&[&[4.0, 1.0], &[1.0, 5.0]]);
        let x1 = dense_solve(&a11, &[2.0, 0.0]).unwrap();
        let x2 = dense_solve(&a11, &[0.5, 1.0]).unwrap();
        let a21 = [[2.0, 0.0], [0.5, 1.0]];
        let a22 = [[6.0, 1.5], [1.5, 7.0]];
        for i in 0..2 {
            for j in 0..2 {
                let xj = if j == 0 { &x1 } else { &x2 };
                let expect = a22[i][j] - (a21[i][0] * xj[0] + a21[i][1] * xj[1]);
                let got = w.get(2 + i, 2 + j);
                assert!((got - expect).abs() < 1e-12, "({i},{j}): {got} vs {expect}");
            }
        }
    }

    #[test]
    fn partial_lu_pivots_within_block() {
        // Needs a row swap inside the fully-summed block.
        let a = front_from(&[&[0.0, 1.0, 1.0], &[2.0, 1.0, 0.0], &[1.0, 0.0, 3.0]]);
        let mut w = a.clone();
        let mut perm = Vec::new();
        partial_lu(&mut w, 2, &mut perm).unwrap();
        assert_eq!(&perm[..2], &[1, 0]);
    }

    #[test]
    fn singular_pivot_block_is_reported() {
        let a = front_from(&[&[0.0, 0.0], &[0.0, 1.0]]);
        let mut w = a.clone();
        let mut perm = Vec::new();
        assert!(matches!(partial_lu(&mut w, 1, &mut perm), Err(KernelError::TinyPivot { .. })));
    }

    #[test]
    fn ldlt_schur_matches_lu_schur_for_symmetric_input() {
        let a = front_from(&[
            &[4.0, 1.0, 2.0, 0.5],
            &[1.0, 5.0, 0.0, 1.0],
            &[2.0, 0.0, 6.0, 1.5],
            &[0.5, 1.0, 1.5, 7.0],
        ]);
        let mut wl = a.clone();
        let mut perm = Vec::new();
        partial_lu(&mut wl, 2, &mut perm).unwrap();
        let mut ws = a.clone();
        partial_ldlt(&mut ws, 2).unwrap();
        for i in 2..4 {
            for j in 2..=i {
                assert!((wl.get(i, j) - ws.get(i, j)).abs() < 1e-12, "Schur mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn ldlt_reconstructs_matrix() {
        let a = front_from(&[&[4.0, 1.0, 2.0], &[1.0, 5.0, 0.5], &[2.0, 0.5, 6.0]]);
        let mut w = a.clone();
        partial_ldlt(&mut w, 3).unwrap();
        // Rebuild A = L D L^T from the packed result.
        let mut l = DenseMat::zeros(3, 3);
        let mut d = [0.0; 3];
        for k in 0..3 {
            d[k] = w.get(k, k);
            *l.get_mut(k, k) = 1.0;
            for i in k + 1..3 {
                *l.get_mut(i, k) = w.get(i, k);
            }
        }
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l.get(i, k) * d[k] * l.get(j, k);
                }
                assert!((s - a.get(i, j)).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    fn random_front(f: usize, seed: u64) -> DenseMat {
        let mut w = DenseMat::zeros(f, f);
        let mut h = seed | 1;
        for j in 0..f {
            for i in 0..f {
                h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                *w.get_mut(i, j) = if i == j { f as f64 } else { v };
            }
        }
        w
    }

    #[test]
    fn blocked_lu_matches_unblocked() {
        for (f, p, nb) in [(7, 4, 2), (20, 20, 8), (33, 17, 8), (64, 50, 16), (65, 65, 32)] {
            let a = random_front(f, (f * 31 + p) as u64);
            let mut w1 = a.clone();
            let mut w2 = a.clone();
            let (mut p1, mut p2) = (Vec::new(), Vec::new());
            partial_lu(&mut w1, p, &mut p1).unwrap();
            partial_lu_blocked(&mut w2, p, nb, &mut p2).unwrap();
            assert_eq!(p1, p2, "pivot choices must agree (f={f}, p={p})");
            for j in 0..f {
                for i in 0..f {
                    let (x, y) = (w1.get(i, j), w2.get(i, j));
                    assert!(
                        (x - y).abs() <= 1e-10 * (1.0 + x.abs()),
                        "(f={f},p={p}) mismatch at ({i},{j}): {x} vs {y}"
                    );
                }
            }
        }
    }

    fn random_sym_front(f: usize, seed: u64) -> DenseMat {
        let mut w = random_front(f, seed);
        for j in 0..f {
            for i in 0..j {
                let v = w.get(j, i);
                *w.get_mut(i, j) = v;
            }
        }
        w
    }

    #[test]
    fn blocked_ldlt_matches_unblocked() {
        for (f, p, nb) in [(7, 4, 2), (20, 20, 8), (33, 17, 8), (64, 50, 16), (65, 65, 32)] {
            let a = random_sym_front(f, (f * 17 + p) as u64);
            let mut w1 = a.clone();
            let mut w2 = a.clone();
            partial_ldlt(&mut w1, p).unwrap();
            partial_ldlt_blocked(&mut w2, p, nb).unwrap();
            for j in 0..f {
                for i in 0..f {
                    let (x, y) = (w1.get(i, j), w2.get(i, j));
                    assert!(
                        (x - y).abs() <= 1e-10 * (1.0 + x.abs()),
                        "(f={f},p={p}) mismatch at ({i},{j}): {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn mt_trailing_update_is_bit_identical() {
        // Large enough that the first panels' trailing sweeps exceed
        // PAR_MIN_COLS and actually take the chunked path.
        let a = random_front(160, 7);
        for threads in [2, 4, 8] {
            let mut w1 = a.clone();
            let mut w2 = a.clone();
            let (mut p1, mut p2) = (Vec::new(), Vec::new());
            partial_lu_blocked_mt(&mut w1, 96, 32, &mut p1, 1).unwrap();
            partial_lu_blocked_mt(&mut w2, 96, 32, &mut p2, threads).unwrap();
            assert_eq!(p1, p2, "pivots (threads={threads})");
            for (x, y) in w1.data.iter().zip(&w2.data) {
                assert_eq!(x.to_bits(), y.to_bits(), "LU bits differ (threads={threads})");
            }
        }
        let s = random_sym_front(160, 11);
        for threads in [2, 8] {
            let mut w1 = s.clone();
            let mut w2 = s.clone();
            partial_ldlt_blocked_mt(&mut w1, 96, 32, 1).unwrap();
            partial_ldlt_blocked_mt(&mut w2, 96, 32, threads).unwrap();
            for (x, y) in w1.data.iter().zip(&w2.data) {
                assert_eq!(x.to_bits(), y.to_bits(), "LDLT bits differ (threads={threads})");
            }
        }
    }

    #[test]
    fn blocked_lu_detects_singularity_too() {
        let mut w = DenseMat::zeros(4, 4);
        *w.get_mut(0, 0) = 1.0; // rank 1: second pivot is exactly zero
        let mut perm = Vec::new();
        assert!(matches!(
            partial_lu_blocked(&mut w, 2, 2, &mut perm),
            Err(KernelError::TinyPivot { .. })
        ));
    }

    #[test]
    fn factor_front_dispatches_consistently() {
        // Above the threshold the dispatcher takes the blocked path; the
        // pivot choices must match the rank-1 kernel's exactly.
        let a = random_front(540, 99);
        let mut w1 = a.clone();
        let mut w2 = a.clone();
        let (mut p1, mut p2) = (Vec::new(), Vec::new());
        factor_front_lu(&mut w1, 520, &mut p1).unwrap(); // blocked path
        partial_lu(&mut w2, 520, &mut p2).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn mul_vec_add_works() {
        let a = front_from(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut y = vec![0.0, 0.0];
        a.mul_vec_add(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }
}
