//! Packed cache-blocked GEMM microkernels with runtime SIMD dispatch.
//!
//! This module is the flop engine behind the blocked factorization
//! kernels of [`crate::dense`]: it computes `C -= A · B` (the
//! trailing-matrix update shape) through the classic three-step BLIS
//! recipe — pack `A` into row-strip panels, pack `B` into column-strip
//! panels, then sweep a register-tiled microkernel over the packed
//! buffers. Three microkernel backends are provided and selected once at
//! runtime (see [`active_simd`]):
//!
//! * **AVX-512F** — a 16×6 register tile (two 8-row strips of `zmm`
//!   accumulators);
//! * **AVX2+FMA** — an 8×6 register tile (twelve `ymm` accumulators);
//! * **scalar** — the same 8×6 tile computed with [`f64::mul_add`].
//!
//! # Bit-exactness contract
//!
//! Every backend computes each output element through the *identical*
//! floating-point operation sequence: an accumulator initialized to
//! zero, one fused multiply-add per `k` in ascending order, and a single
//! final subtraction from `C`. SIMD width only changes how many such
//! independent per-element chains advance per instruction, never the
//! order or rounding of any chain (`mul_add` and `vfmadd` are both
//! correctly-rounded fused operations). Row/column remainders are
//! handled by padding the packed buffers with zeros and masking the
//! stores, so edge elements run the same chain as interior ones.
//! Consequently the results are **bit-identical across the scalar,
//! AVX2, and AVX-512 paths and across any tiling of the m/n loops** —
//! which is what lets the within-front parallel callers in
//! [`crate::dense`] split C among threads without a cross-thread
//! reduction and stay deterministic (tested by `forced_scalar_matches_
//! simd` and the `gemm_exact` proptest suite).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Rows per packed A strip (microkernel register-tile height unit).
pub const MR: usize = 8;
/// Columns per packed B strip (microkernel register-tile width).
pub const NR: usize = 6;
/// A-strips per row block of the packed sweep (`MC = MC_STRIPS · MR`
/// rows). Sized so an `MC × kc` A block stays cache-resident across the
/// full column sweep even at the widest panel the drivers use
/// (256 × 128 × 8 B = 256 KiB — comfortably L2).
const MC_STRIPS: usize = 32;

/// SIMD instruction set a microkernel sweep runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable fallback: `f64::mul_add` chains (still fused, still
    /// bit-identical to the vector paths).
    Scalar,
    /// AVX2 + FMA 8×6 tile.
    Avx2,
    /// AVX-512F 16×6 tile (falls back to the AVX2 tile for odd strips).
    Avx512,
}

impl SimdLevel {
    /// Stable name for reports and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2+fma",
            SimdLevel::Avx512 => "avx512f",
        }
    }
}

/// Detects the best supported level once (cached in a `OnceLock`).
pub fn detected_simd() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                return SimdLevel::Avx512;
            }
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    })
}

/// Test/bench override: 0 = auto (use [`detected_simd`]), else 1 + the
/// discriminant of the forced level (clamped to the detected level, so
/// forcing can only ever *lower* the path — forcing an unsupported
/// vector level is impossible).
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Forces the microkernel backend (clamped to the detected level);
/// `None` restores automatic dispatch. Intended for tests and benches —
/// the scalar/SIMD equivalence suite factors whole matrices under
/// `force_simd(Some(SimdLevel::Scalar))` and asserts bit-identical
/// output.
pub fn force_simd(level: Option<SimdLevel>) {
    let v = match level {
        None => 0,
        Some(SimdLevel::Scalar) => 1,
        Some(SimdLevel::Avx2) => 2,
        Some(SimdLevel::Avx512) => 3,
    };
    FORCED.store(v, Ordering::Release);
}

/// The level the next GEMM sweep will run with: the forced override if
/// set (clamped to hardware support), the detected level otherwise.
pub fn active_simd() -> SimdLevel {
    let det = detected_simd();
    match FORCED.load(Ordering::Acquire) {
        1 => SimdLevel::Scalar,
        2 => SimdLevel::Avx2.min(det),
        3 => SimdLevel::Avx512.min(det),
        _ => det,
    }
}

/// Reusable packing buffers (one per factorization call; the packed
/// panels are read-shared by every worker of a parallel sweep).
#[derive(Debug, Default)]
pub struct GemmWorkspace {
    apack: Vec<f64>,
}

impl GemmWorkspace {
    /// Fresh workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A packed A panel: `m × kc`, laid out as ⌈m/MR⌉ row strips, each strip
/// `kc` groups of `MR` consecutive row values (k-major, zero-padded to a
/// full strip).
#[derive(Debug)]
pub struct APack<'a> {
    data: &'a [f64],
    m: usize,
    kc: usize,
}

impl APack<'_> {
    /// Logical row count (unpadded).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Inner (k) dimension.
    pub fn kc(&self) -> usize {
        self.kc
    }
}

/// Packs `A` (`m × kc`, column-major with column stride `lda`, first
/// element `a[0]`) into `ws`, returning a borrowed view over the packed
/// strips.
pub fn pack_a<'w>(
    ws: &'w mut GemmWorkspace,
    a: &[f64],
    lda: usize,
    m: usize,
    kc: usize,
) -> APack<'w> {
    let strips = m.div_ceil(MR);
    ws.apack.clear();
    ws.apack.resize(strips * kc * MR, 0.0);
    for s in 0..strips {
        let i0 = s * MR;
        let rows = MR.min(m - i0);
        let base = s * kc * MR;
        for k in 0..kc {
            let src = &a[k * lda + i0..k * lda + i0 + rows];
            ws.apack[base + k * MR..base + k * MR + rows].copy_from_slice(src);
        }
    }
    APack { data: &ws.apack, m, kc }
}

/// Packs `B` (`kc × n`, column-major with column stride `ldb`, first
/// element `b[0]`) into `buf` as ⌈n/NR⌉ column strips, each strip `kc`
/// groups of `NR` column values (k-major, zero-padded to a full strip).
pub fn pack_b(buf: &mut Vec<f64>, b: &[f64], ldb: usize, kc: usize, n: usize) {
    let strips = n.div_ceil(NR);
    buf.clear();
    buf.resize(strips * kc * NR, 0.0);
    for t in 0..strips {
        let j0 = t * NR;
        let cols = NR.min(n - j0);
        let base = t * kc * NR;
        for c in 0..cols {
            let col = &b[(j0 + c) * ldb..(j0 + c) * ldb + kc];
            for (k, &v) in col.iter().enumerate() {
                buf[base + k * NR + c] = v;
            }
        }
    }
}

/// `C -= A · B` over packed panels: `c` points at `C(0,0)` of an
/// `apack.m() × n` block, column-major with column stride `ldc`.
/// `bpack` must hold `n` packed columns with inner dimension
/// `apack.kc()` (see [`pack_b`]). The sweep runs on [`active_simd`].
pub fn gemm_sub_packed(apack: &APack<'_>, bpack: &[f64], n: usize, c: &mut [f64], ldc: usize) {
    let (m, kc) = (apack.m, apack.kc);
    if m == 0 || n == 0 {
        return;
    }
    assert!(kc > 0, "empty inner dimension");
    assert!(ldc >= m && c.len() >= (n - 1) * ldc + m, "C block out of bounds");
    assert_eq!(bpack.len(), n.div_ceil(NR) * kc * NR, "B pack shape mismatch");
    let level = active_simd();
    let strips = m.div_ceil(MR);
    let col_strips = n.div_ceil(NR);
    // Row blocks of MC_STRIPS strips: the A block stays L2-resident
    // while every column strip of B sweeps over it, so A traffic does
    // not scale with n. Pure loop reordering — each output element's
    // fused chain is untouched, so the result is bit-identical to any
    // other tiling (see the module contract).
    let mut s_lo = 0;
    while s_lo < strips {
        let s_hi = (s_lo + MC_STRIPS).min(strips);
        for t in 0..col_strips {
            let j0 = t * NR;
            let n_active = NR.min(n - j0);
            let bp = &bpack[t * kc * NR..(t + 1) * kc * NR];
            let mut s = s_lo;
            while s < s_hi {
                let i0 = s * MR;
                let m_active = MR.min(m - i0);
                let ap = &apack.data[s * kc * MR..(s + 1) * kc * MR];
                let coff = j0 * ldc + i0;
                match level {
                    #[cfg(target_arch = "x86_64")]
                    SimdLevel::Avx512 if m_active == MR && s + 1 < s_hi && m - i0 - MR >= 1 => {
                        // Two full-or-padded strips at once; the second
                        // strip may be a row remainder (masked store).
                        let m2 = MR.min(m - i0 - MR);
                        let ap1 = &apack.data[(s + 1) * kc * MR..(s + 2) * kc * MR];
                        // SAFETY: avx512f verified by `active_simd`
                        // clamping to `detected_simd`; bounds asserted
                        // above.
                        unsafe {
                            x86::kernel_16x6_avx512(
                                kc,
                                ap.as_ptr(),
                                ap1.as_ptr(),
                                bp.as_ptr(),
                                c.as_mut_ptr().add(coff),
                                ldc,
                                MR + m2,
                                n_active,
                            );
                        }
                        s += 2;
                        continue;
                    }
                    #[cfg(target_arch = "x86_64")]
                    SimdLevel::Avx2 | SimdLevel::Avx512 => {
                        // SAFETY: avx2+fma implied by both levels (clamped
                        // to detection); bounds asserted above.
                        unsafe {
                            x86::kernel_8x6_avx2(
                                kc,
                                ap.as_ptr(),
                                bp.as_ptr(),
                                c.as_mut_ptr().add(coff),
                                ldc,
                                m_active,
                                n_active,
                            );
                        }
                    }
                    _ => kernel_8x6_scalar(kc, ap, bp, &mut c[coff..], ldc, m_active, n_active),
                }
                s += 1;
            }
        }
        s_lo = s_hi;
    }
}

/// Portable 8×6 microkernel: per-element fused multiply-add chains over
/// ascending `k`, then one subtraction — the exact operation sequence of
/// the vector kernels, lane by lane.
fn kernel_8x6_scalar(
    kc: usize,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    m_active: usize,
    n_active: usize,
) {
    let mut acc = [[0.0f64; MR]; NR];
    for k in 0..kc {
        let a = &ap[k * MR..k * MR + MR];
        let b = &bp[k * NR..k * NR + NR];
        for j in 0..NR {
            let bj = b[j];
            for r in 0..MR {
                acc[j][r] = a[r].mul_add(bj, acc[j][r]);
            }
        }
    }
    for j in 0..n_active {
        let col = &mut c[j * ldc..j * ldc + m_active];
        for r in 0..m_active {
            col[r] -= acc[j][r];
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! `std::arch` microkernels. All pointers address packed strips laid
    //! out by [`super::pack_a`] / [`super::pack_b`]; `c` addresses
    //! `C(i0,j0)` in the caller's column-major storage.

    use core::arch::x86_64::*;

    use super::{MR, NR};

    /// Lane mask for the low `n` of 4 `f64` lanes (maskload/maskstore).
    #[inline]
    fn mask4(n: usize) -> __m256i {
        // SAFETY: plain integer vector construction.
        unsafe {
            let set = |l: usize| if l < n { -1i64 } else { 0 };
            _mm256_setr_epi64x(set(0), set(1), set(2), set(3))
        }
    }

    /// 8×6 AVX2+FMA register tile: twelve `ymm` accumulators, one fused
    /// multiply-add chain per output element over ascending `k`, one
    /// final (masked) subtraction per column.
    ///
    /// # Safety
    /// Requires AVX2 and FMA. `ap`/`bp` must hold `kc` packed groups of
    /// `MR`/`NR` values; `c` must be valid for `m_active` rows in each of
    /// `n_active` columns with stride `ldc`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn kernel_8x6_avx2(
        kc: usize,
        ap: *const f64,
        bp: *const f64,
        c: *mut f64,
        ldc: usize,
        m_active: usize,
        n_active: usize,
    ) {
        let mut lo = [_mm256_setzero_pd(); NR];
        let mut hi = [_mm256_setzero_pd(); NR];
        for k in 0..kc {
            let a0 = _mm256_loadu_pd(ap.add(k * MR));
            let a1 = _mm256_loadu_pd(ap.add(k * MR + 4));
            for j in 0..NR {
                let b = _mm256_set1_pd(*bp.add(k * NR + j));
                lo[j] = _mm256_fmadd_pd(a0, b, lo[j]);
                hi[j] = _mm256_fmadd_pd(a1, b, hi[j]);
            }
        }
        if m_active == MR {
            for j in 0..n_active {
                let p = c.add(j * ldc);
                _mm256_storeu_pd(p, _mm256_sub_pd(_mm256_loadu_pd(p), lo[j]));
                let q = p.add(4);
                _mm256_storeu_pd(q, _mm256_sub_pd(_mm256_loadu_pd(q), hi[j]));
            }
        } else {
            let m0 = mask4(m_active.min(4));
            let m1 = mask4(m_active.saturating_sub(4));
            for j in 0..n_active {
                let p = c.add(j * ldc);
                let v = _mm256_maskload_pd(p, m0);
                _mm256_maskstore_pd(p, m0, _mm256_sub_pd(v, lo[j]));
                if m_active > 4 {
                    let q = p.add(4);
                    let v = _mm256_maskload_pd(q, m1);
                    _mm256_maskstore_pd(q, m1, _mm256_sub_pd(v, hi[j]));
                }
            }
        }
    }

    /// 4-wide `dst[i] -= l[i] * u`: one `vmulpd` + one `vsubpd` per
    /// group of lanes, scalar tail with the identical two rounded ops —
    /// bit-identical to [`super::axpy_sub_scalar`] element for element.
    ///
    /// # Safety
    /// Requires AVX. `l` must be at least as long as `dst`.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn axpy_sub_avx(dst: &mut [f64], l: &[f64], u: f64) {
        let n = dst.len();
        let vu = _mm256_set1_pd(u);
        let d = dst.as_mut_ptr();
        let s = l.as_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(d.add(i));
            let x = _mm256_loadu_pd(s.add(i));
            _mm256_storeu_pd(d.add(i), _mm256_sub_pd(v, _mm256_mul_pd(x, vu)));
            i += 4;
        }
        for k in i..n {
            dst[k] -= l[k] * u;
        }
    }

    /// 8-wide `dst[i] -= l[i] * u`: one `vmulpd` + one `vsubpd` per
    /// group of lanes, scalar tail with the identical two rounded ops —
    /// bit-identical to [`super::axpy_sub_scalar`] element for element
    /// (same two-op sequence as [`axpy_sub_avx`], just wider).
    ///
    /// # Safety
    /// Requires AVX-512F. `l` must be at least as long as `dst`.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn axpy_sub_avx512(dst: &mut [f64], l: &[f64], u: f64) {
        let n = dst.len();
        let vu = _mm512_set1_pd(u);
        let d = dst.as_mut_ptr();
        let s = l.as_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm512_loadu_pd(d.add(i));
            let x = _mm512_loadu_pd(s.add(i));
            _mm512_storeu_pd(d.add(i), _mm512_sub_pd(v, _mm512_mul_pd(x, vu)));
            i += 8;
        }
        for k in i..n {
            dst[k] -= l[k] * u;
        }
    }

    /// 16×6 AVX-512F register tile over two adjacent packed strips (the
    /// second may be a padded row remainder, handled by a masked store).
    ///
    /// # Safety
    /// Requires AVX-512F. `ap0`/`ap1` must each hold `kc` packed groups
    /// of `MR` values; `c` must be valid for `m_active` (> `MR`) rows in
    /// each of `n_active` columns with stride `ldc`.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn kernel_16x6_avx512(
        kc: usize,
        ap0: *const f64,
        ap1: *const f64,
        bp: *const f64,
        c: *mut f64,
        ldc: usize,
        m_active: usize,
        n_active: usize,
    ) {
        let mut lo = [_mm512_setzero_pd(); NR];
        let mut hi = [_mm512_setzero_pd(); NR];
        for k in 0..kc {
            let a0 = _mm512_loadu_pd(ap0.add(k * MR));
            let a1 = _mm512_loadu_pd(ap1.add(k * MR));
            for j in 0..NR {
                let b = _mm512_set1_pd(*bp.add(k * NR + j));
                lo[j] = _mm512_fmadd_pd(a0, b, lo[j]);
                hi[j] = _mm512_fmadd_pd(a1, b, hi[j]);
            }
        }
        let hi_rows = m_active - MR;
        let hmask: __mmask8 = if hi_rows >= 8 { 0xff } else { (1u8 << hi_rows) - 1 };
        for j in 0..n_active {
            let p = c.add(j * ldc);
            _mm512_storeu_pd(p, _mm512_sub_pd(_mm512_loadu_pd(p), lo[j]));
            let q = p.add(MR);
            let v = _mm512_maskz_loadu_pd(hmask, q);
            _mm512_mask_storeu_pd(q, hmask, _mm512_sub_pd(v, hi[j]));
        }
    }
}

/// `dst[i] -= l[i] * u` — the row operation of the rank-1 panel updates
/// in [`crate::dense`], dispatched to the vector unit when available.
///
/// Unlike the GEMM chains this is a two-op sequence per element (one
/// rounded multiply, one rounded subtraction — deliberately *not* fused,
/// matching the historical scalar loop), and every backend performs
/// exactly those two rounded operations per lane. The result is
/// therefore bit-identical across SIMD levels; width only changes how
/// many independent elements advance per instruction.
pub fn axpy_sub(dst: &mut [f64], l: &[f64], u: f64) {
    let n = dst.len();
    let l = &l[..n];
    match active_simd() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => {
            // SAFETY: the level is clamped to detection, so AVX-512F is
            // available; `l` re-sliced to `dst.len()` above.
            unsafe { x86::axpy_sub_avx512(dst, l, u) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            // SAFETY: AVX is implied by the level (clamped to
            // detection); `l` re-sliced to `dst.len()` above.
            unsafe { x86::axpy_sub_avx(dst, l, u) }
        }
        _ => axpy_sub_scalar(dst, l, u),
    }
}

fn axpy_sub_scalar(dst: &mut [f64], l: &[f64], u: f64) {
    for (d, &x) in dst.iter_mut().zip(l) {
        *d -= x * u;
    }
}

/// Naive reference: `C -= A · B` with the same per-element fused-chain
/// semantics (ascending `k`, `mul_add`, single subtraction). The packed
/// sweep must match this **bit-for-bit** on every backend — the
/// `gemm_exact` proptest suite holds it to that.
#[allow(clippy::too_many_arguments)]
pub fn gemm_sub_naive(
    m: usize,
    n: usize,
    kc: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0f64;
            for k in 0..kc {
                acc = a[k * lda + i].mul_add(b[j * ldb + k], acc);
            }
            c[j * ldc + i] -= acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// `FORCED` is process-global and the test harness runs tests
    /// concurrently; tests that set it serialize here.
    static FORCE_LOCK: Mutex<()> = Mutex::new(());

    fn force_guard() -> MutexGuard<'static, ()> {
        FORCE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn fill(seed: u64, len: usize) -> Vec<f64> {
        let mut h = seed | 1;
        (0..len)
            .map(|_| {
                h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect()
    }

    fn run_packed(m: usize, n: usize, kc: usize, seed: u64, level: SimdLevel) -> Vec<f64> {
        let a = fill(seed, m * kc);
        let b = fill(seed ^ 0xabcdef, kc * n);
        let mut c = fill(seed ^ 0x123456, m * n);
        let mut ws = GemmWorkspace::new();
        force_simd(Some(level));
        let ap = pack_a(&mut ws, &a, m, m, kc);
        let mut bp = Vec::new();
        pack_b(&mut bp, &b, kc, kc, n);
        gemm_sub_packed(&ap, &bp, n, &mut c, m);
        force_simd(None);
        c
    }

    #[test]
    fn packed_matches_naive_bitwise_all_levels() {
        let _g = force_guard();
        for &(m, n, kc) in
            &[(1, 1, 1), (8, 6, 4), (7, 5, 3), (16, 12, 8), (17, 13, 9), (40, 23, 16), (64, 64, 32)]
        {
            let a = fill(3 * m as u64 + 1, m * kc);
            let b = fill(5 * n as u64 + 2, kc * n);
            let c0 = fill(7 * kc as u64 + 3, m * n);
            let mut expect = c0.clone();
            gemm_sub_naive(m, n, kc, &a, m, &b, kc, &mut expect, m);
            for level in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512] {
                let mut c = c0.clone();
                let mut ws = GemmWorkspace::new();
                force_simd(Some(level));
                let ap = pack_a(&mut ws, &a, m, m, kc);
                let mut bp = Vec::new();
                pack_b(&mut bp, &b, kc, kc, n);
                gemm_sub_packed(&ap, &bp, n, &mut c, m);
                force_simd(None);
                for (i, (&x, &y)) in c.iter().zip(&expect).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "({m}x{n}x{kc}) level {:?} differs from naive at {i}: {x} vs {y}",
                        level
                    );
                }
            }
        }
    }

    #[test]
    fn levels_agree_bitwise() {
        let _g = force_guard();
        let base = run_packed(33, 21, 15, 99, SimdLevel::Scalar);
        for level in [SimdLevel::Avx2, SimdLevel::Avx512] {
            let got = run_packed(33, 21, 15, 99, level);
            assert!(
                base.iter().zip(&got).all(|(x, y)| x.to_bits() == y.to_bits()),
                "level {level:?} disagrees with scalar"
            );
        }
    }

    #[test]
    fn detection_is_cached_and_forcing_clamps() {
        let _g = force_guard();
        let det = detected_simd();
        assert_eq!(det, detected_simd());
        force_simd(Some(SimdLevel::Avx512));
        assert!(active_simd() <= det);
        force_simd(Some(SimdLevel::Scalar));
        assert_eq!(active_simd(), SimdLevel::Scalar);
        force_simd(None);
        assert_eq!(active_simd(), det);
    }

    #[test]
    fn axpy_sub_levels_agree_bitwise() {
        let _g = force_guard();
        for n in [1usize, 3, 4, 7, 8, 33, 100, 511] {
            let l = fill(21 + n as u64, n);
            let d0 = fill(43 + n as u64, n);
            let mut expect = d0.clone();
            force_simd(Some(SimdLevel::Scalar));
            axpy_sub(&mut expect, &l, 0.7315);
            for level in [SimdLevel::Avx2, SimdLevel::Avx512] {
                let mut d = d0.clone();
                force_simd(Some(level));
                axpy_sub(&mut d, &l, 0.7315);
                assert!(
                    d.iter().zip(&expect).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "axpy len {n} level {level:?} disagrees with scalar"
                );
            }
            force_simd(None);
        }
    }

    #[test]
    fn strided_c_block_is_respected() {
        // C embedded in a taller matrix (ldc > m): rows outside the
        // block must be untouched.
        let (m, n, kc, ldc) = (10usize, 7usize, 5usize, 16usize);
        let a = fill(11, m * kc);
        let b = fill(13, kc * n);
        let mut c = fill(17, ldc * n);
        let keep = c.clone();
        let mut expect = c.clone();
        gemm_sub_naive(m, n, kc, &a, m, &b, kc, &mut expect, ldc);
        let mut ws = GemmWorkspace::new();
        let ap = pack_a(&mut ws, &a, m, m, kc);
        let mut bp = Vec::new();
        pack_b(&mut bp, &b, kc, kc, n);
        gemm_sub_packed(&ap, &bp, n, &mut c, ldc);
        for j in 0..n {
            for i in 0..ldc {
                let idx = j * ldc + i;
                if i < m {
                    assert_eq!(c[idx].to_bits(), expect[idx].to_bits());
                } else {
                    assert_eq!(c[idx].to_bits(), keep[idx].to_bits(), "padding row touched");
                }
            }
        }
    }
}
