//! Sequential numeric multifrontal factorization and solve.
//!
//! This is the correctness anchor of the reproduction: it executes the
//! assembly tree produced by `mf-symbolic` with real arithmetic, the
//! three-area memory discipline of [`crate::arena`], and the dense kernels
//! of [`crate::dense`] — and verifies, through residual tests, that the
//! whole symbolic pipeline (ordering → etree → amalgamation → fronts) is
//! consistent.

use crate::arena::{CbStack, MemoryAccount};
use crate::dense::{
    add_assign_slice, factor_front_ldlt_mt, factor_front_lu_mt, DenseMat, KernelError,
};
use mf_sparse::{CscMatrix, Permutation, Symmetry};
use mf_symbolic::frontstruct::{front_structures, FrontStructures};
use mf_symbolic::{AmalgamationOptions, SymbolicAnalysis};

/// Knobs of the numeric factorization drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumericOptions {
    /// Thread budget for the trailing update *inside* each front (the
    /// malleable-task axis: tree parallelism distributes fronts, this
    /// knob splits one front's GEMM across workers). The factor bytes do
    /// not depend on this value — kernel dispatch keys on the pivot
    /// count only, and the parallel trailing sweep is partition-
    /// invariant — so it is purely a performance knob. `1` (the default)
    /// keeps every front sequential.
    pub cores_per_front: usize,
    /// When set, the parallel driver allots within-front threads
    /// *malleably*: a front entering its factorization kernel is granted
    /// `pool / busy` threads (clamped to `[1, cores_per_front]`), where
    /// `busy` counts the fronts concurrently inside their kernels. Leaf
    /// storms run one thread per front; the root chain collects the
    /// whole pool. Factor bytes stay independent of the grants (same
    /// invariant as `cores_per_front` itself — see the determinism
    /// suite). Ignored by the sequential driver, where `busy` is always
    /// one.
    pub malleable_pool: Option<usize>,
}

impl Default for NumericOptions {
    fn default() -> Self {
        NumericOptions { cores_per_front: 1, malleable_pool: None }
    }
}

/// Failure of the numeric factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// A dense kernel failed (tiny pivot) at the given tree node.
    Kernel {
        /// Assembly-tree node where the failure occurred.
        node: usize,
        /// Underlying kernel error.
        source: KernelError,
    },
    /// The matrix is not square.
    NotSquare,
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::Kernel { node, source } => write!(f, "front {node}: {source}"),
            FactorError::NotSquare => write!(f, "matrix must be square"),
        }
    }
}

impl std::error::Error for FactorError {}

/// Factors of one front.
#[derive(Debug, Clone)]
pub(crate) struct FrontFactor {
    /// Global variable list (pivots first) — shared layout with the
    /// symbolic front structure.
    pub(crate) vars: Vec<usize>,
    pub(crate) npiv: usize,
    /// Local row permutation of the fully-summed rows (identity for LDLᵀ).
    pub(crate) row_perm: Vec<usize>,
    /// `p x p` block holding `L11` (unit lower, implied diagonal) and
    /// `U11` (upper, including diagonal) for LU; `L11` + `D` for LDLᵀ.
    pub(crate) block11: DenseMat,
    /// `(f-p) x p` block `L21`.
    pub(crate) l21: DenseMat,
    /// `p x (f-p)` block `U12` (LU only; empty for LDLᵀ).
    pub(crate) u12: DenseMat,
    /// Diagonal of `D` (LDLᵀ only).
    pub(crate) d: Vec<f64>,
}

/// Memory/operation statistics of a numeric factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NumericStats {
    /// Peak of the contribution-block stack (entries).
    pub stack_peak: u64,
    /// Peak of the active memory (stack + current front), the paper's
    /// reported quantity.
    pub active_peak: u64,
    /// Factor entries stored.
    pub factor_entries: u64,
    /// Number of fronts processed.
    pub fronts: usize,
}

/// A complete numeric factorization, ready to solve.
#[derive(Debug, Clone)]
pub struct Factorization {
    pub(crate) sym: Symmetry,
    pub(crate) n: usize,
    pub(crate) perm: Permutation,
    pub(crate) fronts: Vec<Option<FrontFactor>>,
    pub(crate) topo: Vec<usize>,
    /// Memory and size statistics gathered during the factorization.
    pub stats: NumericStats,
}

impl Factorization {
    /// Full pipeline: orders nothing (uses `ordering` as given), runs the
    /// symbolic analysis, then the numeric factorization.
    pub fn new(
        a: &CscMatrix,
        ordering: &Permutation,
        amalg: &AmalgamationOptions,
    ) -> Result<Self, FactorError> {
        if a.nrows() != a.ncols() {
            return Err(FactorError::NotSquare);
        }
        let s = mf_symbolic::analyze(a, ordering, amalg);
        Self::from_symbolic(a, &s)
    }

    /// Numeric factorization over an existing symbolic analysis.
    pub fn from_symbolic(a: &CscMatrix, s: &SymbolicAnalysis) -> Result<Self, FactorError> {
        Self::from_symbolic_with(a, s, &NumericOptions::default())
    }

    /// [`Factorization::from_symbolic`] with explicit driver options
    /// (within-front thread budget).
    pub fn from_symbolic_with(
        a: &CscMatrix,
        s: &SymbolicAnalysis,
        opts: &NumericOptions,
    ) -> Result<Self, FactorError> {
        if a.nrows() != a.ncols() {
            return Err(FactorError::NotSquare);
        }
        let fs = front_structures(s);
        factorize_sequential(a, s, &fs, opts)
    }

    /// Order-stable FNV-1a digest of the complete numeric content:
    /// symmetry, order, permutation, and — in topological order — every
    /// front's variables, pivot count, row permutation, and the exact
    /// bit patterns of all factor blocks. Two factorizations digest
    /// equal iff they are byte-identical; the determinism suite uses
    /// this to compare runs across thread counts and SIMD levels.
    pub fn content_digest(&self) -> u64 {
        fn mix(h: &mut u64, x: u64) {
            for b in x.to_le_bytes() {
                *h = (*h ^ b as u64).wrapping_mul(0x100000001b3);
            }
        }
        fn mix_mat(h: &mut u64, m: &DenseMat) {
            mix(h, m.nrows() as u64);
            mix(h, m.ncols() as u64);
            for &x in m.raw() {
                mix(h, x.to_bits());
            }
        }
        let mut h = 0xcbf29ce484222325u64;
        mix(&mut h, matches!(self.sym, Symmetry::Symmetric) as u64);
        mix(&mut h, self.n as u64);
        for i in 0..self.n {
            mix(&mut h, self.perm.new_of(i) as u64);
        }
        for &v in &self.topo {
            let Some(fr) = &self.fronts[v] else {
                mix(&mut h, u64::MAX);
                continue;
            };
            mix(&mut h, fr.vars.len() as u64);
            for &gv in &fr.vars {
                mix(&mut h, gv as u64);
            }
            mix(&mut h, fr.npiv as u64);
            for &r in &fr.row_perm {
                mix(&mut h, r as u64);
            }
            mix_mat(&mut h, &fr.block11);
            mix_mat(&mut h, &fr.l21);
            mix_mat(&mut h, &fr.u12);
            for &x in &fr.d {
                mix(&mut h, x.to_bits());
            }
        }
        h
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Symmetry the factorization ran with.
    pub fn symmetry(&self) -> Symmetry {
        self.sym
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        // Permute RHS to elimination order.
        let mut g = vec![0.0; self.n];
        for (i, &v) in b.iter().enumerate() {
            g[self.perm.new_of(i)] = v;
        }
        let mut y = vec![0.0; self.n];
        // Forward elimination, children before parents.
        for &v in &self.topo {
            let Some(fr) = &self.fronts[v] else { continue };
            let p = fr.npiv;
            let f = fr.vars.len();
            let mut t: Vec<f64> = (0..p).map(|k| g[fr.vars[fr.row_perm[k]]]).collect();
            for k in 0..p {
                let tk = t[k];
                if tk != 0.0 {
                    for i in k + 1..p {
                        t[i] -= fr.block11.get(i, k) * tk;
                    }
                }
            }
            for i in 0..f - p {
                let mut s = 0.0;
                for k in 0..p {
                    s += fr.l21.get(i, k) * t[k];
                }
                g[fr.vars[p + i]] -= s;
            }
            let first = fr.vars[0];
            y[first..first + p].copy_from_slice(&t);
        }
        // Backward substitution, parents before children.
        let mut x = vec![0.0; self.n];
        for &v in self.topo.iter().rev() {
            let Some(fr) = &self.fronts[v] else { continue };
            let p = fr.npiv;
            let f = fr.vars.len();
            let first = fr.vars[0];
            let mut t: Vec<f64> = y[first..first + p].to_vec();
            match self.sym {
                Symmetry::General => {
                    // t -= U12 * x_cb, then solve U11 t.
                    for k in 0..p {
                        let mut s = 0.0;
                        for j in 0..f - p {
                            s += fr.u12.get(k, j) * x[fr.vars[p + j]];
                        }
                        t[k] -= s;
                    }
                    for k in (0..p).rev() {
                        let mut s = t[k];
                        for j in k + 1..p {
                            s -= fr.block11.get(k, j) * t[j];
                        }
                        t[k] = s / fr.block11.get(k, k);
                    }
                }
                Symmetry::Symmetric => {
                    // w = D^-1 y, then Lᵀ x = w using L21 and L11.
                    for k in 0..p {
                        t[k] /= fr.d[k];
                    }
                    for k in (0..p).rev() {
                        let mut s = t[k];
                        for i in 0..f - p {
                            s -= fr.l21.get(i, k) * x[fr.vars[p + i]];
                        }
                        for j in k + 1..p {
                            s -= fr.block11.get(j, k) * t[j];
                        }
                        t[k] = s;
                    }
                }
            }
            x[first..first + p].copy_from_slice(&t[..p]);
        }
        // Permute back to original order.
        (0..self.n).map(|i| x[self.perm.new_of(i)]).collect()
    }

    /// Solves for several right-hand sides (forward/backward sweeps are
    /// repeated per column; the factors are traversed once per RHS).
    pub fn solve_many(&self, bs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        bs.iter().map(|b| self.solve(b)).collect()
    }

    /// Solves `A x = b` with iterative refinement: up to `max_iters`
    /// residual corrections, stopping once the relative residual is below
    /// `tol`. Returns the solution and the final relative residual.
    ///
    /// Refinement recovers the last digits lost to restricted pivoting
    /// and is the standard companion of direct solvers.
    pub fn solve_refined(
        &self,
        a: &CscMatrix,
        b: &[f64],
        max_iters: usize,
        tol: f64,
    ) -> (Vec<f64>, f64) {
        let mut x = self.solve(b);
        let mut res = Self::residual_inf(a, &x, b);
        for _ in 0..max_iters {
            if res <= tol {
                break;
            }
            let ax = a.mul_vec(&x);
            let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
            let dx = self.solve(&r);
            for (xi, di) in x.iter_mut().zip(&dx) {
                *xi += di;
            }
            let new_res = Self::residual_inf(a, &x, b);
            if new_res >= res {
                break; // stagnation: keep the best iterate so far
            }
            res = new_res;
        }
        (x, res)
    }

    /// Max-norm of the residual `b - A x` relative to `‖b‖∞` (test helper).
    pub fn residual_inf(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.mul_vec(x);
        let bnorm = b.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1e-300);
        ax.iter().zip(b).fold(0.0f64, |m, (&axi, &bi)| m.max((bi - axi).abs())) / bnorm
    }
}

fn factorize_sequential(
    a: &CscMatrix,
    s: &SymbolicAnalysis,
    fs: &FrontStructures,
    opts: &NumericOptions,
) -> Result<Factorization, FactorError> {
    let threads = opts.cores_per_front.max(1);
    let tree = &s.tree;
    let sym = tree.sym;
    let n = tree.n;
    let pa = a.permute_symmetric(&s.perm);
    let pat = if sym == Symmetry::General { Some(pa.transpose()) } else { None };

    let topo = tree.topo_order();
    let mut fronts: Vec<Option<FrontFactor>> = vec![None; tree.len()];
    let mut cb_stack = CbStack::new();
    let mut cb_handles = vec![None; tree.len()];
    let mut account = MemoryAccount::new();
    let mut loc = vec![usize::MAX; n];

    for &v in &topo {
        let nd = &tree.nodes[v];
        let vars = &fs.rows[v];
        let f = vars.len();
        let p = nd.npiv;
        for (l, &gv) in vars.iter().enumerate() {
            loc[gv] = l;
        }

        account.alloc_front(tree.front_entries(v));
        let mut w = DenseMat::zeros(f, f);

        // ---- Assemble original-matrix entries. ----
        // A chain head assembles the entries of the *whole* original front
        // (its tail links' pivot columns included); tail links assemble
        // nothing — they continue on the Schur complement.
        let span = if tree.is_chain_tail(v) { 0 } else { tree.chain_npiv(v) };
        match sym {
            Symmetry::Symmetric => {
                for c in nd.first_col..nd.first_col + span {
                    let lc = loc[c];
                    for (&i, &val) in pa.rows_in_col(c).iter().zip(pa.vals_in_col(c)) {
                        if i < c {
                            continue; // mirrored from the earlier pivot column
                        }
                        let li = loc[i];
                        w.add(li, lc, val);
                        if li != lc {
                            w.add(lc, li, val);
                        }
                    }
                }
            }
            Symmetry::General => {
                let pat = pat.as_ref().unwrap();
                for c in nd.first_col..nd.first_col + span {
                    let lc = loc[c];
                    // Column part: rows at or below this front's pivots.
                    for (&i, &val) in pa.rows_in_col(c).iter().zip(pa.vals_in_col(c)) {
                        if i >= nd.first_col {
                            w.add(loc[i], lc, val);
                        }
                    }
                    // Row part: columns strictly in the CB variable range.
                    for (&j, &val) in pat.rows_in_col(c).iter().zip(pat.vals_in_col(c)) {
                        if j >= nd.first_col + span {
                            w.add(lc, loc[j], val);
                        }
                    }
                }
            }
        }

        // ---- Extend-add children (LIFO pops: reverse child order). ----
        for &ch in nd.children.iter().rev() {
            let h = cb_handles[ch].take().expect("child CB missing");
            let cb_vars = fs.cb_rows(tree, ch);
            let cf = cb_vars.len();
            {
                let data = cb_stack.get(h);
                debug_assert_eq!(data.len(), cf * cf);
                // When the CB variables land on consecutive parent rows
                // (the common case for the last child absorbed into an
                // amalgamated parent), each CB column is one contiguous
                // slice-add; otherwise fall back to the indexed scatter.
                // The choice is structural, so it cannot vary across
                // runs of the same tree.
                let contiguous = cf > 0
                    && cb_vars.iter().enumerate().all(|(ci, &gv)| loc[gv] == loc[cb_vars[0]] + ci);
                if contiguous {
                    let l0 = loc[cb_vars[0]];
                    for (cj, &gj) in cb_vars.iter().enumerate() {
                        let lj = loc[gj];
                        let col = &data[cj * cf..(cj + 1) * cf];
                        add_assign_slice(&mut w.col_mut(lj)[l0..l0 + cf], col);
                    }
                } else {
                    for (cj, &gj) in cb_vars.iter().enumerate() {
                        let lj = loc[gj];
                        let col = &data[cj * cf..(cj + 1) * cf];
                        for (ci, &gi) in cb_vars.iter().enumerate() {
                            let x = col[ci];
                            if x != 0.0 {
                                w.add(loc[gi], lj, x);
                            }
                        }
                    }
                }
            }
            cb_stack.pop(h);
            account.pop_cb(tree.cb_entries(ch));
        }

        // ---- Partial factorization. ----
        let mut row_perm = Vec::new();
        match sym {
            Symmetry::General => {
                factor_front_lu_mt(&mut w, p, &mut row_perm, threads)
                    .map_err(|source| FactorError::Kernel { node: v, source })?;
            }
            Symmetry::Symmetric => {
                factor_front_ldlt_mt(&mut w, p, threads)
                    .map_err(|source| FactorError::Kernel { node: v, source })?;
                row_perm = (0..f).collect();
            }
        }

        // ---- Extract factor blocks and the contribution block. ----
        let mut block11 = DenseMat::zeros(p, p);
        let mut l21 = DenseMat::zeros(f - p, p);
        for k in 0..p {
            for i in 0..p {
                *block11.get_mut(i, k) = w.get(i, k);
            }
            for i in 0..f - p {
                *l21.get_mut(i, k) = w.get(p + i, k);
            }
        }
        let (u12, d) = match sym {
            Symmetry::General => {
                let mut u12 = DenseMat::zeros(p, f - p);
                for j in 0..f - p {
                    for k in 0..p {
                        *u12.get_mut(k, j) = w.get(k, p + j);
                    }
                }
                (u12, Vec::new())
            }
            Symmetry::Symmetric => {
                let d: Vec<f64> = (0..p).map(|k| w.get(k, k)).collect();
                (DenseMat::zeros(0, 0), d)
            }
        };
        account.store_factors(tree.factor_entries(v));

        // ---- Push own contribution block. ----
        // Accounting note: the front is released *before* the CB is
        // counted on the stack, reflecting the contiguous-memory layout
        // where the CB part of the front is relabeled in place as stack
        // memory (the front sits at the top of the stack area). This
        // matches the FrontThenFree discipline of `mf_symbolic::seqstack`.
        account.free_front(tree.front_entries(v));
        if f > p {
            let cf = f - p;
            let mut cb = vec![0.0; cf * cf];
            for j in 0..cf {
                for i in 0..cf {
                    cb[j * cf + i] = w.get(p + i, p + j);
                }
            }
            cb_handles[v] = Some(cb_stack.push(cb));
            account.push_cb(tree.cb_entries(v));
        }

        fronts[v] = Some(FrontFactor {
            vars: vars.clone(),
            npiv: p,
            row_perm: row_perm[..p].to_vec(),
            block11,
            l21,
            u12,
            d,
        });
        for &gv in vars {
            loc[gv] = usize::MAX;
        }
    }

    debug_assert_eq!(cb_stack.depth(), 0, "all CBs must be consumed");
    Ok(Factorization {
        sym,
        n,
        perm: s.perm.clone(),
        fronts,
        topo,
        stats: NumericStats {
            stack_peak: account.stack_peak(),
            active_peak: account.active_peak(),
            factor_entries: account.factors(),
            fronts: tree.len(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::gen::circuit::circuit;
    use mf_sparse::gen::grid::{grid2d, grid3d, Stencil};

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 2654435761) % 1000) as f64 / 100.0 - 5.0).collect()
    }

    fn check_solve(a: &CscMatrix, p: &Permutation) -> NumericStats {
        let f = Factorization::new(a, p, &AmalgamationOptions::default()).unwrap();
        let b = rhs(a.nrows());
        let x = f.solve(&b);
        let r = Factorization::residual_inf(a, &x, &b);
        assert!(r < 1e-8, "residual {r:e}");
        f.stats
    }

    #[test]
    fn solves_spd_grid_identity_ordering() {
        let a = grid2d(9, 8, Stencil::Star);
        check_solve(&a, &Permutation::identity(72));
    }

    #[test]
    fn solves_spd_grid_reversed_ordering() {
        let a = grid2d(8, 8, Stencil::Box);
        let n = a.nrows();
        let p = Permutation::from_new_order((0..n).map(|i| n - 1 - i).collect()).unwrap();
        check_solve(&a, &p);
    }

    #[test]
    fn solves_unsymmetric_grid() {
        let a = grid3d(4, 4, 4, Stencil::Star, Symmetry::General, 3);
        check_solve(&a, &Permutation::identity(64));
    }

    #[test]
    fn solves_unsymmetric_circuit() {
        let a = circuit(150, 3, 2, 0.1, 17);
        check_solve(&a, &Permutation::identity(150));
    }

    #[test]
    fn matches_dense_oracle_on_small_matrix() {
        let a = grid2d(4, 3, Stencil::Box);
        let n = a.nrows();
        let mut dm = crate::dense::DenseMat::zeros(n, n);
        for j in 0..n {
            for (&i, &v) in a.rows_in_col(j).iter().zip(a.vals_in_col(j)) {
                *dm.get_mut(i, j) = v;
            }
        }
        let b = rhs(n);
        let xo = crate::dense::dense_solve(&dm, &b).unwrap();
        let f = Factorization::new(&a, &Permutation::identity(n), &AmalgamationOptions::none())
            .unwrap();
        let x = f.solve(&b);
        for i in 0..n {
            assert!((x[i] - xo[i]).abs() < 1e-9, "x[{i}]: {} vs {}", x[i], xo[i]);
        }
    }

    #[test]
    fn stack_peak_matches_symbolic_model() {
        // The numeric run's accounting must equal the symbolic sequential
        // analysis under the same (FrontThenFree) discipline and the same
        // child order.
        let a = grid2d(10, 10, Stencil::Star);
        let s =
            mf_symbolic::analyze(&a, &Permutation::identity(100), &AmalgamationOptions::default());
        let f = Factorization::from_symbolic(&a, &s).unwrap();
        let model = mf_symbolic::seqstack::sequential_peak(
            &s.tree,
            mf_symbolic::seqstack::AssemblyDiscipline::FrontThenFree,
        );
        assert_eq!(f.stats.active_peak, model);
    }

    #[test]
    fn factor_entries_match_symbolic_total() {
        let a = grid2d(7, 9, Stencil::Box);
        let s =
            mf_symbolic::analyze(&a, &Permutation::identity(63), &AmalgamationOptions::default());
        let f = Factorization::from_symbolic(&a, &s).unwrap();
        assert_eq!(f.stats.factor_entries, s.tree.total_factor_entries());
    }

    #[test]
    fn refinement_improves_or_keeps_the_residual() {
        let a = grid2d(12, 12, Stencil::Box);
        let f =
            Factorization::new(&a, &Permutation::identity(144), &AmalgamationOptions::default())
                .unwrap();
        let b = rhs(144);
        let x0 = f.solve(&b);
        let r0 = Factorization::residual_inf(&a, &x0, &b);
        let (x1, r1) = f.solve_refined(&a, &b, 3, 1e-16);
        assert!(r1 <= r0, "refinement made it worse: {r1:e} > {r0:e}");
        assert_eq!(x1.len(), 144);
    }

    #[test]
    fn solve_many_matches_individual_solves() {
        let a = grid2d(6, 7, Stencil::Star);
        let f = Factorization::new(&a, &Permutation::identity(42), &AmalgamationOptions::none())
            .unwrap();
        let bs: Vec<Vec<f64>> = (0..3).map(|k| (0..42).map(|i| (i * k) as f64).collect()).collect();
        let many = f.solve_many(&bs);
        for (b, x) in bs.iter().zip(&many) {
            assert_eq!(x, &f.solve(b));
        }
    }

    #[test]
    fn non_square_rejected() {
        let mut coo = mf_sparse::CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0).unwrap();
        let a = coo.to_csc();
        assert!(matches!(
            Factorization::new(&a, &Permutation::identity(3), &AmalgamationOptions::none()),
            Err(FactorError::NotSquare)
        ));
    }

    #[test]
    fn singular_matrix_reports_tiny_pivot() {
        // Rank-1 dense 2x2: the second pivot vanishes whatever the order.
        let mut coo = mf_sparse::CooMatrix::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0).unwrap();
            }
        }
        let a = coo.to_csc();
        let r = Factorization::new(&a, &Permutation::identity(2), &AmalgamationOptions::none());
        assert!(matches!(r, Err(FactorError::Kernel { .. })), "{r:?}");
    }

    #[test]
    fn solve_after_split_tree_still_correct() {
        // Chain splitting must not change the numerics.
        let a = grid2d(8, 8, Stencil::Box);
        let mut s =
            mf_symbolic::analyze(&a, &Permutation::identity(64), &AmalgamationOptions::default());
        mf_symbolic::split::split_large_masters(&mut s.tree, 200);
        let f = Factorization::from_symbolic(&a, &s).unwrap();
        let b = rhs(64);
        let x = f.solve(&b);
        let r = Factorization::residual_inf(&a, &x, &b);
        assert!(r < 1e-8, "residual {r:e}");
    }
}
