//! Rayon tree-parallel numeric factorization.
//!
//! The multifrontal method's tree parallelism — the paper's type-1
//! parallelism across MPI ranks — maps directly onto fork-join threading:
//! independent subtrees factorize concurrently, each front sequentially.
//! This module provides that shared-memory variant. It trades the strict
//! LIFO stack discipline (meaningless under concurrency) for per-node CB
//! buffers; memory is tracked with atomic high-water counters instead
//! ([`factorize_parallel`]'s `NumericStats` reports the honest peak of
//! live front + CB entries across all workers).

use crate::dense::{add_assign_slice, factor_front_ldlt_mt, factor_front_lu_mt, DenseMat};
use crate::numeric::{FactorError, Factorization, FrontFactor, NumericOptions, NumericStats};
use mf_sparse::{CscMatrix, Symmetry};
use mf_symbolic::frontstruct::{front_structures, FrontStructures};
use mf_symbolic::SymbolicAnalysis;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Atomic high-water accounting of live numeric memory (entries, i.e.
/// `f64` words), shared by all workers. `live` counts every currently
/// allocated front plus every contribution block not yet absorbed by
/// its parent; `stack` counts the CB portion alone. Peaks are tracked
/// with `fetch_max`, so the reported numbers are an honest upper
/// envelope of what the concurrent run actually held — the parallel
/// analogue of the sequential driver's `active_peak`/`stack_peak`
/// (which it upper-bounds: the parallel driver copies each CB out of
/// its front instead of relabeling it in place).
#[derive(Default)]
struct ParAccount {
    live: AtomicU64,
    stack: AtomicU64,
    live_peak: AtomicU64,
    stack_peak: AtomicU64,
}

impl ParAccount {
    fn alloc_front(&self, entries: u64) {
        let v = self.live.fetch_add(entries, Ordering::Relaxed) + entries;
        self.live_peak.fetch_max(v, Ordering::Relaxed);
    }

    fn free_front(&self, entries: u64) {
        self.live.fetch_sub(entries, Ordering::Relaxed);
    }

    fn push_cb(&self, entries: u64) {
        let s = self.stack.fetch_add(entries, Ordering::Relaxed) + entries;
        self.stack_peak.fetch_max(s, Ordering::Relaxed);
        self.alloc_front(entries);
    }

    fn pop_cb(&self, entries: u64) {
        self.stack.fetch_sub(entries, Ordering::Relaxed);
        self.free_front(entries);
    }
}

struct Ctx<'a> {
    tree: &'a mf_symbolic::AssemblyTree,
    fs: &'a FrontStructures,
    pa: &'a CscMatrix,
    pat: Option<&'a CscMatrix>,
    sym: Symmetry,
    threads: usize,
    /// `Some(pool)` makes the within-front thread budget a scheduling
    /// decision (see [`NumericOptions::malleable_pool`]); `threads` then
    /// acts as the per-front cap.
    pool: Option<usize>,
    /// Fronts currently inside their factorization kernel (malleable
    /// grant denominator).
    in_kernel: AtomicUsize,
    acct: ParAccount,
    slots: Vec<Mutex<Option<FrontFactor>>>,
}

impl Ctx<'_> {
    /// Thread budget granted to a front entering its kernel. Purely a
    /// performance decision: the kernels produce bit-identical factors
    /// for any budget, so a racy `busy` count cannot perturb results.
    fn grant_threads(&self) -> usize {
        match self.pool {
            None => self.threads,
            Some(pool) => {
                let busy = self.in_kernel.fetch_add(1, Ordering::Relaxed) + 1;
                (pool / busy).clamp(1, self.threads.max(1))
            }
        }
    }

    fn release_threads(&self) {
        if self.pool.is_some() {
            self.in_kernel.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Factorizes `a` over the symbolic analysis `s`, exploiting tree
/// parallelism with rayon. Numerically equivalent to the sequential
/// driver (same kernels, same assembly), up to floating-point summation
/// order in the extend-add, which is fixed per child and thus identical.
pub fn factorize_parallel(
    a: &CscMatrix,
    s: &SymbolicAnalysis,
) -> Result<Factorization, FactorError> {
    factorize_parallel_with(a, s, &NumericOptions::default())
}

/// [`factorize_parallel`] with explicit driver options. The
/// `cores_per_front` budget is handed to each front's trailing-update
/// kernel on top of the tree parallelism; factor bytes are independent
/// of it (and of the rayon pool width — see the determinism suite).
pub fn factorize_parallel_with(
    a: &CscMatrix,
    s: &SymbolicAnalysis,
    opts: &NumericOptions,
) -> Result<Factorization, FactorError> {
    if a.nrows() != a.ncols() {
        return Err(FactorError::NotSquare);
    }
    let fs = front_structures(s);
    let pa = a.permute_symmetric(&s.perm);
    let pat = (s.tree.sym == Symmetry::General).then(|| pa.transpose());
    let ctx = Ctx {
        tree: &s.tree,
        fs: &fs,
        pa: &pa,
        pat: pat.as_ref(),
        sym: s.tree.sym,
        threads: opts.cores_per_front.max(1),
        pool: opts.malleable_pool,
        in_kernel: AtomicUsize::new(0),
        acct: ParAccount::default(),
        slots: (0..s.tree.len()).map(|_| Mutex::new(None)).collect(),
    };
    let roots = s.tree.roots();
    let results: Result<Vec<_>, FactorError> =
        roots.par_iter().map(|&r| process(&ctx, r)).collect();
    results?;
    let fronts: Vec<Option<FrontFactor>> = ctx.slots.into_iter().map(|m| m.into_inner()).collect();
    Ok(Factorization {
        sym: s.tree.sym,
        n: s.tree.n,
        perm: s.perm.clone(),
        fronts,
        topo: s.tree.topo_order(),
        stats: NumericStats {
            stack_peak: ctx.acct.stack_peak.load(Ordering::Relaxed),
            active_peak: ctx.acct.live_peak.load(Ordering::Relaxed),
            factor_entries: s.tree.total_factor_entries(),
            fronts: s.tree.len(),
        },
    })
}

/// Processes the subtree rooted at `v`; returns the contribution block
/// (column-major, over the CB variables of `v`).
fn process(ctx: &Ctx<'_>, v: usize) -> Result<Vec<f64>, FactorError> {
    let nd = &ctx.tree.nodes[v];
    // Children first — in parallel when there are several.
    let child_cbs: Vec<Vec<f64>> = if nd.children.len() > 1 {
        nd.children.par_iter().map(|&c| process(ctx, c)).collect::<Result<Vec<_>, _>>()?
    } else {
        nd.children.iter().map(|&c| process(ctx, c)).collect::<Result<Vec<_>, _>>()?
    };

    let vars = &ctx.fs.rows[v];
    let f = vars.len();
    let p = nd.npiv;
    // Variable lists are sorted ascending, so local indices come from
    // binary search (no O(n) scratch per task).
    let loc = |gv: usize| vars.binary_search(&gv).expect("variable in front");

    ctx.acct.alloc_front((f * f) as u64);
    let mut w = DenseMat::zeros(f, f);
    // Chain heads assemble the whole original front; tail links nothing.
    let span = if ctx.tree.is_chain_tail(v) { 0 } else { ctx.tree.chain_npiv(v) };
    match ctx.sym {
        Symmetry::Symmetric => {
            for c in nd.first_col..nd.first_col + span {
                let lc = loc(c);
                for (&i, &val) in ctx.pa.rows_in_col(c).iter().zip(ctx.pa.vals_in_col(c)) {
                    if i < c {
                        continue;
                    }
                    let li = loc(i);
                    w.add(li, lc, val);
                    if li != lc {
                        w.add(lc, li, val);
                    }
                }
            }
        }
        Symmetry::General => {
            let pat = ctx.pat.unwrap();
            for c in nd.first_col..nd.first_col + span {
                let lc = loc(c);
                for (&i, &val) in ctx.pa.rows_in_col(c).iter().zip(ctx.pa.vals_in_col(c)) {
                    if i >= nd.first_col {
                        w.add(loc(i), lc, val);
                    }
                }
                for (&j, &val) in pat.rows_in_col(c).iter().zip(pat.vals_in_col(c)) {
                    if j >= nd.first_col + span {
                        w.add(lc, loc(j), val);
                    }
                }
            }
        }
    }

    // Extend-add the children. Local indices are precomputed per child;
    // when they are consecutive, each CB column is one contiguous
    // slice-add (same structural fast path as the sequential driver).
    for (&ch, cb) in nd.children.iter().zip(&child_cbs) {
        let cb_vars = ctx.fs.cb_rows(ctx.tree, ch);
        let cf = cb_vars.len();
        debug_assert_eq!(cb.len(), cf * cf);
        let locs: Vec<usize> = cb_vars.iter().map(|&gv| loc(gv)).collect();
        let contiguous = cf > 0 && locs.iter().enumerate().all(|(ci, &l)| l == locs[0] + ci);
        if contiguous {
            let l0 = locs[0];
            for (cj, &lj) in locs.iter().enumerate() {
                add_assign_slice(&mut w.col_mut(lj)[l0..l0 + cf], &cb[cj * cf..(cj + 1) * cf]);
            }
        } else {
            for (cj, &lj) in locs.iter().enumerate() {
                let col = &cb[cj * cf..(cj + 1) * cf];
                for (ci, &li) in locs.iter().enumerate() {
                    let x = col[ci];
                    if x != 0.0 {
                        w.add(li, lj, x);
                    }
                }
            }
        }
        ctx.acct.pop_cb((cf * cf) as u64);
    }
    drop(child_cbs);

    let mut row_perm = Vec::new();
    let granted = ctx.grant_threads();
    let factored = match ctx.sym {
        Symmetry::General => factor_front_lu_mt(&mut w, p, &mut row_perm, granted),
        Symmetry::Symmetric => factor_front_ldlt_mt(&mut w, p, granted).map(|ok| {
            row_perm = (0..f).collect();
            ok
        }),
    };
    ctx.release_threads();
    factored.map_err(|source| FactorError::Kernel { node: v, source })?;

    let mut block11 = DenseMat::zeros(p, p);
    let mut l21 = DenseMat::zeros(f - p, p);
    for k in 0..p {
        for i in 0..p {
            *block11.get_mut(i, k) = w.get(i, k);
        }
        for i in 0..f - p {
            *l21.get_mut(i, k) = w.get(p + i, k);
        }
    }
    let (u12, d) = match ctx.sym {
        Symmetry::General => {
            let mut u12 = DenseMat::zeros(p, f - p);
            for j in 0..f - p {
                for k in 0..p {
                    *u12.get_mut(k, j) = w.get(k, p + j);
                }
            }
            (u12, Vec::new())
        }
        Symmetry::Symmetric => {
            let d: Vec<f64> = (0..p).map(|k| w.get(k, k)).collect();
            (DenseMat::zeros(0, 0), d)
        }
    };

    let mut cb = Vec::new();
    if f > p {
        let cf = f - p;
        ctx.acct.push_cb((cf * cf) as u64);
        cb = vec![0.0; cf * cf];
        for j in 0..cf {
            for i in 0..cf {
                cb[j * cf + i] = w.get(p + i, p + j);
            }
        }
    }
    drop(w);
    ctx.acct.free_front((f * f) as u64);

    *ctx.slots[v].lock() = Some(FrontFactor {
        vars: vars.clone(),
        npiv: p,
        row_perm: row_perm[..p].to_vec(),
        block11,
        l21,
        u12,
        d,
    });
    Ok(cb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::gen::grid::{grid2d, grid3d, Stencil};
    use mf_sparse::Permutation;
    use mf_symbolic::AmalgamationOptions;

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 48271) % 997) as f64 / 50.0 - 10.0).collect()
    }

    #[test]
    fn parallel_matches_sequential_symmetric() {
        let a = grid2d(12, 11, Stencil::Box);
        let n = a.nrows();
        let s =
            mf_symbolic::analyze(&a, &Permutation::identity(n), &AmalgamationOptions::default());
        let fseq = Factorization::from_symbolic(&a, &s).unwrap();
        let fpar = factorize_parallel(&a, &s).unwrap();
        let b = rhs(n);
        let xs = fseq.solve(&b);
        let xp = fpar.solve(&b);
        for i in 0..n {
            assert!((xs[i] - xp[i]).abs() < 1e-10, "x[{i}]");
        }
    }

    #[test]
    fn parallel_matches_sequential_unsymmetric() {
        let a = grid3d(5, 4, 4, Stencil::Star, Symmetry::General, 9);
        let n = a.nrows();
        let s =
            mf_symbolic::analyze(&a, &Permutation::identity(n), &AmalgamationOptions::default());
        let fpar = factorize_parallel(&a, &s).unwrap();
        let b = rhs(n);
        let x = fpar.solve(&b);
        let r = Factorization::residual_inf(&a, &x, &b);
        assert!(r < 1e-8, "residual {r:e}");
    }

    #[test]
    fn parallel_reports_honest_memory_peaks() {
        // No amalgamation: the tree keeps many fronts, so CBs exist and
        // the stack accounting is exercised.
        let a = grid2d(12, 11, Stencil::Box);
        let n = a.nrows();
        let s = mf_symbolic::analyze(&a, &Permutation::identity(n), &AmalgamationOptions::none());
        let fseq = Factorization::from_symbolic(&a, &s).unwrap();
        let fpar = factorize_parallel(&a, &s).unwrap();
        assert!(fpar.stats.stack_peak > 0, "stack peak must be reported");
        assert!(fpar.stats.active_peak >= fpar.stats.stack_peak);
        // The parallel driver copies each CB out of its front (front and
        // CB coexist), so its honest peak can only exceed the sequential
        // in-place discipline's.
        assert!(
            fpar.stats.active_peak >= fseq.stats.active_peak,
            "parallel peak {} below sequential {}",
            fpar.stats.active_peak,
            fseq.stats.active_peak
        );
    }

    #[test]
    fn parallel_reports_singularity() {
        // Rank-1 dense 2x2: the second pivot vanishes whatever the order.
        let mut coo = mf_sparse::CooMatrix::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0).unwrap();
            }
        }
        let a = coo.to_csc();
        let s = mf_symbolic::analyze(&a, &Permutation::identity(2), &AmalgamationOptions::none());
        assert!(factorize_parallel(&a, &s).is_err());
    }
}
