//! Rayon tree-parallel numeric factorization.
//!
//! The multifrontal method's tree parallelism — the paper's type-1
//! parallelism across MPI ranks — maps directly onto fork-join threading:
//! independent subtrees factorize concurrently, each front sequentially.
//! This module provides that shared-memory variant. It trades the strict
//! LIFO stack discipline (meaningless under concurrency) for per-node CB
//! buffers, so it reports no stack peak; use the sequential
//! [`crate::numeric`] driver when memory accounting matters.

use crate::dense::{factor_front_lu, partial_ldlt, DenseMat};
use crate::numeric::{FactorError, Factorization, FrontFactor, NumericStats};
use mf_sparse::{CscMatrix, Symmetry};
use mf_symbolic::frontstruct::{front_structures, FrontStructures};
use mf_symbolic::SymbolicAnalysis;
use parking_lot::Mutex;
use rayon::prelude::*;

struct Ctx<'a> {
    tree: &'a mf_symbolic::AssemblyTree,
    fs: &'a FrontStructures,
    pa: &'a CscMatrix,
    pat: Option<&'a CscMatrix>,
    sym: Symmetry,
    slots: Vec<Mutex<Option<FrontFactor>>>,
}

/// Factorizes `a` over the symbolic analysis `s`, exploiting tree
/// parallelism with rayon. Numerically equivalent to the sequential
/// driver (same kernels, same assembly), up to floating-point summation
/// order in the extend-add, which is fixed per child and thus identical.
pub fn factorize_parallel(
    a: &CscMatrix,
    s: &SymbolicAnalysis,
) -> Result<Factorization, FactorError> {
    if a.nrows() != a.ncols() {
        return Err(FactorError::NotSquare);
    }
    let fs = front_structures(s);
    let pa = a.permute_symmetric(&s.perm);
    let pat = (s.tree.sym == Symmetry::General).then(|| pa.transpose());
    let ctx = Ctx {
        tree: &s.tree,
        fs: &fs,
        pa: &pa,
        pat: pat.as_ref(),
        sym: s.tree.sym,
        slots: (0..s.tree.len()).map(|_| Mutex::new(None)).collect(),
    };
    let roots = s.tree.roots();
    let results: Result<Vec<_>, FactorError> =
        roots.par_iter().map(|&r| process(&ctx, r)).collect();
    results?;
    let fronts: Vec<Option<FrontFactor>> = ctx.slots.into_iter().map(|m| m.into_inner()).collect();
    Ok(Factorization {
        sym: s.tree.sym,
        n: s.tree.n,
        perm: s.perm.clone(),
        fronts,
        topo: s.tree.topo_order(),
        stats: NumericStats {
            stack_peak: 0, // not meaningful under concurrency
            active_peak: 0,
            factor_entries: s.tree.total_factor_entries(),
            fronts: s.tree.len(),
        },
    })
}

/// Processes the subtree rooted at `v`; returns the contribution block
/// (column-major, over the CB variables of `v`).
fn process(ctx: &Ctx<'_>, v: usize) -> Result<Vec<f64>, FactorError> {
    let nd = &ctx.tree.nodes[v];
    // Children first — in parallel when there are several.
    let child_cbs: Vec<Vec<f64>> = if nd.children.len() > 1 {
        nd.children.par_iter().map(|&c| process(ctx, c)).collect::<Result<Vec<_>, _>>()?
    } else {
        nd.children.iter().map(|&c| process(ctx, c)).collect::<Result<Vec<_>, _>>()?
    };

    let vars = &ctx.fs.rows[v];
    let f = vars.len();
    let p = nd.npiv;
    // Variable lists are sorted ascending, so local indices come from
    // binary search (no O(n) scratch per task).
    let loc = |gv: usize| vars.binary_search(&gv).expect("variable in front");

    let mut w = DenseMat::zeros(f, f);
    // Chain heads assemble the whole original front; tail links nothing.
    let span = if ctx.tree.is_chain_tail(v) { 0 } else { ctx.tree.chain_npiv(v) };
    match ctx.sym {
        Symmetry::Symmetric => {
            for c in nd.first_col..nd.first_col + span {
                let lc = loc(c);
                for (&i, &val) in ctx.pa.rows_in_col(c).iter().zip(ctx.pa.vals_in_col(c)) {
                    if i < c {
                        continue;
                    }
                    let li = loc(i);
                    w.add(li, lc, val);
                    if li != lc {
                        w.add(lc, li, val);
                    }
                }
            }
        }
        Symmetry::General => {
            let pat = ctx.pat.unwrap();
            for c in nd.first_col..nd.first_col + span {
                let lc = loc(c);
                for (&i, &val) in ctx.pa.rows_in_col(c).iter().zip(ctx.pa.vals_in_col(c)) {
                    if i >= nd.first_col {
                        w.add(loc(i), lc, val);
                    }
                }
                for (&j, &val) in pat.rows_in_col(c).iter().zip(pat.vals_in_col(c)) {
                    if j >= nd.first_col + span {
                        w.add(lc, loc(j), val);
                    }
                }
            }
        }
    }

    // Extend-add the children.
    for (&ch, cb) in nd.children.iter().zip(&child_cbs) {
        let cb_vars = ctx.fs.cb_rows(ctx.tree, ch);
        let cf = cb_vars.len();
        debug_assert_eq!(cb.len(), cf * cf);
        for (cj, &gj) in cb_vars.iter().enumerate() {
            let lj = loc(gj);
            for (ci, &gi) in cb_vars.iter().enumerate() {
                let x = cb[cj * cf + ci];
                if x != 0.0 {
                    w.add(loc(gi), lj, x);
                }
            }
        }
    }
    drop(child_cbs);

    let mut row_perm = Vec::new();
    match ctx.sym {
        Symmetry::General => factor_front_lu(&mut w, p, &mut row_perm)
            .map_err(|source| FactorError::Kernel { node: v, source })?,
        Symmetry::Symmetric => {
            partial_ldlt(&mut w, p).map_err(|source| FactorError::Kernel { node: v, source })?;
            row_perm = (0..f).collect();
        }
    }

    let mut block11 = DenseMat::zeros(p, p);
    let mut l21 = DenseMat::zeros(f - p, p);
    for k in 0..p {
        for i in 0..p {
            *block11.get_mut(i, k) = w.get(i, k);
        }
        for i in 0..f - p {
            *l21.get_mut(i, k) = w.get(p + i, k);
        }
    }
    let (u12, d) = match ctx.sym {
        Symmetry::General => {
            let mut u12 = DenseMat::zeros(p, f - p);
            for j in 0..f - p {
                for k in 0..p {
                    *u12.get_mut(k, j) = w.get(k, p + j);
                }
            }
            (u12, Vec::new())
        }
        Symmetry::Symmetric => {
            let d: Vec<f64> = (0..p).map(|k| w.get(k, k)).collect();
            (DenseMat::zeros(0, 0), d)
        }
    };

    let mut cb = Vec::new();
    if f > p {
        let cf = f - p;
        cb = vec![0.0; cf * cf];
        for j in 0..cf {
            for i in 0..cf {
                cb[j * cf + i] = w.get(p + i, p + j);
            }
        }
    }

    *ctx.slots[v].lock() = Some(FrontFactor {
        vars: vars.clone(),
        npiv: p,
        row_perm: row_perm[..p].to_vec(),
        block11,
        l21,
        u12,
        d,
    });
    Ok(cb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::gen::grid::{grid2d, grid3d, Stencil};
    use mf_sparse::Permutation;
    use mf_symbolic::AmalgamationOptions;

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 48271) % 997) as f64 / 50.0 - 10.0).collect()
    }

    #[test]
    fn parallel_matches_sequential_symmetric() {
        let a = grid2d(12, 11, Stencil::Box);
        let n = a.nrows();
        let s =
            mf_symbolic::analyze(&a, &Permutation::identity(n), &AmalgamationOptions::default());
        let fseq = Factorization::from_symbolic(&a, &s).unwrap();
        let fpar = factorize_parallel(&a, &s).unwrap();
        let b = rhs(n);
        let xs = fseq.solve(&b);
        let xp = fpar.solve(&b);
        for i in 0..n {
            assert!((xs[i] - xp[i]).abs() < 1e-10, "x[{i}]");
        }
    }

    #[test]
    fn parallel_matches_sequential_unsymmetric() {
        let a = grid3d(5, 4, 4, Stencil::Star, Symmetry::General, 9);
        let n = a.nrows();
        let s =
            mf_symbolic::analyze(&a, &Permutation::identity(n), &AmalgamationOptions::default());
        let fpar = factorize_parallel(&a, &s).unwrap();
        let b = rhs(n);
        let x = fpar.solve(&b);
        let r = Factorization::residual_inf(&a, &x, &b);
        assert!(r < 1e-8, "residual {r:e}");
    }

    #[test]
    fn parallel_reports_singularity() {
        // Rank-1 dense 2x2: the second pivot vanishes whatever the order.
        let mut coo = mf_sparse::CooMatrix::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0).unwrap();
            }
        }
        let a = coo.to_csc();
        let s = mf_symbolic::analyze(&a, &Permutation::identity(2), &AmalgamationOptions::none());
        assert!(factorize_parallel(&a, &s).is_err());
    }
}
