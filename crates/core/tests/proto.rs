//! Property tests of the sans-io protocol core.
//!
//! The tests drive [`SchedulerCore`]s through a minimal test driver that
//! performs *only* transport and timers — every effect each core emits is
//! captured raw, so the properties are checked against the protocol
//! itself, independent of what the production backends do with it:
//!
//! * a core never asks the transport to send a message to itself
//!   (self-delivery is an internal fast path, not a network round-trip);
//! * memory effects balance: every `Alloc` is matched by `Free`s of the
//!   same total size on the same (processor, node, area) account, and no
//!   account ever goes negative mid-run;
//! * the effect stream *is* the memory story: replaying just the
//!   `Alloc`/`Free` effects through the flight-recorder attribution pass
//!   reproduces every processor's `active_peak` bit-exactly.

use std::collections::HashMap;

use mf_core::config::{SlaveSelection, SolverConfig, TaskSelection};
use mf_core::mapping::{compute_mapping, StaticMapping};
use mf_core::proto::{initial_loads, Effect, Input, Msg, SchedulerCore};
use mf_order::OrderingKind;
use mf_sim::engine::{Event, EventPayload, Sim};
use mf_sim::recorder::SchedEvent;
use mf_sim::{attribute_peaks, Recording, Time};
use mf_sparse::gen::grid::{grid2d, Stencil};
use mf_symbolic::seqstack::{apply_liu_order, AssemblyDiscipline};
use mf_symbolic::{AmalgamationOptions, AssemblyTree};
use proptest::prelude::*;

fn tree_for(nx: usize) -> AssemblyTree {
    let a = grid2d(nx, nx, Stencil::Star);
    let p = OrderingKind::Metis.compute(&a);
    let mut s = mf_symbolic::analyze(&a, &p, &AmalgamationOptions::default());
    apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
    s.tree
}

fn strategy_cfg(which: usize, nprocs: usize) -> SolverConfig {
    let base = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(nprocs) };
    match which {
        0 => base,
        1 => SolverConfig {
            slave_selection: SlaveSelection::Memory,
            task_selection: TaskSelection::MemoryAware,
            use_subtree_info: true,
            use_prediction: true,
            ..base
        },
        _ => SolverConfig {
            slave_selection: SlaveSelection::Hybrid,
            task_selection: TaskSelection::MemoryAwareGlobal,
            use_subtree_info: true,
            use_prediction: true,
            ..base
        },
    }
}

/// The captured run: every effect in emission order, tagged with its
/// emitting processor and virtual time, plus each core's final peaks.
struct Captured {
    effects: Vec<(usize, Time, Effect)>,
    active_peaks: Vec<u64>,
    nodes_done: usize,
}

/// Feeds one input into a core, captures the drained effects verbatim,
/// and performs only the transport/timer part (quiet model: exact
/// durations, no jitter, no faults).
fn step(
    core: &mut SchedulerCore<'_>,
    sim: &mut Sim<Msg>,
    cfg: &SolverConfig,
    now: Time,
    input: Input,
    effects: &mut Vec<(usize, Time, Effect)>,
) {
    let p = core.id();
    for e in core.handle(now, input) {
        effects.push((p, now, e.clone()));
        match e {
            Effect::Send { to, msg, bytes } => cfg.network.send(sim, p, to, msg, bytes),
            Effect::Broadcast { msg, bytes } => {
                cfg.network.broadcast(sim, p, cfg.nprocs, msg, bytes)
            }
            Effect::StartCompute { key, flops, .. } => {
                sim.schedule_timer(p, (flops / cfg.flops_per_tick.max(1)).max(1), key)
            }
            Effect::Alloc { .. } | Effect::Free { .. } | Effect::Record(_) => {}
            // This harness drives quiet runs only: no recovery config and
            // no sampling interval, so the cores never arm the failure
            // detector or the telemetry sampler.
            Effect::Arm { .. } | Effect::DeclareDead { .. } | Effect::Sample { .. } => {
                panic!("timer-protocol effect in a quiet run")
            }
        }
    }
    assert!(core.take_violation().is_none(), "protocol violation in a healthy run");
}

/// Runs an uncapped, unperturbed factorization through the raw cores,
/// returning the complete effect stream.
fn drive(tree: &AssemblyTree, map: &StaticMapping, cfg: &SolverConfig) -> Captured {
    let load0 = initial_loads(tree, map, cfg.nprocs);
    let mut cores: Vec<SchedulerCore<'_>> =
        (0..cfg.nprocs).map(|p| SchedulerCore::new(p, tree, map, cfg, &load0)).collect();
    let mut sim: Sim<Msg> = Sim::new();
    let mut effects = Vec::new();
    for core in cores.iter_mut() {
        step(core, &mut sim, cfg, 0, Input::Tick, &mut effects);
    }
    while let Some(Event { at, payload }) = sim.next() {
        let (p, input) = match payload {
            EventPayload::Message { from, to, msg } => (to, Input::Deliver { from, msg }),
            EventPayload::Timer { proc, key } => (proc, Input::TimerFired { key }),
        };
        step(&mut cores[p], &mut sim, cfg, at, input, &mut effects);
    }
    Captured {
        effects,
        active_peaks: cores.iter().map(|c| c.memory().active_peak()).collect(),
        nodes_done: cores.iter().map(|c| c.nodes_done()).sum(),
    }
}

proptest! {
    // Each case runs a full multi-processor factorization.
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// A core never emits `Send { to: itself }` (and never broadcasts to
    /// itself either — broadcast is expanded to the *other* processors by
    /// the transport). Self-delivery must stay an internal fast path.
    #[test]
    fn cores_never_send_to_themselves(
        strategy in 0usize..3,
        nprocs in 2usize..9,
        nx in 10usize..16,
    ) {
        let tree = tree_for(nx);
        let cfg = strategy_cfg(strategy, nprocs);
        let map = compute_mapping(&tree, &cfg);
        let cap = drive(&tree, &map, &cfg);
        prop_assert_eq!(cap.nodes_done, tree.len());
        for (p, _, e) in &cap.effects {
            if let Effect::Send { to, .. } = e {
                prop_assert_ne!(to, p);
            }
        }
    }

    /// Memory effects balance exactly: on every (processor, node, area)
    /// account the `Free`s sum to the `Alloc`s by completion, and no
    /// account is ever freed below zero mid-run.
    #[test]
    fn every_alloc_is_matched_by_frees(
        strategy in 0usize..3,
        nprocs in 2usize..9,
        nx in 10usize..16,
    ) {
        let tree = tree_for(nx);
        let cfg = strategy_cfg(strategy, nprocs);
        let map = compute_mapping(&tree, &cfg);
        let cap = drive(&tree, &map, &cfg);
        prop_assert_eq!(cap.nodes_done, tree.len());
        let mut outstanding: HashMap<(usize, usize, &'static str), u64> = HashMap::new();
        for (p, _, e) in &cap.effects {
            match e {
                Effect::Alloc { node, area, entries } => {
                    *outstanding.entry((*p, *node, area.name())).or_default() += entries;
                }
                Effect::Free { node, area, entries } => {
                    let slot = outstanding.entry((*p, *node, area.name())).or_default();
                    prop_assert!(
                        *slot >= *entries,
                        "proc {} freed {} of n{}/{} with only {} outstanding",
                        p, entries, node, area.name(), slot
                    );
                    *slot -= entries;
                }
                _ => {}
            }
        }
        for ((p, node, area), left) in outstanding {
            prop_assert_eq!(left, 0, "proc {} leaked n{}/{}", p, node, area);
        }
    }

    /// The effect stream carries the full memory story: replaying only
    /// the `Alloc`/`Free` effects through the recorder's attribution pass
    /// reproduces every processor's `active_peak` bit-exactly.
    #[test]
    fn effect_stream_replays_to_the_exact_peaks(
        strategy in 0usize..3,
        nprocs in 2usize..9,
        nx in 10usize..16,
    ) {
        let tree = tree_for(nx);
        let cfg = strategy_cfg(strategy, nprocs);
        let map = compute_mapping(&tree, &cfg);
        let cap = drive(&tree, &map, &cfg);
        prop_assert_eq!(cap.nodes_done, tree.len());
        let mut rec = Recording::new(None);
        for (p, at, e) in &cap.effects {
            match *e {
                Effect::Alloc { node, area, entries } => {
                    rec.record(*at, SchedEvent::MemAlloc { proc: *p, node, area, entries });
                }
                Effect::Free { node, area, entries } => {
                    rec.record(*at, SchedEvent::MemFree { proc: *p, node, area, entries });
                }
                _ => {}
            }
        }
        let att = attribute_peaks(cfg.nprocs, &rec);
        for (p, a) in att.iter().enumerate() {
            prop_assert_eq!(a.peak, cap.active_peaks[p],
                "proc {}: replayed peak differs from the core's account", p);
            let sum: u64 = a.composition.iter().map(|it| it.entries).sum();
            prop_assert_eq!(sum, a.peak, "proc {}: composition must sum to the peak", p);
        }
    }
}

/// The `Effect` enum is the core's hot currency: every message, memory
/// movement, and compute start moves through it. The columnar recorder
/// rebuild shrank it from ~112 bytes (when `Record` carried `SchedEvent`
/// with four inline `Vec`s) to 64; this pin keeps it from growing back.
#[test]
fn effect_enum_stays_slim() {
    assert!(
        std::mem::size_of::<Effect>() <= 64,
        "Effect grew to {} bytes; keep Record payloads boxed/compact",
        std::mem::size_of::<Effect>()
    );
}
