//! Property tests of the robustness subsystem: whatever the perturbation
//! seed and the scheduling strategy, a faulted run must still terminate,
//! conserve contribution-block entries, and produce the factors of the
//! unperturbed factorization; a capacity-capped run must stay under its
//! cap on every processor.

use mf_core::config::{SlaveSelection, SolverConfig, TaskSelection};
use mf_core::mapping::compute_mapping;
use mf_core::parsim;
use mf_order::OrderingKind;
use mf_sim::FaultModel;
use mf_sparse::gen::grid::{grid2d, Stencil};
use mf_symbolic::seqstack::{apply_liu_order, AssemblyDiscipline};
use mf_symbolic::{AmalgamationOptions, AssemblyTree};
use proptest::prelude::*;

fn tree_for(nx: usize) -> AssemblyTree {
    let a = grid2d(nx, nx, Stencil::Star);
    let p = OrderingKind::Metis.compute(&a);
    let mut s = mf_symbolic::analyze(&a, &p, &AmalgamationOptions::default());
    apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
    s.tree
}

fn strategy_cfg(which: usize, nprocs: usize) -> SolverConfig {
    let base = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(nprocs) };
    match which {
        0 => base,
        1 => SolverConfig {
            slave_selection: SlaveSelection::Memory,
            task_selection: TaskSelection::MemoryAware,
            use_subtree_info: true,
            use_prediction: true,
            ..base
        },
        _ => SolverConfig {
            slave_selection: SlaveSelection::Hybrid,
            task_selection: TaskSelection::MemoryAwareGlobal,
            use_subtree_info: true,
            use_prediction: true,
            ..base
        },
    }
}

proptest! {
    // Each case runs a full simulation; keep the count moderate.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Perturbed runs terminate with the right answer: every front is
    /// factorized, every stacked contribution block is consumed (entry
    /// conservation), and the factor entries are exactly the unperturbed
    /// run's — jitter, delay, reordering and status drops may change the
    /// schedule but never the factorization.
    #[test]
    fn perturbed_runs_terminate_and_preserve_factors(
        seed in any::<u64>(),
        level in 0.5f64..4.0,
        strategy in 0usize..3,
        nprocs in 2usize..9,
        nx in 12usize..18,
    ) {
        let tree = tree_for(nx);
        let cfg0 = strategy_cfg(strategy, nprocs);
        let map = compute_mapping(&tree, &cfg0);
        let plain = parsim::run(&tree, &map, &cfg0).unwrap();
        let cfg = SolverConfig {
            fault: Some(FaultModel::intensity(seed, level)),
            ..cfg0
        };
        let r = parsim::run(&tree, &map, &cfg).unwrap();
        prop_assert_eq!(r.nodes_done, r.total_nodes);
        prop_assert!(r.final_active.iter().all(|&a| a == 0),
            "leaked stack entries: {:?}", r.final_active);
        prop_assert_eq!(
            r.factor_entries.iter().sum::<u64>(),
            plain.factor_entries.iter().sum::<u64>(),
        );
        // Same seed, same level: the perturbation itself is deterministic.
        let r2 = parsim::run(&tree, &map, &cfg).unwrap();
        prop_assert_eq!(r.peaks, r2.peaks);
        prop_assert_eq!(r.makespan, r2.makespan);
        prop_assert_eq!(r.dropped_messages, r2.dropped_messages);
    }

    /// Hard memory caps hold: with capacity = 1.2x the uncapped peak, the
    /// run completes and no processor's stack+front footprint ever
    /// exceeds the cap.
    #[test]
    fn capped_runs_never_exceed_capacity(
        strategy in 0usize..3,
        nprocs in 2usize..9,
        nx in 12usize..18,
    ) {
        let tree = tree_for(nx);
        let cfg0 = strategy_cfg(strategy, nprocs);
        let map = compute_mapping(&tree, &cfg0);
        let free = parsim::run(&tree, &map, &cfg0).unwrap();
        let cap = free.max_peak + free.max_peak / 5;
        let capped = SolverConfig { capacity: Some(cap), ..cfg0 };
        let r = parsim::run(&tree, &map, &capped).unwrap();
        prop_assert_eq!(r.nodes_done, r.total_nodes);
        prop_assert!(r.peaks.iter().all(|&pk| pk <= cap),
            "peaks {:?} exceed capacity {}", r.peaks, cap);
        prop_assert!(r.final_active.iter().all(|&a| a == 0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Perturbation and capacity composed: the run still terminates under
    /// the cap or degrades by deferring — it never hangs and never
    /// corrupts the factors.
    #[test]
    fn perturbed_capped_runs_still_complete(
        seed in any::<u64>(),
        level in 0.5f64..3.0,
        strategy in 0usize..3,
    ) {
        let tree = tree_for(14);
        let cfg0 = strategy_cfg(strategy, 4);
        let map = compute_mapping(&tree, &cfg0);
        let free = parsim::run(&tree, &map, &cfg0).unwrap();
        let cfg = SolverConfig {
            fault: Some(FaultModel::intensity(seed, level)),
            capacity: Some(free.max_peak + free.max_peak / 5),
            ..cfg0
        };
        let r = parsim::run(&tree, &map, &cfg).unwrap();
        prop_assert_eq!(r.nodes_done, r.total_nodes);
        prop_assert!(r.final_active.iter().all(|&a| a == 0));
        prop_assert_eq!(
            r.factor_entries.iter().sum::<u64>(),
            free.factor_entries.iter().sum::<u64>(),
        );
    }
}
