//! Property tests of the robustness subsystem: whatever the perturbation
//! seed and the scheduling strategy, a faulted run must still terminate,
//! conserve contribution-block entries, and produce the factors of the
//! unperturbed factorization; a capacity-capped run must stay under its
//! cap on every processor.

use mf_core::config::{RecoveryConfig, SlaveSelection, SolverConfig, TaskSelection};
use mf_core::mapping::compute_mapping;
use mf_core::parsim;
use mf_order::OrderingKind;
use mf_sim::FaultModel;
use mf_sparse::gen::grid::{grid2d, Stencil};
use mf_sparse::gen::paper::ALL_PAPER_MATRICES;
use mf_symbolic::seqstack::{apply_liu_order, AssemblyDiscipline};
use mf_symbolic::{AmalgamationOptions, AssemblyTree};
use proptest::prelude::*;

fn tree_for(nx: usize) -> AssemblyTree {
    let a = grid2d(nx, nx, Stencil::Star);
    let p = OrderingKind::Metis.compute(&a);
    let mut s = mf_symbolic::analyze(&a, &p, &AmalgamationOptions::default());
    apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
    s.tree
}

fn strategy_cfg(which: usize, nprocs: usize) -> SolverConfig {
    let base = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(nprocs) };
    match which {
        0 => base,
        1 => SolverConfig {
            slave_selection: SlaveSelection::Memory,
            task_selection: TaskSelection::MemoryAware,
            use_subtree_info: true,
            use_prediction: true,
            ..base
        },
        _ => SolverConfig {
            slave_selection: SlaveSelection::Hybrid,
            task_selection: TaskSelection::MemoryAwareGlobal,
            use_subtree_info: true,
            use_prediction: true,
            ..base
        },
    }
}

proptest! {
    // Each case runs a full simulation; keep the count moderate.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Perturbed runs terminate with the right answer: every front is
    /// factorized, every stacked contribution block is consumed (entry
    /// conservation), and the factor entries are exactly the unperturbed
    /// run's — jitter, delay, reordering and status drops may change the
    /// schedule but never the factorization.
    #[test]
    fn perturbed_runs_terminate_and_preserve_factors(
        seed in any::<u64>(),
        level in 0.5f64..4.0,
        strategy in 0usize..3,
        nprocs in 2usize..9,
        nx in 12usize..18,
    ) {
        let tree = tree_for(nx);
        let cfg0 = strategy_cfg(strategy, nprocs);
        let map = compute_mapping(&tree, &cfg0);
        let plain = parsim::run(&tree, &map, &cfg0).unwrap();
        let cfg = SolverConfig {
            fault: Some(FaultModel::intensity(seed, level)),
            ..cfg0
        };
        let r = parsim::run(&tree, &map, &cfg).unwrap();
        prop_assert_eq!(r.nodes_done, r.total_nodes);
        prop_assert!(r.final_active.iter().all(|&a| a == 0),
            "leaked stack entries: {:?}", r.final_active);
        prop_assert_eq!(
            r.factor_entries.iter().sum::<u64>(),
            plain.factor_entries.iter().sum::<u64>(),
        );
        // Same seed, same level: the perturbation itself is deterministic.
        let r2 = parsim::run(&tree, &map, &cfg).unwrap();
        prop_assert_eq!(r.peaks, r2.peaks);
        prop_assert_eq!(r.makespan, r2.makespan);
        prop_assert_eq!(r.dropped_messages, r2.dropped_messages);
    }

    /// Hard memory caps hold: with capacity = 1.2x the uncapped peak, the
    /// run completes and no processor's stack+front footprint ever
    /// exceeds the cap.
    #[test]
    fn capped_runs_never_exceed_capacity(
        strategy in 0usize..3,
        nprocs in 2usize..9,
        nx in 12usize..18,
    ) {
        let tree = tree_for(nx);
        let cfg0 = strategy_cfg(strategy, nprocs);
        let map = compute_mapping(&tree, &cfg0);
        let free = parsim::run(&tree, &map, &cfg0).unwrap();
        let cap = free.max_peak + free.max_peak / 5;
        let capped = SolverConfig { capacity: Some(cap), ..cfg0 };
        let r = parsim::run(&tree, &map, &capped).unwrap();
        prop_assert_eq!(r.nodes_done, r.total_nodes);
        prop_assert!(r.peaks.iter().all(|&pk| pk <= cap),
            "peaks {:?} exceed capacity {}", r.peaks, cap);
        prop_assert!(r.final_active.iter().all(|&a| a == 0));
    }
}

proptest! {
    // Membership-fault cases replay the whole lease/recovery machinery;
    // keep the count moderate.
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random kill schedules recover to the exact fault-free factors:
    /// whatever the victim, the event index, and the strategy, the run
    /// terminates, the factor digest matches the unperturbed run, and
    /// every survivor's stack drains to zero (orphaned contribution
    /// blocks are reclaimed, re-executed subtrees are consumed).
    #[test]
    fn random_kill_schedules_recover_with_identical_factors(
        seed in any::<u64>(),
        kill_idx in 0u64..4000,
        victim_pick in any::<usize>(),
        strategy in 0usize..3,
        nprocs in 3usize..6,
        nx in 12usize..17,
    ) {
        let tree = tree_for(nx);
        let cfg0 = strategy_cfg(strategy, nprocs);
        let map = compute_mapping(&tree, &cfg0);
        let plain = parsim::run(&tree, &map, &cfg0).unwrap();
        let victim = victim_pick % nprocs;
        let cfg = SolverConfig {
            recovery: Some(RecoveryConfig::default()),
            fault: Some(FaultModel {
                kill_at: vec![(kill_idx, victim)],
                ..FaultModel::quiet(seed)
            }),
            ..cfg0
        };
        let r = parsim::run(&tree, &map, &cfg).unwrap();
        prop_assert_eq!(r.nodes_done, r.total_nodes);
        prop_assert_eq!(r.factor_digest, plain.factor_digest,
            "victim {} at event {}: factors diverged", victim, kill_idx);
        if r.dead.is_empty() {
            // The run finished before the kill index was reached.
            prop_assert_eq!(r.metrics.recovery.kills_observed, 0);
        } else {
            prop_assert_eq!(&r.dead, &vec![victim]);
            prop_assert_eq!(r.metrics.recovery.kills_observed, 1);
            for (p, &a) in r.final_active.iter().enumerate() {
                if p != victim {
                    prop_assert_eq!(a, 0, "survivor {} leaked {} entries", p, a);
                }
            }
        }
    }

    /// Random join schedules: a dormant processor entering mid-run takes
    /// migrated work without perturbing the factors, and the rebalance
    /// leaves every stack empty at completion.
    #[test]
    fn random_join_schedules_preserve_factors(
        seed in any::<u64>(),
        join_idx in 0u64..4000,
        strategy in 0usize..3,
        nprocs in 3usize..6,
        nx in 12usize..17,
    ) {
        let tree = tree_for(nx);
        let cfg0 = strategy_cfg(strategy, nprocs);
        let map = compute_mapping(&tree, &cfg0);
        let plain = parsim::run(&tree, &map, &cfg0).unwrap();
        let joiner = nprocs - 1;
        let cfg = SolverConfig {
            recovery: Some(RecoveryConfig::default()),
            fault: Some(FaultModel {
                join_at: vec![(join_idx, joiner)],
                ..FaultModel::quiet(seed)
            }),
            ..cfg0
        };
        let r = parsim::run(&tree, &map, &cfg).unwrap();
        prop_assert_eq!(r.nodes_done, r.total_nodes);
        prop_assert_eq!(r.factor_digest, plain.factor_digest);
        prop_assert!(r.dead.is_empty());
        prop_assert!(r.final_active.iter().all(|&a| a == 0));
        prop_assert!(r.metrics.recovery.joins_observed <= 1);
    }

    /// Caps hold through recovery: with a hard per-processor capacity,
    /// a mid-run kill re-executes the orphaned subtree on survivors
    /// without any peak ever exceeding the cap — capacity-aware adopter
    /// selection and the serialize-on-master fallback must keep the
    /// invariant, not merely the happy path.
    #[test]
    fn capped_runs_survive_kills_within_cap(
        seed in any::<u64>(),
        kill_idx in 0u64..3000,
        victim_pick in any::<usize>(),
        strategy in 0usize..3,
        nprocs in 3usize..6,
    ) {
        let tree = tree_for(14);
        let cfg0 = strategy_cfg(strategy, nprocs);
        let map = compute_mapping(&tree, &cfg0);
        let free = parsim::run(&tree, &map, &cfg0).unwrap();
        let cap = free.max_peak + free.max_peak / 2;
        let victim = victim_pick % nprocs;
        let cfg = SolverConfig {
            capacity: Some(cap),
            recovery: Some(RecoveryConfig::default()),
            fault: Some(FaultModel {
                kill_at: vec![(kill_idx, victim)],
                ..FaultModel::quiet(seed)
            }),
            ..cfg0
        };
        let r = parsim::run(&tree, &map, &cfg).unwrap();
        prop_assert_eq!(r.nodes_done, r.total_nodes);
        prop_assert_eq!(r.factor_digest, free.factor_digest);
        prop_assert!(r.peaks.iter().all(|&pk| pk <= cap),
            "peaks {:?} exceed capacity {} during recovery", r.peaks, cap);
    }
}

/// The full paper suite under single kills, both memory strategies:
/// kills at several event indices on each of the eight matrices must
/// reproduce the fault-free factor digest. Runs in the release suite
/// (`cargo test --release`); too slow for the debug tier.
#[test]
#[cfg_attr(debug_assertions, ignore = "release suite: run with --release")]
fn single_kills_on_all_paper_matrices_reproduce_factors() {
    const NPROCS: usize = 8;
    for m in ALL_PAPER_MATRICES {
        let a = m.instantiate_scaled(0.05);
        let p = OrderingKind::Metis.compute(&a);
        let mut s = mf_symbolic::analyze(&a, &p, &AmalgamationOptions::default());
        apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
        let tree = s.tree;
        for strategy in [1usize, 2] {
            let cfg0 = strategy_cfg(strategy, NPROCS);
            let map = compute_mapping(&tree, &cfg0);
            let plain = parsim::run(&tree, &map, &cfg0).unwrap();
            for (kill_idx, victim) in [(1u64, 0usize), (200, 3), (1500, 7)] {
                let cfg = SolverConfig {
                    recovery: Some(RecoveryConfig::default()),
                    fault: Some(FaultModel {
                        kill_at: vec![(kill_idx, victim)],
                        ..FaultModel::quiet(7)
                    }),
                    ..cfg0.clone()
                };
                let r = parsim::run(&tree, &map, &cfg)
                    .unwrap_or_else(|e| panic!("{}: victim {victim} at {kill_idx}: {e}", m.name()));
                assert_eq!(r.nodes_done, r.total_nodes, "{}", m.name());
                assert_eq!(
                    r.factor_digest,
                    plain.factor_digest,
                    "{}: victim {victim} at {kill_idx}: factors diverged",
                    m.name()
                );
                for (q, &act) in r.final_active.iter().enumerate() {
                    if r.dead.contains(&q) {
                        continue;
                    }
                    assert_eq!(act, 0, "{}: survivor {q} leaked", m.name());
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Perturbation and capacity composed: the run still terminates under
    /// the cap or degrades by deferring — it never hangs and never
    /// corrupts the factors.
    #[test]
    fn perturbed_capped_runs_still_complete(
        seed in any::<u64>(),
        level in 0.5f64..3.0,
        strategy in 0usize..3,
    ) {
        let tree = tree_for(14);
        let cfg0 = strategy_cfg(strategy, 4);
        let map = compute_mapping(&tree, &cfg0);
        let free = parsim::run(&tree, &map, &cfg0).unwrap();
        let cfg = SolverConfig {
            fault: Some(FaultModel::intensity(seed, level)),
            capacity: Some(free.max_peak + free.max_peak / 5),
            ..cfg0
        };
        let r = parsim::run(&tree, &map, &cfg).unwrap();
        prop_assert_eq!(r.nodes_done, r.total_nodes);
        prop_assert!(r.final_active.iter().all(|&a| a == 0));
        prop_assert_eq!(
            r.factor_entries.iter().sum::<u64>(),
            free.factor_entries.iter().sum::<u64>(),
        );
    }
}
