//! Temporary review probe: kill scheduled in the finishing-drain window.

use mf_core::config::{RecoveryConfig, SolverConfig};
use mf_core::mapping::compute_mapping;
use mf_core::parsim;
use mf_order::OrderingKind;
use mf_sim::FaultModel;
use mf_sparse::gen::grid::{grid2d, Stencil};
use mf_symbolic::seqstack::{apply_liu_order, AssemblyDiscipline};
use mf_symbolic::{AmalgamationOptions, AssemblyTree};

fn tree_for(nx: usize) -> AssemblyTree {
    let a = grid2d(nx, nx, Stencil::Star);
    let p = OrderingKind::Metis.compute(&a);
    let mut s = mf_symbolic::analyze(&a, &p, &AmalgamationOptions::default());
    apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
    s.tree
}

#[test]
fn probe_drain_window_kills() {
    let tree = tree_for(14);
    let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
    let map = compute_mapping(&tree, &cfg0);
    let plain = parsim::run(&tree, &map, &cfg0).unwrap();
    // Rough upper bound on delivered events: total messages + timers.
    let hi = plain.messages * 3;
    let mut failures = Vec::new();
    let mut never_killed = 0usize;
    let mut recovered = 0usize;
    // Scan a dense band of late kill indices looking for the drain window.
    let mut idx = hi / 2;
    while idx < hi * 2 {
        for victim in 0..4usize {
            let cfg = SolverConfig {
                recovery: Some(RecoveryConfig::default()),
                fault: Some(FaultModel { kill_at: vec![(idx, victim)], ..FaultModel::quiet(1) }),
                ..cfg0.clone()
            };
            match parsim::run(&tree, &map, &cfg) {
                Ok(r) => {
                    if r.dead.is_empty() {
                        never_killed += 1;
                    } else {
                        recovered += 1;
                        assert_eq!(r.factor_digest, plain.factor_digest);
                    }
                }
                Err(e) => failures.push((idx, victim, format!("{e}"))),
            }
        }
        idx += 25;
    }
    println!("recovered={recovered} never_killed={never_killed} failures={}", failures.len());
    for (i, v, e) in failures.iter().take(10) {
        println!("  kill_at=({i},{v}): {e}");
    }
    assert!(failures.is_empty(), "drain-window kills failed");
}
