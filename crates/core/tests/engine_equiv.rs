//! Engine-equivalence properties: the lane-sharded production engine
//! ([`mf_sim::Sim`]) must be indistinguishable from the single-global-heap
//! reference ([`mf_sim::SingleHeapSim`]).
//!
//! Two layers of evidence:
//!
//! * **Raw queue order** — for arbitrary interleavings of point-to-point
//!   messages, timers, and broadcasts, the two engines pop the exact same
//!   event sequence. Bit-equality is the strongest legal tie-break of the
//!   `(time, insertion order)` contract: every FIFO tie resolves the same
//!   way on both.
//! * **Whole runs** — [`parsim::run`] (lanes) and [`parsim::run_reference`]
//!   (single heap) produce identical `RunResult`s field for field — peaks,
//!   makespan, traffic, metrics, recordings, digests — across random
//!   strategies, perturbation seeds, and kill/join schedules.

use mf_core::config::{RecoveryConfig, SlaveSelection, SolverConfig, TaskSelection};
use mf_core::mapping::compute_mapping;
use mf_core::parsim::{self, RunResult};
use mf_order::OrderingKind;
use mf_sim::engine::{EventPayload, Sim, SingleHeapSim};
use mf_sim::FaultModel;
use mf_sparse::gen::grid::{grid2d, Stencil};
use mf_symbolic::seqstack::{apply_liu_order, AssemblyDiscipline};
use mf_symbolic::{AmalgamationOptions, AssemblyTree};
use proptest::prelude::*;

fn tree_for(nx: usize) -> AssemblyTree {
    let a = grid2d(nx, nx, Stencil::Star);
    let p = OrderingKind::Metis.compute(&a);
    let mut s = mf_symbolic::analyze(&a, &p, &AmalgamationOptions::default());
    apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
    s.tree
}

fn strategy_cfg(which: usize, nprocs: usize) -> SolverConfig {
    let base = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(nprocs) };
    match which {
        0 => base,
        1 => SolverConfig {
            slave_selection: SlaveSelection::Memory,
            task_selection: TaskSelection::MemoryAware,
            use_subtree_info: true,
            use_prediction: true,
            ..base
        },
        _ => SolverConfig {
            slave_selection: SlaveSelection::Hybrid,
            task_selection: TaskSelection::MemoryAwareGlobal,
            use_subtree_info: true,
            use_prediction: true,
            ..base
        },
    }
}

/// Every field of two `RunResult`s must match (bit-identity across
/// engines). Spelled out so a new field cannot silently escape the
/// comparison — adding one is a compile error here.
fn assert_results_identical(a: &RunResult, b: &RunResult) {
    let RunResult {
        peaks,
        max_peak,
        avg_peak,
        makespan,
        messages,
        events_delivered,
        traces,
        total_peaks,
        factor_entries,
        nodes_done,
        total_nodes,
        dropped_messages,
        forced_activations,
        final_active,
        underflows,
        metrics,
        recording,
        timeseries,
        factor_digest,
        dead,
    } = a;
    assert_eq!(peaks, &b.peaks);
    assert_eq!(max_peak, &b.max_peak);
    assert_eq!(avg_peak, &b.avg_peak);
    assert_eq!(makespan, &b.makespan);
    assert_eq!(messages, &b.messages);
    assert_eq!(events_delivered, &b.events_delivered);
    assert_eq!(traces, &b.traces);
    assert_eq!(total_peaks, &b.total_peaks);
    assert_eq!(factor_entries, &b.factor_entries);
    assert_eq!(nodes_done, &b.nodes_done);
    assert_eq!(total_nodes, &b.total_nodes);
    assert_eq!(dropped_messages, &b.dropped_messages);
    assert_eq!(forced_activations, &b.forced_activations);
    assert_eq!(final_active, &b.final_active);
    assert_eq!(underflows, &b.underflows);
    assert_eq!(metrics, &b.metrics);
    assert_eq!(factor_digest, &b.factor_digest);
    assert_eq!(dead, &b.dead);
    assert_eq!(recording, &b.recording, "recordings must be bit-identical");
    assert_eq!(timeseries, &b.timeseries, "timeseries must be bit-identical");
}

/// Names one leg's outcome for the divergence message of the membership
/// property below.
fn outcome_name<E>(r: &std::thread::Result<Result<RunResult, E>>) -> &'static str {
    match r {
        Ok(Ok(_)) => "completed",
        Ok(Err(_)) => "returned an error",
        Err(_) => "panicked",
    }
}

/// One queued operation of the raw-order property, drawn by proptest as
/// a `(kind, delay, a, b)` tuple: kind 0 = point-to-point message from
/// `a` to `b`, kind 1 = timer on `a` with key `b`, kind 2 = broadcast
/// from `a` (processor indices are taken modulo the machine size).
type Op = (usize, u64, usize, u64);

fn apply_op(op: Op, nprocs: usize, lanes: &mut Sim<u64>, heap: &mut SingleHeapSim<u64>, tag: u64) {
    let (kind, delay, a, b) = op;
    match kind {
        0 => {
            let p = EventPayload::Message { from: a % nprocs, to: b as usize % nprocs, msg: tag };
            lanes.schedule(delay, p.clone());
            heap.schedule(delay, p);
        }
        1 => {
            lanes.schedule_timer(a % nprocs, delay, b);
            heap.schedule_timer(a % nprocs, delay, b);
        }
        _ => {
            lanes.schedule_broadcast(delay, a % nprocs, nprocs, tag);
            heap.schedule_broadcast(delay, a % nprocs, nprocs, tag);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Raw queue order: the lane engine's delivery sequence is exactly
    /// the single-heap sequence — the same (hence a legal) resolution of
    /// every FIFO tie — for arbitrary operation interleavings, including
    /// operations scheduled reactively mid-drain and mid-broadcast.
    #[test]
    fn lane_order_is_the_single_heap_order(
        nprocs in 2usize..24,
        ops in prop::collection::vec((0usize..3, 0u64..40, 0usize..24, any::<u64>()), 1..120),
        reschedule_each in 0u64..4,
    ) {
        let mut lanes: Sim<u64> = Sim::with_procs(nprocs);
        let mut heap: SingleHeapSim<u64> = SingleHeapSim::new();
        for (i, &op) in ops.iter().enumerate() {
            apply_op(op, nprocs, &mut lanes, &mut heap, i as u64);
        }
        let mut drained = 0u64;
        let mut pending_ops: Vec<Op> = ops.iter().rev().copied().collect();
        loop {
            prop_assert_eq!(lanes.pending(), heap.pending());
            let (a, b) = (lanes.next(), heap.next());
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
            drained += 1;
            // Reactive pushes while draining (also mid-broadcast): the
            // merge front must stay coherent under interleaved updates.
            if drained % 7 < reschedule_each {
                if let Some(op) = pending_ops.pop() {
                    apply_op(op, nprocs, &mut lanes, &mut heap, 10_000 + drained);
                }
            }
        }
        prop_assert_eq!(lanes.delivered(), heap.delivered());
        prop_assert_eq!(lanes.now(), heap.now());
    }
}

proptest! {
    // Each case runs two full simulations; keep the count moderate.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Quiet and perturbed runs: every `RunResult` field is identical
    /// across the two engines, for every strategy, with and without
    /// fault-model perturbations (jitter, delay, drops, stragglers).
    #[test]
    fn run_results_identical_across_engines(
        seed in any::<u64>(),
        level in 0.0f64..3.0,
        strategy in 0usize..3,
        nprocs in 2usize..9,
        nx in 10usize..16,
        record in any::<bool>(),
    ) {
        let tree = tree_for(nx);
        let cfg0 = strategy_cfg(strategy, nprocs);
        let map = compute_mapping(&tree, &cfg0);
        let cfg = SolverConfig {
            fault: (level > 0.05).then(|| FaultModel::intensity(seed, level)),
            record_events: record,
            record_traces: true,
            ..cfg0
        };
        let a = parsim::run(&tree, &map, &cfg).unwrap();
        let b = parsim::run_reference(&tree, &map, &cfg).unwrap();
        assert_results_identical(&a, &b);
    }

    /// Membership runs: processor loss, recovery, join, and rebalancing
    /// follow the exact same causal order on both engines — kills and
    /// joins are keyed on delivered-event indices, which the equivalence
    /// above makes engine-invariant. Some random kill+join schedules land
    /// outside the recovery protocol's supported envelope (e.g. a kill
    /// that leaves a single survivor before a dormant processor joins
    /// trips a protocol debug assertion); equivalence still holds there —
    /// both engines must reach the exact same edge — so the property
    /// asserts identical outcomes, successful or not, and field-identical
    /// results whenever both runs complete.
    #[test]
    fn kill_join_runs_identical_across_engines(
        strategy in 0usize..3,
        nprocs in 3usize..8,
        nx in 10usize..15,
        kill_idx in 50u64..400,
        join_idx in 100u64..600,
        victim in 1usize..8,
        joiner in 1usize..8,
    ) {
        let tree = tree_for(nx);
        let cfg0 = strategy_cfg(strategy, nprocs);
        let map = compute_mapping(&tree, &cfg0);
        // Victim and joiner: distinct, nonzero (proc 0 owns the root
        // subtree in these small mappings; keep it alive so runs finish).
        let victim = 1 + victim % (nprocs - 1);
        let mut joiner = 1 + joiner % (nprocs - 1);
        if joiner == victim {
            joiner = if victim + 1 < nprocs { victim + 1 } else { 1 };
        }
        let cfg = SolverConfig {
            recovery: Some(RecoveryConfig::default()),
            fault: Some(FaultModel {
                kill_at: vec![(kill_idx, victim)],
                join_at: vec![(join_idx, joiner)],
                ..FaultModel::quiet(11)
            }),
            ..cfg0
        };
        let a = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parsim::run(&tree, &map, &cfg)
        }));
        let b = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parsim::run_reference(&tree, &map, &cfg)
        }));
        match (a, b) {
            (Ok(Ok(a)), Ok(Ok(b))) => assert_results_identical(&a, &b),
            (Ok(Err(ea)), Ok(Err(eb))) => {
                prop_assert_eq!(format!("{ea:?}"), format!("{eb:?}"),
                    "both runs failed, but differently");
            }
            (Err(_), Err(_)) => {
                // Both engines drove the protocol into the identical
                // out-of-envelope edge: equivalence holds.
            }
            (a, b) => panic!(
                "engines diverged: lanes {}, reference {}",
                outcome_name(&a),
                outcome_name(&b),
            ),
        }
    }
}

/// The sampler's timer chain (and its termination logic) is also
/// engine-invariant: sampled runs match field for field, series included.
#[test]
fn sampled_runs_identical_across_engines() {
    let tree = tree_for(14);
    for strategy in 0..3 {
        let cfg = SolverConfig { sample_every: Some(500), ..strategy_cfg(strategy, 6) };
        let map = compute_mapping(&tree, &cfg);
        let a = parsim::run(&tree, &map, &cfg).unwrap();
        let b = parsim::run_reference(&tree, &map, &cfg).unwrap();
        assert_results_identical(&a, &b);
    }
}
