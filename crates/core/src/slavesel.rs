//! Dynamic slave selection for type-2 fronts.
//!
//! The master of a type-2 node chooses its slaves at activation time from
//! its (possibly stale) view of the other processors:
//!
//! * the **workload baseline** (Section 3) picks processors less loaded
//!   than itself and balances the *work* given to each;
//! * **Algorithm 1** (Section 4) sorts candidates by *memory* load and
//!   levels memory like water filling a basin, never exceeding the level
//!   of the most-loaded selected processor — so the current peak is
//!   preserved whenever possible (Figure 4).

use crate::blocking::{blocks_from_entry_budgets, equal_entry_blocks, slave_surface};
use crate::views::Views;
use mf_sparse::Symmetry;

/// A slave assignment: processor plus its contiguous row block
/// (`offset` is relative to the first non-pivot row, see
/// [`crate::blocking`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlaveAssignment {
    /// Selected processor.
    pub proc: usize,
    /// First row of the block (offset within the slave rows).
    pub offset: usize,
    /// Rows in the block.
    pub nrows: usize,
}

/// Inputs of a selection decision.
#[derive(Debug, Clone)]
pub struct SelectionInput<'a> {
    /// Candidate processors (excluding the master).
    pub candidates: &'a [usize],
    /// Metric per processor, indexed by processor id. For the workload
    /// strategy this is flops-still-to-do; for Algorithm 1 it is the
    /// memory metric (instantaneous + subtree + prediction, Section 5.1).
    pub metric: &'a [u64],
    /// Instantaneous memory per processor, used by Algorithm 1 for the
    /// leveling *arithmetic* (the enriched metric ranks and filters the
    /// candidates, but row budgets must level real memory, not projected
    /// peaks). `None` falls back to `metric`.
    pub fill_metric: Option<&'a [u64]>,
    /// The master's own metric value.
    pub master_metric: u64,
    /// Front order.
    pub nfront: usize,
    /// Pivot count.
    pub npiv: usize,
    /// Symmetry (selects the Figure 3 blocking shape).
    pub sym: Symmetry,
    /// Granularity: minimum rows per slave.
    pub min_rows_per_slave: usize,
}

impl SelectionInput<'_> {
    fn max_slaves(&self) -> usize {
        let rows = self.nfront - self.npiv;
        (rows / self.min_rows_per_slave.max(1)).max(1).min(self.candidates.len())
    }
}

/// Workload-based baseline: keep the candidates strictly less loaded than
/// the master (all of them when none is, to avoid starving the front),
/// then give each an equal-entry block (equal work under the 1-D
/// distribution).
pub fn select_workload(input: &SelectionInput<'_>) -> Vec<SlaveAssignment> {
    let rows = input.nfront - input.npiv;
    if rows == 0 || input.candidates.is_empty() {
        return Vec::new();
    }
    let mut cands: Vec<usize> = input
        .candidates
        .iter()
        .copied()
        .filter(|&p| input.metric[p] < input.master_metric)
        .collect();
    if cands.is_empty() {
        // Nobody is less loaded: take the single least-loaded candidate so
        // the type-2 node still runs in parallel (MUMPS keeps ≥1 slave).
        match input.candidates.iter().min_by_key(|&&p| (input.metric[p], p)) {
            Some(&best) => cands.push(best),
            None => return Vec::new(),
        }
    }
    cands.sort_by_key(|&p| (input.metric[p], p));
    let k = cands.len().min(input.max_slaves()).min(rows);
    let blocks = equal_entry_blocks(input.sym, input.nfront, input.npiv, k);
    cands.truncate(k);
    cands
        .into_iter()
        .zip(blocks)
        .map(|(proc, (offset, nrows))| SlaveAssignment { proc, offset, nrows })
        .collect()
}

/// The paper's Algorithm 1: memory-based waterfill.
///
/// Sort candidates by growing memory; find the largest `i` such that the
/// deficit `Σ_{j<i} (MEM[i-1] - MEM[j])` stays below the surface of the
/// slave part; give each selected processor its deficit in entries, then
/// spread the remaining entries equitably.
pub fn select_memory(input: &SelectionInput<'_>) -> Vec<SlaveAssignment> {
    let rows = input.nfront - input.npiv;
    if rows == 0 || input.candidates.is_empty() {
        return Vec::new();
    }
    let mut cands: Vec<usize> = input.candidates.to_vec();
    cands.sort_by_key(|&p| (input.metric[p], p));
    let fill = input.fill_metric.unwrap_or(input.metric);
    let surface = slave_surface(input.sym, input.nfront, input.npiv);
    let kmax = input.max_slaves().min(rows);

    // Largest i (1-based count) whose leveling deficit fits the surface.
    // Candidates are ranked by the (possibly enriched) metric; the
    // deficits level the instantaneous memory of the chosen set.
    let level_of = |cands: &[usize], i: usize| -> u64 {
        cands[..i].iter().map(|&p| fill[p]).max().unwrap_or(0)
    };
    let mut best_i = 1;
    for i in 2..=kmax {
        let level = level_of(&cands, i);
        let deficit: u64 = cands[..i].iter().map(|&p| level - fill[p]).sum();
        if deficit <= surface {
            best_i = i;
        }
    }
    let k = best_i;
    let level = level_of(&cands, k);
    let deficits: Vec<u64> = cands[..k].iter().map(|&p| level - fill[p]).collect();
    let used: u64 = deficits.iter().sum();
    let remaining = surface.saturating_sub(used);
    let extra = remaining / k as u64;
    let budgets: Vec<u64> = deficits.iter().map(|&d| d + extra).collect();
    let blocks = blocks_from_entry_budgets(input.sym, input.nfront, input.npiv, &budgets);
    cands[..k]
        .iter()
        .zip(blocks)
        .map(|(&proc, (offset, nrows))| SlaveAssignment { proc, offset, nrows })
        .collect()
}

/// The hybrid strategy sketched in the paper's conclusion: "hybrid
/// strategies well adapted at both balancing the workload and the memory
/// need to be designed".
///
/// Candidates are first filtered by workload like the baseline (only
/// processors less loaded than the master, so the makespan is protected),
/// then the *memory* waterfill of Algorithm 1 distributes the rows within
/// that feasible set. `input.metric` must be the memory metric and
/// `load` / `master_load` the workload view.
pub fn select_hybrid(
    input: &SelectionInput<'_>,
    load: &[u64],
    master_load: u64,
) -> Vec<SlaveAssignment> {
    let rows = input.nfront - input.npiv;
    if rows == 0 || input.candidates.is_empty() {
        return Vec::new();
    }
    let mut feasible: Vec<usize> =
        input.candidates.iter().copied().filter(|&p| load[p] < master_load).collect();
    if feasible.is_empty() {
        match input.candidates.iter().min_by_key(|&&p| (load[p], p)) {
            Some(&best) => feasible.push(best),
            None => return Vec::new(),
        }
    }
    let narrowed = SelectionInput { candidates: &feasible, ..input.clone() };
    select_memory(&narrowed)
}

/// Everything a slave-selection strategy may consult: the master's (stale)
/// [`Views`] of the machine plus the geometry of the front being split.
/// Strategies derive their own metric vectors from the views, so the
/// protocol state machine never pattern-matches on a strategy name.
#[derive(Debug)]
pub struct SlaveCtx<'a> {
    /// The master's stale views of every processor.
    pub views: &'a Views,
    /// The deciding (master) processor.
    pub master: usize,
    /// Processors in the machine.
    pub nprocs: usize,
    /// Whether subtree-peak announcements enrich the memory metric.
    pub use_subtree_info: bool,
    /// Whether ready-master predictions enrich the memory metric.
    pub use_prediction: bool,
    /// Candidate processors (the capacity re-selection loop shrinks this).
    pub candidates: &'a [usize],
    /// Front order.
    pub nfront: usize,
    /// Pivot count.
    pub npiv: usize,
    /// Symmetry (selects the Figure 3 blocking shape).
    pub sym: Symmetry,
    /// Granularity: minimum rows per slave.
    pub min_rows_per_slave: usize,
}

/// A pluggable slave-selection strategy for type-2 fronts.
///
/// Implementations are stateless: one decision maps the context to an
/// assignment plus the per-processor metric vector the decision was made
/// from (the flight recorder captures what the master *believed*, not
/// what was true). Register new strategies by adding a static instance
/// and a [`crate::config::SlaveSelection`] factory name.
pub trait SlaveSelector: Send + Sync {
    /// Stable CLI/registry name of the strategy.
    fn name(&self) -> &'static str;

    /// One selection decision over `ctx.candidates`.
    fn select(&self, ctx: &SlaveCtx<'_>) -> (Vec<SlaveAssignment>, Vec<u64>);
}

fn input_of<'a>(
    ctx: &'a SlaveCtx<'_>,
    metric: &'a [u64],
    fill: Option<&'a [u64]>,
) -> SelectionInput<'a> {
    SelectionInput {
        candidates: ctx.candidates,
        metric,
        fill_metric: fill,
        master_metric: metric[ctx.master],
        nfront: ctx.nfront,
        npiv: ctx.npiv,
        sym: ctx.sym,
        min_rows_per_slave: ctx.min_rows_per_slave,
    }
}

/// Workload baseline (Section 3) as a [`SlaveSelector`].
pub struct WorkloadSelector;

impl SlaveSelector for WorkloadSelector {
    fn name(&self) -> &'static str {
        "workload"
    }

    fn select(&self, ctx: &SlaveCtx<'_>) -> (Vec<SlaveAssignment>, Vec<u64>) {
        let metric: Vec<u64> = (0..ctx.nprocs).map(|q| ctx.views.load[q]).collect();
        let assignment = select_workload(&input_of(ctx, &metric, None));
        (assignment, metric)
    }
}

/// Algorithm 1 memory waterfill (Section 4) as a [`SlaveSelector`].
pub struct MemorySelector;

impl SlaveSelector for MemorySelector {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn select(&self, ctx: &SlaveCtx<'_>) -> (Vec<SlaveAssignment>, Vec<u64>) {
        let metric: Vec<u64> = (0..ctx.nprocs)
            .map(|q| ctx.views.memory_metric(q, ctx.use_subtree_info, ctx.use_prediction))
            .collect();
        let assignment = select_memory(&input_of(ctx, &metric, Some(&ctx.views.mem)));
        (assignment, metric)
    }
}

/// Conclusion-sketch hybrid (workload filter, memory waterfill) as a
/// [`SlaveSelector`].
pub struct HybridSelector;

impl SlaveSelector for HybridSelector {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn select(&self, ctx: &SlaveCtx<'_>) -> (Vec<SlaveAssignment>, Vec<u64>) {
        let metric: Vec<u64> = (0..ctx.nprocs)
            .map(|q| ctx.views.memory_metric(q, ctx.use_subtree_info, ctx.use_prediction))
            .collect();
        let input = input_of(ctx, &metric, Some(&ctx.views.mem));
        let assignment = select_hybrid(&input, &ctx.views.load, ctx.views.load[ctx.master]);
        (assignment, metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::slave_block_entries;

    fn input<'a>(
        candidates: &'a [usize],
        metric: &'a [u64],
        master_metric: u64,
        nfront: usize,
        npiv: usize,
    ) -> SelectionInput<'a> {
        SelectionInput {
            candidates,
            metric,
            fill_metric: None,
            master_metric,
            nfront,
            npiv,
            sym: Symmetry::General,
            min_rows_per_slave: 4,
        }
    }

    #[test]
    fn workload_prefers_less_loaded() {
        let metric = vec![500, 100, 900, 50];
        let cands = [1, 2, 3];
        let sel = select_workload(&input(&cands, &metric, 600, 40, 10));
        let procs: Vec<usize> = sel.iter().map(|s| s.proc).collect();
        assert_eq!(procs, vec![3, 1]); // 900 is busier than the master
        let rows: usize = sel.iter().map(|s| s.nrows).sum();
        assert_eq!(rows, 30);
    }

    #[test]
    fn workload_falls_back_to_least_loaded() {
        let metric = vec![0, 800, 900];
        let cands = [1, 2];
        let sel = select_workload(&input(&cands, &metric, 100, 40, 10));
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].proc, 1);
        assert_eq!(sel[0].nrows, 30);
    }

    #[test]
    fn memory_levels_without_raising_peak() {
        // Figure 4's situation: uneven memories; the fill must bring the
        // selected processors to (at most) a common level bounded by the
        // highest selected processor's memory plus its equal share.
        let metric = vec![0, 1000, 200, 600];
        let cands = [1, 2, 3];
        let inp = input(&cands, &metric, 0, 50, 20);
        let sel = select_memory(&inp);
        assert!(!sel.is_empty());
        // Candidates chosen in growing memory order: 2 (200), 3 (600), ...
        assert_eq!(sel[0].proc, 2);
        // Every row distributed exactly once.
        let rows: usize = sel.iter().map(|s| s.nrows).sum();
        assert_eq!(rows, 30);
        let mut off = 0;
        for s in &sel {
            assert_eq!(s.offset, off);
            off += s.nrows;
        }
        // The lower-memory slave must receive at least as many entries as
        // the higher-memory one (the leveling property).
        if sel.len() >= 2 {
            let e0 = slave_block_entries(Symmetry::General, 50, 20, sel[0].offset, sel[0].nrows);
            let e1 = slave_block_entries(Symmetry::General, 50, 20, sel[1].offset, sel[1].nrows);
            assert!(e0 >= e1, "{e0} < {e1}");
        }
    }

    #[test]
    fn memory_uses_fewest_procs_that_fit() {
        // Tiny front: leveling even two procs would exceed the surface, so
        // only the least-loaded is chosen (the "smallest set" property).
        let metric = vec![0, 10_000, 0];
        let cands = [1, 2];
        let inp = SelectionInput { min_rows_per_slave: 1, ..input(&cands, &metric, 0, 12, 4) };
        let sel = select_memory(&inp);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].proc, 2);
        assert_eq!(sel[0].nrows, 8);
    }

    #[test]
    fn memory_with_equal_memories_splits_equitably() {
        let metric = vec![0, 100, 100, 100];
        let cands = [1, 2, 3];
        let inp = SelectionInput { min_rows_per_slave: 1, ..input(&cands, &metric, 0, 60, 30) };
        let sel = select_memory(&inp);
        assert_eq!(sel.len(), 3);
        let rows: Vec<usize> = sel.iter().map(|s| s.nrows).collect();
        assert_eq!(rows.iter().sum::<usize>(), 30);
        assert!(rows.iter().all(|&r| r == 10), "{rows:?}");
    }

    #[test]
    fn granularity_limits_slave_count() {
        let metric = vec![0; 10];
        let cands: Vec<usize> = (1..10).collect();
        // 20 slave rows, min 8 rows/slave -> at most 2 slaves.
        let inp = SelectionInput { min_rows_per_slave: 8, ..input(&cands, &metric, 0, 30, 10) };
        assert!(select_memory(&inp).len() <= 2);
        assert!(select_workload(&inp).len() <= 2);
    }

    #[test]
    fn no_candidates_means_no_slaves() {
        let metric = vec![0];
        let sel = select_memory(&input(&[], &metric, 0, 30, 10));
        assert!(sel.is_empty());
    }

    #[test]
    fn hybrid_respects_the_workload_filter() {
        // Proc 3 has the least memory but too much work: the hybrid must
        // exclude it and waterfill memory among the less-loaded ones.
        let mem = vec![0, 500, 900, 50];
        let load = vec![1000, 100, 200, 5000];
        let cands = [1, 2, 3];
        let inp = input(&cands, &mem, 0, 50, 20);
        let sel = select_hybrid(&inp, &load, 900);
        assert!(!sel.is_empty());
        assert!(sel.iter().all(|a| a.proc != 3), "{sel:?}");
        // Memory ordering within the feasible set: proc 1 (mem 500) before
        // proc 2 (mem 900).
        assert_eq!(sel[0].proc, 1);
    }

    #[test]
    fn hybrid_falls_back_to_least_loaded() {
        let mem = vec![0, 10, 20];
        let load = vec![0, 900, 800];
        let cands = [1, 2];
        let inp = input(&cands, &mem, 0, 50, 20);
        let sel = select_hybrid(&inp, &load, 100);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].proc, 2); // least loaded wins the fallback
        assert_eq!(sel[0].nrows, 30);
    }

    #[test]
    fn deterministic_tie_break_by_proc_id() {
        let metric = vec![0, 7, 7, 7];
        let cands = [3, 1, 2];
        let sel = select_memory(&input(&cands, &metric, 0, 40, 20));
        assert_eq!(sel[0].proc, 1);
    }
}
