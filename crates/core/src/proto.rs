//! The sans-io scheduling protocol: one [`SchedulerCore`] per processor.
//!
//! This module is the paper's contribution distilled to a pure state
//! machine. A core consumes typed [`Input`]s — a delivered [`Msg`], a
//! fired compute timer, a tick — and emits typed [`Effect`]s: messages to
//! send, compute to start, memory movements, recorder events. It owns
//! **no clock** (every `handle` call carries the current time), **no
//! queue** (transport is the driver's problem), and **no RNG** (duration
//! noise and fault injection are runtime concerns). The same cores run
//! bit-identically under the discrete-event simulator
//! ([`crate::parsim::run`]) and on real OS threads (the `mf-exec` crate),
//! which is the proof that the protocol is runtime-agnostic.
//!
//! Strategy decisions go through the [`SlaveSelector`] /
//! [`TaskSelector`] traits, so new policies from the literature plug in
//! without touching this state machine.
//!
//! Two conventions keep the protocol deterministic across backends:
//!
//! - **Self-sends never leave the core.** A message a processor addresses
//!   to itself is delivered synchronously inside `handle` (the MUMPS loop
//!   does the local work inline); a core therefore *never* emits
//!   [`Effect::Send`] to its own id — an invariant the proptests pin.
//! - **Effects are ordered.** The driver must process the drained effects
//!   in emission order; that order is exactly the order the monolithic
//!   scheduler used to perform the corresponding side effects, which is
//!   what keeps simulator runs bit-identical across the refactor.

use crate::config::SolverConfig;
use crate::error::ProcDiag;
use crate::malleable::CoreAlloc;
use crate::mapping::{NodeKind, StaticMapping};
use crate::pool::{TaskCtx, TaskPool, TaskSelector};
use crate::recovery::{RecoveryPlan, RecoverySnapshot};
use crate::slavesel::{SlaveAssignment, SlaveCtx, SlaveSelector};
use crate::views::{StatusDelta, Views};
use mf_sim::recorder::{FrontClass, MemArea, SlavePick, StatusKind, TaskRole};
use mf_sim::{CompactEvent, CoreMetrics, MsgClass, ProcMemory, Time};
use mf_symbolic::AssemblyTree;
use std::collections::VecDeque;

/// Timer key of the periodic heartbeat emitter (never collides with a
/// work-ledger key: work keys are ledger indices, far below the top of
/// the `u64` range).
pub const TIMER_HEARTBEAT: u64 = u64::MAX;
/// Timer key of the periodic lease check.
pub const TIMER_LEASE: u64 = u64::MAX - 1;
/// Timer key of the telemetry sampler (the lowest reserved key: the
/// drivers' quiescence accounting treats every key at or above it as
/// protocol chatter rather than live work).
pub const TIMER_SAMPLE: u64 = u64::MAX - 2;

/// Inter-processor messages of the scheduling protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// A contribution-block piece of `child` was produced and sits on the
    /// stack of processor `holder` until the parent activates (control
    /// message to the parent's master; the data itself stays put).
    PieceDone {
        /// Producing child node.
        child: usize,
        /// Processor whose stack holds the piece.
        holder: usize,
        /// Piece size in entries.
        entries: u64,
        /// Lifetime of `child` the piece belongs to (see
        /// [`SchedulerCore`]'s epoch vector): a stale piece notification
        /// from before a recovery is silently discarded.
        epoch: u32,
    },
    /// `child`'s elimination finished; `pieces` CB pieces were produced
    /// in total (0 when the CB is empty).
    Complete {
        /// Completed child node.
        child: usize,
        /// CB pieces produced in total.
        pieces: usize,
        /// Lifetime of `child` the completion belongs to.
        epoch: u32,
    },
    /// The parent activated: the addressed processor ships its stacked CB
    /// piece of `child` to the parent's workers and frees it.
    FetchCb {
        /// Child whose piece is fetched.
        child: usize,
        /// Piece size in entries.
        entries: u64,
        /// Lifetime of `child` the fetch belongs to.
        epoch: u32,
    },
    /// A slave task of a type-2 node.
    SlaveTask {
        /// The type-2 node.
        node: usize,
        /// Block size in entries.
        entries: u64,
        /// CB entries inside the block.
        cb_share: u64,
        /// Factor entries inside the block.
        factor_share: u64,
        /// Flops delegated with the block.
        flops_share: u64,
        /// Lifetime of `node` the enrolment belongs to.
        epoch: u32,
    },
    /// The 2-D root scatters equal shares to every processor.
    Type3Share {
        /// The type-3 root node.
        node: usize,
        /// Share size in entries.
        entries: u64,
        /// Flops of the share.
        flops_share: u64,
        /// Lifetime of `node` the share belongs to.
        epoch: u32,
    },
    /// Liveness beacon of the lease-based failure detector: sent to every
    /// reachable peer each `heartbeat_every` ticks when recovery is
    /// configured. Any delivered message renews the sender's lease; the
    /// heartbeat guarantees renewal when the protocol itself goes quiet.
    Heartbeat,
    /// A compact index-based status update (Sections 3–5.1): which belief
    /// slot of the receivers' [`Views`] changes and by how much. This is
    /// the only broadcast payload of the coherence protocol — each
    /// receiver applies it to exactly one slot via [`Views::apply`].
    Status(StatusDelta),
    /// All children of `node` have started: its master should soon expect
    /// it to become ready (Section 5.1 prediction trigger).
    ChildStarted {
        /// The parent node whose child just started.
        node: usize,
    },
}

impl Msg {
    /// Status classification for the flight recorder and the traffic
    /// metrics; `None` for control messages.
    pub fn status_kind(&self) -> Option<(StatusKind, i64)> {
        match self {
            Msg::Status(d) => Some(d.kind()),
            _ => None,
        }
    }

    /// Fault-injection delivery class: view refreshes are idempotent
    /// [`MsgClass::Status`] traffic a perturbed network may drop (the run
    /// stays correct, the views get staler); everything that carries an
    /// obligation — task payloads, completions, CB bookkeeping, the
    /// prediction *trigger* `ChildStarted` (its counter must reach the
    /// child count exactly once per child) — is [`MsgClass::Control`].
    pub fn class(&self) -> MsgClass {
        match self {
            Msg::Status(_) => MsgClass::Status,
            _ => MsgClass::Control,
        }
    }
}

/// A fatal condition detected inside a handler; the driver converts it
/// into a [`crate::error::SimError`] with full diagnostics after the
/// current input unwinds.
#[derive(Debug, Clone)]
pub enum Violation {
    /// A memory area would have gone negative.
    Accounting {
        /// Offending processor.
        proc: usize,
        /// Offending area ("fronts" or "stack").
        area: &'static str,
    },
    /// A protocol invariant was broken (unknown work key, completion for
    /// a parentless node, ...).
    Protocol {
        /// Human-readable description.
        detail: String,
    },
}

/// What a driver feeds into a [`SchedulerCore`].
#[derive(Debug, Clone)]
pub enum Input {
    /// Poll for work (used once per processor to start the run; all later
    /// polling happens inside the core on completions and deliveries).
    Tick,
    /// A message arrived from another processor.
    Deliver {
        /// Sending processor.
        from: usize,
        /// The message.
        msg: Msg,
    },
    /// The compute unit started by [`Effect::StartCompute`] with this key
    /// finished.
    TimerFired {
        /// The key the core handed out.
        key: u64,
    },
    /// Stall-breaker: force-activate the deferred ready task `node` (the
    /// driver picked it via [`SchedulerCore::cheapest_deferred`]).
    Force {
        /// The node to activate.
        node: usize,
    },
    /// A processor died: apply the driver-built recovery plan (cancel and
    /// garbage-collect everything belonging to recomputed nodes, repair
    /// readiness counters, take ownership of adopted work). Fed to every
    /// surviving core in processor order, and replayed to late joiners.
    Recover {
        /// The plan (boxed: recovery is rare, the `Input` enum is hot).
        plan: Box<RecoveryPlan>,
    },
    /// Processor `proc` joined the machine: mark it reachable (it now
    /// receives heartbeats, status traffic, and slave enrolments).
    Join {
        /// The joining processor.
        proc: usize,
    },
    /// Rebalancing after a join: move one ready task from its current
    /// owner to the joiner. Fed to every core so ownership routing stays
    /// consistent machine-wide.
    Migrate {
        /// The migration (boxed like `Recover`).
        m: Box<Migration>,
    },
}

/// One task moved to a joining processor by the rebalancer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Migration {
    /// The ready (not yet activated) node that moves.
    pub node: usize,
    /// Its current owner.
    pub from: usize,
    /// The joining processor that receives it.
    pub to: usize,
    /// The node's flops (workload the move transfers).
    pub flops: u64,
    /// Contribution blocks registered for the node at the donor, to be
    /// re-registered at the receiver: `(holder, entries, child)`. The
    /// pieces themselves stay on their holders' stacks.
    pub pieces: Vec<(usize, u64, usize)>,
}

/// What a [`SchedulerCore`] asks its runtime to do. Effects must be
/// processed in emission order.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Send `msg` to another processor (never the core's own id).
    Send {
        /// Destination processor.
        to: usize,
        /// The message.
        msg: Msg,
        /// Payload size for the network model.
        bytes: u64,
    },
    /// Send `msg` to every other processor (status traffic only).
    Broadcast {
        /// The message.
        msg: Msg,
        /// Per-target payload size for the network model.
        bytes: u64,
    },
    /// Run `flops` worth of compute; deliver [`Input::TimerFired`] with
    /// `key` when it completes. The runtime owns the duration model
    /// (flop rate, jitter, stragglers). A recording driver derives the
    /// `ComputeStart`/`ComputeEnd` events from this effect and its
    /// timer, so the core's compute hot path carries no recording
    /// branches at all.
    StartCompute {
        /// Completion key (an index into the core's work ledger).
        key: u64,
        /// The node being computed (for labelling; the key is what the
        /// core dispatches on).
        node: usize,
        /// Role of the work unit.
        role: TaskRole,
        /// Work size in flops.
        flops: u64,
        /// Cores granted to this work unit by the core-allocation
        /// policy ([`crate::malleable::CoreAlloc`]); the runtime feeds
        /// it to the shared duration model
        /// ([`crate::malleable::compute_ticks`]) and a numeric driver
        /// sizes its within-front thread scope with it. Always 1 under
        /// the default `Static(1)` policy.
        cores: u32,
    },
    /// `entries` were allocated in `area` for `node` (already applied to
    /// the core's own accounting; emitted so real backends can mirror it
    /// in a physical ledger and so the driver can feed the recorder).
    Alloc {
        /// The node the allocation belongs to.
        node: usize,
        /// Front or stack area.
        area: MemArea,
        /// Allocation size in entries.
        entries: u64,
    },
    /// `entries` were freed from `area` for `node` (counterpart of
    /// [`Effect::Alloc`]).
    Free {
        /// The node the release belongs to.
        node: usize,
        /// Front or stack area.
        area: MemArea,
        /// Release size in entries.
        entries: u64,
    },
    /// Arm (or re-arm) a recurring protocol timer: deliver
    /// [`Input::TimerFired`] with `key` after `after` ticks. Unlike
    /// [`Effect::StartCompute`] this carries no work and does not occupy
    /// the compute unit — it drives the heartbeat/lease failure detector.
    /// A driver whose network is partitioned refuses to re-arm, which is
    /// what lets a partitioned run drain and fail cleanly.
    Arm {
        /// Timer key ([`TIMER_HEARTBEAT`], [`TIMER_LEASE`] or
        /// [`TIMER_SAMPLE`]).
        key: u64,
        /// Delay until the timer fires, in ticks.
        after: Time,
    },
    /// The lease of `proc` expired at this core: no message from it for
    /// longer than the configured `lease_timeout`. The driver arbitrates
    /// (several cores typically declare the same death) and responds with
    /// [`Input::Recover`] once per actual loss.
    DeclareDead {
        /// The silent processor.
        proc: usize,
    },
    /// A read-only telemetry snapshot taken by the sampling timer
    /// (only emitted when [`SolverConfig::sample_every`] is set). The
    /// driver stamps it with the current virtual time and its own
    /// traffic counters and appends it to the run's time series; the
    /// core mutates nothing while sampling, which is what keeps
    /// sampled and unsampled schedules bit-identical.
    Sample {
        /// Active (front-area) entries at sample time.
        active: u64,
        /// Contribution-block stack entries at sample time.
        stack: u64,
        /// Ready tasks in the local pool.
        pool_depth: u32,
        /// Slave tasks queued behind the current computation.
        queued: u32,
        /// Whether the compute unit was occupied.
        busy: bool,
        /// Whether the core was stalled by the capacity check.
        stalled: bool,
    },
    /// A flight-recorder decision event in compact wire form (only
    /// emitted when the core was built with recording enabled,
    /// preserving the recorder's zero-cost-off contract). Carrying the
    /// POD [`CompactEvent`] — payloads boxed, and only for the rare
    /// selection events — keeps this variant from inflating the whole
    /// `Effect` enum the hot paths move through.
    Record(CompactEvent),
}

/// Work units whose completion is signalled by [`Input::TimerFired`].
#[derive(Debug, Clone)]
enum Work {
    /// Full-front elimination (type 1, subtree nodes, or a type-2 node
    /// that found no slaves).
    Elim { node: usize, flops: u64 },
    /// Master part of a type-2 node (`pieces` slaves were enrolled).
    MasterPart { node: usize, pieces: usize, flops: u64 },
    /// A slave block of a type-2 node.
    Slave { node: usize, entries: u64, cb_share: u64, factor_share: u64, flops: u64 },
    /// This processor's share of the 2-D root (`is_master` on the
    /// processor that owns the root and counts it done).
    RootShare { node: usize, entries: u64, flops: u64, is_master: bool },
}

/// Initial workloads: each processor starts with the cost of its subtrees
/// (Section 3); everyone knows this static information. Shared by every
/// backend so all cores start from the same view of the machine.
pub fn initial_loads(tree: &AssemblyTree, map: &StaticMapping, nprocs: usize) -> Vec<u64> {
    let mut load0 = vec![0u64; nprocs];
    for v in 0..tree.len() {
        if map.subtree_of[v].is_some() {
            load0[map.owner[v]] += tree.flops(v);
        }
    }
    load0
}

/// One processor of the MUMPS-style scheduler as a sans-io state machine.
///
/// Owns everything a processor decides *with* — its memory accounting,
/// its stale [`Views`] of the others, its ready pool and slave queue, the
/// readiness bookkeeping of the nodes it masters — and nothing about
/// *how* the run executes (no clock, queue, or RNG). Drivers call
/// [`SchedulerCore::handle`] with each input and perform the drained
/// [`Effect`]s in order.
pub struct SchedulerCore<'a> {
    id: usize,
    tree: &'a AssemblyTree,
    map: &'a StaticMapping,
    cfg: &'a SolverConfig,
    slave_sel: &'static dyn SlaveSelector,
    task_sel: &'static dyn TaskSelector,
    /// Whether to build (expensive) recorder events; mirrors
    /// `cfg.record_events`.
    record: bool,
    /// Scratch: the time of the input being handled.
    now: Time,
    /// Effect buffer drained by `handle` (reused across calls).
    out: Vec<Effect>,
    mem: ProcMemory,
    /// Out-of-core mode: virtual time until which this processor's disk
    /// is busy writing factors.
    disk_busy_until: Time,
    views: Views,
    pool: TaskPool,
    busy: bool,
    slave_queue: VecDeque<usize>, // indices into self.works
    current_subtree: Option<usize>,
    /// Active memory when the current subtree started (for Algorithm 2's
    /// "current memory including peak of subtree").
    subtree_base: u64,
    /// Instant this processor entered its current stalled interval (idle
    /// with every ready task deferred by the capacity verdict); `None`
    /// when not stalled. Feeds `ProcMetrics::stalled_ticks`.
    stalled_since: Option<Time>,
    /// Upper tasks owned here whose children have all started (node ->
    /// predicted activation cost), feeding the Predicted broadcasts.
    soon: std::collections::BTreeMap<usize, u64>,
    /// Work ledger; [`Effect::StartCompute`] keys index into it.
    works: Vec<Work>,
    // Readiness bookkeeping, indexed by node id. Every entry is touched
    // only by the owner of the relevant (parent) node, so per-core
    // full-length vectors partition the original global state exactly.
    pieces_expected: Vec<Option<usize>>,
    pieces_got: Vec<usize>,
    child_complete: Vec<bool>,
    done_children: Vec<usize>,
    /// CB pieces stacked for each *parent* node: (holder processor,
    /// entries, producing child), recorded at the parent's owner,
    /// released at activation.
    cb_pieces: Vec<Vec<(usize, u64, usize)>>,
    started_children: Vec<usize>,
    activated: Vec<bool>,
    /// Whether each child already counted into its parent's
    /// `done_children` here (the permanent fire-once guard; recovery
    /// selectively clears it so a recomputed child counts again).
    counted: Vec<bool>,
    nodes_done: usize,
    /// Nodes this core completed as owner (the indicator behind
    /// `nodes_done`; recovery uncounts recomputed nodes through it).
    done_by_me: Vec<bool>,
    /// Factor entries stored here per node, the partition-invariant
    /// quantity behind [`crate::recovery::digest_factors`].
    factors_by_node: Vec<u64>,
    /// Entries of the CB piece this core physically holds per producing
    /// node (at most one piece per producer per holder). Zero when not
    /// holding; recovery pops stale pieces through it.
    held: Vec<u64>,
    /// Completion flags of the work ledger (parallel to `works`).
    done_works: Vec<bool>,
    /// Cancellation flags of the work ledger: a cancelled work's timer
    /// still fires, but its completion only releases the compute unit.
    cancelled: Vec<bool>,
    /// Key of the work currently occupying the compute unit, if any.
    running: Option<usize>,
    // ---- membership & failure detection (all-true / idle on runs
    // without membership faults, keeping the quiet path bit-identical)
    /// Liveness per processor, updated by recovery plans.
    alive: Vec<bool>,
    /// Join state per processor (procs scheduled to join later start
    /// dormant; dormant procs are unreachable but not dead).
    joined: Vec<bool>,
    /// Last time each peer was heard from (any delivered message).
    last_heard: Vec<Time>,
    /// Whether the heartbeat/lease timers were armed (once, on the first
    /// tick of a recovery-configured run).
    timers_armed: bool,
    /// Whether the telemetry sampling timer was armed (once, on the
    /// first tick of a run with `sample_every` set).
    sampler_armed: bool,
    /// Ownership overlay: starts as the static mapping's owner vector,
    /// updated by recovery plans and migrations.
    owners: Vec<usize>,
    /// Nodes re-executed by a recovery plan: their kind degrades to a
    /// full local front (type-3 roots excepted) and they leave their
    /// static subtree.
    recovered: Vec<bool>,
    /// Per-node lifetime counter, bumped machine-wide when a node enters
    /// a recompute set; messages from a previous lifetime are discarded.
    epoch: Vec<u32>,
    /// Count of capacity-degradation events (serialize-on-master
    /// fallbacks plus force-activated deferred tasks).
    forced: u64,
    /// First fatal condition seen by a handler (drivers poll it after
    /// every input).
    violation: Option<Violation>,
    /// Decision-side metrics (staleness, pool depth, stalls, activations,
    /// deferrals, slave tasks, degradation counters). O(1) per core —
    /// the driver folds every core's slice into the run-wide registry
    /// (`RunMetrics::merge_core`) at the end. Traffic and busy time are
    /// runtime concerns the driver accounts directly.
    metrics: CoreMetrics,
}

impl<'a> SchedulerCore<'a> {
    /// A fresh core for processor `id`. `initial_load` is the machine-wide
    /// static workload vector from [`initial_loads`].
    pub fn new(
        id: usize,
        tree: &'a AssemblyTree,
        map: &'a StaticMapping,
        cfg: &'a SolverConfig,
        initial_load: &[u64],
    ) -> Self {
        let n = tree.len();
        SchedulerCore {
            id,
            tree,
            map,
            cfg,
            slave_sel: cfg.slave_selection.selector(),
            task_sel: cfg.task_selection.selector(),
            record: cfg.record_events,
            now: 0,
            out: Vec::new(),
            mem: ProcMemory::new(cfg.record_traces),
            disk_busy_until: 0,
            views: Views::new(cfg.nprocs, initial_load),
            pool: TaskPool::new(map.initial_pool[id].clone()),
            busy: false,
            slave_queue: VecDeque::new(),
            current_subtree: None,
            subtree_base: 0,
            stalled_since: None,
            soon: Default::default(),
            works: Vec::new(),
            pieces_expected: vec![None; n],
            pieces_got: vec![0; n],
            child_complete: vec![false; n],
            done_children: vec![0; n],
            cb_pieces: vec![Vec::new(); n],
            started_children: vec![0; n],
            activated: vec![false; n],
            counted: vec![false; n],
            nodes_done: 0,
            done_by_me: vec![false; n],
            factors_by_node: vec![0; n],
            held: vec![0; n],
            done_works: Vec::new(),
            cancelled: Vec::new(),
            running: None,
            alive: vec![true; cfg.nprocs],
            joined: {
                let mut j = vec![true; cfg.nprocs];
                if let Some(f) = &cfg.fault {
                    for &(_, p) in &f.join_at {
                        if p < cfg.nprocs {
                            j[p] = false;
                        }
                    }
                }
                j
            },
            last_heard: vec![0; cfg.nprocs],
            timers_armed: false,
            sampler_armed: false,
            owners: map.owner.clone(),
            recovered: vec![false; n],
            epoch: vec![0; n],
            forced: 0,
            violation: None,
            metrics: CoreMetrics::default(),
        }
    }

    /// Handles one input at time `now` and drains the effects it caused,
    /// in emission order. The drain borrows the core, so a driver
    /// processes the effects before feeding the next input — exactly the
    /// sequential semantics the protocol assumes.
    pub fn handle(&mut self, now: Time, input: Input) -> std::vec::Drain<'_, Effect> {
        debug_assert!(self.out.is_empty(), "effects of the previous input were not drained");
        self.now = now;
        match input {
            Input::Tick => {
                self.maybe_arm_detector();
                self.maybe_arm_sampler();
                self.try_start();
            }
            Input::Deliver { from, msg } => {
                if from != self.id {
                    self.last_heard[from] = now;
                }
                self.deliver(from, msg);
            }
            Input::TimerFired { key: TIMER_HEARTBEAT } => self.heartbeat_fired(),
            Input::TimerFired { key: TIMER_LEASE } => self.lease_fired(),
            Input::TimerFired { key: TIMER_SAMPLE } => self.sample_fired(),
            Input::TimerFired { key } => self.work_done(key as usize),
            Input::Force { node } => self.force_activate(node),
            Input::Recover { plan } => self.apply_plan(&plan),
            Input::Join { proc } => self.apply_join(proc),
            Input::Migrate { m } => self.apply_migration(&m),
        }
        self.out.drain(..)
    }

    // ---------- driver-facing accessors ----------

    /// This core's processor id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Fronts this core completed as owner (plus the 2-D root it
    /// mastered).
    pub fn nodes_done(&self) -> usize {
        self.nodes_done
    }

    /// Capacity-degradation events so far.
    pub fn forced(&self) -> u64 {
        self.forced
    }

    /// Takes the first fatal condition flagged by a handler, if any.
    pub fn take_violation(&mut self) -> Option<Violation> {
        self.violation.take()
    }

    /// The core's decision-side metrics slice (fold into the driver's
    /// run-wide registry with `RunMetrics::merge_core` at the end of a
    /// run).
    pub fn metrics(&self) -> &CoreMetrics {
        &self.metrics
    }

    /// The core's exact memory accounting.
    pub fn memory(&self) -> &ProcMemory {
        &self.mem
    }

    /// Out-of-core mode: virtual time until which this processor's disk
    /// is busy writing factors (0 in-core).
    pub fn disk_busy_until(&self) -> Time {
        self.disk_busy_until
    }

    /// Stall-breaker support: the cheapest deferred ready task
    /// `(activation cost, node)` on an idle processor, `None` when this
    /// core is busy, has queued slave work, or has an empty pool. The
    /// driver takes the global minimum across cores and feeds
    /// [`Input::Force`] to the winner.
    pub fn cheapest_deferred(&self) -> Option<(u64, usize)> {
        if self.busy || !self.slave_queue.is_empty() {
            return None;
        }
        let mut best: Option<(u64, usize)> = None;
        for &v in self.pool.as_slice() {
            let cand = (self.activation_cost(v), v);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        best
    }

    /// Diagnostic snapshot of this processor for error reports.
    pub fn proc_diag(&self) -> ProcDiag {
        ProcDiag {
            proc: self.id,
            busy: self.busy,
            active: self.mem.active(),
            stack: self.mem.stack(),
            factors: self.mem.factors(),
            pool: self.pool.as_slice().to_vec(),
            queued_slave_tasks: self.slave_queue.len(),
            current_subtree: self.current_subtree,
            underflows: self.mem.underflows(),
        }
    }

    /// Per-node factor entries stored on this processor (the digest
    /// input; all-zero rows for nodes factored elsewhere).
    pub fn factors_by_node(&self) -> &[u64] {
        &self.factors_by_node
    }

    /// Recovery snapshot of this core: everything the driver's plan
    /// builder needs to know about what lives (or lived) here. Taken
    /// from survivors at plan time and from a dying core at kill time.
    pub fn snapshot(&self) -> RecoverySnapshot {
        let n = self.tree.len();
        let mut inflight: Vec<usize> = self
            .works
            .iter()
            .enumerate()
            .filter(|&(k, _)| !self.done_works[k] && !self.cancelled[k])
            .map(|(_, w)| match *w {
                Work::Elim { node, .. }
                | Work::MasterPart { node, .. }
                | Work::Slave { node, .. }
                | Work::RootShare { node, .. } => node,
            })
            .collect();
        inflight.sort_unstable();
        inflight.dedup();
        let mut registered = Vec::new();
        for (parent, pieces) in self.cb_pieces.iter().enumerate() {
            for &(holder, entries, child) in pieces {
                registered.push((parent, holder, entries, child));
            }
        }
        RecoverySnapshot {
            proc: self.id,
            done: (0..n).filter(|&v| self.done_by_me[v]).collect(),
            activated: (0..n).filter(|&v| self.activated[v]).collect(),
            factors: (0..n)
                .filter(|&v| self.factors_by_node[v] > 0)
                .map(|v| (v, self.factors_by_node[v]))
                .collect(),
            held: (0..n).filter(|&v| self.held[v] > 0).map(|v| (v, self.held[v])).collect(),
            inflight,
            pool: self.pool.as_slice().to_vec(),
            registered,
            active: self.mem.active(),
        }
    }

    // ---------- membership overlays ----------
    //
    // The static mapping stays immutable; recovery layers these three
    // views over it. On runs without membership faults every overlay
    // falls through to the mapping, so the quiet path is bit-identical.

    /// Current owner of `v` (static owner + recovery plans + migrations).
    fn owner_of(&self, v: usize) -> usize {
        self.owners[v]
    }

    /// Current kind of `v`: a recomputed node runs as a full local front
    /// on its adopter whatever its original kind — except a type-3 root,
    /// which is re-scattered (with dead shares absorbed) to keep its
    /// `nprocs × share` factor total intact.
    fn kind_of(&self, v: usize) -> NodeKind {
        if self.recovered[v] && !matches!(self.map.kind[v], NodeKind::Type3) {
            NodeKind::Type1
        } else {
            self.map.kind[v]
        }
    }

    /// Current subtree membership of `v`: a recomputed node leaves its
    /// static subtree (its re-execution is an upper task of its adopter).
    fn subtree_of(&self, v: usize) -> Option<usize> {
        if self.recovered[v] {
            None
        } else {
            self.map.subtree_of[v]
        }
    }

    /// A peer this core may talk to and expect answers from: alive and
    /// joined.
    fn reachable(&self, q: usize) -> bool {
        self.alive[q] && self.joined[q]
    }

    // ---------- failure detection (heartbeats and leases) ----------

    /// Arms the heartbeat and lease timers once, on the first tick of a
    /// recovery-configured run. Runs without recovery never arm them, so
    /// their event streams are untouched.
    fn maybe_arm_detector(&mut self) {
        let Some(rc) = &self.cfg.recovery else { return };
        if self.timers_armed {
            return;
        }
        self.timers_armed = true;
        let now = self.now;
        for p in 0..self.cfg.nprocs {
            self.last_heard[p] = now;
        }
        self.out.push(Effect::Arm { key: TIMER_HEARTBEAT, after: rc.heartbeat_every });
        self.out.push(Effect::Arm { key: TIMER_LEASE, after: rc.heartbeat_every });
    }

    // ---------- telemetry sampling ----------

    /// Arms the sampling timer once, on the first tick of a run with a
    /// sampling interval configured. Runs without sampling never arm
    /// it, preserving their event streams byte for byte.
    fn maybe_arm_sampler(&mut self) {
        let Some(every) = self.cfg.sample_every else { return };
        if self.sampler_armed {
            return;
        }
        self.sampler_armed = true;
        self.out.push(Effect::Arm { key: TIMER_SAMPLE, after: every });
    }

    /// Periodic telemetry sample: snapshot the core's observable state
    /// read-only, emit it, re-arm. This handler must never call
    /// [`SchedulerCore::try_start`] or touch decision state — schedule
    /// invariance under sampling depends on it.
    fn sample_fired(&mut self) {
        let Some(every) = self.cfg.sample_every else { return };
        self.out.push(Effect::Sample {
            active: self.mem.active(),
            stack: self.mem.stack(),
            pool_depth: self.pool.len() as u32,
            queued: self.slave_queue.len() as u32,
            busy: self.busy,
            stalled: self.stalled_since.is_some(),
        });
        self.out.push(Effect::Arm { key: TIMER_SAMPLE, after: every });
    }

    /// Periodic heartbeat: renew this core's lease at every reachable
    /// peer, then re-arm.
    fn heartbeat_fired(&mut self) {
        let Some(rc) = &self.cfg.recovery else { return };
        let every = rc.heartbeat_every;
        for q in 0..self.cfg.nprocs {
            if q != self.id && self.reachable(q) {
                self.out.push(Effect::Send { to: q, msg: Msg::Heartbeat, bytes: 8 });
            }
        }
        self.out.push(Effect::Arm { key: TIMER_HEARTBEAT, after: every });
    }

    /// Periodic lease check: declare any reachable peer unheard-from for
    /// longer than the lease timeout, then re-arm.
    fn lease_fired(&mut self) {
        let Some(rc) = &self.cfg.recovery else { return };
        let (every, timeout) = (rc.heartbeat_every, rc.lease_timeout);
        for q in 0..self.cfg.nprocs {
            if q != self.id
                && self.reachable(q)
                && self.now.saturating_sub(self.last_heard[q]) > timeout
            {
                self.out.push(Effect::DeclareDead { proc: q });
            }
        }
        self.out.push(Effect::Arm { key: TIMER_LEASE, after: every });
    }

    // ---------- recovery (plan application) ----------

    /// Applies a recovery plan. Every surviving core runs this with the
    /// same plan in processor order, so the membership overlays stay
    /// consistent machine-wide; each core additionally repairs its own
    /// slice of the distributed state (cancelled works, stale pieces,
    /// readiness counters, adopted installs).
    fn apply_plan(&mut self, plan: &RecoveryPlan) {
        let n = self.tree.len();
        self.alive[plan.dead] = false;
        let mut in_r = vec![false; n];
        for pn in &plan.recompute {
            in_r[pn.node] = true;
        }

        // 1. Cancel unfinished works on recomputed nodes: release their
        // front memory and workload now; a running work's timer will
        // still fire and only then releases the compute unit.
        for key in 0..self.works.len() {
            if self.done_works[key] || self.cancelled[key] {
                continue;
            }
            let (node, front, flops) = match self.works[key] {
                Work::Elim { node, flops } => (node, self.tree.front_entries(node), flops),
                Work::MasterPart { node, flops, .. } => {
                    (node, self.tree.master_entries(node), flops)
                }
                Work::Slave { node, entries, flops, .. } => (node, entries, flops),
                Work::RootShare { node, entries, flops, .. } => (node, entries, flops),
            };
            if !in_r[node] {
                continue;
            }
            self.cancelled[key] = true;
            self.mem_free_front(node, front);
            self.load_change(-(flops as i64));
            self.slave_queue.retain(|&k| k != key);
            if self.running == Some(key) {
                // Leave a subtree whose in-progress node was cancelled so
                // Algorithm 2's projected peak does not linger.
                if let Some(s) = self.current_subtree {
                    if self.map.subtree_of[node] == Some(s) {
                        self.current_subtree = None;
                        if self.cfg.use_subtree_info {
                            self.views.subtree[self.id] = 0;
                            self.broadcast(Msg::Status(StatusDelta::Subtree { peak: 0 }), 16);
                        }
                    }
                }
            }
        }

        // 2. Per-node resets, at every core.
        for pn in &plan.recompute {
            let v = pn.node;
            self.epoch[v] = self.epoch[v].wrapping_add(1);
            let was_mine = self.owners[v] == self.id;
            let was_upper = self.subtree_of(v).is_none();
            self.owners[v] = pn.owner;
            self.recovered[v] = true;
            if self.done_by_me[v] {
                self.done_by_me[v] = false;
                self.nodes_done -= 1;
            }
            let f = self.factors_by_node[v];
            if f > 0 {
                self.factors_by_node[v] = 0;
                if self.cfg.out_of_core.is_none() && !self.mem.forget_factors(self.now, f) {
                    self.flag(Violation::Accounting { proc: self.id, area: "factors" });
                }
            }
            self.activated[v] = false;
            self.pieces_expected[v] = None;
            self.pieces_got[v] = 0;
            self.child_complete[v] = false;
            self.started_children[v] = 0;
            if self.soon.remove(&v).is_some() && self.cfg.use_prediction {
                self.rebroadcast_prediction();
            }
            if was_mine && self.pool.remove_task(v) && was_upper {
                // An upper task's flops entered the load at readiness;
                // losing the task takes them out again.
                self.load_change(-(self.tree.flops(v) as i64));
            }
            if self.held[v] > 0 {
                // The piece this core produced for v's parent is stale:
                // v's new life will reproduce it.
                let e = self.held[v];
                self.held[v] = 0;
                self.mem_pop_cb(v, e);
                self.metrics.recovery.orphaned_cb_entries += e;
            }
            self.cb_pieces[v].clear();
            if pn.was_activated {
                // v's previous life consumed its children's pieces at
                // activation, but the consume may have died half way: a
                // `FetchCb` the old master sent a surviving holder is
                // lost if the master was the dead processor. The new
                // life re-executes standalone and will never release
                // them, so release local stale pieces now and bump the
                // children's epochs so a `FetchCb` still in flight (from
                // a surviving master) becomes a no-op instead of a
                // double free.
                for &c in &self.tree.nodes[v].children {
                    if in_r[c] {
                        continue; // reset by its own plan entry
                    }
                    self.epoch[c] = self.epoch[c].wrapping_add(1);
                    if self.held[c] > 0 {
                        let e = self.held[c];
                        self.held[c] = 0;
                        self.mem_pop_cb(c, e);
                        self.metrics.recovery.orphaned_cb_entries += e;
                    }
                }
            }
            // Parent-side counter repair: if the parent survives
            // unactivated, v must count again when its new life
            // completes; if the parent already activated (it consumed
            // everything), the stale count stands as the fire-once guard.
            if let Some(p) = self.tree.nodes[v].parent {
                if !in_r[p] && self.activated[p] {
                    // keep `counted[v]` as the permanent guard
                } else {
                    if self.counted[v] && !in_r[p] {
                        self.done_children[p] -= 1;
                    }
                    self.counted[v] = false;
                }
            } else {
                self.counted[v] = false;
            }
        }

        // 3. Registration GC at surviving parents: pieces produced by a
        // recomputed child are stale, pieces held by the dead are gone.
        for w in 0..n {
            if !in_r[w] {
                self.cb_pieces[w].retain(|&(h, _, c)| !in_r[c] && h != plan.dead);
            }
        }

        // 4. Owner-side installs: the (possibly new) owner of each
        // recomputed node rebuilds its readiness state from the plan.
        for pn in &plan.recompute {
            if pn.owner != self.id {
                continue;
            }
            let v = pn.node;
            if pn.was_activated {
                // Standalone re-execution: every child was complete and
                // consumed in the previous life.
                self.done_children[v] = self.tree.nodes[v].children.len();
            } else {
                let mut dc = 0;
                for cs in &pn.children {
                    let c = cs.child;
                    self.counted[c] = cs.done;
                    self.child_complete[c] = false;
                    self.pieces_got[c] = cs.pre_got;
                    self.pieces_expected[c] = if cs.done { Some(cs.pre_got) } else { None };
                    if cs.done {
                        dc += 1;
                    }
                    for &(h, e) in &cs.installs {
                        self.cb_pieces[v].push((h, e, c));
                    }
                }
                self.done_children[v] = dc;
            }
            if pn.ready {
                self.pool.push(v);
                if self.subtree_of(v).is_none() {
                    self.load_change(self.tree.flops(v) as i64);
                }
            }
        }

        self.try_start();
    }

    /// Marks `proc` joined. At the joiner itself this also resets every
    /// lease (its counters date from t=0) — the driver follows up with a
    /// membership-log replay, buffered deliveries, and a tick.
    fn apply_join(&mut self, proc: usize) {
        self.joined[proc] = true;
        let now = self.now;
        if proc == self.id {
            for p in 0..self.cfg.nprocs {
                self.last_heard[p] = now;
            }
        } else {
            self.last_heard[proc] = now;
        }
    }

    /// Applies one rebalancing migration: everyone updates the ownership
    /// overlay; the donor drops the task (and its registered pieces), the
    /// receiver adopts both.
    fn apply_migration(&mut self, m: &Migration) {
        self.owners[m.node] = m.to;
        if self.id == m.from {
            self.pool.remove_task(m.node);
            self.cb_pieces[m.node].clear();
            if self.map.subtree_of[m.node].is_none() || self.recovered[m.node] {
                self.load_change(-(m.flops as i64));
            }
        } else if self.id == m.to {
            self.pool.push(m.node);
            self.cb_pieces[m.node] = m.pieces.iter().map(|&(h, e, c)| (h, e, c)).collect();
            if self.map.subtree_of[m.node].is_none() || self.recovered[m.node] {
                self.load_change(m.flops as i64);
            }
            self.try_start();
        }
    }

    // ---------- internals ----------

    /// Records the first fatal condition; the driver surfaces it after
    /// the current input unwinds.
    fn flag(&mut self, v: Violation) {
        if self.violation.is_none() {
            self.violation = Some(v);
        }
    }

    /// Emits a recorder event when recording is enabled. The event is
    /// built inside the closure, so the disabled path is a single
    /// predictable branch with nothing constructed — and since the
    /// memory/compute hot paths derive their events driver-side from
    /// `Alloc`/`Free`/`StartCompute` effects, the recording-off fast
    /// path of the core's inner loops carries no recording branches at
    /// all; only the cold decision sites and status applies reach here.
    #[inline]
    fn emit_record(&mut self, build: impl FnOnce() -> CompactEvent) {
        if self.record {
            let ev = build();
            self.out.push(Effect::Record(ev));
        }
    }

    /// Cores granted to a work unit being started — the malleable
    /// allocator (see [`CoreAlloc`]). Under `Static(n)` every unit gets
    /// `n` and nothing is recorded (the event stream stays byte-identical
    /// to the pre-malleable scheduler). Under `Malleable` the grant is
    /// `pool_cores` split evenly over the peers this core believes still
    /// have tree work (its own status views — deterministic, same on
    /// every backend), clamped to `[1, max_per_front]`; small fronts
    /// always run sequentially. Each malleable grant is narrated to the
    /// flight recorder so `explain` can audit the decision like a slave
    /// selection.
    fn granted_cores(&mut self, node: usize, flops: u64) -> u32 {
        match self.cfg.core_alloc {
            CoreAlloc::Static(n) => n.max(1) as u32,
            CoreAlloc::Malleable { pool_cores, max_per_front, min_flops, .. } => {
                if flops < min_flops {
                    return 1;
                }
                let busy = (0..self.alive.len())
                    .filter(|&q| self.alive[q] && self.joined[q] && self.views.load[q] > 0)
                    .count()
                    .max(1);
                let grant = (pool_cores / busy).clamp(1, max_per_front.max(1)) as u32;
                let id = self.id;
                self.emit_record(|| CompactEvent::core_grant(id, node, grant, busy as u64));
                grant
            }
        }
    }

    // ---------- messaging ----------

    fn send(&mut self, to: usize, msg: Msg, bytes: u64) {
        if to == self.id {
            // Local work is done inline: a self-addressed message never
            // crosses the transport (and is not counted as traffic).
            self.deliver(self.id, msg);
            return;
        }
        self.out.push(Effect::Send { to, msg, bytes });
    }

    fn broadcast(&mut self, msg: Msg, bytes: u64) {
        debug_assert!(matches!(msg.class(), MsgClass::Status), "broadcast is status-only");
        self.out.push(Effect::Broadcast { msg, bytes });
    }

    // ---------- memory (every change refreshes the exact local
    // self-view and broadcasts the increment, Section 4) ----------

    fn mem_alloc_front(&mut self, node: usize, entries: u64) {
        self.out.push(Effect::Alloc { node, area: MemArea::Front, entries });
        self.mem.alloc_front(self.now, entries);
        self.after_mem_change(entries as i64);
    }

    fn mem_free_front(&mut self, node: usize, entries: u64) {
        self.out.push(Effect::Free { node, area: MemArea::Front, entries });
        if !self.mem.free_front(self.now, entries) {
            self.flag(Violation::Accounting { proc: self.id, area: "fronts" });
        }
        self.after_mem_change(-(entries as i64));
    }

    fn mem_push_cb(&mut self, node: usize, entries: u64) {
        self.out.push(Effect::Alloc { node, area: MemArea::Stack, entries });
        self.mem.push_cb(self.now, entries);
        self.after_mem_change(entries as i64);
    }

    fn mem_pop_cb(&mut self, node: usize, entries: u64) {
        self.out.push(Effect::Free { node, area: MemArea::Stack, entries });
        if !self.mem.pop_cb(self.now, entries) {
            self.flag(Violation::Accounting { proc: self.id, area: "stack" });
        }
        self.after_mem_change(-(entries as i64));
    }

    /// Stores factor entries of `node`: in core they join the factors
    /// area; out of core they stream to the processor's disk (overlapped
    /// with compute, tracked only as potential makespan). Either way the
    /// per-node total is tracked for the factor digest.
    fn store_factors(&mut self, node: usize, entries: u64) {
        self.factors_by_node[node] += entries;
        match self.cfg.out_of_core {
            None => self.mem.store_factors(self.now, entries),
            Some(bw) => {
                let dur = (entries * 8 / bw.max(1)).max(1);
                let start = self.disk_busy_until.max(self.now);
                self.disk_busy_until = start + dur;
            }
        }
    }

    fn after_mem_change(&mut self, delta: i64) {
        if delta == 0 {
            return;
        }
        let active = self.mem.active();
        self.views.mem[self.id] = active;
        // The self-view is exact: keep its freshness stamp current so
        // decision-time staleness reads 0 for the deciding processor.
        self.views.touch(self.id, self.now);
        self.broadcast(Msg::Status(StatusDelta::Mem { delta }), 16);
    }

    fn load_change(&mut self, delta: i64) {
        if delta == 0 {
            return;
        }
        self.views.apply_load_delta(self.id, delta);
        self.broadcast(Msg::Status(StatusDelta::Load { delta }), 16);
    }

    // ---------- scheduling ----------

    /// Closes a stalled interval (idle with everything deferred) when the
    /// processor gets going again.
    fn close_stall(&mut self) {
        if let Some(since) = self.stalled_since.take() {
            self.metrics.me.stalled_ticks += self.now.saturating_sub(since);
        }
    }

    fn try_start(&mut self) {
        if self.busy {
            return;
        }
        // Received slave tasks have priority (they are already consuming
        // memory; finishing them frees it).
        if let Some(key) = self.slave_queue.pop_front() {
            let (flops, node, role) = match self.works.get(key) {
                Some(Work::Slave { flops, node, .. }) => (*flops, *node, TaskRole::Slave),
                Some(Work::RootShare { flops, node, .. }) => (*flops, *node, TaskRole::Root),
                other => {
                    let p = self.id;
                    self.flag(Violation::Protocol {
                        detail: format!(
                            "queued work {key} on proc {p} must be slave-like, got {other:?}"
                        ),
                    });
                    return;
                }
            };
            self.close_stall();
            self.busy = true;
            self.running = Some(key);
            let cores = self.granted_cores(node, flops);
            self.out.push(Effect::StartCompute { key: key as u64, node, role, flops, cores });
            return;
        }
        let tree = self.tree;
        let map = self.map;
        let nprocs = self.cfg.nprocs;
        let pieces = &self.cb_pieces;
        let recovered = &self.recovered;
        let kind = |v: usize| {
            if recovered[v] && !matches!(map.kind[v], NodeKind::Type3) {
                NodeKind::Type1
            } else {
                map.kind[v]
            }
        };
        let cost = |v: usize| match kind(v) {
            NodeKind::Type2 => tree.master_entries(v),
            NodeKind::Type3 => tree.front_entries(v) / nprocs as u64,
            _ => tree.front_entries(v),
        };
        // Hard capacity: an out-of-subtree activation is deferred unless
        // its net memory need (activation cost minus the locally stacked
        // CBs it releases) fits under the cap. Subtree tasks are always
        // admissible — the static mapping sized them in, and depth-first
        // progress inside a subtree is what frees its memory.
        let cap = self.cfg.capacity;
        let active = self.mem.active();
        let id = self.id;
        let in_subtree = |v: usize| !recovered[v] && map.subtree_of[v].is_some();
        let admissible = |v: usize| match cap {
            None => true,
            Some(c) => {
                in_subtree(v) || {
                    let local_release: u64 =
                        pieces[v].iter().filter(|&&(h, _, _)| h == id).map(|&(_, e, _)| e).sum();
                    active + cost(v).saturating_sub(local_release) <= c
                }
            }
        };
        let released = |v: usize| pieces[v].iter().map(|&(_, e, _)| e).sum::<u64>();
        let ctx = TaskCtx {
            in_subtree: &in_subtree,
            cost: &cost,
            released: &released,
            admissible: &admissible,
            capped: cap.is_some(),
            current_memory: self.effective_memory(),
            observed_peak: self.mem.active_peak(),
        };
        let depth = self.pool.len();
        let picked = self.task_sel.pick(&mut self.pool, &ctx);
        if depth > 0 {
            // A real decision was taken over a non-empty pool: observe it.
            self.metrics.pool_depth.observe(depth as u64);
            self.emit_record(|| CompactEvent::pool_decision(id, depth, picked));
            if picked.is_none() {
                // The Algorithm-2 / capacity verdict deferred everything:
                // the processor is stalled until memory frees.
                self.metrics.me.deferrals += 1;
                let now = self.now;
                self.stalled_since.get_or_insert(now);
            }
        }
        if let Some(v) = picked {
            self.activate_node(v);
        }
    }

    /// Memory an activation of `v` allocates on its owner (the cost used
    /// by Algorithm 2, the capacity check, and the prediction mechanism).
    fn activation_cost(&self, v: usize) -> u64 {
        match self.kind_of(v) {
            NodeKind::Type2 => self.tree.master_entries(v),
            NodeKind::Type3 => self.tree.front_entries(v) / self.cfg.nprocs as u64,
            _ => self.tree.front_entries(v),
        }
    }

    /// [`Input::Force`]: activate a deferred ready task past the capacity
    /// verdict (last-resort degradation, picked by the driver from
    /// [`SchedulerCore::cheapest_deferred`]).
    fn force_activate(&mut self, v: usize) {
        let cost = self.activation_cost(v);
        self.pool.remove_task(v);
        self.forced += 1;
        self.metrics.forced_activations += 1;
        let p = self.id;
        self.emit_record(|| CompactEvent::forced(p, v, cost));
        self.activate_node(v);
    }

    /// Algorithm 2's "current memory (including peak of subtree)": while a
    /// subtree is in progress its projected peak counts.
    fn effective_memory(&self) -> u64 {
        let active = self.mem.active();
        match self.current_subtree {
            Some(s) => active.max(self.subtree_base + self.map.subtree_peak[s]),
            None => active,
        }
    }

    fn activate_node(&mut self, v: usize) {
        debug_assert_eq!(self.owner_of(v), self.id);
        debug_assert!(!self.activated[v], "node {v} activated twice");
        self.activated[v] = true;
        self.close_stall();
        self.busy = true;
        self.metrics.me.activations += 1;
        let class = match self.kind_of(v) {
            NodeKind::Subtree(_) => FrontClass::Subtree,
            NodeKind::Type1 => FrontClass::Type1,
            NodeKind::Type2 => FrontClass::Type2,
            NodeKind::Type3 => FrontClass::Type3,
        };
        let p = self.id;
        self.emit_record(|| CompactEvent::activate(p, v, class));

        if self.cfg.use_prediction {
            // This task is no longer "upcoming": refresh the broadcast.
            if self.soon.remove(&v).is_some() {
                self.rebroadcast_prediction();
            }
            // Tell the parent's master we started (its readiness predictor).
            if let Some(par) = self.tree.nodes[v].parent {
                let owner = self.owner_of(par);
                self.send(owner, Msg::ChildStarted { node: par }, 16);
            }
        }

        // Entering a subtree broadcasts its peak (Section 5.1).
        if let Some(s) = self.subtree_of(v) {
            if self.current_subtree != Some(s) {
                self.current_subtree = Some(s);
                self.subtree_base = self.mem.active();
                if self.cfg.use_subtree_info {
                    // Broadcast the absolute level this stack is heading
                    // to (base + subtree peak), Section 5.1.
                    let peak = self.subtree_base + self.map.subtree_peak[s];
                    self.views.subtree[self.id] = peak;
                    self.broadcast(Msg::Status(StatusDelta::Subtree { peak }), 16);
                }
            }
        }

        match self.kind_of(v) {
            NodeKind::Subtree(_) | NodeKind::Type1 => self.start_full_front(v),
            NodeKind::Type2 => self.start_type2(v),
            NodeKind::Type3 => self.start_type3(v),
        }
    }

    fn start_full_front(&mut self, v: usize) {
        self.mem_alloc_front(v, self.tree.front_entries(v));
        self.consume_stacked(v);
        let flops = self.tree.flops(v);
        self.schedule_work(Work::Elim { node: v, flops });
    }

    /// One slave-selection decision for the type-2 node `v` restricted to
    /// `candidates` (the capacity filter shrinks the set and re-selects).
    /// Also returns the per-processor metric vector the decision was made
    /// from — the flight recorder captures exactly what the master
    /// *believed*, not what was true.
    fn select_slaves(&self, v: usize, candidates: &[usize]) -> (Vec<SlaveAssignment>, Vec<u64>) {
        let nd = &self.tree.nodes[v];
        let ctx = SlaveCtx {
            views: &self.views,
            master: self.id,
            nprocs: self.cfg.nprocs,
            use_subtree_info: self.cfg.use_subtree_info,
            use_prediction: self.cfg.use_prediction,
            candidates,
            nfront: nd.nfront,
            npiv: nd.npiv,
            sym: self.tree.sym,
            min_rows_per_slave: self.cfg.min_rows_per_slave,
        };
        self.slave_sel.select(&ctx)
    }

    fn start_type2(&mut self, v: usize) {
        let nd = &self.tree.nodes[v];
        let (nfront, npiv) = (nd.nfront, nd.npiv);
        let mut candidates: Vec<usize> =
            (0..self.cfg.nprocs).filter(|&q| q != self.id && self.reachable(q)).collect();
        let mut rounds = 0u32;
        let mut serialized = false;
        let (assignment, metric) = loop {
            let picked = self.select_slaves(v, &candidates);
            let Some(cap) = self.cfg.capacity else { break picked };
            let (assignment, metric) = picked;
            if assignment.is_empty() {
                break (assignment, metric);
            }
            // Hard capacity: drop every candidate whose projected memory
            // (the master's view plus the block it would receive) would
            // breach the cap, and re-select over the survivors — fewer,
            // larger shares on the processors that still have room.
            let violators: Vec<usize> = assignment
                .iter()
                .filter(|a| {
                    let entries = crate::blocking::slave_block_entries(
                        self.tree.sym,
                        nfront,
                        npiv,
                        a.offset,
                        a.nrows,
                    );
                    self.views.mem[a.proc] + entries > cap
                })
                .map(|a| a.proc)
                .collect();
            if violators.is_empty() {
                break (assignment, metric);
            }
            rounds += 1;
            self.metrics.reselect_rounds += 1;
            let master = self.id;
            self.emit_record(|| CompactEvent::reselect(master, v, &violators));
            candidates.retain(|q| !violators.contains(q));
            if candidates.is_empty() {
                // Last resort: serialize the whole front on the master.
                self.forced += 1;
                self.metrics.serialized_fronts += 1;
                serialized = true;
                break (Vec::new(), metric);
            }
        };

        // Observe decision-time view staleness (always-on) and record the
        // full decision — the believed metric vector, per-processor view
        // ages, the chosen blocks, and how the capacity loop resolved.
        let now = self.now;
        for a in &assignment {
            let age = self.views.age(a.proc, now);
            self.metrics.view_staleness.observe(age);
        }
        if self.record {
            let view_age: Vec<Time> =
                (0..self.cfg.nprocs).map(|q| self.views.age(q, now)).collect();
            let picked: Vec<SlavePick> = assignment
                .iter()
                .map(|a| SlavePick {
                    proc: a.proc,
                    entries: crate::blocking::slave_block_entries(
                        self.tree.sym,
                        nfront,
                        npiv,
                        a.offset,
                        a.nrows,
                    ),
                })
                .collect();
            let serialized = serialized || assignment.is_empty();
            self.out.push(Effect::Record(CompactEvent::slave_selection(
                self.id, v, &metric, &view_age, &picked, rounds, serialized,
            )));
        }

        if assignment.is_empty() {
            // No usable slave: the master handles the whole front.
            self.start_full_front(v);
            return;
        }

        self.mem_alloc_front(v, self.tree.master_entries(v));
        self.consume_stacked(v);

        let total_flops = self.tree.flops(v);
        let front_entries = self.tree.front_entries(v);
        let master_entries = self.tree.master_entries(v);
        let master_flops = total_flops * master_entries / front_entries.max(1);
        let mut delegated = 0u64;
        let pieces = assignment.len();
        for a in &assignment {
            let entries = crate::blocking::slave_block_entries(
                self.tree.sym,
                nfront,
                npiv,
                a.offset,
                a.nrows,
            );
            let cb_share = cb_share_of_block(self.tree.sym, nfront, npiv, a.offset, a.nrows);
            let factor_share = entries - cb_share;
            let flops_share = total_flops * entries / front_entries.max(1);
            delegated += flops_share;
            let epoch = self.epoch[v];
            self.send(
                a.proc,
                Msg::SlaveTask { node: v, entries, cb_share, factor_share, flops_share, epoch },
                entries * 8,
            );
            // Announce the choice so other masters account for it before
            // the slave's own memory reports catch up (Section 4).
            self.views.apply_mem_delta(a.proc, entries as i64);
            self.views.touch(a.proc, now);
            self.broadcast(Msg::Status(StatusDelta::Assigned { proc: a.proc, entries }), 16);
        }
        // Work handed to the slaves leaves the master's workload.
        self.load_change(-(delegated as i64));
        self.schedule_work(Work::MasterPart { node: v, pieces, flops: master_flops });
    }

    fn start_type3(&mut self, v: usize) {
        self.consume_stacked(v);
        let share_entries = (self.tree.front_entries(v) / self.cfg.nprocs as u64).max(1);
        let share_flops = self.tree.flops(v) / self.cfg.nprocs as u64;
        let epoch = self.epoch[v];
        let mut absorbed = 0u64;
        for q in 0..self.cfg.nprocs {
            if q == self.id {
                continue;
            }
            if self.alive[q] {
                // Dormant joiners still get their share: the driver
                // buffers it until the join.
                self.send(
                    q,
                    Msg::Type3Share {
                        node: v,
                        entries: share_entries,
                        flops_share: share_flops,
                        epoch,
                    },
                    share_entries * 8,
                );
            } else {
                absorbed += 1;
            }
        }
        // Work scattered to the other processors leaves this workload;
        // the dead processors' shares are absorbed locally so the root's
        // `nprocs × share` factor total stays intact.
        let total_flops = self.tree.flops(v);
        self.load_change(-((total_flops - share_flops * (1 + absorbed)) as i64));
        self.mem_alloc_front(v, share_entries);
        for _ in 0..absorbed {
            self.mem_alloc_front(v, share_entries);
            let key = self.works.len();
            self.works.push(Work::RootShare {
                node: v,
                entries: share_entries,
                flops: share_flops,
                is_master: false,
            });
            self.done_works.push(false);
            self.cancelled.push(false);
            self.slave_queue.push_back(key);
        }
        self.schedule_work(Work::RootShare {
            node: v,
            entries: share_entries,
            flops: share_flops,
            is_master: true,
        });
    }

    fn schedule_work(&mut self, work: Work) {
        let (flops, node, role) = match &work {
            Work::Elim { flops, node } => (*flops, *node, TaskRole::Elim),
            Work::MasterPart { flops, node, .. } => (*flops, *node, TaskRole::Master),
            Work::Slave { flops, node, .. } => (*flops, *node, TaskRole::Slave),
            Work::RootShare { flops, node, .. } => (*flops, *node, TaskRole::Root),
        };
        let key = self.works.len() as u64;
        self.works.push(work);
        self.done_works.push(false);
        self.cancelled.push(false);
        self.running = Some(key as usize);
        let cores = self.granted_cores(node, flops);
        self.out.push(Effect::StartCompute { key, node, role, flops, cores });
    }

    /// Releases the contribution blocks stacked for node `v` (the
    /// assembly): local pieces pop immediately; remote holders are told to
    /// ship-and-free theirs (one control-message latency away, like the
    /// real redistribution).
    fn consume_stacked(&mut self, v: usize) {
        let pieces = std::mem::take(&mut self.cb_pieces[v]);
        for (holder, entries, child) in pieces {
            if holder == self.id {
                self.held[child] = 0;
                self.mem_pop_cb(child, entries);
            } else {
                let epoch = self.epoch[child];
                self.send(holder, Msg::FetchCb { child, entries, epoch }, 16);
            }
        }
    }

    // ---------- completions ----------

    fn work_done(&mut self, key: usize) {
        let Some(work) = self.works.get(key).cloned() else {
            self.flag(Violation::Protocol {
                detail: format!("timer fired for unknown work key {key}"),
            });
            return;
        };
        if self.running == Some(key) {
            self.running = None;
        }
        if self.cancelled[key] {
            // A recovery plan cancelled this work while it was running:
            // its memory and workload were released at cancellation; the
            // completion only returns the compute unit.
            self.busy = false;
            self.try_start();
            return;
        }
        self.done_works[key] = true;
        match work {
            Work::Elim { node, flops } => {
                self.store_factors(node, self.tree.factor_entries(node));
                self.mem_free_front(node, self.tree.front_entries(node));
                let cb = self.tree.cb_entries(node);
                let pieces = if cb > 0 && self.tree.nodes[node].parent.is_some() { 1 } else { 0 };
                if pieces == 1 {
                    self.produce_cb_piece(node, cb);
                }
                self.finish_node(node, pieces, flops);
            }
            Work::MasterPart { node, pieces, flops } => {
                self.store_factors(node, self.tree.master_entries(node));
                self.mem_free_front(node, self.tree.master_entries(node));
                self.finish_node(node, pieces, flops);
            }
            Work::Slave { node, entries, cb_share, factor_share, flops } => {
                self.store_factors(node, factor_share);
                self.mem_free_front(node, entries);
                if cb_share > 0 && self.tree.nodes[node].parent.is_some() {
                    self.produce_cb_piece(node, cb_share);
                }
                self.load_change(-(flops as i64));
                self.busy = false;
                self.try_start();
            }
            Work::RootShare { node, entries, flops, is_master } => {
                self.store_factors(node, entries);
                self.mem_free_front(node, entries);
                self.load_change(-(flops as i64));
                if is_master {
                    // The 2-D root has no parent: completing the master
                    // share completes the node.
                    debug_assert!(self.tree.nodes[node].parent.is_none());
                    self.nodes_done += 1;
                    self.done_by_me[node] = true;
                }
                self.busy = false;
                self.try_start();
            }
        }
    }

    /// Common tail of a node's (master) elimination: announce completion,
    /// leave any finished subtree, account the work, count the node.
    fn finish_node(&mut self, node: usize, pieces: usize, flops: u64) {
        if let Some(par) = self.tree.nodes[node].parent {
            let owner = self.owner_of(par);
            let epoch = self.epoch[node];
            self.send(owner, Msg::Complete { child: node, pieces, epoch }, 16);
        }
        self.load_change(-(flops as i64));
        if let Some(s) = self.current_subtree {
            if self.map.subtree_roots[s] == node {
                self.current_subtree = None;
                if self.cfg.use_subtree_info {
                    self.views.subtree[self.id] = 0;
                    self.broadcast(Msg::Status(StatusDelta::Subtree { peak: 0 }), 16);
                }
            }
        }
        self.nodes_done += 1;
        self.done_by_me[node] = true;
        self.busy = false;
        self.try_start();
    }

    /// A CB piece of `child` was produced here: it stays on this stack
    /// until the parent activates; the parent's master is informed.
    fn produce_cb_piece(&mut self, child: usize, entries: u64) {
        self.held[child] = entries;
        self.mem_push_cb(child, entries);
        let Some(parent) = self.tree.nodes[child].parent else {
            self.flag(Violation::Protocol {
                detail: format!("CB piece produced for parentless node {child}"),
            });
            return;
        };
        let dest = self.owner_of(parent);
        let epoch = self.epoch[child];
        self.send(dest, Msg::PieceDone { child, holder: self.id, entries, epoch }, 16);
    }

    // ---------- message handling ----------

    fn deliver(&mut self, from: usize, msg: Msg) {
        let to = self.id;
        match msg {
            Msg::PieceDone { child, holder, entries, epoch } => {
                if epoch != self.epoch[child] {
                    return; // a previous life of `child`: already repaired
                }
                let Some(parent) = self.tree.nodes[child].parent else {
                    self.flag(Violation::Protocol {
                        detail: format!("PieceDone for parentless node {child}"),
                    });
                    return;
                };
                // If the parent already activated, release immediately.
                if self.activated[parent] {
                    if holder == to {
                        self.held[child] = 0;
                        self.mem_pop_cb(child, entries);
                        // Freed memory may admit a deferred task.
                        if self.cfg.capacity.is_some() {
                            self.try_start();
                        }
                    } else {
                        self.send(holder, Msg::FetchCb { child, entries, epoch }, 16);
                    }
                } else {
                    self.cb_pieces[parent].push((holder, entries, child));
                }
                self.pieces_got[child] += 1;
                self.check_child_done(child);
            }
            Msg::FetchCb { child, entries, epoch } => {
                if epoch != self.epoch[child] {
                    return; // stale fetch: the piece was GC'd by recovery
                }
                self.held[child] = 0;
                self.mem_pop_cb(child, entries);
                // Freed memory may admit a deferred task (only meaningful
                // under a hard capacity; without one, nothing was ever
                // deferred and this keeps the happy path untouched).
                if self.cfg.capacity.is_some() {
                    self.try_start();
                }
            }
            Msg::Complete { child, pieces, epoch } => {
                if epoch != self.epoch[child] {
                    return; // a previous life of `child`
                }
                self.pieces_expected[child] = Some(pieces);
                self.child_complete[child] = true;
                self.check_child_done(child);
            }
            Msg::SlaveTask { node, entries, cb_share, factor_share, flops_share, epoch } => {
                if epoch != self.epoch[node] {
                    return; // enrolment from before the node's recovery
                }
                // "Slave tasks are activated as soon as they are received":
                // the memory is allocated now, the CPU when free. No
                // increment is broadcast — the master's Assigned message
                // already announced this allocation to everyone.
                self.out.push(Effect::Alloc { node, area: MemArea::Front, entries });
                self.mem.alloc_front(self.now, entries);
                let active = self.mem.active();
                self.views.mem[to] = active;
                self.views.touch(to, self.now);
                self.metrics.me.slave_tasks += 1;
                self.load_change(flops_share as i64);
                let key = self.works.len();
                self.works.push(Work::Slave {
                    node,
                    entries,
                    cb_share,
                    factor_share,
                    flops: flops_share,
                });
                self.done_works.push(false);
                self.cancelled.push(false);
                self.slave_queue.push_back(key);
                self.try_start();
            }
            Msg::Type3Share { node, entries, flops_share, epoch } => {
                if epoch != self.epoch[node] {
                    return; // share from before the root's recovery
                }
                self.mem_alloc_front(node, entries);
                self.load_change(flops_share as i64);
                let key = self.works.len();
                self.works.push(Work::RootShare {
                    node,
                    entries,
                    flops: flops_share,
                    is_master: false,
                });
                self.done_works.push(false);
                self.cancelled.push(false);
                self.slave_queue.push_back(key);
                self.try_start();
            }
            Msg::Status(d) => {
                // One-slot coherence update. The subject is the sender
                // except for Assigned, which describes the enrolled
                // slave — and the slave itself skips it: its self-view
                // is exact.
                let about = d.about(from);
                if about != to {
                    let age = self.views.apply(about, d, self.now);
                    let (kind, _) = d.kind();
                    self.emit_record(|| CompactEvent::status_apply(to, from, about, kind, age));
                }
            }
            Msg::ChildStarted { node } => {
                self.started_children[node] += 1;
                if self.started_children[node] == self.tree.nodes[node].children.len()
                    && self.owner_of(node) == to
                    && self.subtree_of(node).is_none()
                    && !self.activated[node]
                {
                    let cost = self.activation_cost(node);
                    self.soon.insert(node, cost);
                    self.rebroadcast_prediction();
                }
            }
            Msg::Heartbeat => {
                // Lease renewal happened at delivery (`handle` stamps
                // `last_heard` for every delivered message).
            }
        }
    }

    fn check_child_done(&mut self, child: usize) {
        if self.counted[child]
            || !self.child_complete[child]
            || Some(self.pieces_got[child]) != self.pieces_expected[child]
        {
            return;
        }
        self.child_complete[child] = false; // fire once
        self.counted[child] = true;
        let Some(parent) = self.tree.nodes[child].parent else {
            self.flag(Violation::Protocol {
                detail: format!("completion tracked for parentless node {child}"),
            });
            return;
        };
        self.done_children[parent] += 1;
        if self.done_children[parent] == self.tree.nodes[parent].children.len() {
            self.node_ready(parent);
        }
    }

    fn node_ready(&mut self, v: usize) {
        debug_assert_eq!(self.owner_of(v), self.id);
        self.pool.push(v);
        // Upper tasks enter the workload when they become ready; subtree
        // work was counted in the initial loads (Section 3).
        if self.subtree_of(v).is_none() {
            self.load_change(self.tree.flops(v) as i64);
        }
        self.try_start();
    }

    fn rebroadcast_prediction(&mut self) {
        let max = self.soon.values().copied().max().unwrap_or(0);
        if self.views.predicted[self.id] != max {
            self.views.predicted[self.id] = max;
            self.broadcast(Msg::Status(StatusDelta::Predicted { cost: max }), 16);
        }
    }
}

/// CB entries inside a slave block: the columns right of the pivot block,
/// restricted to the block's rows (full width for LU, ragged for LDLᵀ).
fn cb_share_of_block(
    sym: mf_sparse::Symmetry,
    nfront: usize,
    npiv: usize,
    offset: usize,
    nrows: usize,
) -> u64 {
    match sym {
        mf_sparse::Symmetry::General => (nrows as u64) * (nfront - npiv) as u64,
        mf_sparse::Symmetry::Symmetric => {
            // Row at offset o holds o+1 CB entries (its tail past the
            // pivot columns).
            let a = offset as u64;
            let b = a + nrows as u64;
            (b * (b + 1) / 2) - (a * (a + 1) / 2)
        }
    }
}
