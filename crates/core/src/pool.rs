//! Per-processor pool of ready tasks (Section 5.2).
//!
//! The pool holds the ready tasks statically assigned to a processor and
//! is managed as a stack: the baseline pops the top (depth-first
//! traversal, Figure 7); the paper's **Algorithm 2** scans from the top
//! and delays upper-tree tasks that would raise the memory peak observed
//! since the beginning of the factorization (Figure 8).

/// Pool of ready tasks (node ids). The top of the stack is the back.
#[derive(Debug, Clone, Default)]
pub struct TaskPool {
    stack: Vec<usize>,
}

impl TaskPool {
    /// Pool pre-loaded with `tasks` (the task to pop first goes last).
    pub fn new(tasks: Vec<usize>) -> Self {
        TaskPool { stack: tasks }
    }

    /// Pushes a newly ready task on top.
    pub fn push(&mut self, node: usize) {
        self.stack.push(node);
    }

    /// True when no task is ready.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// Number of ready tasks.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// Read-only view of the stack (bottom to top).
    pub fn as_slice(&self) -> &[usize] {
        &self.stack
    }

    /// Baseline selection: pop the top of the stack.
    pub fn pick_lifo(&mut self) -> Option<usize> {
        self.stack.pop()
    }

    /// LIFO restricted to `admissible` tasks: the topmost admissible task
    /// is taken; `None` defers everything (hard-capacity backpressure —
    /// the caller retries when memory frees or forces a task when the
    /// whole simulation would otherwise stall).
    pub fn pick_lifo_admissible(&mut self, admissible: impl Fn(usize) -> bool) -> Option<usize> {
        let idx = self.stack.iter().rposition(|&t| admissible(t))?;
        Some(self.stack.remove(idx))
    }

    /// Algorithm 2 with the global refinement of Section 6: like
    /// [`TaskPool::pick_memory_aware`], but a task's cost is offset by the
    /// contribution blocks (`released(t)`, local and remote) its
    /// activation frees — "the selection should not only be based on the
    /// memory of the processor concerned but also on the memory that will
    /// be freed (contribution blocks) on others".
    ///
    /// Only `admissible` tasks are ever returned (pass `|_| true` when no
    /// hard capacity applies); `None` with a non-empty pool means every
    /// task is inadmissible and the processor should wait.
    pub fn pick_memory_aware_global(
        &mut self,
        in_subtree: impl Fn(usize) -> bool,
        cost: impl Fn(usize) -> u64,
        released: impl Fn(usize) -> u64,
        current_memory: u64,
        observed_peak: u64,
        admissible: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        let &top = self.stack.last()?;
        if in_subtree(top) && admissible(top) {
            return self.stack.pop();
        }
        for idx in (0..self.stack.len()).rev() {
            let t = self.stack[idx];
            let net_cost = cost(t).saturating_sub(released(t));
            if admissible(t) && (net_cost + current_memory <= observed_peak || in_subtree(t)) {
                return Some(self.stack.remove(idx));
            }
        }
        // Fallback: the pending task releasing the most memory system-wide.
        let best = (0..self.stack.len())
            .filter(|&i| admissible(self.stack[i]))
            .max_by_key(|&i| (released(self.stack[i]), std::cmp::Reverse(cost(self.stack[i]))))?;
        Some(self.stack.remove(best))
    }

    /// Algorithm 2: memory-aware task selection.
    ///
    /// * a top-of-pool task inside a subtree is returned unconditionally
    ///   (subtrees are memory-critical and must proceed depth-first);
    /// * otherwise the pool is scanned from the top; a task is returned if
    ///   activating it keeps the processor at or below the `observed_peak`
    ///   (`cost(t) + current_memory <= observed_peak`), or if it belongs
    ///   to a subtree (priority to subtree nodes, staying close to the
    ///   depth-first traversal);
    /// * if no task qualifies, the top is returned (the factorization must
    ///   progress even if the peak grows).
    ///
    /// Only `admissible` tasks are ever returned (pass `|_| true` when no
    /// hard capacity applies); `None` with a non-empty pool means every
    /// task is inadmissible and the processor should wait.
    pub fn pick_memory_aware(
        &mut self,
        in_subtree: impl Fn(usize) -> bool,
        cost: impl Fn(usize) -> u64,
        current_memory: u64,
        observed_peak: u64,
        admissible: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        let &top = self.stack.last()?;
        if in_subtree(top) && admissible(top) {
            return self.stack.pop();
        }
        for idx in (0..self.stack.len()).rev() {
            let t = self.stack[idx];
            if admissible(t) && (cost(t) + current_memory <= observed_peak || in_subtree(t)) {
                return Some(self.stack.remove(idx));
            }
        }
        let idx = self.stack.iter().rposition(|&t| admissible(t))?;
        Some(self.stack.remove(idx))
    }

    /// Removes a specific task (used when the scheduler force-activates a
    /// deferred task to break a capacity-induced stall). Returns `false`
    /// when the task is not in the pool.
    pub fn remove_task(&mut self, node: usize) -> bool {
        match self.stack.iter().rposition(|&t| t == node) {
            Some(idx) => {
                self.stack.remove(idx);
                true
            }
            None => false,
        }
    }
}

/// Everything a task-selection strategy may consult when picking the next
/// ready task from a pool. The closures close over the deciding
/// processor's state (tree geometry, stacked contribution blocks, the
/// capacity verdict), so strategies stay independent of the scheduler's
/// internals.
pub struct TaskCtx<'a> {
    /// Whether a node belongs to a leaf subtree (depth-first priority).
    pub in_subtree: &'a dyn Fn(usize) -> bool,
    /// Activation cost of a node on its owner, in entries.
    pub cost: &'a dyn Fn(usize) -> u64,
    /// Contribution-block entries (local and remote) an activation frees.
    pub released: &'a dyn Fn(usize) -> u64,
    /// Hard-capacity admissibility verdict (always true without a cap).
    pub admissible: &'a dyn Fn(usize) -> bool,
    /// Whether a hard capacity is configured.
    pub capped: bool,
    /// Algorithm 2's "current memory (including peak of subtree)".
    pub current_memory: u64,
    /// Peak observed since the beginning of the factorization.
    pub observed_peak: u64,
}

impl std::fmt::Debug for TaskCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskCtx")
            .field("capped", &self.capped)
            .field("current_memory", &self.current_memory)
            .field("observed_peak", &self.observed_peak)
            .finish_non_exhaustive()
    }
}

/// A pluggable task-selection strategy (which ready task to activate).
///
/// Implementations are stateless: each decision maps a pool plus a
/// [`TaskCtx`] to a choice. `None` over a non-empty pool means every
/// ready task was deferred (the capacity verdict) and the processor
/// stalls until memory frees. Register new strategies by adding a static
/// instance and a [`crate::config::TaskSelection`] factory name.
pub trait TaskSelector: Send + Sync {
    /// Stable CLI/registry name of the strategy.
    fn name(&self) -> &'static str;

    /// Picks (and removes) the next task from `pool`.
    fn pick(&self, pool: &mut TaskPool, ctx: &TaskCtx<'_>) -> Option<usize>;
}

/// Baseline LIFO (depth-first) selection as a [`TaskSelector`].
pub struct LifoSelector;

impl TaskSelector for LifoSelector {
    fn name(&self) -> &'static str {
        "lifo"
    }

    fn pick(&self, pool: &mut TaskPool, ctx: &TaskCtx<'_>) -> Option<usize> {
        if ctx.capped {
            pool.pick_lifo_admissible(|v| (ctx.admissible)(v))
        } else {
            pool.pick_lifo()
        }
    }
}

/// Algorithm 2 memory-aware selection as a [`TaskSelector`].
pub struct MemoryAwareSelector;

impl TaskSelector for MemoryAwareSelector {
    fn name(&self) -> &'static str {
        "memory_aware"
    }

    fn pick(&self, pool: &mut TaskPool, ctx: &TaskCtx<'_>) -> Option<usize> {
        pool.pick_memory_aware(
            |v| (ctx.in_subtree)(v),
            |v| (ctx.cost)(v),
            ctx.current_memory,
            ctx.observed_peak,
            |v| (ctx.admissible)(v),
        )
    }
}

/// Algorithm 2 with the Section 6 global refinement as a [`TaskSelector`].
pub struct MemoryAwareGlobalSelector;

impl TaskSelector for MemoryAwareGlobalSelector {
    fn name(&self) -> &'static str {
        "memory_aware_global"
    }

    fn pick(&self, pool: &mut TaskPool, ctx: &TaskCtx<'_>) -> Option<usize> {
        pool.pick_memory_aware_global(
            |v| (ctx.in_subtree)(v),
            |v| (ctx.cost)(v),
            |v| (ctx.released)(v),
            ctx.current_memory,
            ctx.observed_peak,
            |v| (ctx.admissible)(v),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_pops_in_reverse_push_order() {
        let mut p = TaskPool::new(vec![1, 2]);
        p.push(3);
        assert_eq!(p.pick_lifo(), Some(3));
        assert_eq!(p.pick_lifo(), Some(2));
        assert_eq!(p.pick_lifo(), Some(1));
        assert_eq!(p.pick_lifo(), None);
    }

    #[test]
    fn subtree_top_taken_unconditionally() {
        let mut p = TaskPool::new(vec![10, 20]);
        // 20 is in a subtree; its cost would blow the peak, but it still
        // goes first.
        let got = p.pick_memory_aware(|t| t == 20, |_| 1_000_000, 999, 1_000, |_| true);
        assert_eq!(got, Some(20));
    }

    #[test]
    fn big_upper_task_is_delayed() {
        // Figure 8: the top task (100) is a huge upper-tree node; the one
        // below (5) fits under the observed peak and runs first.
        let mut p = TaskPool::new(vec![5, 100]);
        let cost = |t: usize| t as u64;
        let got = p.pick_memory_aware(|_| false, cost, 50, 60, |_| true);
        assert_eq!(got, Some(5));
        assert_eq!(p.as_slice(), &[100]);
    }

    #[test]
    fn subtree_task_deeper_in_pool_is_preferred() {
        let mut p = TaskPool::new(vec![7, 8, 100]);
        // 100 too big, 8 too big but in a subtree.
        let got = p.pick_memory_aware(|t| t == 8, |t| t as u64, 50, 60, |_| true);
        assert_eq!(got, Some(8));
        assert_eq!(p.as_slice(), &[7, 100]);
    }

    #[test]
    fn falls_back_to_top_when_nothing_fits() {
        let mut p = TaskPool::new(vec![70, 100]);
        let got = p.pick_memory_aware(|_| false, |t| t as u64, 50, 60, |_| true);
        assert_eq!(got, Some(100));
    }

    #[test]
    fn fitting_top_task_is_taken_directly() {
        let mut p = TaskPool::new(vec![70, 5]);
        let got = p.pick_memory_aware(|_| false, |t| t as u64, 50, 60, |_| true);
        assert_eq!(got, Some(5));
    }

    #[test]
    fn empty_pool_returns_none() {
        let mut p = TaskPool::default();
        assert_eq!(p.pick_memory_aware(|_| false, |_| 0, 0, 0, |_| true), None);
    }

    #[test]
    fn global_variant_offsets_cost_by_released_cbs() {
        // Task 100 looks too big, but activating it releases 80 entries of
        // stacked CBs: its net cost (20) fits under the observed peak.
        let mut p = TaskPool::new(vec![100]);
        let got = p.pick_memory_aware_global(
            |_| false,
            |t| t as u64,
            |t| if t == 100 { 80 } else { 0 },
            50,
            75,
            |_| true,
        );
        assert_eq!(got, Some(100));
    }

    #[test]
    fn inadmissible_tasks_are_deferred() {
        // Hard capacity: nothing admissible -> None, the pool is intact.
        let mut p = TaskPool::new(vec![5, 100]);
        let got = p.pick_memory_aware(|_| false, |t| t as u64, 0, 1_000, |_| false);
        assert_eq!(got, None);
        assert_eq!(p.as_slice(), &[5, 100]);
        // A subtree task at the top is also held back when inadmissible.
        let got = p.pick_memory_aware(|t| t == 100, |t| t as u64, 0, 1_000, |t| t != 100);
        assert_eq!(got, Some(5));
        assert_eq!(p.as_slice(), &[100]);
    }

    #[test]
    fn lifo_admissible_takes_topmost_fitting_task() {
        let mut p = TaskPool::new(vec![1, 2, 3]);
        assert_eq!(p.pick_lifo_admissible(|t| t != 3), Some(2));
        assert_eq!(p.as_slice(), &[1, 3]);
        assert_eq!(p.pick_lifo_admissible(|_| false), None);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn remove_task_extracts_a_specific_node() {
        let mut p = TaskPool::new(vec![4, 9, 6]);
        assert!(p.remove_task(9));
        assert!(!p.remove_task(9));
        assert_eq!(p.as_slice(), &[4, 6]);
    }

    #[test]
    fn global_fallback_prefers_the_biggest_release() {
        // Nothing fits; the fallback picks the task freeing the most.
        let mut p = TaskPool::new(vec![60, 70]);
        let got = p.pick_memory_aware_global(
            |_| false,
            |t| t as u64,
            |t| if t == 60 { 10 } else { 0 },
            50,
            10,
            |_| true,
        );
        assert_eq!(got, Some(60));
    }
}
