//! Malleable-front core allocation: the speedup model and the shared
//! duration arithmetic behind `core_alloc`.
//!
//! A front is a *malleable task* in the sense of
//! Guermouche–Marchal–Simon–Vivien (arXiv:1410.7249): its processing
//! time shrinks with the number of cores allotted to it, with
//! diminishing returns captured by an Amdahl curve whose serial
//! fraction falls as the front (hence its trailing GEMM) grows. The
//! scheduler core turns that model into a per-front core grant at
//! `StartCompute` time; both backends then stretch or shrink the
//! modelled compute duration through [`compute_ticks`] — the *same*
//! integer/f64 arithmetic on both sides, so the parsim/mf-exec
//! equivalence contract survives.
//!
//! Everything here is deterministic across platforms: the curve uses
//! only IEEE-exact operations (`+ - * /` and `sqrt`), never libm
//! approximations (`powf`, `cbrt`, ...) whose last bits vary between
//! implementations.

/// Amdahl speedup curve with a size-dependent serial fraction.
///
/// `speedup(flops, c) = 1 / (s + (1 - s) / c)` where the serial
/// fraction `s(flops) = serial_ref · sqrt(flops_ref / flops)`, clamped
/// to `[floor, 1]`. The square-root law matches the blocked kernels:
/// the sequential panel factorization is `O(f²·nb)` of an `O(f³)`
/// front, so its share falls roughly with the square root of the flop
/// count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupCurve {
    /// Serial fraction measured at `flops_ref`.
    pub serial_ref: f64,
    /// Flop count of the calibration point.
    pub flops_ref: u64,
    /// Lower clamp on the serial fraction (no front is infinitely
    /// parallel).
    pub floor: f64,
}

impl Default for SpeedupCurve {
    fn default() -> Self {
        // Calibrated from the perf_baseline self-speedup measurement:
        // ~3x at 8 within-front threads on a front of order 512
        // (~46 Mflop partial LU), i.e. serial fraction 5/21 ≈ 0.238.
        SpeedupCurve { serial_ref: 0.238, flops_ref: 46_000_000, floor: 0.02 }
    }
}

impl SpeedupCurve {
    /// Fits the curve to one measured point: `measured` speedup at
    /// `cores` on a task of `flops_ref` flops (the bench layer feeds a
    /// gemm-bench measurement through this once per run).
    pub fn fit(flops_ref: u64, cores: usize, measured: f64) -> Self {
        let c = (cores.max(2)) as f64;
        let sp = measured.clamp(1.0, c);
        // Invert speedup = 1/(s + (1-s)/c) for s.
        let s = ((c / sp) - 1.0) / (c - 1.0);
        SpeedupCurve { serial_ref: s.clamp(0.0, 1.0), flops_ref, floor: 0.02 }
    }

    /// Serial fraction at the given task size.
    pub fn serial_fraction(&self, flops: u64) -> f64 {
        let ratio = self.flops_ref.max(1) as f64 / flops.max(1) as f64;
        (self.serial_ref * ratio.sqrt()).clamp(self.floor, 1.0)
    }

    /// Modelled speedup of a `flops`-sized front on `cores` cores.
    /// Monotone in `cores`, equals 1 at one core.
    pub fn speedup(&self, flops: u64, cores: u32) -> f64 {
        if cores <= 1 {
            return 1.0;
        }
        let s = self.serial_fraction(flops);
        1.0 / (s + (1.0 - s) / cores as f64)
    }
}

/// How the scheduler allots cores to each front's compute task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoreAlloc {
    /// Every front runs on this many cores (the historical
    /// `cores_per_front` knob; `Static(1)` — the default — is
    /// byte-identical to the pre-malleable scheduler).
    Static(usize),
    /// Core counts become a scheduling decision: a front starting on a
    /// processor is granted `pool_cores / busy` cores (clamped to
    /// `[1, max_per_front]`), where `busy` is the number of peers the
    /// granting processor believes still have tree work. Leaf-phase
    /// fronts run one per core; as tree-parallelism dries up toward the
    /// root, the survivors' wide fronts collect the idle cores. Fronts
    /// below `min_flops` never get more than one core (a grant cannot
    /// pay for its fork/join).
    Malleable {
        /// Total cores the machine can spread over concurrent fronts.
        pool_cores: usize,
        /// Upper bound on any single front's grant.
        max_per_front: usize,
        /// Fronts smaller than this (flops) always run on one core.
        min_flops: u64,
        /// The speedup model grants are evaluated against.
        curve: SpeedupCurve,
    },
}

impl CoreAlloc {
    /// A malleable allocation with the default curve and thresholds
    /// sized for the paper-scale machine model.
    pub fn malleable(pool_cores: usize) -> Self {
        CoreAlloc::Malleable {
            pool_cores,
            max_per_front: 8,
            min_flops: 5_000_000,
            curve: SpeedupCurve::default(),
        }
    }

    /// The speedup curve durations are modelled with (`None` under
    /// `Static`, where a grant of `n` cores still uses the default
    /// curve so static-vs-malleable comparisons are fair).
    pub fn curve(&self) -> SpeedupCurve {
        match self {
            CoreAlloc::Static(_) => SpeedupCurve::default(),
            CoreAlloc::Malleable { curve, .. } => *curve,
        }
    }
}

impl Default for CoreAlloc {
    fn default() -> Self {
        CoreAlloc::Static(1)
    }
}

/// Modelled compute duration of a `flops` task on `cores` cores at
/// `flops_per_tick` speed — the **single** duration formula both
/// backends use, so their event streams stay byte-identical.
///
/// At one core this is exactly the historical integer path
/// `(flops / fpt).max(1)`; with more cores the integer duration is
/// divided by the curve's speedup in f64 (division and `ceil` are
/// IEEE-exact, hence cross-platform deterministic) and floored at one
/// tick.
pub fn compute_ticks(flops: u64, flops_per_tick: u64, cores: u32, curve: &SpeedupCurve) -> u64 {
    let exact = (flops / flops_per_tick.max(1)).max(1);
    if cores <= 1 {
        return exact;
    }
    let sp = curve.speedup(flops, cores);
    ((exact as f64 / sp).ceil() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_core_is_the_exact_integer_path() {
        let curve = SpeedupCurve::default();
        for flops in [0u64, 1, 999, 1000, 123_456_789] {
            assert_eq!(compute_ticks(flops, 1000, 1, &curve), (flops / 1000).max(1));
        }
    }

    #[test]
    fn speedup_is_monotone_and_bounded() {
        let curve = SpeedupCurve::default();
        for flops in [1_000_000u64, 46_000_000, 4_600_000_000] {
            let mut prev = 1.0;
            for c in 2..=32u32 {
                let sp = curve.speedup(flops, c);
                assert!(sp >= prev, "speedup must not fall with more cores");
                assert!(sp <= c as f64, "super-linear speedup");
                prev = sp;
            }
        }
        // Bigger fronts parallelize better.
        assert!(curve.speedup(4_600_000_000, 8) > curve.speedup(46_000_000, 8));
    }

    #[test]
    fn default_curve_matches_the_calibration_point() {
        let curve = SpeedupCurve::default();
        let sp = curve.speedup(46_000_000, 8);
        assert!((sp - 3.0).abs() < 0.05, "expected ~3x at 8 cores, got {sp}");
    }

    #[test]
    fn fit_inverts_the_measurement() {
        let fitted = SpeedupCurve::fit(46_000_000, 8, 3.0);
        let sp = fitted.speedup(46_000_000, 8);
        assert!((sp - 3.0).abs() < 1e-9, "fit must reproduce its input, got {sp}");
    }

    #[test]
    fn more_cores_never_lengthen_the_duration() {
        let curve = SpeedupCurve::default();
        let mut prev = u64::MAX;
        for c in 1..=16u32 {
            let d = compute_ticks(80_000_000, 1000, c, &curve);
            assert!(d <= prev, "duration rose from {prev} to {d} at {c} cores");
            prev = d;
        }
        assert!(prev >= 1);
    }

    #[test]
    fn static_default_is_sequential() {
        assert_eq!(CoreAlloc::default(), CoreAlloc::Static(1));
        match CoreAlloc::malleable(32) {
            CoreAlloc::Malleable { pool_cores, max_per_front, .. } => {
                assert_eq!(pool_cores, 32);
                assert!(max_per_front >= 2);
            }
            other => panic!("expected malleable, got {other:?}"),
        }
    }
}
