//! Memory-based scheduling for a parallel multifrontal solver.
//!
//! This crate is the reproduction of the paper's contribution. It drives
//! a simulated distributed-memory factorization (on top of `mf-sim`) of an
//! assembly tree (from `mf-symbolic`) with MUMPS' combination of static
//! and dynamic scheduling, and implements both the baseline strategies and
//! the paper's memory-based ones:
//!
//! * [`mapping`] — the static phase: Geist–Ng leaf-subtree construction,
//!   subtree→processor mapping, type-1/2/3 classification, and master
//!   mapping balancing factor memory (Section 3);
//! * [`slavesel`] — dynamic slave selection for type-2 fronts: the
//!   workload baseline and the paper's **Algorithm 1** memory-based
//!   waterfill (Section 4), both on top of possibly *stale* views;
//! * [`blocking`] — the 1-D row blockings of Figure 3 (regular for LU,
//!   irregular for LDLᵀ) and their entry/flop accounting;
//! * [`views`] — the asynchronous information mechanisms: memory
//!   increments, workload updates, subtree-peak broadcasts and
//!   ready-master predictions (Section 5.1);
//! * [`pool`] — the per-processor pool of ready tasks with LIFO baseline
//!   and the paper's **Algorithm 2** memory-aware task selection
//!   (Section 5.2);
//! * [`proto`] — the sans-io protocol: each processor is a
//!   [`proto::SchedulerCore`] state machine consuming typed inputs and
//!   emitting typed effects, with no clock, queue, or RNG inside;
//! * [`parsim`] — the discrete-event backend: the cores driven by the
//!   `mf-sim` virtual-time simulator (the `mf-exec` crate drives the same
//!   cores on real OS threads);
//! * [`driver`] — one-call experiment runner (matrix × ordering ×
//!   configuration → per-processor stack peaks and makespan), the engine
//!   behind every table of the paper.

#![warn(missing_docs)]
pub mod blocking;
pub mod config;
pub mod driver;
pub mod error;
pub mod malleable;
pub mod mapping;
pub mod parsim;
pub mod pool;
pub mod proto;
pub mod recovery;
pub mod slavesel;
pub mod views;

pub use config::{RecoveryConfig, SlaveSelection, SolverConfig, TaskSelection};
pub use malleable::{compute_ticks, CoreAlloc, SpeedupCurve};
pub use driver::{run_experiment, ExperimentInput, RunResult};
pub use error::{ProcDiag, RunDiagnostics, SimError};
pub use mapping::StaticMapping;
pub use recovery::{
    digest_factors, Membership, MembershipChange, ObligationLedger, RecoveryPlan, RecoverySnapshot,
};
