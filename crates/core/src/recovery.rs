//! Failure recovery: snapshots, recovery plans, and the plan builder.
//!
//! When a processor fail-stops, everything it held is gone: its factor
//! entries, the contribution blocks stacked on it, its bookkeeping about
//! children of the nodes it owned, and every message addressed to it.
//! The surviving [`crate::proto::SchedulerCore`]s detect the silence
//! through the lease protocol and emit `Effect::DeclareDead`; the
//! *driver* (the discrete-event simulator or the threaded coordinator —
//! the only party with a global, deterministic view) then builds a
//! [`RecoveryPlan`] from per-processor [`RecoverySnapshot`]s and feeds it
//! back into every surviving core as `Input::Recover`.
//!
//! The plan answers exactly three questions:
//!
//! 1. **What must be re-executed?** The recompute set `R`: every node the
//!    dead processor owned and had not finished, every node it *had*
//!    finished (its factors died with it), and every node for which it
//!    held a factor share as a type-2 slave or a type-3 share worker —
//!    whether or not that share was finished (an unfinished share would
//!    otherwise never be produced; a finished one is lost).
//! 2. **Who re-executes it?** Nodes owned by survivors keep their owner.
//!    Orphaned nodes are grouped into maximal connected components of the
//!    assembly tree and each component is adopted whole, by the survivor
//!    with the most memory headroom under the configured capacity —
//!    memory-aware rebalancing with exact (snapshot, not stale-view)
//!    memory state.
//! 3. **What bookkeeping must survivors repair?** Which contribution
//!    blocks to garbage-collect (pieces produced by or for a recomputed
//!    node are stale), which surviving pieces to re-register at the
//!    adopter, and what per-child completion counters the adopter must
//!    start from so the readiness chain (`Complete`/`PieceDone` →
//!    `check_child_done` → activation) resumes exactly once per node.
//!
//! Re-executed nodes run as *full local fronts* on their adopter
//! regardless of their original kind (a type-2 node is not re-partitioned
//! across slaves): the per-node factor-entry totals are partition
//! invariant (`master + Σ slave shares = factor_entries`), so a recovered
//! run reproduces the exact per-node factor content of a fault-free run —
//! the property [`digest_factors`] certifies. The one exception is a
//! type-3 root, which is re-scattered over the *surviving* processors
//! with the dead shares absorbed by the master, keeping the
//! `nprocs × share` total intact.

use std::collections::{BTreeMap, VecDeque};

use crate::proto::Migration;
use mf_sim::FaultModel;

/// Per-processor state the driver needs to build a recovery plan. Taken
/// from a live core on demand, and from a dying core *at kill time* (the
/// last coherent view of what died with it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoverySnapshot {
    /// Processor id.
    pub proc: usize,
    /// Nodes this core completed as owner.
    pub done: Vec<usize>,
    /// Nodes this core activated as owner (activation implies every
    /// child was complete, so a recompute can run standalone).
    pub activated: Vec<usize>,
    /// Factor entries stored per node on this processor, sparse.
    pub factors: Vec<(usize, u64)>,
    /// Contribution-block pieces physically on this processor's stack:
    /// `(producing node, entries)`. At most one piece per producer per
    /// holder.
    pub held: Vec<(usize, u64)>,
    /// Nodes with unfinished work on this core (queued or running).
    pub inflight: Vec<usize>,
    /// Ready tasks in the local pool.
    pub pool: Vec<usize>,
    /// Registered contribution blocks awaiting consumption, per owned
    /// parent: `(parent, holder, entries, child)`.
    pub registered: Vec<(usize, usize, u64, usize)>,
    /// Active memory (stack + fronts), in entries.
    pub active: u64,
}

/// Bookkeeping the adopter installs for one surviving (not recomputed)
/// child of a recomputed node, so the readiness chain resumes without
/// double-counting: the child's already-produced pieces are pre-counted
/// (their `PieceDone` notifications died with the old owner) and the
/// surviving ones re-registered for consumption at activation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChildState {
    /// The child node.
    pub child: usize,
    /// Whether the child has completed (counts toward `done_children`).
    pub done: bool,
    /// Pieces already produced by the child (surviving + lost with the
    /// dead): the value to preset `pieces_got` to.
    pub pre_got: usize,
    /// Surviving pieces to register in the adopter's `cb_pieces`:
    /// `(holder, entries)`.
    pub installs: Vec<(usize, u64)>,
}

/// One node of the recompute set, with everything its (new) owner needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanNode {
    /// The node to re-execute.
    pub node: usize,
    /// Its owner after recovery (the adopter for orphans, the unchanged
    /// owner for survivor-owned nodes that lost a slave share).
    pub owner: usize,
    /// The node had been activated in its previous life: every child is
    /// complete and every child contribution was already consumed, so the
    /// re-execution runs standalone (ready immediately, no installs).
    pub was_activated: bool,
    /// Every child is complete and none is being recomputed: push into
    /// the owner's ready pool at plan application.
    pub ready: bool,
    /// Per-child bookkeeping for children that are *not* themselves
    /// recomputed (recomputed children restart from zero counters).
    pub children: Vec<ChildState>,
}

/// The full recovery plan for one processor loss, applied identically by
/// every surviving core (and replayed to late joiners).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryPlan {
    /// The processor that failed.
    pub dead: usize,
    /// Nodes to re-execute, ascending by node id.
    pub recompute: Vec<PlanNode>,
    /// `(component root, adopter)` per orphaned subtree component — the
    /// reassignment chain `explain` narrates.
    pub roots: Vec<(usize, usize)>,
    /// Contribution-block entries that died on the dead processor's stack
    /// (reclaimed from the global accounting; survivors GC their own
    /// stale pieces during plan application).
    pub dead_stack_entries: u64,
}

/// Driver-side record of factor-share obligations: which processors were
/// handed a type-2 slave task or a type-3 share for each node. A
/// processor on this list holds (or will hold) part of the node's factors,
/// so its death forces the node into the recompute set. Cleared for a
/// node when the node is recovered (its new life has fresh obligations).
#[derive(Debug, Clone, Default)]
pub struct ObligationLedger {
    /// node → processors with a type-2 slave share of it.
    pub slaves: BTreeMap<usize, Vec<usize>>,
    /// root → processors with a type-3 share of it.
    pub shares: BTreeMap<usize, Vec<usize>>,
}

impl ObligationLedger {
    /// Records a routed `SlaveTask` for `node` to `proc`.
    pub fn slave(&mut self, node: usize, proc: usize) {
        self.slaves.entry(node).or_default().push(proc);
    }

    /// Records a routed `Type3Share` for `node` to `proc`.
    pub fn share(&mut self, node: usize, proc: usize) {
        self.shares.entry(node).or_default().push(proc);
    }

    /// Nodes obligated to `proc`, ascending, deduplicated.
    fn obligated_to(&self, proc: usize) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .slaves
            .iter()
            .chain(self.shares.iter())
            .filter(|(_, procs)| procs.contains(&proc))
            .map(|(&node, _)| node)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Drops every obligation of the recovered nodes (their re-execution
    /// is local to the adopter, or re-scattered and re-recorded).
    fn clear_nodes(&mut self, in_r: &[bool]) {
        self.slaves.retain(|&v, _| !in_r[v]);
        self.shares.retain(|&v, _| !in_r[v]);
    }
}

/// Inputs to [`build_plan`] that the driver maintains across the run.
pub struct PlanInputs<'a> {
    /// Assembly tree.
    pub tree: &'a mf_symbolic::AssemblyTree,
    /// Current ownership overlay (the static mapping plus every prior
    /// plan and migration).
    pub owners: &'a [usize],
    /// Liveness per processor after this kill.
    pub alive: &'a [bool],
    /// Join state per processor (dormant processors cannot adopt).
    pub joined: &'a [bool],
    /// Per-processor memory capacity, if configured.
    pub capacity: Option<u64>,
}

/// Builds the recovery plan for the loss of processor `dead`.
///
/// `snaps[dead]` must be the kill-time snapshot; the other entries are
/// live snapshots taken at plan time. The ledger's obligations for
/// recovered nodes are cleared as a side effect.
pub fn build_plan(
    inputs: &PlanInputs<'_>,
    dead: usize,
    snaps: &[RecoverySnapshot],
    ledger: &mut ObligationLedger,
) -> RecoveryPlan {
    let tree = inputs.tree;
    let n = tree.len();

    // Global done/activated state from the snapshots (the dead one
    // included: its completions are real, just lost).
    let mut done = vec![false; n];
    let mut activated = vec![false; n];
    for s in snaps {
        for &v in &s.done {
            done[v] = true;
        }
        for &v in &s.activated {
            activated[v] = true;
        }
    }

    // The recompute set R.
    let mut in_r = vec![false; n];
    for &v in &snaps[dead].done {
        in_r[v] = true; // factors died with the processor
    }
    for (v, owner) in inputs.owners.iter().enumerate() {
        if *owner == dead && !done[v] {
            in_r[v] = true; // orphaned: pending, pooled, or mid-execution
        }
    }
    for v in ledger.obligated_to(dead) {
        in_r[v] = true; // a factor share lives (or would live) on the dead
    }
    for &(v, e) in &snaps[dead].factors {
        if e > 0 {
            in_r[v] = true; // backstop: any factor content on the dead
        }
    }

    // Surviving pieces per producing node: (holder, entries), holders
    // ascending (snapshot order). Only pieces on *surviving* processors.
    let mut held_alive: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    let mut held_dead = vec![0usize; n];
    let mut dead_stack_entries = 0u64;
    for s in snaps {
        for &(node, entries) in &s.held {
            if s.proc == dead {
                held_dead[node] += 1;
                dead_stack_entries += entries;
            } else if inputs.alive[s.proc] {
                held_alive[node].push((s.proc, entries));
            }
        }
    }

    // Ownership after recovery: orphaned components of R are adopted
    // whole; survivor-owned members of R keep their owner. A component
    // root is an orphan whose parent is not itself an orphaned member of
    // R (walking the tree in id order is enough: only adoption targets
    // matter, not traversal order).
    let adopters: Vec<usize> =
        (0..snaps.len()).filter(|&p| p != dead && inputs.alive[p] && inputs.joined[p]).collect();
    debug_assert!(!adopters.is_empty(), "recovery requires a surviving processor");
    let orphan = |v: usize| in_r[v] && inputs.owners[v] == dead;
    let mut new_owner = vec![usize::MAX; n];
    let mut roots = Vec::new();
    // Largest front of each component, for capacity-aware adoption.
    let mut comp_load: BTreeMap<usize, u64> = BTreeMap::new();
    let mut comp_of = vec![usize::MAX; n];
    for v in 0..n {
        if !in_r[v] {
            continue;
        }
        if !orphan(v) {
            new_owner[v] = inputs.owners[v];
            continue;
        }
        // Component representative: highest orphaned ancestor. Children
        // have smaller ids than parents only pre-split, so walk up
        // explicitly.
        let mut root = v;
        while let Some(p) = tree.nodes[root].parent {
            if orphan(p) {
                root = p;
            } else {
                break;
            }
        }
        comp_of[v] = root;
        let load = comp_load.entry(root).or_insert(0);
        *load = (*load).max(tree.front_entries(v));
    }
    // Adopt components in ascending root order, tracking the projected
    // active memory of each candidate so consecutive components spread.
    let mut projected: Vec<u64> = snaps.iter().map(|s| s.active).collect();
    for (&root, &load) in comp_load.iter() {
        let fits = |p: usize| match inputs.capacity {
            Some(c) => projected[p].saturating_add(load) <= c,
            None => true,
        };
        let pick = adopters
            .iter()
            .copied()
            .filter(|&p| fits(p))
            .min_by_key(|&p| (projected[p], p))
            .or_else(|| adopters.iter().copied().min_by_key(|&p| (projected[p], p)))
            .expect("at least one adopter");
        projected[pick] = projected[pick].saturating_add(load);
        roots.push((root, pick));
        for v in 0..n {
            if comp_of[v] == root {
                new_owner[v] = pick;
            }
        }
    }

    // Per-node plan entries, ascending.
    let mut recompute = Vec::new();
    for v in 0..n {
        if !in_r[v] {
            continue;
        }
        let was_activated = activated[v];
        let children = if was_activated {
            Vec::new() // every contribution already consumed: standalone
        } else {
            tree.nodes[v]
                .children
                .iter()
                .filter(|&&c| !in_r[c])
                .map(|&c| {
                    let installs = held_alive[c].clone();
                    ChildState {
                        child: c,
                        done: done[c],
                        pre_got: installs.len() + held_dead[c],
                        installs,
                    }
                })
                .collect()
        };
        let ready = was_activated || tree.nodes[v].children.iter().all(|&c| done[c] && !in_r[c]);
        recompute.push(PlanNode { node: v, owner: new_owner[v], was_activated, ready, children });
    }

    ledger.clear_nodes(&in_r);
    RecoveryPlan { dead, recompute, roots, dead_stack_entries }
}

/// FNV-1a digest over the per-node factor-entry totals aggregated across
/// the surviving processors. Per-node totals are partition invariant
/// (type-2: `master + Σ slaves = factor_entries`; type-3:
/// `nprocs × share`), so two successful runs of the same problem — fault
/// free or recovered, either scheduling strategy's slave partition —
/// produce the same digest exactly when every node's factors were
/// computed exactly once and survived.
pub fn digest_factors<'a>(per_proc: impl Iterator<Item = &'a [u64]>, n: usize) -> u64 {
    let mut totals = vec![0u64; n];
    for fb in per_proc {
        for (v, &e) in fb.iter().enumerate() {
            totals[v] += e;
        }
    }
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for (v, &t) in totals.iter().enumerate() {
        for b in (v as u64).to_le_bytes().into_iter().chain(t.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// One membership change already applied to the machine, kept so a late
/// joiner can be replayed into the current ownership overlays before it
/// receives any live traffic.
#[derive(Debug, Clone)]
pub enum MembershipChange {
    /// A processor loss and its recovery plan.
    Recover(RecoveryPlan),
    /// A join-time rebalancing migration.
    Migrate(Migration),
}

/// Driver-side membership orchestration state, shared by the
/// discrete-event and threaded backends so both run the identical
/// kill/join/recovery protocol: the fault schedule, the machine-wide
/// liveness/ownership mirrors (the driver's copy of what every core's
/// overlays converge to), the kill-time snapshots, the obligation
/// ledger, and the membership log for joiner replay.
///
/// `None` on a run without recovery configuration or membership faults —
/// the quiet path takes no membership branches at all.
#[derive(Debug)]
pub struct Membership {
    /// Liveness per processor.
    pub alive: Vec<bool>,
    /// Join state per processor (scheduled joiners start dormant).
    pub joined: Vec<bool>,
    /// Ownership mirror: static owners + every plan and migration.
    pub owners: Vec<usize>,
    /// Nodes recomputed by some plan (mirror of the cores' overlay).
    pub recovered: Vec<bool>,
    /// Kill-time snapshot per dead processor.
    pub dead_snaps: Vec<Option<RecoverySnapshot>>,
    /// Deaths already recovered (the declaration arbiter's dedup).
    pub recovered_deaths: Vec<bool>,
    /// Applied changes, in order, for joiner replay.
    pub log: Vec<MembershipChange>,
    /// Delivered-event counter the kill/join schedule is keyed on.
    pub delivered: u64,
    kills: VecDeque<(u64, usize)>,
    joins: VecDeque<(u64, usize)>,
}

impl Membership {
    /// Whether a run needs membership orchestration at all: recovery is
    /// configured (heartbeat timers keep the queue alive, so termination
    /// must be membership-aware) or the fault model schedules kills or
    /// joins.
    pub fn needed(recovery_on: bool, fault: Option<&FaultModel>) -> bool {
        recovery_on || fault.is_some_and(|f| !f.kill_at.is_empty() || !f.join_at.is_empty())
    }

    /// Fresh state for a run: everyone alive, scheduled joiners dormant,
    /// ownership from the static mapping.
    pub fn new(nprocs: usize, owners: Vec<usize>, fault: Option<&FaultModel>) -> Self {
        let n = owners.len();
        let mut kills: Vec<(u64, usize)> = fault.map(|f| f.kill_at.clone()).unwrap_or_default();
        kills.sort_unstable();
        let mut joins: Vec<(u64, usize)> = fault.map(|f| f.join_at.clone()).unwrap_or_default();
        joins.sort_unstable();
        let mut joined = vec![true; nprocs];
        for &(_, p) in &joins {
            if p < nprocs {
                joined[p] = false;
            }
        }
        Membership {
            alive: vec![true; nprocs],
            joined,
            owners,
            recovered: vec![false; n],
            dead_snaps: vec![None; nprocs],
            recovered_deaths: vec![false; nprocs],
            log: Vec::new(),
            delivered: 0,
            kills: kills.into(),
            joins: joins.into(),
        }
    }

    /// Next scheduled kill due at or before event `idx`, consumed.
    pub fn take_due_kill(&mut self, idx: u64) -> Option<usize> {
        match self.kills.front() {
            Some(&(at, _)) if at <= idx => self.kills.pop_front().map(|(_, p)| p),
            _ => None,
        }
    }

    /// Next scheduled join due at or before event `idx`, consumed.
    pub fn take_due_join(&mut self, idx: u64) -> Option<usize> {
        match self.joins.front() {
            Some(&(at, _)) if at <= idx => self.joins.pop_front().map(|(_, p)| p),
            _ => None,
        }
    }

    /// Forces the next scheduled join regardless of its index (the drain
    /// path: with no events left, scheduled indices are never reached).
    pub fn take_next_join(&mut self) -> Option<usize> {
        self.joins.pop_front().map(|(_, p)| p)
    }

    /// Whether any scheduled kill or join is still pending.
    pub fn schedule_pending(&self) -> bool {
        !self.kills.is_empty() || !self.joins.is_empty()
    }

    /// Whether some processor is dead but its loss not yet recovered
    /// (the lease has not expired yet — quiescence must wait for it).
    pub fn undeclared_dead(&self) -> bool {
        (0..self.alive.len()).any(|p| !self.alive[p] && !self.recovered_deaths[p])
    }

    /// Processors currently dead, ascending.
    pub fn dead(&self) -> Vec<usize> {
        (0..self.alive.len()).filter(|&p| !self.alive[p]).collect()
    }

    /// Whether anyone is left to adopt the orphans of `dead`.
    pub fn adopters_exist(&self, dead: usize) -> bool {
        (0..self.alive.len()).any(|p| p != dead && self.alive[p] && self.joined[p])
    }

    /// Marks `proc` dead and stores its kill-time snapshot.
    pub fn note_kill(&mut self, proc: usize, snap: RecoverySnapshot) {
        self.alive[proc] = false;
        self.dead_snaps[proc] = Some(snap);
    }

    /// Marks `proc` joined.
    pub fn note_join(&mut self, proc: usize) {
        self.joined[proc] = true;
    }

    /// Applies a migration to the ownership mirror and logs it.
    pub fn note_migration(&mut self, m: &Migration) {
        self.owners[m.node] = m.to;
        self.log.push(MembershipChange::Migrate(m.clone()));
    }

    /// Builds the recovery plan for the loss of `dead` (liveness must
    /// already reflect the kill), updates the ownership mirrors, and
    /// logs the plan for joiner replay. `ledger` is the driver's
    /// obligation record, cleared for recovered nodes as a side effect.
    pub fn plan_loss(
        &mut self,
        tree: &mf_symbolic::AssemblyTree,
        capacity: Option<u64>,
        dead: usize,
        snaps: &[RecoverySnapshot],
        ledger: &mut ObligationLedger,
    ) -> RecoveryPlan {
        let inputs = PlanInputs {
            tree,
            owners: &self.owners,
            alive: &self.alive,
            joined: &self.joined,
            capacity,
        };
        let plan = build_plan(&inputs, dead, snaps, ledger);
        for pn in &plan.recompute {
            self.owners[pn.node] = pn.owner;
            self.recovered[pn.node] = true;
        }
        self.recovered_deaths[dead] = true;
        self.log.push(MembershipChange::Recover(plan.clone()));
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_symbolic::{AssemblyTree, FrontNode};

    /// A five-node tree: leaves 0,1 → node 2; leaf 3 and node 2 → root 4.
    fn tiny_tree() -> AssemblyTree {
        let mk = |npiv, nfront, parent, children: Vec<usize>| FrontNode {
            first_col: 0,
            npiv,
            nfront,
            parent,
            children,
            chain_head: None,
        };
        AssemblyTree {
            nodes: vec![
                mk(2, 4, Some(2), vec![]),
                mk(2, 4, Some(2), vec![]),
                mk(2, 5, Some(4), vec![0, 1]),
                mk(2, 4, Some(4), vec![]),
                mk(4, 4, None, vec![2, 3]),
            ],
            sym: mf_sparse::Symmetry::General,
            n: 12,
        }
    }

    fn snaps(n: usize) -> Vec<RecoverySnapshot> {
        (0..n).map(|proc| RecoverySnapshot { proc, ..Default::default() }).collect()
    }

    #[test]
    fn orphans_form_components_and_are_adopted_whole() {
        let tree = tiny_tree();
        let owners = vec![1, 0, 1, 0, 1]; // proc 1 owns 0, 2, 4
        let alive = vec![true, false, true];
        let joined = vec![true, true, true];
        let mut s = snaps(3);
        s[1] = RecoverySnapshot { proc: 1, done: vec![0], ..Default::default() };
        let inputs = PlanInputs {
            tree: &tree,
            owners: &owners,
            alive: &alive,
            joined: &joined,
            capacity: None,
        };
        let mut ledger = ObligationLedger::default();
        let plan = build_plan(&inputs, 1, &s, &mut ledger);
        // 0 (done by dead), 2 and 4 (owned, pending) recompute; 1 and 3
        // (owned by survivors, untouched) do not.
        let nodes: Vec<usize> = plan.recompute.iter().map(|p| p.node).collect();
        assert_eq!(nodes, vec![0, 2, 4]);
        // One connected orphan component rooted at 4, adopted whole.
        assert_eq!(plan.roots.len(), 1);
        assert_eq!(plan.roots[0].0, 4);
        let adopter = plan.roots[0].1;
        assert!(plan.recompute.iter().all(|p| p.owner == adopter));
        // Leaf 0 is ready (no children); 2 waits on 0 and 1; 4 on 2, 3.
        let by_node = |v: usize| plan.recompute.iter().find(|p| p.node == v).unwrap();
        assert!(by_node(0).ready);
        assert!(!by_node(2).ready);
        assert!(!by_node(4).ready);
        // 2's plan covers surviving child 1 only (0 restarts from zero).
        let kids: Vec<usize> = by_node(2).children.iter().map(|c| c.child).collect();
        assert_eq!(kids, vec![1]);
    }

    #[test]
    fn slave_obligations_force_survivor_owned_recompute() {
        let tree = tiny_tree();
        let owners = vec![0, 0, 0, 0, 0];
        let alive = vec![true, false];
        let joined = vec![true, true];
        let mut s = snaps(2);
        // Node 2 is done by its (surviving) owner, but the dead proc held
        // a slave share of it — and an unfinished share of node 4.
        s[0] = RecoverySnapshot {
            proc: 0,
            done: vec![0, 1, 2, 3],
            activated: vec![0, 1, 2, 3, 4],
            ..Default::default()
        };
        s[1] = RecoverySnapshot { proc: 1, factors: vec![(2, 6)], ..Default::default() };
        let mut ledger = ObligationLedger::default();
        ledger.slave(2, 1);
        ledger.slave(4, 1);
        let inputs = PlanInputs {
            tree: &tree,
            owners: &owners,
            alive: &alive,
            joined: &joined,
            capacity: None,
        };
        let plan = build_plan(&inputs, 1, &s, &mut ledger);
        let nodes: Vec<usize> = plan.recompute.iter().map(|p| p.node).collect();
        assert_eq!(nodes, vec![2, 4]);
        // Owner survives: no adoption, owner unchanged, activated nodes
        // re-run standalone and are immediately ready.
        assert!(plan.roots.is_empty());
        for p in &plan.recompute {
            assert_eq!(p.owner, 0);
            assert!(p.was_activated && p.ready && p.children.is_empty());
        }
        // Obligations of recovered nodes are cleared.
        assert!(ledger.slaves.is_empty());
    }

    #[test]
    fn surviving_pieces_are_reinstalled_and_dead_pieces_counted() {
        let tree = tiny_tree();
        let owners = vec![0, 1, 2, 1, 1]; // proc 2 owns only node 2
        let alive = vec![true, true, false];
        let joined = vec![true, true, true];
        let mut s = snaps(3);
        // Children 0 and 1 of node 2 are done; 0's piece survives on
        // proc 0, 1's piece died on proc 2's stack.
        s[0] =
            RecoverySnapshot { proc: 0, done: vec![0], held: vec![(0, 8)], ..Default::default() };
        s[1] = RecoverySnapshot { proc: 1, done: vec![1], ..Default::default() };
        s[2] = RecoverySnapshot { proc: 2, held: vec![(1, 8)], active: 8, ..Default::default() };
        let inputs = PlanInputs {
            tree: &tree,
            owners: &owners,
            alive: &alive,
            joined: &joined,
            capacity: None,
        };
        let mut ledger = ObligationLedger::default();
        let plan = build_plan(&inputs, 2, &s, &mut ledger);
        assert_eq!(plan.recompute.len(), 1);
        let p2 = &plan.recompute[0];
        assert_eq!(p2.node, 2);
        assert!(p2.ready, "both children done, neither recomputed");
        assert_eq!(plan.dead_stack_entries, 8);
        let c0 = p2.children.iter().find(|c| c.child == 0).unwrap();
        assert_eq!((c0.pre_got, c0.installs.as_slice()), (1, &[(0usize, 8u64)][..]));
        let c1 = p2.children.iter().find(|c| c.child == 1).unwrap();
        assert_eq!((c1.pre_got, c1.installs.len()), (1, 0), "dead piece counted, not installed");
    }

    #[test]
    fn adoption_is_memory_aware_under_capacity() {
        let tree = tiny_tree();
        let owners = vec![2, 2, 2, 2, 2];
        let alive = vec![true, true, false];
        let joined = vec![true, true, true];
        let mut s = snaps(3);
        s[0].active = 100; // proc 0 is loaded
        s[1].active = 10; // proc 1 has headroom
        let inputs = PlanInputs {
            tree: &tree,
            owners: &owners,
            alive: &alive,
            joined: &joined,
            capacity: Some(120),
        };
        let mut ledger = ObligationLedger::default();
        let plan = build_plan(&inputs, 2, &s, &mut ledger);
        assert_eq!(plan.roots.len(), 1);
        assert_eq!(plan.roots[0], (4, 1), "the emptier survivor adopts");
    }

    #[test]
    fn digest_is_partition_invariant_and_coverage_sensitive() {
        // 12 = 5 + 7 split across procs vs computed whole: same digest.
        let a = [vec![5u64, 0, 3], vec![7, 0, 0]];
        let b = [vec![12u64, 0, 3]];
        let da = digest_factors(a.iter().map(|v| v.as_slice()), 3);
        let db = digest_factors(b.iter().map(|v| v.as_slice()), 3);
        assert_eq!(da, db);
        // A missing node changes it.
        let c = [vec![12u64, 0, 0]];
        assert_ne!(da, digest_factors(c.iter().map(|v| v.as_slice()), 3));
        // So does the same total on the wrong node.
        let d = [vec![12u64, 3, 0]];
        assert_ne!(da, digest_factors(d.iter().map(|v| v.as_slice()), 3));
    }
}
