//! Solver configuration: machine model, static thresholds, and the
//! dynamic-strategy switches the paper's experiments toggle.
//!
//! The strategy enums are *factory names*: every variant resolves to a
//! static [`SlaveSelector`] / [`TaskSelector`] trait object through
//! [`SlaveSelection::selector`] / [`TaskSelection::selector`], and the
//! `by_name` registries map the stable CLI names back to variants. The
//! scheduler core only ever holds the trait objects, so new strategies
//! plug in without touching the protocol state machine.

use crate::malleable::CoreAlloc;
use crate::pool::{LifoSelector, MemoryAwareGlobalSelector, MemoryAwareSelector, TaskSelector};
use crate::slavesel::{HybridSelector, MemorySelector, SlaveSelector, WorkloadSelector};
use mf_sim::{FaultModel, NetworkModel, Time};

/// Dynamic slave-selection strategy for type-2 fronts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlaveSelection {
    /// MUMPS baseline: choose processors less loaded (flops still to do)
    /// than the master, balance the work given to each slave (Section 3).
    Workload,
    /// The paper's Algorithm 1: sort candidates by memory load and level
    /// memory without raising the current peak (Section 4), optionally
    /// enriched with the Section 5.1 subtree/prediction information.
    Memory,
    /// The hybrid sketched in the paper's conclusion: filter candidates by
    /// workload (like the baseline), waterfill memory within that feasible
    /// set (like Algorithm 1).
    Hybrid,
}

/// Dynamic task-selection strategy for the local pool of ready tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskSelection {
    /// MUMPS baseline: LIFO (depth-first traversal).
    Lifo,
    /// The paper's Algorithm 2: prefer subtree tasks; activate an
    /// upper-tree task only if it does not raise the peak observed so far
    /// (Section 5.2).
    MemoryAware,
    /// Algorithm 2 with the *global* refinement the paper calls for in
    /// Section 6: a task's activation cost is offset by the contribution
    /// blocks (local and remote) its activation releases.
    MemoryAwareGlobal,
}

static WORKLOAD_SELECTOR: WorkloadSelector = WorkloadSelector;
static MEMORY_SELECTOR: MemorySelector = MemorySelector;
static HYBRID_SELECTOR: HybridSelector = HybridSelector;

impl SlaveSelection {
    /// Every registered slave-selection strategy.
    pub const ALL: [SlaveSelection; 3] =
        [SlaveSelection::Workload, SlaveSelection::Memory, SlaveSelection::Hybrid];

    /// Resolves the factory name to its strategy implementation.
    pub fn selector(self) -> &'static dyn SlaveSelector {
        match self {
            SlaveSelection::Workload => &WORKLOAD_SELECTOR,
            SlaveSelection::Memory => &MEMORY_SELECTOR,
            SlaveSelection::Hybrid => &HYBRID_SELECTOR,
        }
    }

    /// Stable CLI/registry name (the implementation's own name).
    pub fn name(self) -> &'static str {
        self.selector().name()
    }

    /// Looks a strategy up by its registry name.
    pub fn by_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }
}

static LIFO_SELECTOR: LifoSelector = LifoSelector;
static MEMORY_AWARE_SELECTOR: MemoryAwareSelector = MemoryAwareSelector;
static MEMORY_AWARE_GLOBAL_SELECTOR: MemoryAwareGlobalSelector = MemoryAwareGlobalSelector;

impl TaskSelection {
    /// Every registered task-selection strategy.
    pub const ALL: [TaskSelection; 3] =
        [TaskSelection::Lifo, TaskSelection::MemoryAware, TaskSelection::MemoryAwareGlobal];

    /// Resolves the factory name to its strategy implementation.
    pub fn selector(self) -> &'static dyn TaskSelector {
        match self {
            TaskSelection::Lifo => &LIFO_SELECTOR,
            TaskSelection::MemoryAware => &MEMORY_AWARE_SELECTOR,
            TaskSelection::MemoryAwareGlobal => &MEMORY_AWARE_GLOBAL_SELECTOR,
        }
    }

    /// Stable CLI/registry name (the implementation's own name).
    pub fn name(self) -> &'static str {
        self.selector().name()
    }

    /// Looks a strategy up by its registry name.
    pub fn by_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// Order in which a processor's subtrees are queued in its initial pool
/// (reference \[11\] of the paper shows the treatment order of subtrees
/// matters for memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubtreeOrder {
    /// The deterministic order the mapping produced (default; matches the
    /// paper's setup).
    AsMapped,
    /// Memory-hungry subtrees first: their peaks happen while the rest of
    /// the stack is still shallow (usually the better choice).
    PeakDescending,
    /// Memory-hungry subtrees last (the adversarial order, useful in the
    /// ablation).
    PeakAscending,
}

/// Lease/heartbeat failure-detection parameters. Present (as
/// `Some(RecoveryConfig)`) when the run should survive processor loss:
/// every processor heartbeats its believed-alive peers every
/// `heartbeat_every` ticks, and a peer unheard-from for `lease_timeout`
/// ticks is declared dead, its unfinished subtree reclaimed and
/// re-executed on the survivors. `None` (the default) disables the
/// protocol entirely — no heartbeat traffic, no timers, runs
/// bit-identical to a build without the recovery layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Heartbeat period in ticks.
    pub heartbeat_every: Time,
    /// A peer silent for this many ticks is declared dead. Must be
    /// comfortably larger than `heartbeat_every` plus the worst-case
    /// message latency, or healthy-but-slow peers get fail-stopped
    /// (the driver turns every declaration into a real kill: fail-stop
    /// semantics, no resurrection).
    pub lease_timeout: Time,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        // Periods sized for the sp_like network model (latencies are tens
        // of ticks) and tick = 1 µs: heartbeat every 5 ms of virtual time,
        // declare dead after 25 ms of silence.
        RecoveryConfig { heartbeat_every: 5_000, lease_timeout: 25_000 }
    }
}

/// Full configuration of a simulated parallel factorization.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Number of processors (the paper uses 32).
    pub nprocs: usize,
    /// Message cost model.
    pub network: NetworkModel,
    /// Compute speed, flops per tick (1 tick = 1 µs; 1000 ≈ 1 Gflop/s).
    pub flops_per_tick: u64,
    /// Fronts at least this large (order) outside leaf subtrees become
    /// type-2 (1-D parallel) nodes.
    pub type2_front_min: usize,
    /// A root front at least this large becomes the type-3 (2-D, all
    /// processors) node.
    pub type3_front_min: usize,
    /// Target number of leaf subtrees per processor for the Geist–Ng
    /// construction.
    pub subtrees_per_proc: usize,
    /// Order in which each processor works through its subtrees.
    pub subtree_order: SubtreeOrder,
    /// Minimum rows per slave task (granularity constraint of Section 3).
    pub min_rows_per_slave: usize,
    /// Slave-selection strategy.
    pub slave_selection: SlaveSelection,
    /// Task-selection strategy.
    pub task_selection: TaskSelection,
    /// Section 5.1: broadcast the peak of a subtree when entering it and
    /// account for it in the memory metric.
    pub use_subtree_info: bool,
    /// Section 5.1: predict imminent activations of large master tasks
    /// and account for them in the memory metric.
    pub use_prediction: bool,
    /// Static splitting threshold on master-part entries (Section 6);
    /// `None` disables splitting.
    pub split_threshold: Option<u64>,
    /// Memory-aware subtree definition (the paper's conclusion: "splitting
    /// subtrees with large memory peaks, especially for symmetric
    /// matrices"): the Geist-Ng construction also splits any candidate
    /// subtree whose sequential stack peak exceeds
    /// `subtree_peak_factor x (sequential peak / nprocs)`.
    /// `None` keeps the purely flops-based definition of Section 3.
    pub subtree_peak_factor: Option<f64>,
    /// Record per-processor active-memory traces (for the figures).
    pub record_traces: bool,
    /// Record the structured flight recording ([`mf_sim::Recording`]):
    /// every scheduling decision, memory movement, and status message,
    /// replayable by the `explain` report and exportable to Perfetto.
    /// Off by default — the disabled path is a single branch per event
    /// and runs are byte-identical to a build without the recorder.
    pub record_events: bool,
    /// Ring-buffer capacity of the flight recording (`None` = unbounded,
    /// which exact peak attribution requires; a bound keeps only the most
    /// recent events and counts evictions).
    pub event_capacity: Option<usize>,
    /// Out-of-core execution (the conclusion's coupling argument +
    /// reference \[6\]): factors are streamed to a per-processor disk at
    /// this bandwidth (bytes per tick) instead of occupying memory.
    /// Writes overlap computation; the disk only extends the makespan
    /// when it becomes the bottleneck. `None` keeps factors in core.
    pub out_of_core: Option<u64>,
    /// Emulated non-determinism: task durations are perturbed by up to
    /// `pct` (multiplicatively), seeded for reproducibility. The paper
    /// attributes small cross-run differences to "the non-deterministic
    /// execution scheme of MUMPS"; this knob lets the `variability`
    /// binary measure how sensitive each strategy is to timing noise.
    /// `None` keeps exact durations.
    pub jitter: Option<(u64, f64)>,
    /// Seeded network/processor perturbations (see [`mf_sim::fault`]):
    /// latency jitter, bounded delay/reordering, status-message loss, and
    /// stragglers. `None` keeps the exact happy-path execution — runs are
    /// bit-identical to a build without the fault layer.
    pub fault: Option<FaultModel>,
    /// Lease/heartbeat failure detection and subtree re-execution (see
    /// [`RecoveryConfig`]). Required for runs whose fault model kills
    /// processors (`FaultModel::kill_at`) to complete; without it a kill
    /// stalls the run and the watchdog names the dead processor. `None`
    /// keeps the protocol off.
    pub recovery: Option<RecoveryConfig>,
    /// Hard per-processor memory capacity (active entries). Masters skip
    /// slave candidates whose projected memory would exceed it (falling
    /// back to fewer/larger shares, last resort serialize-on-master), and
    /// the task pool defers out-of-subtree activations that would breach
    /// it. Degrades time, never correctness. `None` means unbounded.
    pub capacity: Option<u64>,
    /// Watchdog: abort with [`crate::error::SimError::TimeLimit`] when
    /// virtual time passes this many ticks (runaway guard). `None`
    /// disables the check.
    pub time_limit: Option<Time>,
    /// Telemetry sampling interval in virtual ticks: every `sample_every`
    /// ticks each core snapshots its stack/active memory, pool depth and
    /// busy/stalled state read-only into the run's time series (see
    /// `mf_sim::timeseries`). The sampler rides the same typed timer
    /// protocol as the recovery heartbeat (`TIMER_SAMPLE`), so both
    /// backends sample identically and sampling never perturbs the
    /// schedule. `None` keeps the sampler off and the event stream
    /// byte-identical to a build without it.
    pub sample_every: Option<Time>,
    /// How cores are allotted to each front's compute task (the
    /// malleable-tasks axis of Guermouche–Marchal–Simon–Vivien: a front
    /// is a task whose processing time shrinks with allotted cores).
    /// `Static(n)` grants every front `n` cores — `Static(1)`, the
    /// default, reproduces the pre-malleable scheduler byte for byte.
    /// `Malleable{..}` makes the grant a per-front scheduling decision
    /// (see [`CoreAlloc`]); each grant is carried on
    /// `Effect::StartCompute`, shortens the modelled compute duration
    /// through the shared [`crate::malleable::compute_ticks`] formula,
    /// and is narrated to the flight recorder. Factor bytes never
    /// depend on the grant (kernel dispatch keys on the pivot count
    /// only; the parallel trailing sweep is partition-invariant).
    pub core_alloc: CoreAlloc,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            nprocs: 32,
            network: NetworkModel::sp_like(),
            flops_per_tick: 1000,
            type2_front_min: 200,
            type3_front_min: 600,
            subtrees_per_proc: 4,
            subtree_order: SubtreeOrder::AsMapped,
            min_rows_per_slave: 16,
            slave_selection: SlaveSelection::Workload,
            task_selection: TaskSelection::Lifo,
            use_subtree_info: false,
            use_prediction: false,
            split_threshold: None,
            subtree_peak_factor: None,
            record_traces: false,
            record_events: false,
            event_capacity: None,
            out_of_core: None,
            jitter: None,
            fault: None,
            recovery: None,
            capacity: None,
            time_limit: None,
            sample_every: None,
            core_alloc: CoreAlloc::Static(1),
        }
    }
}

impl SolverConfig {
    /// The paper's baseline: original MUMPS dynamic workload strategy.
    pub fn mumps_baseline(nprocs: usize) -> Self {
        SolverConfig { nprocs, ..Default::default() }
    }

    /// The paper's full memory-based configuration: Algorithm 1 with the
    /// Section 5.1 mechanisms, plus Algorithm 2 task selection.
    pub fn memory_based(nprocs: usize) -> Self {
        SolverConfig {
            nprocs,
            slave_selection: SlaveSelection::Memory,
            task_selection: TaskSelection::MemoryAware,
            use_subtree_info: true,
            use_prediction: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_strategies_only_where_expected() {
        let base = SolverConfig::mumps_baseline(32);
        let mem = SolverConfig::memory_based(32);
        assert_eq!(base.slave_selection, SlaveSelection::Workload);
        assert_eq!(mem.slave_selection, SlaveSelection::Memory);
        assert_eq!(base.nprocs, mem.nprocs);
        assert_eq!(base.type2_front_min, mem.type2_front_min);
        assert!(mem.use_subtree_info && mem.use_prediction);
    }

    #[test]
    fn core_alloc_defaults_to_sequential_static() {
        // The malleable-tasks knob must not alter any preset's behavior
        // unless explicitly switched on.
        assert_eq!(SolverConfig::default().core_alloc, CoreAlloc::Static(1));
        assert_eq!(SolverConfig::mumps_baseline(32).core_alloc, CoreAlloc::Static(1));
        assert_eq!(SolverConfig::memory_based(32).core_alloc, CoreAlloc::Static(1));
    }

    #[test]
    fn strategy_registry_round_trips_names() {
        for s in SlaveSelection::ALL {
            assert_eq!(SlaveSelection::by_name(s.name()), Some(s));
            assert_eq!(s.selector().name(), s.name());
        }
        for t in TaskSelection::ALL {
            assert_eq!(TaskSelection::by_name(t.name()), Some(t));
            assert_eq!(t.selector().name(), t.name());
        }
        assert_eq!(SlaveSelection::by_name("no-such-strategy"), None);
        assert_eq!(TaskSelection::by_name("no-such-strategy"), None);
    }
}
