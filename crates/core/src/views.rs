//! Asynchronous views of the other processors (Sections 4 and 5.1).
//!
//! Every processor maintains what it *believes* about the others: their
//! memory occupation (accumulated increments), their workload, the peak
//! of the subtree they are currently processing, and the cost of the
//! largest master task about to activate on them. All of it arrives by
//! message and is therefore stale by at least one network latency — the
//! coherence problem of Figure 5 is real in this simulator, not modeled
//! away.

use mf_sim::{StatusKind, Time};

/// One index-based status update: which belief slot changes and by how
/// much. This is the compact payload every status broadcast carries —
/// applying one touches exactly one processor's entry of one vector (plus
/// its staleness stamp), never a full-vector write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusDelta {
    /// Active-memory increment of the subject (Section 4).
    Mem {
        /// Signed change in active entries.
        delta: i64,
    },
    /// Workload increment of the subject (Section 3).
    Load {
        /// Signed change in flops still to do.
        delta: i64,
    },
    /// The subject entered (peak > 0) or left (0) a subtree (Section 5.1).
    Subtree {
        /// Absolute stack level the subject is heading to.
        peak: u64,
    },
    /// Cost of the largest master task about to activate on the subject
    /// (Section 5.1; absolute value, 0 when none).
    Predicted {
        /// Predicted activation cost in entries.
        cost: u64,
    },
    /// A master announces that it just assigned a slave block of
    /// `entries` to processor `proc` — the mechanism that makes masters'
    /// choices "known as quickly as possible by the others" (Section 4),
    /// without which concurrent masters pile work on the same processor.
    Assigned {
        /// The enrolled slave processor (the subject of this delta).
        proc: usize,
        /// Assigned block size in entries.
        entries: u64,
    },
}

impl StatusDelta {
    /// The processor this delta is *about*: the sender for everything
    /// except [`StatusDelta::Assigned`], which describes a third party.
    pub fn about(&self, sender: usize) -> usize {
        match *self {
            StatusDelta::Assigned { proc, .. } => proc,
            _ => sender,
        }
    }

    /// Recorder classification: the kind tag plus the signed magnitude.
    pub fn kind(&self) -> (StatusKind, i64) {
        match *self {
            StatusDelta::Mem { delta } => (StatusKind::MemDelta, delta),
            StatusDelta::Load { delta } => (StatusKind::LoadDelta, delta),
            StatusDelta::Subtree { peak } => (StatusKind::SubtreePeak, peak as i64),
            StatusDelta::Predicted { cost } => (StatusKind::Predicted, cost as i64),
            StatusDelta::Assigned { entries, .. } => (StatusKind::Assigned, entries as i64),
        }
    }
}

/// One processor's beliefs about the whole machine (its own entries are
/// kept exact by the state machine).
#[derive(Debug, Clone)]
pub struct Views {
    /// Believed active memory (entries) of each processor.
    pub mem: Vec<u64>,
    /// Believed workload (flops still to do) of each processor.
    pub load: Vec<u64>,
    /// Believed memory *projection* of each processor's current subtree:
    /// the absolute level its stack will reach before the subtree ends
    /// (base memory at subtree entry + subtree peak; Section 5.1;
    /// 0 when the processor is not inside a subtree).
    pub subtree: Vec<u64>,
    /// Believed cost of the largest master task about to activate on each
    /// processor (Section 5.1; 0 when none).
    pub predicted: Vec<u64>,
    /// Instant each processor's entry was last refreshed by an applied
    /// status message (0 until the first refresh). The gap between this
    /// and *now* is the view staleness of Figure 5 — the observability
    /// layer records it at every decision.
    pub updated_at: Vec<Time>,
}

impl Views {
    /// Fresh views of `nprocs` processors, with initial workloads.
    pub fn new(nprocs: usize, initial_load: &[u64]) -> Self {
        assert_eq!(initial_load.len(), nprocs);
        Views {
            mem: vec![0; nprocs],
            load: initial_load.to_vec(),
            subtree: vec![0; nprocs],
            predicted: vec![0; nprocs],
            updated_at: vec![0; nprocs],
        }
    }

    /// Marks processor `p`'s entry as refreshed at `now`, returning the
    /// age of the belief it replaced.
    pub fn touch(&mut self, p: usize, now: Time) -> Time {
        let age = now.saturating_sub(self.updated_at[p]);
        self.updated_at[p] = now;
        age
    }

    /// Ticks since processor `p`'s entry was last refreshed.
    pub fn age(&self, p: usize, now: Time) -> Time {
        now.saturating_sub(self.updated_at[p])
    }

    /// Applies a (possibly negative) memory increment for processor `p`.
    pub fn apply_mem_delta(&mut self, p: usize, delta: i64) {
        self.mem[p] = add_signed(self.mem[p], delta);
    }

    /// Applies a workload increment for processor `p`.
    pub fn apply_load_delta(&mut self, p: usize, delta: i64) {
        self.load[p] = add_signed(self.load[p], delta);
    }

    /// Applies one status delta about processor `about`, stamping that
    /// entry's refresh instant and returning the age of the belief it
    /// replaced (the recorder's staleness figure). This is the single
    /// mutation path of the coherence protocol: one slot of one vector
    /// plus `updated_at[about]`, regardless of the machine size.
    pub fn apply(&mut self, about: usize, delta: StatusDelta, now: Time) -> Time {
        let age = self.touch(about, now);
        match delta {
            StatusDelta::Mem { delta } => self.apply_mem_delta(about, delta),
            StatusDelta::Load { delta } => self.apply_load_delta(about, delta),
            StatusDelta::Subtree { peak } => self.subtree[about] = peak,
            StatusDelta::Predicted { cost } => self.predicted[about] = cost,
            StatusDelta::Assigned { entries, .. } => self.apply_mem_delta(about, entries as i64),
        }
        age
    }

    /// The memory metric of Algorithm 1 for processor `p`: instantaneous
    /// memory, raised to the announced subtree projection (the level the
    /// processor is known to be heading to), plus the predicted cost of
    /// its next master task when enabled (Section 5.1).
    pub fn memory_metric(&self, p: usize, use_subtree: bool, use_prediction: bool) -> u64 {
        let mut m = self.mem[p];
        if use_subtree {
            m = m.max(self.subtree[p]);
        }
        if use_prediction {
            m += self.predicted[p];
        }
        m
    }
}

fn add_signed(value: u64, delta: i64) -> u64 {
    if delta >= 0 {
        value + delta as u64
    } else {
        value.saturating_sub(delta.unsigned_abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_accumulate() {
        let mut v = Views::new(3, &[0, 0, 0]);
        v.apply_mem_delta(1, 100);
        v.apply_mem_delta(1, -30);
        assert_eq!(v.mem[1], 70);
    }

    #[test]
    fn negative_overshoot_saturates() {
        // Out-of-order arrival can momentarily drive a believed value
        // negative; the view clamps instead of panicking.
        let mut v = Views::new(1, &[0]);
        v.apply_mem_delta(0, -5);
        assert_eq!(v.mem[0], 0);
    }

    #[test]
    fn metric_composition() {
        let mut v = Views::new(2, &[0, 0]);
        v.mem[1] = 10;
        v.subtree[1] = 100;
        v.predicted[1] = 1000;
        assert_eq!(v.memory_metric(1, false, false), 10);
        assert_eq!(v.memory_metric(1, true, false), 100);
        assert_eq!(v.memory_metric(1, false, true), 1010);
        assert_eq!(v.memory_metric(1, true, true), 1100);
    }

    #[test]
    fn initial_load_is_respected() {
        let v = Views::new(2, &[5, 7]);
        assert_eq!(v.load, vec![5, 7]);
    }

    #[test]
    fn apply_touches_exactly_one_slot() {
        let mut v = Views::new(3, &[0, 0, 0]);
        let age = v.apply(1, StatusDelta::Mem { delta: 40 }, 25);
        assert_eq!(age, 25, "replaced the initial (t=0) belief");
        assert_eq!(v.mem, vec![0, 40, 0]);
        assert_eq!(v.updated_at, vec![0, 25, 0]);
        v.apply(1, StatusDelta::Subtree { peak: 99 }, 30);
        assert_eq!(v.subtree, vec![0, 99, 0]);
        v.apply(1, StatusDelta::Predicted { cost: 7 }, 31);
        assert_eq!(v.predicted, vec![0, 7, 0]);
        v.apply(1, StatusDelta::Load { delta: -3 }, 32);
        assert_eq!(v.load[1], 0, "negative overshoot saturates through apply too");
        // Assigned credits the enrolled slave's memory belief.
        let age = v.apply(2, StatusDelta::Assigned { proc: 2, entries: 11 }, 40);
        assert_eq!(age, 40);
        assert_eq!(v.mem, vec![0, 40, 11]);
    }

    #[test]
    fn delta_subject_is_sender_except_assigned() {
        assert_eq!(StatusDelta::Mem { delta: 1 }.about(4), 4);
        assert_eq!(StatusDelta::Load { delta: 1 }.about(4), 4);
        assert_eq!(StatusDelta::Assigned { proc: 2, entries: 1 }.about(4), 2);
    }

    #[test]
    fn touch_tracks_staleness() {
        let mut v = Views::new(2, &[0, 0]);
        assert_eq!(v.age(1, 50), 50, "never refreshed: age since t=0");
        assert_eq!(v.touch(1, 50), 50);
        assert_eq!(v.age(1, 80), 30);
        assert_eq!(v.age(0, 80), 80, "other entries untouched");
    }
}
