//! The discrete-event backend: [`crate::proto::SchedulerCore`]s driven by
//! the virtual-time simulator.
//!
//! Every processor runs the MUMPS-style loop inside its sans-io core;
//! this module is only the *runtime*: it owns the event queue, the
//! network model, the duration model (flop rate, seeded jitter,
//! stragglers), the fault injector, the flight recorder, and the
//! traffic-side metrics. [`run`] feeds simulator events into the cores
//! and performs the effects they emit — in emission order, which is what
//! keeps this refactored backend bit-identical to the historical
//! monolithic scheduler. The `mf-exec` crate drives the *same* cores on
//! real OS threads.

use crate::config::SolverConfig;
use crate::error::{RunDiagnostics, SimError};
use crate::malleable::{compute_ticks, SpeedupCurve};
use crate::proto::{
    initial_loads, Effect, Input, Migration, Msg, SchedulerCore, Violation, TIMER_SAMPLE,
};
use crate::recovery::{digest_factors, Membership, MembershipChange, RecoverySnapshot};
use mf_sim::recorder::TaskRole;
use mf_sim::{
    CompactEvent, Event, EventPayload, EventQueue, FaultInjector, MsgClass, NetworkModel,
    ProcMemory, Recording, RunMetrics, RunTimeseries, SampleRow, Sim, SingleHeapSim, Time, Trace,
    DEFAULT_SERIES_CAPACITY,
};
use mf_symbolic::AssemblyTree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Outcome of a simulated parallel factorization.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-processor peak of the active memory (stack + fronts), the
    /// quantity behind every table of the paper.
    pub peaks: Vec<u64>,
    /// `max(peaks)` — the "maximum stack memory peak" of Tables 2-5.
    pub max_peak: u64,
    /// Mean of the per-processor peaks (memory balance indicator).
    pub avg_peak: f64,
    /// Virtual completion time (Table 6's factorization time).
    pub makespan: Time,
    /// Messages exchanged.
    pub messages: u64,
    /// Events the engine delivered (messages + timers): the denominator
    /// of the scale bench's ns/event figure. Backend-specific — the
    /// threaded backend's timer usage differs from the simulator's.
    pub events_delivered: u64,
    /// Per-processor active-memory traces when
    /// [`SolverConfig::record_traces`] was set.
    pub traces: Option<Vec<Trace>>,
    /// Per-processor peak of active memory *plus factors* — what an
    /// in-core execution must provision; the gap to `peaks` is exactly
    /// the out-of-core argument of the paper's conclusion (factors can be
    /// streamed to disk, the stack cannot).
    pub total_peaks: Vec<u64>,
    /// Per-processor factor entries stored at the end.
    pub factor_entries: Vec<u64>,
    /// Fronts fully processed (must equal `total_nodes`).
    pub nodes_done: usize,
    /// Fronts in the tree.
    pub total_nodes: usize,
    /// Messages the fault injector dropped (0 without a fault model).
    pub dropped_messages: u64,
    /// Degradation events under a hard capacity: serialize-on-master
    /// fallbacks plus force-activated deferred tasks (0 without a cap).
    pub forced_activations: u64,
    /// Per-processor active memory at the end: all zeros in a correct
    /// run (every CB pushed was popped, every front freed — the entry
    /// conservation invariant the robustness proptests assert).
    pub final_active: Vec<u64>,
    /// Per-processor saturating-accounting underflow counts (0 in a
    /// correct run; nonzero only on runs that also returned an error).
    pub underflows: Vec<u64>,
    /// Always-on run metrics: traffic by message class, staleness and
    /// pool-depth histograms, per-processor busy/stalled/decision
    /// counters.
    pub metrics: RunMetrics,
    /// The flight recording when [`SolverConfig::record_events`] was set.
    pub recording: Option<Recording>,
    /// The sampled telemetry trajectory when
    /// [`SolverConfig::sample_every`] was set (see `mf_sim::timeseries`).
    pub timeseries: Option<RunTimeseries>,
    /// Partition-invariant digest of the per-node factor totals over the
    /// surviving processors ([`digest_factors`]): a recovered run must
    /// reproduce the fault-free run's digest exactly.
    pub factor_digest: u64,
    /// Processors dead at the end (empty without membership faults).
    pub dead: Vec<usize>,
}

impl RunResult {
    /// One-line human summary of the run's headline numbers, shared by
    /// every report binary (with [`RunMetrics::traffic_line`] and
    /// [`RunMetrics::decisions_line`] for the per-registry detail).
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "peak {} entries, makespan {} ticks, {} messages, {}/{} fronts, \
             {} dropped, {} forced, {} underflows",
            self.max_peak,
            self.makespan,
            self.messages,
            self.nodes_done,
            self.total_nodes,
            self.dropped_messages,
            self.forced_activations,
            self.underflows.iter().sum::<u64>()
        );
        if !self.metrics.recovery.is_zero() {
            line.push_str("; ");
            line.push_str(&self.metrics.recovery.summary());
        }
        line
    }
}

/// The simulator-side runtime: transport, time, noise, and observability.
/// Everything *between* the cores lives here; everything *inside* a
/// processor lives in its [`SchedulerCore`].
struct SimDriver<'a, Q> {
    cfg: &'a SolverConfig,
    sim: Q,
    net: NetworkModel,
    messages: u64,
    jitter: Option<(SmallRng, f64)>,
    /// The speedup curve behind multi-core compute durations (shared
    /// with mf-exec through [`compute_ticks`]).
    curve: SpeedupCurve,
    fault: Option<FaultInjector>,
    /// Traffic-side metrics (message counts/bytes, drops, busy time);
    /// merged with each core's decision-side registry at the end.
    metrics: RunMetrics,
    /// Flight recorder; `None` = disabled (the zero-cost path: cores emit
    /// no `Record` effects and every driver-side site is one branch).
    rec: Option<Recording>,
    /// Per-processor `(node, role)` by compute key, maintained only while
    /// recording: the driver synthesizes `ComputeStart` from the
    /// `StartCompute` effect and `ComputeEnd` from its timer, so the
    /// core's compute path needs no recording branch.
    work_info: Vec<Vec<(usize, TaskRole)>>,
    /// Death declarations emitted by the cores' lease checks this event,
    /// arbitrated after the event unwinds (one recovery per actual loss).
    pending_dead: Vec<usize>,
    /// Scheduled-but-unprocessed events that are *not* failure-detector
    /// chatter (heartbeat messages, heartbeat/lease timers). Zero means
    /// the run is quiescent apart from the detector — which is how a
    /// recovery-enabled run (whose timer chain never lets the queue
    /// drain) detects the capacity-deferral deadlock and genuine stalls.
    live_events: i64,
    /// Messages addressed to dormant (not yet joined) processors, parked
    /// until the join and delivered then.
    buffered: Vec<Vec<(usize, Msg)>>,
    /// Processors fail-stopped so far (fault schedule or made-real
    /// spurious declarations), in kill order.
    dead: Vec<usize>,
    /// Factor-share obligation record (which processors were routed a
    /// slave task or type-3 share of which node), maintained only on
    /// membership runs — a dead share holder forces its nodes into the
    /// recompute set even when the node's owner survived.
    ledger: crate::recovery::ObligationLedger,
    /// Whether to maintain `ledger` (membership orchestration active).
    track_obligations: bool,
    /// All fronts are done; the run only keeps going to drain in-flight
    /// live traffic (so the makespan matches the recovery-off run), and
    /// the failure detector stops re-arming so its chain dies out.
    finishing: bool,
    /// Sampled telemetry series; `None` = sampling disabled (the
    /// zero-cost path: cores never arm the sampling timer).
    ts: Option<RunTimeseries>,
}

impl<'a, Q: EventQueue<Msg>> SimDriver<'a, Q> {
    fn new(cfg: &'a SolverConfig, sim: Q) -> Self {
        SimDriver {
            cfg,
            sim,
            net: cfg.network,
            messages: 0,
            jitter: cfg.jitter.map(|(seed, pct)| (SmallRng::seed_from_u64(seed), pct)),
            curve: cfg.core_alloc.curve(),
            // A quiet model cannot perturb anything: keep the exact fast
            // paths (broadcast blocks) so such runs stay bit-identical.
            fault: cfg.fault.clone().filter(|m| !m.is_quiet()).map(FaultInjector::new),
            metrics: RunMetrics::new(cfg.nprocs),
            rec: cfg.record_events.then(|| Recording::new(cfg.event_capacity)),
            work_info: if cfg.record_events { vec![Vec::new(); cfg.nprocs] } else { Vec::new() },
            pending_dead: Vec::new(),
            live_events: 0,
            buffered: vec![Vec::new(); cfg.nprocs],
            dead: Vec::new(),
            ledger: Default::default(),
            track_obligations: false,
            finishing: false,
            ts: cfg
                .sample_every
                .map(|every| RunTimeseries::new(cfg.nprocs, every, DEFAULT_SERIES_CAPACITY)),
        }
    }

    /// True once the fault model's network kill threshold was crossed.
    fn partitioned(&self) -> bool {
        self.fault.as_ref().is_some_and(|f| f.partitioned())
    }

    /// Records an event when the recorder is enabled.
    #[inline]
    fn record(&mut self, build: impl FnOnce() -> CompactEvent) {
        let now = self.sim.now();
        if let Some(rec) = self.rec.as_mut() {
            rec.record(now, build());
        }
    }

    fn send(&mut self, from: usize, to: usize, msg: Msg, bytes: u64) {
        debug_assert_ne!(from, to, "self-sends are handled inside the core");
        if self.track_obligations {
            // Recorded at send time: a share routed toward a processor
            // that dies in flight is as lost as one that arrived.
            match msg {
                Msg::SlaveTask { node, .. } => self.ledger.slave(node, to),
                Msg::Type3Share { node, .. } => self.ledger.share(node, to),
                _ => {}
            }
        }
        self.messages += 1;
        match msg.class() {
            MsgClass::Control => {
                self.metrics.control_msgs += 1;
                self.metrics.control_bytes += bytes;
            }
            MsgClass::Status => {
                self.metrics.status_msgs += 1;
                self.metrics.status_bytes += bytes;
            }
        }
        let live = !matches!(msg, Msg::Heartbeat);
        match &mut self.fault {
            None => {
                self.net.send(&mut self.sim, from, to, msg, bytes);
                self.live_events += live as i64;
            }
            Some(inj) => {
                let base = self.net.transfer_time(bytes);
                match inj.route(base, msg.class()) {
                    Some(t) => {
                        self.sim.schedule(t, EventPayload::Message { from, to, msg });
                        self.live_events += live as i64;
                    }
                    None => {
                        self.metrics.dropped_status += 1;
                        self.record(|| CompactEvent::fault_drop(from, to));
                    }
                }
            }
        }
    }

    fn broadcast(&mut self, from: usize, msg: Msg, bytes: u64) {
        // Every broadcast is a status refresh: record the send once (not
        // per receiver) with its payload value.
        if self.rec.is_some() {
            if let Some((kind, value)) = msg.status_kind() {
                self.record(|| CompactEvent::status_send(from, kind, value));
            }
        }
        debug_assert!(matches!(msg.class(), MsgClass::Status), "broadcast is status-only");
        if self.fault.is_none() {
            let n = self.cfg.nprocs.saturating_sub(1) as u64;
            self.messages += n;
            self.metrics.status_msgs += n;
            self.metrics.status_bytes += n * bytes;
            self.live_events += n as i64;
            self.net.broadcast(&mut self.sim, from, self.cfg.nprocs, msg, bytes);
            return;
        }
        // Under fault every target is routed independently (jitter, delay
        // and drops are per-message), so the single-entry broadcast fast
        // path cannot apply.
        for to in 0..self.cfg.nprocs {
            if to != from {
                self.send(from, to, msg.clone(), bytes);
            }
        }
    }

    /// Duration of a `flops`-sized work unit on processor `p` granted
    /// `cores` cores: the shared [`compute_ticks`] model (exact integer
    /// flop-rate time at one core, shrunk by the speedup curve above),
    /// perturbed by seeded multiplicative jitter and the fault model's
    /// straggler factor.
    fn duration_of(&mut self, p: usize, flops: u64, cores: u32) -> Time {
        let exact = compute_ticks(flops, self.cfg.flops_per_tick, cores, &self.curve);
        let base = match &mut self.jitter {
            None => exact,
            Some((rng, pct)) => {
                // Multiplicative noise in [1-pct, 1+pct].
                let factor = 1.0 + *pct * (rng.gen::<f64>() * 2.0 - 1.0);
                ((exact as f64 * factor).round() as Time).max(1)
            }
        };
        // Straggler processors compute slower by their speed factor.
        match &self.fault {
            None => base,
            Some(f) => {
                let factor = f.speed_factor(p);
                if factor > 1.0 {
                    ((base as f64 * factor).round() as Time).max(1)
                } else {
                    base
                }
            }
        }
    }

    /// Feeds one input into a core and performs the effects it drains, in
    /// emission order — the contract that keeps the refactored backend
    /// bit-identical to the historical monolithic scheduler.
    fn step(&mut self, core: &mut SchedulerCore<'_>, now: Time, input: Input) {
        let p = core.id();
        if self.rec.is_some() {
            // A fired timer is a compute completion: record ComputeEnd
            // before the core's effects (exactly where the completion
            // handler sits in the event order).
            if let Input::TimerFired { key } = &input {
                if let Some(&(node, role)) = self.work_info[p].get(*key as usize) {
                    self.record(|| CompactEvent::compute_end(p, node, role));
                }
            }
        }
        for e in core.handle(now, input) {
            match e {
                Effect::Send { to, msg, bytes } => self.send(p, to, msg, bytes),
                Effect::Broadcast { msg, bytes } => self.broadcast(p, msg, bytes),
                Effect::StartCompute { key, node, role, flops, cores } => {
                    if self.rec.is_some() {
                        self.record(|| CompactEvent::compute_start(p, node, role));
                        let info = &mut self.work_info[p];
                        let k = key as usize;
                        if info.len() <= k {
                            info.resize(k + 1, (0, TaskRole::Elim));
                        }
                        info[k] = (node, role);
                    }
                    let duration = self.duration_of(p, flops, cores);
                    self.metrics.procs[p].busy_ticks += duration;
                    self.live_events += 1;
                    self.sim.schedule_timer(p, duration, key);
                }
                Effect::Arm { key, after } => {
                    // A partitioned network starves the detector too:
                    // refusing to re-arm lets the run drain and fail with
                    // a typed `Partitioned` instead of spinning forever.
                    // Same once all fronts are done: the detector chain
                    // dies out and the queue drains.
                    if !self.partitioned() && !self.finishing {
                        self.sim.schedule_timer(p, after, key);
                    }
                }
                Effect::DeclareDead { proc } => self.pending_dead.push(proc),
                Effect::Alloc { node, area, entries } => {
                    self.record(|| CompactEvent::mem_alloc(p, node, area, entries));
                }
                Effect::Free { node, area, entries } => {
                    self.record(|| CompactEvent::mem_free(p, node, area, entries));
                }
                Effect::Record(ev) => {
                    let now = self.sim.now();
                    if let Some(rec) = self.rec.as_mut() {
                        rec.record(now, ev);
                    }
                }
                Effect::Sample { active, stack, pool_depth, queued, busy, stalled } => {
                    // The driver stamps the snapshot with the virtual time
                    // and its cumulative traffic counters — accounted
                    // identically by both backends, so the series are
                    // bit-identical across them.
                    let at = self.sim.now();
                    let (control_msgs, status_msgs) =
                        (self.metrics.control_msgs, self.metrics.status_msgs);
                    if let Some(ts) = self.ts.as_mut() {
                        ts.push(
                            p,
                            SampleRow {
                                at,
                                active,
                                stack,
                                pool_depth,
                                queued,
                                busy,
                                stalled,
                                control_msgs,
                                status_msgs,
                            },
                        );
                    }
                }
            }
        }
    }
}

/// Last-resort degradation step under a hard capacity: when the event
/// queue drains with unfinished fronts because every idle processor is
/// deferring every ready task, force the globally cheapest deferred
/// activation so the factorization completes (degrading memory, never
/// correctness). Returns the forced processor, or `None` when there is
/// nothing to force (a genuine stall).
fn force_one_deferred<Q: EventQueue<Msg>>(
    drv: &mut SimDriver<'_, Q>,
    cores: &mut [SchedulerCore<'_>],
    ms: Option<&Membership>,
) -> Option<usize> {
    drv.cfg.capacity?;
    let mut best: Option<(u64, usize, usize)> = None; // (cost, proc, node)
    for core in cores.iter() {
        if ms.is_some_and(|m| !m.alive[core.id()] || !m.joined[core.id()]) {
            continue; // forcing work onto a dead processor helps nobody
        }
        if let Some((cost, v)) = core.cheapest_deferred() {
            let cand = (cost, core.id(), v);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
    }
    let (_, p, v) = best?;
    let now = drv.sim.now();
    drv.step(&mut cores[p], now, Input::Force { node: v });
    Some(p)
}

/// No-progress error for the current state: a crossed network-kill
/// threshold is a `Partitioned`, anything else a generic `Stalled`.
fn stall_error<Q: EventQueue<Msg>>(drv: &SimDriver<'_, Q>, diag: RunDiagnostics) -> SimError {
    let diag = Box::new(diag);
    if drv.partitioned() {
        let after = drv.cfg.fault.as_ref().and_then(|f| f.kill_network_after).unwrap_or(0);
        SimError::Partitioned { after, diag }
    } else {
        SimError::Stalled { diag }
    }
}

/// Fail-stops processor `d`: snapshots the dying core (the last coherent
/// view of what dies with it) and marks it dead. Detection and recovery
/// happen later, through the lease protocol.
fn kill_proc<Q: EventQueue<Msg>>(
    drv: &mut SimDriver<'_, Q>,
    cores: &[SchedulerCore<'_>],
    ms: &mut Membership,
    d: usize,
) {
    if !ms.alive[d] {
        return;
    }
    let snap = if ms.joined[d] {
        cores[d].snapshot()
    } else {
        RecoverySnapshot { proc: d, ..Default::default() }
    };
    ms.note_kill(d, snap);
    drv.dead.push(d);
    drv.metrics.recovery.kills_observed += 1;
}

/// Arbitrates the death declarations the cores' lease checks emitted:
/// deduplicates (every survivor typically declares the same loss), makes
/// a spurious declaration real (fail-stop semantics — a processor the
/// machine gave up on cannot be half-alive), builds one recovery plan
/// per actual loss, and feeds it to every reachable core in processor
/// order.
fn process_deaths<Q: EventQueue<Msg>>(
    drv: &mut SimDriver<'_, Q>,
    cores: &mut [SchedulerCore<'_>],
    ms: &mut Membership,
    tree: &AssemblyTree,
    n: usize,
) -> Result<(), SimError> {
    while !drv.pending_dead.is_empty() {
        let pend = std::mem::take(&mut drv.pending_dead);
        for d in pend {
            if ms.recovered_deaths[d] {
                continue;
            }
            kill_proc(drv, cores, ms, d);
            if !ms.adopters_exist(d) {
                let diag = diagnostics(drv, cores, n);
                return Err(stall_error(drv, diag));
            }
            let snaps: Vec<RecoverySnapshot> = (0..drv.cfg.nprocs)
                .map(|p| {
                    if ms.alive[p] {
                        cores[p].snapshot()
                    } else {
                        ms.dead_snaps[p]
                            .clone()
                            .unwrap_or(RecoverySnapshot { proc: p, ..Default::default() })
                    }
                })
                .collect();
            let plan = ms.plan_loss(tree, drv.cfg.capacity, d, &snaps, &mut drv.ledger);
            drv.metrics.recovery.subtrees_reassigned += plan.roots.len() as u64;
            drv.metrics.recovery.nodes_recomputed += plan.recompute.len() as u64;
            drv.metrics.recovery.orphaned_cb_entries += plan.dead_stack_entries;
            drv.record(|| CompactEvent::proc_lost(d, plan.recompute.len()));
            for &(root, adopter) in &plan.roots {
                drv.record(|| CompactEvent::subtree_reassigned(root, d, adopter));
            }
            let now = drv.sim.now();
            for p in 0..drv.cfg.nprocs {
                if ms.alive[p] && ms.joined[p] {
                    drv.step(&mut cores[p], now, Input::Recover { plan: Box::new(plan.clone()) });
                    if let Some(v) = cores[p].take_violation() {
                        return Err(error_of(drv, cores, n, v));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Brings processor `q` into the machine: announces the join to every
/// reachable core, replays the membership log so the joiner's overlays
/// match the survivors', delivers the traffic parked while it was
/// dormant, and rebalances by migrating up to two ready upper tasks
/// from the fullest surviving pool.
#[allow(clippy::too_many_arguments)]
fn join_proc<Q: EventQueue<Msg>>(
    drv: &mut SimDriver<'_, Q>,
    cores: &mut [SchedulerCore<'_>],
    ms: &mut Membership,
    tree: &AssemblyTree,
    map: &crate::mapping::StaticMapping,
    n: usize,
    q: usize,
) -> Result<(), SimError> {
    if !ms.alive[q] || ms.joined[q] {
        return Ok(());
    }
    ms.note_join(q);
    drv.metrics.recovery.joins_observed += 1;
    let now = drv.sim.now();
    for p in 0..drv.cfg.nprocs {
        if ms.alive[p] && ms.joined[p] {
            drv.step(&mut cores[p], now, Input::Join { proc: q });
            if let Some(v) = cores[p].take_violation() {
                return Err(error_of(drv, cores, n, v));
            }
        }
    }
    for ch in ms.log.clone() {
        let input = match ch {
            MembershipChange::Recover(plan) => Input::Recover { plan: Box::new(plan) },
            MembershipChange::Migrate(m) => Input::Migrate { m: Box::new(m) },
        };
        drv.step(&mut cores[q], now, input);
        if let Some(v) = cores[q].take_violation() {
            return Err(error_of(drv, cores, n, v));
        }
    }
    drv.step(&mut cores[q], now, Input::Tick);
    if let Some(v) = cores[q].take_violation() {
        return Err(error_of(drv, cores, n, v));
    }
    for (from, msg) in std::mem::take(&mut drv.buffered[q]) {
        if ms.alive[from] {
            drv.step(&mut cores[q], now, Input::Deliver { from, msg });
            if let Some(v) = cores[q].take_violation() {
                return Err(error_of(drv, cores, n, v));
            }
        }
    }
    // Memory-aware rebalancing: the fullest surviving pool donates up to
    // two of its largest ready upper tasks to the idle joiner. Pool
    // tasks are safe to move: readiness means every child completion and
    // piece notification already arrived at the donor.
    let donor = (0..drv.cfg.nprocs)
        .filter(|&p| p != q && ms.alive[p] && ms.joined[p])
        .map(|p| (cores[p].proc_diag().pool.len(), p))
        .filter(|&(len, _)| len > 0)
        .min_by_key(|&(len, p)| (std::cmp::Reverse(len), p))
        .map(|(_, p)| p);
    let mut migrated = 0usize;
    if let Some(d) = donor {
        let snap = cores[d].snapshot();
        let mut cands: Vec<usize> = snap
            .pool
            .iter()
            .copied()
            .filter(|&v| map.subtree_of[v].is_none() || ms.recovered[v])
            .collect();
        cands.sort_by_key(|&v| (std::cmp::Reverse(tree.flops(v)), v));
        for node in cands.into_iter().take(2) {
            let pieces: Vec<(usize, u64, usize)> = snap
                .registered
                .iter()
                .filter(|&&(parent, ..)| parent == node)
                .map(|&(_, h, e, c)| (h, e, c))
                .collect();
            let mg = Migration { node, from: d, to: q, flops: tree.flops(node), pieces };
            ms.note_migration(&mg);
            drv.metrics.recovery.rebalance_migrations += 1;
            for p in 0..drv.cfg.nprocs {
                if ms.alive[p] && ms.joined[p] {
                    drv.step(&mut cores[p], now, Input::Migrate { m: Box::new(mg.clone()) });
                    if let Some(v) = cores[p].take_violation() {
                        return Err(error_of(drv, cores, n, v));
                    }
                }
            }
            migrated += 1;
        }
    }
    drv.record(|| CompactEvent::proc_joined(q, migrated));
    Ok(())
}

fn diagnostics<Q: EventQueue<Msg>>(
    drv: &SimDriver<'_, Q>,
    cores: &[SchedulerCore<'_>],
    total_nodes: usize,
) -> RunDiagnostics {
    let mut metrics = drv.metrics.clone();
    for core in cores {
        metrics.merge_core(core.id(), core.metrics());
    }
    RunDiagnostics {
        now: drv.sim.now(),
        delivered_events: drv.sim.delivered(),
        in_flight: drv.sim.pending(),
        nodes_done: cores.iter().map(|c| c.nodes_done()).sum(),
        total_nodes,
        dropped_messages: drv.fault.as_ref().map_or(0, |f| f.dropped()),
        dead: drv.dead.clone(),
        metrics: Box::new(metrics),
        procs: cores.iter().map(|c| c.proc_diag()).collect(),
    }
}

fn error_of<Q: EventQueue<Msg>>(
    drv: &SimDriver<'_, Q>,
    cores: &[SchedulerCore<'_>],
    total_nodes: usize,
    v: Violation,
) -> SimError {
    let diag = Box::new(diagnostics(drv, cores, total_nodes));
    match v {
        Violation::Accounting { proc, area } => SimError::Accounting { proc, area, diag },
        Violation::Protocol { detail } => SimError::Protocol { detail, diag },
    }
}

/// Runs the simulated parallel factorization.
///
/// Never panics and never hangs: a no-progress state, a virtual-time
/// runaway past [`SolverConfig::time_limit`], an accounting underflow, or
/// a protocol violation returns a typed [`SimError`] carrying a full
/// per-processor diagnostic snapshot.
pub fn run(
    tree: &AssemblyTree,
    map: &crate::mapping::StaticMapping,
    cfg: &SolverConfig,
) -> Result<RunResult, SimError> {
    run_on(tree, map, cfg, Sim::with_procs(cfg.nprocs))
}

/// [`run`] on the historical single-global-heap engine
/// ([`SingleHeapSim`]). Same contract, same results, bit for bit — the
/// engine-equivalence tests and the `engine` criterion bench compare the
/// two; everything else should use [`run`].
pub fn run_reference(
    tree: &AssemblyTree,
    map: &crate::mapping::StaticMapping,
    cfg: &SolverConfig,
) -> Result<RunResult, SimError> {
    run_on(tree, map, cfg, SingleHeapSim::new())
}

fn run_on<Q: EventQueue<Msg>>(
    tree: &AssemblyTree,
    map: &crate::mapping::StaticMapping,
    cfg: &SolverConfig,
    sim: Q,
) -> Result<RunResult, SimError> {
    let n = tree.len();
    let load0 = initial_loads(tree, map, cfg.nprocs);
    let mut cores: Vec<SchedulerCore<'_>> =
        (0..cfg.nprocs).map(|p| SchedulerCore::new(p, tree, map, cfg, &load0)).collect();
    let mut drv = SimDriver::new(cfg, sim);
    // Membership orchestration only on runs that need it — the quiet
    // path takes none of the branches below.
    let mut membership = Membership::needed(cfg.recovery.is_some(), cfg.fault.as_ref())
        .then(|| Membership::new(cfg.nprocs, map.owner.clone(), cfg.fault.as_ref()));
    drv.track_obligations = membership.is_some();

    for p in 0..cfg.nprocs {
        if membership.as_ref().is_some_and(|m| !m.joined[p]) {
            continue; // dormant until its scheduled join
        }
        drv.step(&mut cores[p], 0, Input::Tick);
        if let Some(v) = cores[p].take_violation() {
            return Err(error_of(&drv, &cores, n, v));
        }
    }
    'run: loop {
        while let Some(Event { at, payload }) = drv.sim.pop() {
            if let Some(ms) = membership.as_mut() {
                // The fault schedule is keyed on delivered-event indices:
                // scheduled kills and joins fire before the event they
                // precede is processed.
                ms.delivered += 1;
                let idx = ms.delivered;
                while let Some(d) = ms.take_due_kill(idx) {
                    kill_proc(&mut drv, &cores, ms, d);
                }
                while let Some(q) = ms.take_due_join(idx) {
                    join_proc(&mut drv, &mut cores, ms, tree, map, n, q)?;
                }
            }
            // Quiescence accounting: everything except failure-detector
            // chatter counts as a live event.
            match &payload {
                EventPayload::Message { msg, .. } if !matches!(msg, Msg::Heartbeat) => {
                    drv.live_events -= 1;
                }
                EventPayload::Timer { key, .. } if *key < TIMER_SAMPLE => drv.live_events -= 1,
                _ => {}
            }
            let (p, input) = match payload {
                EventPayload::Message { from, to, msg } => {
                    if let Some(ms) = membership.as_ref() {
                        if !ms.alive[from] || !ms.alive[to] {
                            continue; // a dead endpoint: the message is lost
                        }
                        if !ms.joined[to] {
                            drv.buffered[to].push((from, msg));
                            continue; // parked until the join
                        }
                    }
                    (to, Input::Deliver { from, msg })
                }
                EventPayload::Timer { proc, key } => {
                    if let Some(ms) = membership.as_ref() {
                        if !ms.alive[proc] || !ms.joined[proc] {
                            continue; // a dead processor's timers are void
                        }
                    }
                    (proc, Input::TimerFired { key })
                }
            };
            drv.step(&mut cores[p], at, input);
            if let Some(v) = cores[p].take_violation() {
                return Err(error_of(&drv, &cores, n, v));
            }
            if let Some(ms) = membership.as_mut() {
                if !drv.pending_dead.is_empty() {
                    process_deaths(&mut drv, &mut cores, ms, tree, n)?;
                }
            } else {
                debug_assert!(drv.pending_dead.is_empty(), "DeclareDead without recovery");
            }
            if let Some(limit) = cfg.time_limit {
                if drv.sim.now() > limit {
                    let diag = Box::new(diagnostics(&drv, &cores, n));
                    return Err(SimError::TimeLimit { limit, diag });
                }
            }
            if let Some(ms) = membership.as_mut() {
                // Membership-aware termination: with recovery configured
                // the detector's timer chain never lets the queue drain,
                // so completion is checked per event — over the survivors
                // only (a dead processor's completions were recomputed
                // elsewhere and must not double-count).
                let done: usize =
                    (0..cfg.nprocs).filter(|&p| ms.alive[p]).map(|p| cores[p].nodes_done()).sum();
                if done >= n {
                    // Keep draining in-flight live traffic so the final
                    // time matches the recovery-off run exactly; the
                    // detector stops re-arming and its chain dies out.
                    drv.finishing = true;
                    if drv.live_events == 0 {
                        break 'run;
                    }
                    continue;
                }
                if drv.live_events == 0 && cfg.recovery.is_some() {
                    // Quiescent apart from detector chatter. Progress can
                    // still arrive from the fault schedule (indices keep
                    // advancing on detector events) or from a lease about
                    // to expire; otherwise this is the same situation as
                    // a drained queue — run the degradation ladder.
                    if ms.schedule_pending() || ms.undeclared_dead() || !drv.pending_dead.is_empty()
                    {
                        continue;
                    }
                    match force_one_deferred(&mut drv, &mut cores, Some(&*ms)) {
                        Some(p) => {
                            if let Some(v) = cores[p].take_violation() {
                                return Err(error_of(&drv, &cores, n, v));
                            }
                        }
                        None => {
                            let diag = diagnostics(&drv, &cores, n);
                            return Err(stall_error(&drv, diag));
                        }
                    }
                }
            } else if cfg.sample_every.is_some() {
                // Sampler-aware termination: without membership the
                // sampler's self-re-arming timer chain never lets the
                // queue drain, so completion is checked per event. Once
                // every front is done the sampler stops re-arming
                // (`finishing`) and the run breaks the moment the last
                // live event is processed — the clock never advances
                // past the sampler-off makespan.
                let done: usize = cores.iter().map(|c| c.nodes_done()).sum();
                if done >= n {
                    drv.finishing = true;
                    if drv.live_events == 0 {
                        break 'run;
                    }
                }
            }
        }
        // The queue drained (the recovery-off path — with recovery on it
        // only happens once a partitioned driver stops re-arming the
        // detector).
        let nodes_done: usize = match membership.as_ref() {
            Some(ms) => {
                (0..cfg.nprocs).filter(|&p| ms.alive[p]).map(|p| cores[p].nodes_done()).sum()
            }
            None => cores.iter().map(|c| c.nodes_done()).sum(),
        };
        if nodes_done >= n {
            break;
        }
        // A scheduled join whose event index was never reached fires now:
        // the joiner may hold the only way forward.
        if let Some(ms) = membership.as_mut() {
            if let Some(q) = ms.take_next_join() {
                join_proc(&mut drv, &mut cores, ms, tree, map, n, q)?;
                continue;
            }
        }
        // Drained queue with unfinished fronts. Under a hard capacity the
        // deadlock may be self-inflicted (every idle processor deferring
        // every task): force the globally cheapest deferred task and keep
        // going — degrading memory, never correctness. Otherwise it is a
        // genuine stall (a dead processor nobody can detect, a dead
        // network): report it.
        let Some(p) = force_one_deferred(&mut drv, &mut cores, membership.as_ref()) else {
            let diag = diagnostics(&drv, &cores, n);
            return Err(stall_error(&drv, diag));
        };
        if let Some(v) = cores[p].take_violation() {
            return Err(error_of(&drv, &cores, n, v));
        }
    }

    let disk_end = cores.iter().map(|c| c.disk_busy_until()).max().unwrap_or(0);
    let makespan = drv.sim.now().max(disk_end);
    let mems: Vec<&ProcMemory> = cores.iter().map(|c| c.memory()).collect();
    let peaks: Vec<u64> = mems.iter().map(|m| m.active_peak()).collect();
    let total_peaks: Vec<u64> = mems.iter().map(|m| m.total_peak()).collect();
    let factor_entries: Vec<u64> = mems.iter().map(|m| m.factors()).collect();
    let max_peak = peaks.iter().copied().max().unwrap_or(0);
    let avg_peak = peaks.iter().sum::<u64>() as f64 / peaks.len().max(1) as f64;
    let mut metrics = drv.metrics;
    for core in &cores {
        metrics.merge_core(core.id(), core.metrics());
    }
    if let Some(rec) = &drv.rec {
        // Finalization invariant: every payload reference of the finished
        // recording is in-bounds and non-overlapping.
        rec.debug_validate();
    }
    let alive = |p: usize| membership.as_ref().is_none_or(|m| m.alive[p]);
    let factor_digest = digest_factors(
        (0..cfg.nprocs).filter(|&p| alive(p)).map(|p| cores[p].factors_by_node()),
        n,
    );
    let nodes_done = (0..cfg.nprocs).filter(|&p| alive(p)).map(|p| cores[p].nodes_done()).sum();
    Ok(RunResult {
        total_peaks,
        factor_entries,
        max_peak,
        avg_peak,
        makespan,
        messages: drv.messages,
        events_delivered: drv.sim.delivered(),
        traces: cfg
            .record_traces
            .then(|| mems.iter().map(|m| m.trace().cloned().unwrap_or_default()).collect()),
        nodes_done,
        total_nodes: n,
        dropped_messages: drv.fault.as_ref().map_or(0, |f| f.dropped()),
        forced_activations: cores.iter().map(|c| c.forced()).sum(),
        final_active: mems.iter().map(|m| m.active()).collect(),
        underflows: mems.iter().map(|m| m.underflows()).collect(),
        metrics,
        recording: drv.rec,
        timeseries: drv.ts,
        peaks,
        factor_digest,
        dead: drv.dead,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use crate::mapping::{compute_mapping, NodeKind};
    use mf_order::OrderingKind;
    use mf_sparse::gen::grid::{grid2d, Stencil};
    use mf_symbolic::seqstack::{sequential_peak, AssemblyDiscipline};
    use mf_symbolic::AmalgamationOptions;

    fn tree_for(nx: usize) -> AssemblyTree {
        let a = grid2d(nx, nx, Stencil::Star);
        let p = OrderingKind::Metis.compute(&a);
        let mut s = mf_symbolic::analyze(&a, &p, &AmalgamationOptions::default());
        mf_symbolic::seqstack::apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
        s.tree
    }

    #[test]
    fn all_nodes_complete() {
        let tree = tree_for(24);
        for nprocs in [1, 2, 4, 8] {
            let cfg = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(nprocs) };
            let map = compute_mapping(&tree, &cfg);
            let r = run(&tree, &map, &cfg).unwrap();
            assert_eq!(r.nodes_done, r.total_nodes, "nprocs={nprocs}");
            assert!(r.makespan > 0);
        }
    }

    #[test]
    fn single_processor_matches_sequential_model() {
        // With one processor, no slaves and LIFO selection, the simulated
        // execution is exactly the sequential postorder factorization, so
        // the peak must equal the symbolic model's.
        let tree = tree_for(20);
        let cfg = SolverConfig::mumps_baseline(1);
        let map = compute_mapping(&tree, &cfg);
        let r = run(&tree, &map, &cfg).unwrap();
        assert_eq!(r.nodes_done, r.total_nodes);
        assert_eq!(r.max_peak, sequential_peak(&tree, AssemblyDiscipline::FrontThenFree));
    }

    #[test]
    fn deterministic_runs() {
        let tree = tree_for(20);
        let cfg = SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) };
        let map = compute_mapping(&tree, &cfg);
        let r1 = run(&tree, &map, &cfg).unwrap();
        let r2 = run(&tree, &map, &cfg).unwrap();
        assert_eq!(r1.peaks, r2.peaks);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.messages, r2.messages);
    }

    #[test]
    fn memory_strategy_runs_and_completes() {
        let tree = tree_for(28);
        for cfg in [
            SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(8) },
            SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(8) },
        ] {
            let map = compute_mapping(&tree, &cfg);
            let r = run(&tree, &map, &cfg).unwrap();
            assert_eq!(r.nodes_done, r.total_nodes);
            assert!(r.max_peak > 0);
        }
    }

    #[test]
    fn out_of_core_removes_factor_memory() {
        let tree = tree_for(20);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &cfg0);
        let incore = run(&tree, &map, &cfg0).unwrap();
        // Fast disk: factors stream out, stack behaviour unchanged.
        let fast = SolverConfig { out_of_core: Some(u64::MAX), ..cfg0.clone() };
        let r = run(&tree, &map, &fast).unwrap();
        assert_eq!(r.nodes_done, r.total_nodes);
        assert_eq!(r.peaks, incore.peaks, "stack behaviour must not change");
        assert_eq!(r.total_peaks, r.peaks, "no factors in core");
        assert!(r.factor_entries.iter().all(|&f| f == 0));
        assert!(incore.total_peaks.iter().sum::<u64>() > incore.peaks.iter().sum::<u64>());
        // Slow disk: same memory, longer makespan (disk is the bottleneck).
        let slow = SolverConfig { out_of_core: Some(1), ..cfg0 };
        let rs = run(&tree, &map, &slow).unwrap();
        assert_eq!(rs.peaks, incore.peaks);
        assert!(rs.makespan > incore.makespan, "{} !> {}", rs.makespan, incore.makespan);
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let tree = tree_for(20);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &cfg0);
        let exact = run(&tree, &map, &cfg0).unwrap();
        let j1 = SolverConfig { jitter: Some((7, 0.1)), ..cfg0.clone() };
        let r1 = run(&tree, &map, &j1).unwrap();
        let r2 = run(&tree, &map, &j1).unwrap();
        // Same seed: bit-identical. All fronts still complete.
        assert_eq!(r1.peaks, r2.peaks);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.nodes_done, r1.total_nodes);
        // Makespan moves but stays in the same ballpark (±~30%).
        let lo = exact.makespan as f64 * 0.7;
        let hi = exact.makespan as f64 * 1.3;
        assert!((r1.makespan as f64) > lo && (r1.makespan as f64) < hi);
        // A different seed generally yields a different schedule.
        let r3 = run(&tree, &map, &SolverConfig { jitter: Some((8, 0.1)), ..cfg0 }).unwrap();
        assert!(r3.makespan != r1.makespan || r3.peaks != r1.peaks);
    }

    #[test]
    fn traces_cover_all_processors() {
        let tree = tree_for(16);
        let cfg = SolverConfig {
            record_traces: true,
            type2_front_min: 24,
            ..SolverConfig::mumps_baseline(4)
        };
        let map = compute_mapping(&tree, &cfg);
        let r = run(&tree, &map, &cfg).unwrap();
        let traces = r.traces.unwrap();
        assert_eq!(traces.len(), 4);
        // Traces keep within-instant transients (TraceSample::high), so
        // their max agrees exactly with the accounting peak — per
        // processor and globally.
        for (t, &pk) in traces.iter().zip(&r.peaks) {
            assert_eq!(t.max(), pk, "trace max must equal active_peak");
        }
        let tmax = traces.iter().map(|t| t.max()).max().unwrap();
        assert_eq!(tmax, r.max_peak, "tmax={tmax} peak={}", r.max_peak);
    }

    #[test]
    fn recording_attribution_sums_to_peaks() {
        // The flight recording replays to the exact accounting peaks: for
        // every processor the attributed composition sums to active_peak.
        let tree = tree_for(24);
        for cfg0 in [
            SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) },
            SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) },
        ] {
            let cfg = SolverConfig { record_events: true, ..cfg0 };
            let map = compute_mapping(&tree, &cfg);
            let r = run(&tree, &map, &cfg).unwrap();
            let rec = r.recording.as_ref().expect("recording enabled");
            assert_eq!(rec.dropped(), 0, "unbounded recording must be complete");
            assert!(!rec.is_empty());
            let att = mf_sim::attribute_peaks(cfg.nprocs, rec);
            assert_eq!(att.len(), cfg.nprocs);
            for a in &att {
                assert_eq!(a.peak, r.peaks[a.proc], "proc {}", a.proc);
                let sum: u64 = a.composition.iter().map(|it| it.entries).sum();
                assert_eq!(sum, a.peak, "composition must sum to the peak on proc {}", a.proc);
            }
        }
    }

    #[test]
    fn recording_is_deterministic_and_absent_when_disabled() {
        let tree = tree_for(20);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) };
        let map = compute_mapping(&tree, &cfg0);
        let plain = run(&tree, &map, &cfg0).unwrap();
        assert!(plain.recording.is_none());
        let cfg = SolverConfig { record_events: true, ..cfg0 };
        let r1 = run(&tree, &map, &cfg).unwrap();
        let r2 = run(&tree, &map, &cfg).unwrap();
        assert_eq!(r1.recording, r2.recording, "recordings must be bit-identical");
        // Observability must not perturb the schedule.
        assert_eq!(r1.peaks, plain.peaks);
        assert_eq!(r1.makespan, plain.makespan);
        assert_eq!(r1.messages, plain.messages);
    }

    #[test]
    fn sampler_is_schedule_invariant_and_absent_when_disabled() {
        let tree = tree_for(20);
        let cfg0 = SolverConfig {
            type2_front_min: 24,
            record_events: true,
            ..SolverConfig::memory_based(4)
        };
        let map = compute_mapping(&tree, &cfg0);
        let plain = run(&tree, &map, &cfg0).unwrap();
        assert!(plain.timeseries.is_none());
        let cfg = SolverConfig { sample_every: Some(50), ..cfg0 };
        let r1 = run(&tree, &map, &cfg).unwrap();
        let r2 = run(&tree, &map, &cfg).unwrap();
        // Sampling must never perturb the schedule: identical peaks,
        // makespan, messages, and a bit-identical decision recording.
        assert_eq!(r1.peaks, plain.peaks);
        assert_eq!(r1.makespan, plain.makespan);
        assert_eq!(r1.messages, plain.messages);
        assert_eq!(r1.recording, plain.recording, "recorded decisions must not move");
        // The series itself is deterministic, covers every processor,
        // stays within the run, and reflects real memory state.
        let ts = r1.timeseries.as_ref().unwrap();
        assert_eq!(r2.timeseries.as_ref().unwrap(), ts);
        assert_eq!(ts.nprocs(), 4);
        assert!(ts.total_len() > 0, "a {}-tick run must yield samples", r1.makespan);
        for p in 0..4 {
            for row in ts.proc(p).iter() {
                assert!(row.at <= r1.makespan);
            }
        }
        assert!((0..4).any(|p| ts.proc(p).iter().any(|r| r.active > 0 || r.stack > 0)));
    }

    #[test]
    fn metrics_account_all_traffic() {
        let tree = tree_for(20);
        let cfg = SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) };
        let map = compute_mapping(&tree, &cfg);
        let r = run(&tree, &map, &cfg).unwrap();
        let m = &r.metrics;
        // Every counted message is either control or status.
        assert_eq!(m.total_msgs(), r.messages);
        assert!(m.control_msgs > 0 && m.status_msgs > 0);
        assert!(m.control_bytes > 0 && m.status_bytes > 0);
        assert_eq!(m.dropped_status, 0);
        assert_eq!(m.procs.len(), 4);
        // Busy time: positive, and no processor is busy longer than the run.
        for p in &m.procs {
            assert!(p.busy_ticks > 0 && p.busy_ticks <= r.makespan);
            assert_eq!(p.stalled_ticks, 0, "no capacity, no stalls");
        }
        // One activation per owner-activated node.
        let acts: u64 = m.procs.iter().map(|p| p.activations).sum();
        assert!(acts as usize <= r.total_nodes);
        assert!(m.view_staleness.count > 0, "type-2 selections observed staleness");
        assert!(m.pool_depth.count > 0);
    }

    #[test]
    fn capped_run_reports_deferrals_in_metrics() {
        let tree = tree_for(24);
        let base = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &base);
        let free = run(&tree, &map, &base).unwrap();
        // A capacity of 1 makes every out-of-subtree activation
        // inadmissible: each one is deferred until the stall-breaker
        // forces it, exercising the whole degradation ladder.
        let capped = SolverConfig { capacity: Some(1), record_events: true, ..base };
        let r = run(&tree, &map, &capped).unwrap();
        assert_eq!(r.nodes_done, r.total_nodes);
        let deferrals: u64 = r.metrics.procs.iter().map(|p| p.deferrals).sum();
        assert!(deferrals > 0, "a tight cap must defer something");
        assert!(r.forced_activations > 0);
        assert_eq!(
            r.metrics.serialized_fronts + r.metrics.forced_activations,
            r.forced_activations,
            "metrics split the degradation counter exactly"
        );
        let stalled: u64 = r.metrics.procs.iter().map(|p| p.stalled_ticks).sum();
        assert!(stalled > 0, "deferred processors accumulate stalled time");
        assert!(r.makespan >= free.makespan);
        // The recording saw the same story.
        let rec = r.recording.unwrap();
        assert!(rec.events().any(|te| matches!(te.ev, mf_sim::EventRef::Forced { .. })));
        assert!(rec
            .events()
            .any(|te| matches!(te.ev, mf_sim::EventRef::PoolDecision { picked: None, .. })));
    }

    #[test]
    fn parallel_peak_at_least_na_frontier() {
        // The per-processor peak can never be below the biggest single
        // allocation that processor makes.
        let tree = tree_for(24);
        let cfg = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &cfg);
        let r = run(&tree, &map, &cfg).unwrap();
        let biggest_local = (0..tree.len())
            .filter(|&v| matches!(map.kind[v], NodeKind::Subtree(_) | NodeKind::Type1))
            .map(|v| tree.front_entries(v))
            .max()
            .unwrap_or(0);
        assert!(r.max_peak >= biggest_local);
    }

    #[test]
    fn quiet_fault_model_is_bit_identical() {
        let tree = tree_for(20);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) };
        let map = compute_mapping(&tree, &cfg0);
        let plain = run(&tree, &map, &cfg0).unwrap();
        let quiet = SolverConfig { fault: Some(mf_sim::FaultModel::quiet(9)), ..cfg0 };
        let r = run(&tree, &map, &quiet).unwrap();
        assert_eq!(r.peaks, plain.peaks);
        assert_eq!(r.makespan, plain.makespan);
        assert_eq!(r.messages, plain.messages);
        assert_eq!(r.dropped_messages, 0);
    }

    #[test]
    fn perturbed_runs_terminate_deterministically_with_same_factors() {
        let tree = tree_for(24);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) };
        let map = compute_mapping(&tree, &cfg0);
        let plain = run(&tree, &map, &cfg0).unwrap();
        let cfg = SolverConfig { fault: Some(mf_sim::FaultModel::intensity(13, 3.0)), ..cfg0 };
        let r1 = run(&tree, &map, &cfg).unwrap();
        let r2 = run(&tree, &map, &cfg).unwrap();
        // Same seed: bit-identical.
        assert_eq!(r1.peaks, r2.peaks);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.dropped_messages, r2.dropped_messages);
        // Perturbed but correct: all fronts done, entry conservation, and
        // the factors are the ones the tree defines — identical to the
        // unperturbed run's.
        assert_eq!(r1.nodes_done, r1.total_nodes);
        assert!(r1.final_active.iter().all(|&a| a == 0), "{:?}", r1.final_active);
        assert!(r1.dropped_messages > 0, "intensity 3 should drop something");
        assert_eq!(r1.factor_entries.iter().sum::<u64>(), plain.factor_entries.iter().sum::<u64>(),);
    }

    #[test]
    fn watchdog_reports_partition_when_network_dies() {
        // Kill the network early: some Complete/SlaveTask message is lost
        // and the factorization can never finish — the watchdog must
        // return a typed Partitioned error instead of hanging (and name
        // the partition as such, not as a generic stall).
        let tree = tree_for(24);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &cfg0);
        let cfg = SolverConfig {
            fault: Some(mf_sim::FaultModel {
                kill_network_after: Some(10),
                ..mf_sim::FaultModel::quiet(1)
            }),
            ..cfg0
        };
        match run(&tree, &map, &cfg) {
            Err(SimError::Partitioned { after, diag }) => {
                assert_eq!(after, 10);
                assert!(diag.nodes_done < diag.total_nodes);
                assert_eq!(diag.procs.len(), 4);
                assert!(diag.dropped_messages > 0);
                assert!(diag.dead.is_empty(), "a partition kills no processor");
                // The snapshot names what every processor held.
                assert!(diag.procs.iter().any(|p| !p.pool.is_empty() || p.active > 0));
            }
            other => panic!("expected Partitioned, got {other:?}"),
        }
    }

    #[test]
    fn recovery_layer_off_is_bit_identical() {
        // With recovery configured but no fault, the detector arms and
        // heartbeats flow, but the factorization itself must be exactly
        // the quiet run's (same peaks, same makespan, same digest).
        let tree = tree_for(20);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) };
        let map = compute_mapping(&tree, &cfg0);
        let plain = run(&tree, &map, &cfg0).unwrap();
        // Aggressive detector periods so heartbeat traffic actually flows
        // within this short run.
        let rc = crate::config::RecoveryConfig { heartbeat_every: 20, lease_timeout: 120 };
        let cfg = SolverConfig { recovery: Some(rc), ..cfg0 };
        let r = run(&tree, &map, &cfg).unwrap();
        assert_eq!(r.peaks, plain.peaks);
        assert_eq!(r.makespan, plain.makespan);
        assert_eq!(r.factor_digest, plain.factor_digest);
        assert_eq!(r.nodes_done, r.total_nodes);
        assert!(r.dead.is_empty());
        assert!(r.messages > plain.messages, "heartbeats must flow");
    }

    #[test]
    fn killed_processor_recovers_with_identical_factors() {
        let tree = tree_for(20);
        for cfg0 in [
            SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) },
            SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) },
        ] {
            let map = compute_mapping(&tree, &cfg0);
            let plain = run(&tree, &map, &cfg0).unwrap();
            for victim in 0..4 {
                for kill_idx in [1u64, 64, 512, 2000] {
                    let cfg = SolverConfig {
                        recovery: Some(crate::config::RecoveryConfig::default()),
                        fault: Some(mf_sim::FaultModel {
                            kill_at: vec![(kill_idx, victim)],
                            ..mf_sim::FaultModel::quiet(1)
                        }),
                        ..cfg0.clone()
                    };
                    let r = run(&tree, &map, &cfg).unwrap_or_else(|e| {
                        panic!("victim {victim} at {kill_idx}: {e}");
                    });
                    assert_eq!(r.nodes_done, r.total_nodes, "victim {victim} at {kill_idx}");
                    assert_eq!(
                        r.factor_digest, plain.factor_digest,
                        "victim {victim} at {kill_idx}: factors diverged"
                    );
                    if r.dead.is_empty() {
                        // The run finished before the scheduled event index
                        // was reached: the kill never happened.
                        assert_eq!(r.metrics.recovery.kills_observed, 0);
                        continue;
                    }
                    assert_eq!(r.dead, vec![victim], "victim {victim} at {kill_idx}");
                    assert_eq!(r.metrics.recovery.kills_observed, 1);
                    // Entry conservation on the survivors: every stacked
                    // contribution block was consumed or reclaimed.
                    for (p, &a) in r.final_active.iter().enumerate() {
                        if p != victim {
                            assert_eq!(a, 0, "survivor {p} leaked {a} entries");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn recordings_audit_clean_including_recovery_runs() {
        let tree = tree_for(20);
        for cfg0 in [
            SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) },
            SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) },
        ] {
            let map = compute_mapping(&tree, &cfg0);
            // Fault-free.
            let cfg = SolverConfig { record_events: true, ..cfg0.clone() };
            let r = run(&tree, &map, &cfg).unwrap();
            let rec = r.recording.as_ref().unwrap();
            let f = mf_sim::audit_recording(4, rec);
            assert!(f.is_empty(), "fault-free findings: {f:?}");
            // Kill mid-run with recovery: re-execution and reclamation
            // must still satisfy every invariant the audit checks.
            let cfg = SolverConfig {
                record_events: true,
                recovery: Some(crate::config::RecoveryConfig::default()),
                fault: Some(mf_sim::FaultModel {
                    kill_at: vec![(128, 1)],
                    ..mf_sim::FaultModel::quiet(1)
                }),
                ..cfg0.clone()
            };
            let r = run(&tree, &map, &cfg).unwrap();
            assert_eq!(r.dead, vec![1]);
            let rec = r.recording.as_ref().unwrap();
            let f = mf_sim::audit_recording(4, rec);
            assert!(f.is_empty(), "kill-run findings: {f:?}");
        }
    }

    #[test]
    fn kill_without_recovery_stalls_promptly_and_names_the_dead() {
        let tree = tree_for(20);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &cfg0);
        let cfg = SolverConfig {
            fault: Some(mf_sim::FaultModel {
                kill_at: vec![(8, 2)],
                ..mf_sim::FaultModel::quiet(1)
            }),
            ..cfg0
        };
        match run(&tree, &map, &cfg) {
            Err(SimError::Stalled { diag }) => {
                assert_eq!(diag.dead, vec![2], "the stall must name the dead processor");
                assert!(diag.nodes_done < diag.total_nodes);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn joined_processor_takes_work_and_factors_stay_identical() {
        let tree = tree_for(20);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) };
        let map = compute_mapping(&tree, &cfg0);
        let plain = run(&tree, &map, &cfg0).unwrap();
        // Processor 3 starts dormant and joins mid-run.
        let cfg = SolverConfig {
            recovery: Some(crate::config::RecoveryConfig::default()),
            fault: Some(mf_sim::FaultModel {
                join_at: vec![(64, 3)],
                ..mf_sim::FaultModel::quiet(1)
            }),
            ..cfg0
        };
        let r = run(&tree, &map, &cfg).unwrap();
        assert_eq!(r.nodes_done, r.total_nodes);
        assert_eq!(r.factor_digest, plain.factor_digest);
        assert_eq!(r.metrics.recovery.joins_observed, 1);
        assert!(r.dead.is_empty());
        assert!(r.final_active.iter().all(|&a| a == 0));
    }

    #[test]
    fn kill_then_join_rebalances_and_completes() {
        let tree = tree_for(20);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) };
        let map = compute_mapping(&tree, &cfg0);
        let plain = run(&tree, &map, &cfg0).unwrap();
        let cfg = SolverConfig {
            recovery: Some(crate::config::RecoveryConfig::default()),
            fault: Some(mf_sim::FaultModel {
                kill_at: vec![(128, 1)],
                join_at: vec![(256, 4)],
                ..mf_sim::FaultModel::quiet(1)
            }),
            nprocs: 5,
            ..cfg0
        };
        // Five slots, processor 4 dormant at start: the static mapping is
        // computed for the full machine and proc 4 contributes only after
        // its join.
        let map5 = compute_mapping(&tree, &cfg);
        let plain5 =
            run(&tree, &map5, &SolverConfig { recovery: None, fault: None, ..cfg.clone() })
                .unwrap();
        assert_eq!(plain5.factor_digest, plain.factor_digest, "digest is partition-invariant");
        let r = run(&tree, &map5, &cfg).unwrap();
        assert_eq!(r.nodes_done, r.total_nodes);
        assert_eq!(r.factor_digest, plain.factor_digest);
        assert_eq!(r.dead, vec![1]);
        assert_eq!(r.metrics.recovery.kills_observed, 1);
        assert_eq!(r.metrics.recovery.joins_observed, 1);
    }

    #[test]
    fn time_limit_trips_the_runaway_guard() {
        let tree = tree_for(20);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &cfg0);
        let cfg = SolverConfig { time_limit: Some(1), ..cfg0 };
        match run(&tree, &map, &cfg) {
            Err(SimError::TimeLimit { limit, diag }) => {
                assert_eq!(limit, 1);
                assert!(diag.now > 1);
            }
            other => panic!("expected TimeLimit, got {other:?}"),
        }
    }

    #[test]
    fn capped_runs_complete_within_capacity() {
        let tree = tree_for(28);
        for base in [
            SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(8) },
            SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(8) },
        ] {
            let map = compute_mapping(&tree, &base);
            let free = run(&tree, &map, &base).unwrap();
            let cap = free.max_peak + free.max_peak / 5; // 1.2x headroom
            let capped = SolverConfig { capacity: Some(cap), ..base };
            let r = run(&tree, &map, &capped).unwrap();
            assert_eq!(r.nodes_done, r.total_nodes);
            assert!(
                r.peaks.iter().all(|&pk| pk <= cap),
                "peaks {:?} exceed capacity {cap}",
                r.peaks
            );
            assert!(r.final_active.iter().all(|&a| a == 0));
        }
    }

    #[test]
    fn tight_capacity_degrades_time_not_correctness() {
        // A capacity right at the biggest single allocation forces heavy
        // deferral/serialization, but the run still completes.
        let tree = tree_for(24);
        let base = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &base);
        let free = run(&tree, &map, &base).unwrap();
        let floor = (0..tree.len()).map(|v| tree.front_entries(v)).max().unwrap_or(0);
        let capped = SolverConfig { capacity: Some(floor.max(1)), ..base };
        let r = run(&tree, &map, &capped).unwrap();
        assert_eq!(r.nodes_done, r.total_nodes);
        assert!(r.final_active.iter().all(|&a| a == 0));
        assert!(
            r.makespan >= free.makespan,
            "tight cap should not be faster: {} < {}",
            r.makespan,
            free.makespan
        );
    }
}
